(* vuvuzela-server: one chain server as an OS process (§7).

   A chain of N servers is N processes plus the coordinator:

     vuvuzela-server --listen :7002 --index 2 --chain-len 3 --seed s &
     vuvuzela-server --listen :7001 --next :7002 --index 1 --chain-len 3 --seed s &
     vuvuzela-server --listen :7000 --next :7001 --index 0 --chain-len 3 --seed s &

   and a coordinator built on [Network.of_config_tcp ~addr:(":7000")].
   Runs until the coordinator sends Bye. *)

open Cmdliner
open Vuvuzela_dp
open Vuvuzela

let addr_conv =
  let parse s =
    match Vuvuzela_transport.Addr.parse s with
    | Ok a -> Ok a
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf a -> Format.pp_print_string ppf (Vuvuzela_transport.Addr.to_string a))

let fault_plan_conv =
  let parse s =
    match Vuvuzela_faults.Fault.parse s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf p ->
      Format.pp_print_string ppf (Vuvuzela_faults.Fault.to_string p))

let link_conv =
  let parse s =
    match Vuvuzela_transport.Shaper.parse s with
    | Ok c -> Ok c
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    (parse, fun ppf c ->
      Format.pp_print_string ppf (Vuvuzela_transport.Shaper.to_string c))

let run listen next index chain_len seed mu b dial_mu dial_b det_noise
    certified jobs deaddrop_shards pipeline pipeline_chunk fault_plan
    link_latency link_jitter link_bw flap_grace_ms metrics_listen trace_out
    quiet =
  let log =
    if quiet then fun _ -> ()
    else fun msg -> Printf.eprintf "[vuvuzela-server %d] %s\n%!" index msg
  in
  let link =
    (* --link-latency LAT[±JIT][@BW] is the one-stop syntax; the split
       flags override its fields for scripting convenience. *)
    match (link_latency, link_jitter, link_bw) with
    | None, None, None -> None
    | base, jitter, bw ->
        let c =
          Option.value base
            ~default:(Vuvuzela_transport.Shaper.config ())
        in
        Some
          {
            c with
            Vuvuzela_transport.Shaper.jitter_ms =
              Option.value jitter ~default:c.Vuvuzela_transport.Shaper.jitter_ms;
            bandwidth_bytes_per_sec =
              (match bw with
              | Some bw -> Some bw
              | None -> c.Vuvuzela_transport.Shaper.bandwidth_bytes_per_sec);
          }
  in
  let cfg =
    {
      Daemon.listen;
      next;
      index;
      chain_len;
      seed;
      noise = Laplace.params ~mu ~b;
      dial_noise = Laplace.params ~mu:dial_mu ~b:dial_b;
      noise_mode = (if det_noise then Noise.Deterministic else Noise.Sampled);
      dial_kind = (if certified then Dialing.Certified else Dialing.Plain);
      jobs;
      deaddrop_shards = max 1 deaddrop_shards;
      pipeline_chunk = (if pipeline then Some (max 1 pipeline_chunk) else None);
      fault_plan;
      link;
      flap_grace_ms;
      metrics_listen;
      trace_out;
    }
  in
  match Daemon.run ~log cfg with
  | Ok () -> `Ok ()
  | Error e -> `Error (false, e)

let cmd =
  let listen =
    Arg.(
      required
      & opt (some addr_conv) None
      & info [ "listen"; "l" ] ~docv:"HOST:PORT"
          ~doc:"Address to accept the upstream hop on.")
  in
  let next =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "next" ] ~docv:"HOST:PORT"
          ~doc:
            "Next server in the chain; omit on the last server. Dialed \
             with reconnect/backoff, so start order does not matter.")
  in
  let index =
    Arg.(
      required
      & opt (some int) None
      & info [ "index"; "i" ] ~docv:"I" ~doc:"0-based chain position.")
  in
  let chain_len =
    Arg.(value & opt int 3 & info [ "chain-len" ] ~doc:"Servers in the chain.")
  in
  let seed =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed" ]
          ~doc:
            "Deployment seed; every server must use the same one. A seeded \
             multi-process chain is bit-identical to the in-process chain \
             with that seed.")
  in
  let mu = Arg.(value & opt float 10. & info [ "mu" ] ~doc:"Conversation noise mean.") in
  let b =
    Arg.(
      value & opt float 2.
      & info [ "b"; "noise-b" ] ~doc:"Conversation noise scale.")
  in
  let dial_mu =
    Arg.(value & opt float 3. & info [ "dial-mu" ] ~doc:"Dialing noise mean.")
  in
  let dial_b =
    Arg.(value & opt float 1. & info [ "dial-b" ] ~doc:"Dialing noise scale.")
  in
  let det_noise =
    Arg.(
      value & flag
      & info [ "deterministic-noise" ]
          ~doc:"Always add exactly µ noise (the paper's §8.1 evaluation mode).")
  in
  let certified =
    Arg.(
      value & flag
      & info [ "certified" ] ~doc:"Certified (signed) dialing invitations.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc:"Crypto worker domains.")
  in
  let deaddrop_shards =
    Arg.(
      value & opt int 1
      & info [ "deaddrop-shards" ] ~docv:"N"
          ~doc:
            "Shards for the conversation dead-drop store (last server): \
             drops route by id prefix and the exchange pair-matches per \
             shard over the worker domains. Results are bit-identical \
             for any count.")
  in
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Stream forward batches to the next server as chunked parts so \
             it starts peeling before the whole batch arrives. Results are \
             bit-identical either way.")
  in
  let pipeline_chunk =
    Arg.(
      value & opt int 16
      & info [ "pipeline-chunk" ] ~docv:"N"
          ~doc:"Onions per streamed part (with $(b,--pipeline)).")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some fault_plan_conv) None
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Deterministic socket-level fault schedule for this server's \
             incoming link, e.g. 'crash@2:1;drop@4:1' (entries must name \
             this server's index).")
  in
  let link_latency =
    Arg.(
      value
      & opt (some link_conv) None
      & info [ "link-latency" ] ~docv:"LAT[±JIT][@BW]"
          ~doc:
            "Emulate WAN characteristics on the downstream link: one-way \
             latency in ms, optional ± jitter in ms, optional @ bandwidth \
             in bytes/sec (k/m suffixes), e.g. '25', '25±5', '50±10\\@1m'. \
             Jitter is DRBG-seeded per link when $(b,--seed) is set.")
  in
  let link_jitter =
    Arg.(
      value
      & opt (some float) None
      & info [ "link-jitter" ] ~docv:"MS"
          ~doc:"Override the jitter component of $(b,--link-latency).")
  in
  let link_bw =
    Arg.(
      value
      & opt (some float) None
      & info [ "link-bw" ] ~docv:"BYTES/SEC"
          ~doc:
            "Override the bandwidth component of $(b,--link-latency) \
             (token-bucket serialization limit).")
  in
  let flap_grace_ms =
    Arg.(
      value & opt float 2000.
      & info [ "flap-grace-ms" ] ~docv:"MS"
          ~doc:
            "How long a lost downstream link may stay down mid-round \
             before the round is abandoned; 0 aborts on the first drop.")
  in
  let metrics_listen =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "metrics-listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Serve scrape endpoints on this address: $(b,/metrics) \
             (Prometheus text), $(b,/healthz) (JSON liveness: chain \
             position, peer connectivity, round progress, uptime), and \
             $(b,/trace) (the span trace as JSONL). Served from the \
             daemon's own event loop; scrapes never block a round.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write this server's span trace (JSONL) here on shutdown, \
             ready for the coordinator's cross-process merge.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No stderr log.") in
  Cmd.v
    (Cmd.info "vuvuzela-server" ~version:"0.1.0"
       ~doc:"one Vuvuzela chain server as its own process")
    Term.(
      ret
        (const run $ listen $ next $ index $ chain_len $ seed $ mu $ b
       $ dial_mu $ dial_b $ det_noise $ certified $ jobs $ deaddrop_shards
       $ pipeline $ pipeline_chunk $ fault_plan $ link_latency $ link_jitter
       $ link_bw $ flap_grace_ms $ metrics_listen $ trace_out $ quiet))

let () = exit (Cmd.eval cmd)
