(* The vuvuzela command-line tool.

     vuvuzela demo      -- run an in-process deployment and chat
     vuvuzela analyze   -- privacy guarantees for given noise parameters
     vuvuzela simulate  -- latency/throughput from the calibrated model
     vuvuzela attack    -- run the disclosure attack (live or model)
     vuvuzela figures   -- regenerate a figure's data series
*)

open Cmdliner
open Vuvuzela_dp
open Vuvuzela

(* ------------------------------------------------------------------ *)
(* demo                                                                *)
(* ------------------------------------------------------------------ *)

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let demo users rounds mu seed jobs pipeline deaddrop_shards entry_streaming
    fault_plan round_deadline_ms max_retries admission_ms client_latency
    metrics_out trace_out budget_warn obs_dir =
  let noise = Laplace.params ~mu ~b:(Float.max 1. (mu /. 21.7)) in
  (* Any observability flag turns the sink on; without one the nil sink
     keeps the demo on the exact zero-cost path the tests pin. *)
  let telemetry =
    if
      metrics_out <> None || trace_out <> None || budget_warn <> None
      || obs_dir <> None
    then Some (Vuvuzela_telemetry.Telemetry.create ())
    else None
  in
  let opt f v cfg = match v with None -> cfg | Some v -> f v cfg in
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed seed |> with_noise noise
        |> with_dial_noise
             (Laplace.params ~mu:(Float.max 1. (mu /. 20.)) ~b:1.)
        |> with_noise_mode Noise.Sampled |> with_jobs jobs
        |> with_pipeline pipeline
        |> with_deaddrop_shards deaddrop_shards
        |> with_entry_streaming entry_streaming
        |> with_max_retries max_retries
        |> opt with_fault_plan fault_plan
        |> opt with_telemetry telemetry
        |> opt with_budget_warn budget_warn
        |> opt with_round_deadline_ms round_deadline_ms
        |> opt with_admission_ms admission_ms
        |> opt with_obs_dir obs_dir
        |> fun cfg ->
        (* An admission window needs arrival times; default the latency
           model when only the window was given so the flag is visible. *)
        match (client_latency, admission_ms) with
        | None, None -> cfg
        | _ ->
            let base_ms, jitter_ms =
              Option.value client_latency ~default:(5., 10.)
            in
            with_client_latency ~base_ms ~jitter_ms cfg)
  in
  let clients =
    List.init (max 2 users) (fun i ->
        Network.connect ~seed:(Printf.sprintf "%s-c%d" seed i) net)
  in
  (* Pair adjacent clients; odd one out idles. *)
  let rec pair i = function
    | a :: b :: rest ->
        Client.start_conversation a ~peer_pk:(Client.public_key b);
        Client.start_conversation b ~peer_pk:(Client.public_key a);
        Client.send a (Printf.sprintf "ping from pair %d" i);
        pair (i + 1) rest
    | _ -> ()
  in
  pair 0 clients;
  Printf.printf "%d clients, 3 servers, noise µ=%.0f, %d job(s); running %d \
                 rounds\n"
    (List.length clients) mu (Network.jobs net) rounds;
  for _ = 1 to rounds do
    let report = Network.run ~kind:Round.Conversation net in
    let round = Network.round net - 1 in
    Format.printf "  %a@." Network.pp_round_report report;
    List.iter
      (fun (c, evs) ->
        List.iter
          (function
            | Client.Delivered { text; _ } ->
                Printf.printf "  round %2d: %s <- %S\n" round
                  (String.sub
                     (Vuvuzela_crypto.Bytes_util.to_hex (Client.public_key c))
                     0 8)
                  text
            | Client.Round_failed { status; _ } ->
                Format.printf "  round %2d: %s round failed (%a)@." round
                  (String.sub
                     (Vuvuzela_crypto.Bytes_util.to_hex (Client.public_key c))
                     0 8)
                  Rpc.pp_status status
            | _ -> ())
          evs)
      report.Network.events;
    match Chain.observed_histogram (Network.chain net) with
    | Some h ->
        Printf.printf "  round %2d: observable view m1=%d m2=%d\n" round
          h.Deaddrop.m1 h.Deaddrop.m2
    | None -> ()
  done;
  (* Flush the sink to its files and print the budget ledger's verdict. *)
  Option.iter
    (fun tel ->
      let module T = Vuvuzela_telemetry in
      Option.iter
        (fun path ->
          let m = T.Telemetry.metrics tel in
          (* .json gets the structured export (quantiles included); any
             other extension gets Prometheus text exposition. *)
          if Filename.check_suffix path ".json" then
            write_file path (T.Json.to_string (T.Metrics.to_json m))
          else write_file path (T.Metrics.to_prometheus m);
          Printf.printf "metrics written to %s\n" path)
        metrics_out;
      Option.iter
        (fun path ->
          write_file path (T.Trace.to_jsonl (T.Telemetry.trace tel));
          Printf.printf "trace written to %s (%d spans)\n" path
            (T.Trace.span_count (T.Telemetry.trace tel)))
        trace_out;
      Option.iter
        (fun ledger ->
          let worst = T.Ledger.worst ledger in
          Printf.printf
            "privacy budget: %d clients, worst eps'=%.3f delta'=%.2e%s\n"
            (T.Ledger.clients ledger)
            worst.Mechanism.eps worst.Mechanism.delta
            (match T.Ledger.warn_eps ledger with
            | Some w ->
                Printf.sprintf " (%d over eps'=%.3f)"
                  (T.Ledger.over_budget ledger) w
            | None -> ""))
        (T.Telemetry.ledger tel))
    telemetry;
  Network.shutdown net;
  Option.iter
    (fun dir -> Printf.printf "observability written to %s\n" dir)
    obs_dir;
  0

let demo_cmd =
  let users =
    Arg.(value & opt int 6 & info [ "users"; "n" ] ~doc:"Number of clients.")
  in
  let rounds =
    Arg.(value & opt int 5 & info [ "rounds"; "r" ] ~doc:"Conversation rounds.")
  in
  let mu =
    Arg.(value & opt float 20. & info [ "mu" ] ~doc:"Noise mean per server.")
  in
  let seed =
    Arg.(value & opt string "demo" & info [ "seed" ] ~doc:"Deterministic seed.")
  in
  let jobs =
    let positive =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | Some _ -> Error (`Msg "JOBS must be >= 1")
        | None -> Error (`Msg (Printf.sprintf "invalid value %S" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(
      value & opt positive 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for the servers' per-onion crypto (results are \
             identical at any value).")
  in
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Relay batches between servers as streamed chunked parts, so a \
             server starts peeling before its predecessor finishes (results \
             are identical either way).")
  in
  let deaddrop_shards =
    Arg.(
      value & opt int 1
      & info [ "deaddrop-shards" ] ~docv:"N"
          ~doc:
            "Shards for the last server's dead-drop store: drops route by \
             id prefix and the exchange pair-matches per shard over the \
             worker domains (results are identical at any count).")
  in
  let entry_streaming =
    Arg.(
      value & flag
      & info [ "entry-streaming" ]
          ~doc:
            "Stream admitted requests into the chain in chunk-sized parts \
             instead of materializing the whole batch at the entry tier — \
             peak buffered onions bounded by the pipeline chunk, not the \
             population (results are identical either way).")
  in
  let fault_plan =
    let plan_conv =
      let parse s =
        match Vuvuzela_faults.Fault.parse s with
        | Ok plan -> Ok (Some plan)
        | Error e -> Error (`Msg e)
      in
      let pp ppf = function
        | None -> Format.pp_print_string ppf ""
        | Some plan ->
            Format.pp_print_string ppf (Vuvuzela_faults.Fault.to_string plan)
      in
      Arg.conv (parse, pp)
    in
    Arg.(
      value & opt plan_conv None
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Inject deterministic faults at the chain's links, e.g. \
             'crash\\@2;corrupt(3)\\@4:1' (kind\\@round:server, ';'-separated; \
             kinds: crash, drop, corrupt(byte), truncate(n), pad(n), \
             delay(ms), tamper(slot)).")
  in
  let round_deadline_ms =
    Arg.(
      value & opt (some float) None
      & info [ "round-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Abort (and retry) any round attempt that exceeds this many \
             milliseconds, injected delays included.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ]
          ~doc:"Retries per round after the first attempt fails.")
  in
  let admission_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "admission-ms" ] ~docv:"MS"
          ~doc:
            "Entry-tier admission window: each round attempt admits only \
             the clients whose emulated arrival (see \
             $(b,--client-latency)) lands within MS milliseconds; \
             stragglers get a typed Late answer, their payloads are \
             requeued, and the round runs degraded with whoever showed \
             up.")
  in
  let client_latency =
    let lat_conv =
      let parse s =
        match Vuvuzela_transport.Shaper.parse s with
        | Ok c ->
            Ok
              (Some
                 ( c.Vuvuzela_transport.Shaper.latency_ms,
                   c.Vuvuzela_transport.Shaper.jitter_ms ))
        | Error e -> Error (`Msg e)
      in
      let pp ppf = function
        | None -> Format.pp_print_string ppf ""
        | Some (b, j) -> Format.fprintf ppf "%g±%g" b j
      in
      Arg.conv (parse, pp)
    in
    Arg.(
      value
      & opt lat_conv None
      & info [ "client-latency" ] ~docv:"BASE[±JIT]"
          ~doc:
            "Emulated client → entry arrival latency in milliseconds \
             (e.g. '5±10'), drawn per client per attempt from the \
             deployment seed; feeds the $(b,--admission-ms) check.  \
             Defaults to 5±10 when only the window is given.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry on exit: Prometheus text \
             exposition, or structured JSON (with quantile estimates) \
             when FILE ends in .json.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the span trace on exit, one JSON span per line \
             (per-round, per-server pipeline stages with parent links).")
  in
  let budget_warn =
    Arg.(
      value & opt (some float) None
      & info [ "budget-warn" ] ~docv:"EPS"
          ~doc:
            "Track each client's cumulative privacy spend (Theorem 2 \
             composition over attempted rounds) and warn when ε' crosses \
             EPS.  Also enables the budget gauges in --metrics-out.")
  in
  let obs_dir =
    Arg.(
      value & opt (some string) None
      & info [ "obs-dir" ] ~docv:"DIR"
          ~doc:
            "Collect observability into DIR: a per-round JSONL event \
             log while running, plus the trace, metrics and a \
             human-readable round digest on exit (re-render it any time \
             with $(b,vuvuzela inspect DIR)).")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"run an in-process Vuvuzela deployment")
    Term.(
      const demo $ users $ rounds $ mu $ seed $ jobs $ pipeline
      $ deaddrop_shards $ entry_streaming $ fault_plan $ round_deadline_ms
      $ max_retries $ admission_ms $ client_latency $ metrics_out $ trace_out
      $ budget_warn $ obs_dir)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze mu b dialing =
  let p = Laplace.params ~mu ~b in
  let protocol =
    if dialing then Composition.Dialing else Composition.Conversation
  in
  let g = Composition.per_round_of protocol p in
  Printf.printf "noise: %s µ=%.0f b=%.1f\n"
    (if dialing then "dialing" else "conversation")
    mu b;
  Printf.printf "per-round guarantee: ε=%.4e δ=%.4e\n" g.Mechanism.eps
    g.Mechanism.delta;
  let k = Composition.max_rounds g in
  Printf.printf "supports %d rounds at ε'=ln 2, δ'=1e-4\n" k;
  List.iter
    (fun frac ->
      let kk = max 1 (k * frac / 100) in
      let c = Composition.compose ~k:kk ~d:Composition.default_d g in
      Printf.printf
        "  after %8d rounds: e^ε'=%.3f δ'=%.2e -> 50%% prior can reach %.1f%%\n"
        kk (exp c.Mechanism.eps) c.Mechanism.delta
        (100. *. Bayes.posterior ~prior:0.5 ~eps:c.Mechanism.eps))
    [ 10; 50; 100 ];
  0

let analyze_cmd =
  let mu = Arg.(value & opt float 300_000. & info [ "mu" ] ~doc:"Noise mean.") in
  let b = Arg.(value & opt float 13_800. & info [ "b" ] ~doc:"Noise scale.") in
  let dialing =
    Arg.(value & flag & info [ "dialing" ] ~doc:"Analyze the dialing protocol.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"privacy guarantees for noise parameters")
    Term.(const analyze $ mu $ b $ dialing)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate users servers mu des =
  let noise = Laplace.params ~mu ~b:(mu /. 21.7) in
  let model = Vuvuzela_sim.Cost_model.paper in
  Printf.printf "%d users, %d servers, µ=%.0f (paper's testbed constants)\n"
    users servers mu;
  Printf.printf "closed form: latency %.1f s, interval %.1f s, %.0f msg/s, \
                 server bw %.0f MB/s\n"
    (Vuvuzela_sim.Cost_model.conv_latency model ~users ~servers ~noise)
    (Vuvuzela_sim.Cost_model.conv_round_interval model ~users ~servers ~noise)
    (Vuvuzela_sim.Cost_model.conv_throughput model ~users ~servers ~noise)
    (Vuvuzela_sim.Cost_model.server_bandwidth model ~users ~servers ~noise
    /. 1e6);
  if des then begin
    let r = Vuvuzela_sim.Pipeline.run ~users ~servers ~noise ~rounds:6 () in
    Printf.printf
      "discrete-event: latency %.1f s, interval %.1f s, %.0f msg/s, \
       utilization [%s]\n"
      r.Vuvuzela_sim.Pipeline.mean_latency r.Vuvuzela_sim.Pipeline.round_interval
      r.Vuvuzela_sim.Pipeline.throughput
      (String.concat "; "
         (Array.to_list
            (Array.map (Printf.sprintf "%.2f")
               r.Vuvuzela_sim.Pipeline.server_utilization)))
  end;
  0

let simulate_cmd =
  let users = Arg.(value & opt int 1_000_000 & info [ "users"; "n" ] ~doc:"Users.") in
  let servers = Arg.(value & opt int 3 & info [ "servers"; "s" ] ~doc:"Chain length.") in
  let mu = Arg.(value & opt float 300_000. & info [ "mu" ] ~doc:"Noise mean.") in
  let des = Arg.(value & flag & info [ "des" ] ~doc:"Also run the event simulation.") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"performance from the calibrated cost model")
    Term.(const simulate $ users $ servers $ mu $ des)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)
(* ------------------------------------------------------------------ *)

let attack live mu rounds talking seed =
  let noise = Laplace.params ~mu ~b:(Float.max 0.01 (mu /. 21.7)) in
  let v =
    if live then
      Vuvuzela_attack.Disclosure.network_attack ~idle_users:4 ~noise ~talking
        ~rounds ~prior:0.5 ~seed ()
    else begin
      let rng = Vuvuzela_crypto.Drbg.of_string seed in
      Vuvuzela_attack.Disclosure.model_attack ~rng ~noise ~talking ~rounds
        ~prior:0.5 ()
    end
  in
  Format.printf
    "disclosure attack (%s, µ=%.1f, %d rounds, truth=%b):@.  %a@."
    (if live then "live implementation" else "closed-form model")
    mu rounds talking Vuvuzela_attack.Disclosure.pp_verdict v;
  let g = Mechanism.conversation noise in
  Printf.printf "  DP budget for these rounds: |logLR| ≤ %.3f\n"
    (float_of_int rounds *. g.Mechanism.eps);
  0

let attack_cmd =
  let live = Arg.(value & flag & info [ "live" ] ~doc:"Attack the real implementation.") in
  let mu = Arg.(value & opt float 60. & info [ "mu" ] ~doc:"Noise mean.") in
  let rounds = Arg.(value & opt int 12 & info [ "rounds" ] ~doc:"Rounds observed.") in
  let talking =
    Arg.(value & opt bool true & info [ "talking" ] ~doc:"Ground truth.")
  in
  let seed = Arg.(value & opt string "attack" & info [ "seed" ] ~doc:"Seed.") in
  Cmd.v
    (Cmd.info "attack" ~doc:"run the statistical disclosure attack")
    Term.(const attack $ live $ mu $ rounds $ talking $ seed)

(* ------------------------------------------------------------------ *)
(* figures                                                             *)
(* ------------------------------------------------------------------ *)

let figures which =
  (match which with
  | "6" -> Format.printf "%a" Vuvuzela_attack.Observation.pp_table ()
  | "7" | "8" ->
      let curves =
        if which = "7" then Vuvuzela_sim.Figures.figure7 ()
        else Vuvuzela_sim.Figures.figure8 ()
      in
      List.iter
        (fun (c : Vuvuzela_sim.Figures.privacy_curve) ->
          Printf.printf "# mu=%.0f b=%.0f (supported k=%d)\n" c.mu c.b
            c.supported_k;
          List.iter
            (fun (k, e, d) -> Printf.printf "%d\t%.4f\t%.4e\n" k e d)
            c.points)
        curves
  | "9" ->
      List.iter
        (fun (c : Vuvuzela_sim.Figures.latency_curve) ->
          Printf.printf "# %s\n" c.label;
          List.iter (fun (u, l) -> Printf.printf "%d\t%.2f\n" u l) c.points)
        (Vuvuzela_sim.Figures.figure9 ())
  | "10" ->
      let c = Vuvuzela_sim.Figures.figure10 () in
      List.iter (fun (u, l) -> Printf.printf "%d\t%.2f\n" u l) c.points
  | "11" ->
      List.iter
        (fun (s, l) -> Printf.printf "%d\t%.2f\n" s l)
        (Vuvuzela_sim.Figures.figure11 ())
  | s -> Printf.printf "unknown figure %S (choose 6..11)\n" s);
  0

let figures_cmd =
  let which =
    Arg.(value & pos 0 string "9" & info [] ~docv:"FIGURE" ~doc:"6..11")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"regenerate a figure's data series (TSV)")
    Term.(const figures $ which)

(* ------------------------------------------------------------------ *)
(* keygen                                                              *)
(* ------------------------------------------------------------------ *)

let keygen seed =
  let open Vuvuzela_crypto in
  let conv_id =
    match seed with
    | Some s -> Types.identity_of_seed (Bytes.of_string s)
    | None -> Types.fresh_identity ()
  in
  let sign_sk, sign_pk =
    match seed with
    | Some s -> Ed25519.keypair ~rng:(Drbg.of_string (s ^ "-signing")) ()
    | None -> Ed25519.keypair ()
  in
  Printf.printf "conversation secret: %s\n" (Bytes_util.to_hex conv_id.Types.secret);
  Printf.printf "conversation public: %s\n" (Bytes_util.to_hex conv_id.Types.public);
  Printf.printf "signing secret:      %s\n" (Bytes_util.to_hex sign_sk);
  Printf.printf "signing public:      %s\n" (Bytes_util.to_hex sign_pk);
  Printf.printf
    "\nshare the PUBLIC keys out of band (§9: clients store contacts' keys \
     ahead of time).\n";
  0

let keygen_cmd =
  let seed =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed" ] ~doc:"Deterministic derivation (testing only!).")
  in
  Cmd.v
    (Cmd.info "keygen" ~doc:"generate a Vuvuzela identity (X25519 + Ed25519)")
    Term.(const keygen $ seed)

(* ------------------------------------------------------------------ *)
(* cert                                                                *)
(* ------------------------------------------------------------------ *)

let cert signing_sk_hex subject_hex name expires verify_hex =
  let open Vuvuzela_crypto in
  match verify_hex with
  | Some cert_hex -> (
      match Certificate.decode (Bytes_util.of_hex cert_hex) with
      | Error e ->
          Printf.printf "malformed certificate: %s\n" e;
          1
      | Ok c -> (
          Printf.printf "subject: %s\n" (Bytes_util.to_hex c.Certificate.subject_pk);
          Printf.printf "issuer:  %s\n" (Bytes_util.to_hex c.Certificate.issuer_pk);
          Printf.printf "expires: dialing round %d\n" c.Certificate.expires;
          match
            Certificate.verify ~now:0 ~trusted:(fun _ -> true) c
          with
          | Ok () ->
              Printf.printf "signature: VALID (trust the issuer key yourself!)\n";
              0
          | Error e ->
              Format.printf "signature: INVALID (%a)@." Certificate.pp_error e;
              1))
  | None -> (
      match (signing_sk_hex, subject_hex) with
      | Some sk_hex, Some subject_hex ->
          let cert =
            Certificate.issue
              ~issuer_sk:(Bytes_util.of_hex sk_hex)
              ~subject_pk:(Bytes_util.of_hex subject_hex)
              ~name ~expires
          in
          Printf.printf "%s\n" (Bytes_util.to_hex (Certificate.encode cert));
          0
      | _ ->
          Printf.printf
            "pass --signing-sk and --subject to issue, or --verify CERT.\n";
          1)

let cert_cmd =
  let sk =
    Arg.(value & opt (some string) None & info [ "signing-sk" ] ~doc:"Issuer Ed25519 seed (hex).")
  in
  let subject =
    Arg.(value & opt (some string) None & info [ "subject" ] ~doc:"Subject X25519 public key (hex).")
  in
  let name_t = Arg.(value & opt string "anonymous" & info [ "name" ] ~doc:"Display name to bind.") in
  let expires_t = Arg.(value & opt int 1000 & info [ "expires" ] ~doc:"Last valid dialing round.") in
  let verify =
    Arg.(value & opt (some string) None & info [ "verify" ] ~doc:"Decode and check a certificate (hex).")
  in
  Cmd.v
    (Cmd.info "cert" ~doc:"issue or inspect a §9 caller certificate")
    Term.(const cert $ sk $ subject $ name_t $ expires_t $ verify)

(* ------------------------------------------------------------------ *)
(* baselines                                                           *)
(* ------------------------------------------------------------------ *)

let baselines budget =
  let noise = Vuvuzela_sim.Figures.conv_noise_of 300_000. in
  Printf.printf "%-12s %14s %14s %14s\n" "users" "vuvuzela" "broadcast" "PIR";
  List.iter
    (fun (r : Vuvuzela_sim.Baselines.comparison_row) ->
      Printf.printf "%-12d %12.1f s %12.1f s %12.1f s\n" r.users r.vuvuzela_s
        r.broadcast_s r.pir_s)
    (Vuvuzela_sim.Baselines.comparison_table ~noise
       [ 1_000; 5_000; 50_000; 500_000; 2_000_000 ]);
  let cap f = Vuvuzela_sim.Baselines.max_users ~budget f in
  Printf.printf
    "max users within %.0f s: broadcast %d, PIR %d, vuvuzela %d\n" budget
    (cap (fun n ->
         Vuvuzela_sim.Baselines.broadcast_round_latency
           Vuvuzela_sim.Cost_model.paper ~users:n ~msg_bytes:256))
    (cap (fun n -> Vuvuzela_sim.Baselines.pir_round_latency ~users:n ~msg_bytes:256))
    (cap (fun n ->
         Vuvuzela_sim.Baselines.vuvuzela_round_latency
           Vuvuzela_sim.Cost_model.paper ~users:n ~noise));
  0

let baselines_cmd =
  let budget =
    Arg.(value & opt float 60. & info [ "budget" ] ~doc:"Round latency budget (s).")
  in
  Cmd.v
    (Cmd.info "baselines" ~doc:"compare against O(n^2) prior systems (§1/§10)")
    Term.(const baselines $ budget)

(* ------------------------------------------------------------------ *)
(* inspect                                                             *)
(* ------------------------------------------------------------------ *)

let inspect dir =
  match Obs.render_digest ~dir with
  | Ok digest ->
      print_string digest;
      `Ok 0
  | Error e -> `Error (false, e)

let inspect_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:
            "An observability directory written by a deployment's \
             $(b,--obs-dir) mode.")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "render the per-round digest of an --obs-dir collection: one \
          line per round, hop-by-hop latency waterfalls from the merged \
          cross-process trace, the abort/late timeline, and the \
          cumulative privacy spend")
    Term.(ret (const inspect $ dir))

let () =
  let doc = "Vuvuzela: scalable private messaging (SOSP 2015) in OCaml" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "vuvuzela" ~doc)
          [
            demo_cmd; analyze_cmd; simulate_cmd; attack_cmd; figures_cmd;
            keygen_cmd; cert_cmd; baselines_cmd; inspect_cmd;
          ]))
