(* Quickstart: a complete private exchange between two users.

   Sets up a 3-server Vuvuzela chain in-process (real crypto end to end),
   has Alice dial Bob through the dialing protocol, and runs a short
   conversation.  An idle bystander demonstrates that every client sends
   identical-looking traffic whether or not it is talking.

     dune exec examples/quickstart.exe *)

open Vuvuzela
open Vuvuzela_dp

let short pk = String.sub (Vuvuzela_crypto.Bytes_util.to_hex pk) 0 8

let () =
  Printf.printf "== Vuvuzela quickstart ==\n\n";

  (* A deployment: 3 servers, of which only one needs to be honest.
     Test-scale noise; production parameters come from the planner
     (see examples/privacy_planner.ml). *)
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "quickstart"
        |> with_noise (Laplace.params ~mu:20. ~b:5.)
        |> with_dial_noise (Laplace.params ~mu:5. ~b:2.)
        |> with_noise_mode Noise.Sampled)
  in
  let alice = Network.connect ~seed:"alice" net in
  let bob = Network.connect ~seed:"bob" net in
  let carol = Network.connect ~seed:"carol" net in
  Printf.printf "connected: alice=%s bob=%s carol=%s (idle)\n"
    (short (Client.public_key alice))
    (short (Client.public_key bob))
    (short (Client.public_key carol));

  (* Alice dials Bob: her invitation travels the mixnet into Bob's
     invitation dead drop.  She preemptively enters the conversation,
     anticipating that Bob reciprocates (§3). *)
  Client.dial alice ~callee_pk:(Client.public_key bob);
  Client.start_conversation alice ~peer_pk:(Client.public_key bob);
  Printf.printf "\nalice dials bob...\n";
  let dial_report = Network.run ~kind:Round.Dialing net in
  Printf.printf "  (%d of %d dialing requests acked by the chain)\n"
    dial_report.Network.confirmed_acks dial_report.Network.batch_size;
  List.iter
    (fun (c, events) ->
      List.iter
        (function
          | Client.Incoming_call { caller; _ } ->
              Printf.printf "  %s got a call from %s -- accepting\n"
                (short (Client.public_key c))
                (short caller);
              Client.start_conversation c ~peer_pk:caller
          | _ -> ())
        events)
    dial_report.Network.events;

  (* Chat.  Each round every client (including idle Carol) submits one
     fixed-size onion; the servers mix, add cover traffic, and match
     dead drops. *)
  Client.send alice "Hey Bob, this channel hides *who* is talking.";
  Client.send alice "Even the servers can't tell, as long as one is honest.";
  Client.send bob "And if I stay quiet, nobody can tell that either.";
  Printf.printf "\nrunning conversation rounds:\n";
  for _ = 1 to 4 do
    let report = Network.run ~kind:Round.Conversation net in
    let round = Network.round net - 1 in
    List.iter
      (fun (c, evs) ->
        List.iter
          (function
            | Client.Delivered { text; _ } ->
                Printf.printf "  round %d: %s received %S\n" round
                  (short (Client.public_key c))
                  text
            | _ -> ())
          evs)
      report.Network.events;
    match Chain.observed_histogram (Network.chain net) with
    | Some h ->
        Printf.printf
          "  round %d: adversary's entire view: m1=%d drops accessed once, \
           m2=%d twice\n"
          round h.Deaddrop.m1 h.Deaddrop.m2
    | None -> ()
  done;

  let sa = Client.stats alice and sc = Client.stats carol in
  Printf.printf
    "\nalice sent %d data messages in %d rounds; idle carol also sent %d \
     (indistinguishable cover) requests.\n"
    sa.Client.data_sent sa.Client.rounds sc.Client.rounds;
  Printf.printf "done.\n"
