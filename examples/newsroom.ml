(* Newsroom: the §9 extensions working together.

   A tip-line desk runs a client with max_conversations = 3 (it always
   sends three exchange requests per round, so the number of concurrent
   sources is invisible) in a *certified* deployment: every invitation
   carries an Ed25519 certificate binding the caller's conversation key
   to a signing identity, so the desk can distinguish a vetted source
   from an impostor before saying a word.

     dune exec examples/newsroom.exe *)

open Vuvuzela
open Vuvuzela_crypto
open Vuvuzela_dp

let short pk = String.sub (Bytes_util.to_hex pk) 0 8

let () =
  Printf.printf "== Newsroom tip-line (certified dialing + multi-conversation) ==\n\n";
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "newsroom"
        |> with_noise (Laplace.params ~mu:12. ~b:3.)
        |> with_dial_noise (Laplace.params ~mu:4. ~b:2.)
        |> with_noise_mode Noise.Sampled
        |> with_dial_kind Dialing.Certified)
  in

  (* The desk: 3 conversation slots. *)
  let desk = Network.connect ~seed:"desk" ~max_conversations:3 net in

  (* Two vetted sources whose signing keys the desk learned out of band,
     and one impostor with a key the desk has never seen. *)
  let vetted = Hashtbl.create 4 in
  let source name =
    let sk, spk = Ed25519.keypair ~rng:(Drbg.of_string (name ^ "-signer")) () in
    Hashtbl.replace vetted (Bytes.to_string spk) name;
    Network.connect ~seed:name
      ~certified:{ Client.signing_sk = sk; name; validity = 8 }
      net
  in
  let deep_throat = source "deep-throat" in
  let insider = source "insider" in
  let impostor_sk, _ = Ed25519.keypair ~rng:(Drbg.of_string "impostor-signer") () in
  let impostor =
    Network.connect ~seed:"impostor"
      ~certified:
        { Client.signing_sk = impostor_sk; name = "deep-throat" (* ! *); validity = 8 }
      net
  in
  Printf.printf "desk=%s sources: %s %s; impostor=%s (claims to be deep-throat)\n"
    (short (Client.public_key desk))
    (short (Client.public_key deep_throat))
    (short (Client.public_key insider))
    (short (Client.public_key impostor));

  (* Everyone dials the desk in the same dialing round. *)
  List.iter
    (fun c ->
      Client.dial c ~callee_pk:(Client.public_key desk);
      Client.start_conversation c ~peer_pk:(Client.public_key desk))
    [ deep_throat; insider; impostor ];

  Printf.printf "\ndialing round: three calls arrive at the desk...\n";
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  let now = Network.dial_round net - 1 in
  let trusted k = Hashtbl.mem vetted (Bytes.to_string k) in
  List.iter
    (fun (c, evs) ->
      if c == desk then
        List.iter
          (function
            | Client.Incoming_call { caller; certificate = Some cert } -> (
                match Certificate.verify ~now ~trusted cert with
                | Ok () ->
                    let who =
                      Hashtbl.find vetted
                        (Bytes.to_string cert.Certificate.issuer_pk)
                    in
                    if Certificate.matches_name cert who then begin
                      Printf.printf
                        "  caller %s: certificate verifies as %S -- accepting\n"
                        (short caller) who;
                      Client.start_conversation desk ~peer_pk:caller
                    end
                    else
                      Printf.printf
                        "  caller %s: vetted key but name mismatch -- REJECTED\n"
                        (short caller)
                | Error e ->
                    Format.printf
                      "  caller %s: certificate rejected (%a) -- ignored@."
                      (short caller) Certificate.pp_error e)
            | Client.Incoming_call { caller; certificate = None } ->
                Printf.printf "  caller %s: no certificate -- ignored\n"
                  (short caller)
            | _ -> ())
          evs)
    events;

  Printf.printf "\ndesk now talks to %d source(s) concurrently (always 3 slots on the wire):\n"
    (List.length (Client.peers desk));

  (* Concurrent conversations. *)
  Client.send deep_throat "follow the money";
  Client.send insider "the audit was never filed";
  Client.send impostor "please respond";
  List.iter
    (fun peer -> Client.send_to desk ~peer "received, go secure")
    (Client.peers desk);
  let rounds = Network.events_of (Network.run_rounds net 4) in
  List.iter
    (fun (c, evs) ->
      List.iter
        (function
          | Client.Delivered { text; peer } ->
              Printf.printf "  %s <- %s: %S\n"
                (short (Client.public_key c))
                (short peer) text
          | _ -> ())
        evs)
    rounds;

  Printf.printf
    "\nthe impostor heard nothing (desk never entered a conversation with \
     it),\nand every round the desk's traffic was three identical-size \
     onions regardless.\ndone.\n"
