(* The paper's motivating scenario (§1): a source talking to a reporter
   under a global passive adversary, with a privacy budget.

   Demonstrates:
   - always-on clients (the source's client idles for days before and
     after the conversation, so connection timing reveals nothing);
   - dialing from a stored contact key (no key-server lookup, §9);
   - the privacy-budget arithmetic: how many messages the source can
     exchange before the deployment's (ε′, δ′) target is spent, and what
     the adversary's best-case posterior looks like on the way. *)

open Vuvuzela
open Vuvuzela_dp

let () =
  Printf.printf "== Whistleblower scenario ==\n\n";

  (* Deployment parameters: the paper's recommended production noise
     (µ=300K, b=13800) supports ~250K rounds at eps'=ln 2, delta'=1e-4.
     The in-process demo scales µ down but keeps the µ/b ratio, so the
     per-round guarantee arithmetic is honest. *)
  let production = Laplace.params ~mu:300_000. ~b:13_800. in
  let per_round = Mechanism.conversation production in
  let budget_rounds = Composition.max_rounds per_round in
  Printf.printf
    "production noise: µ=%.0f b=%.0f -> per-round ε=%.2e δ=%.1e\n"
    production.Laplace.mu production.Laplace.b per_round.Mechanism.eps
    per_round.Mechanism.delta;
  Printf.printf
    "budget: %d rounds before the adversary's confidence can double \
     (ε'=ln 2, δ'=1e-4)\n\n"
    budget_rounds;

  (* The in-process network (scaled noise, same ratio). *)
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "whistleblower"
        |> with_noise (Laplace.params ~mu:60. ~b:(60. /. 21.7))
        |> with_dial_noise (Laplace.params ~mu:8. ~b:2.)
        |> with_noise_mode Noise.Sampled)
  in
  let source = Network.connect ~seed:"source" net in
  let reporter = Network.connect ~seed:"reporter" net in
  (* A background population keeps running regardless. *)
  let _bystanders =
    List.init 6 (fun i -> Network.connect ~seed:(Printf.sprintf "by%d" i) net)
  in

  (* Phase 1: the source idles.  Its client sends cover traffic every
     round; nothing distinguishes it from the bystanders. *)
  Printf.printf "phase 1: source idles for 10 rounds (cover traffic only)\n";
  ignore (Network.run_rounds net 10);

  (* Phase 2: the source dials the reporter using a pre-shared public
     key (never looked up online). *)
  Printf.printf "phase 2: source dials the reporter\n";
  Client.dial source ~callee_pk:(Client.public_key reporter);
  Client.start_conversation source ~peer_pk:(Client.public_key reporter);
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  List.iter
    (fun (c, evs) ->
      List.iter
        (function
          | Client.Incoming_call { caller; _ } when c == reporter ->
              Printf.printf "  reporter's client rang; accepting.\n";
              Client.start_conversation reporter ~peer_pk:caller
          | _ -> ())
        evs)
    events;

  (* Phase 3: the leak, over several rounds, with budget tracking. *)
  let documents =
    [
      "Part 1/4: the program exists.";
      "Part 2/4: it is not what the filings say.";
      "Part 3/4: dates and docket numbers follow.";
      "Part 4/4: I can meet Thursday. Same procedure.";
    ]
  in
  List.iter (Client.send source) documents;
  Printf.printf "phase 3: exchanging %d messages\n" (List.length documents);
  let delivered = ref 0 in
  let rounds_used = ref 0 in
  while !delivered < List.length documents && !rounds_used < 20 do
    incr rounds_used;
    let events = (Network.run ~kind:Round.Conversation net).Network.events in
    List.iter
      (fun (c, evs) ->
        List.iter
          (function
            | Client.Delivered { text; _ } when c == reporter ->
                incr delivered;
                Printf.printf "  reporter received: %s\n" text
            | _ -> ())
          evs)
      events
  done;

  (* Phase 4: account for what the adversary could have learned.  Every
     round the source was active differs from its all-idle cover story,
     so the spent budget is the total active rounds. *)
  let active_rounds = !rounds_used + 1 (* + the dialing round *) in
  let spent = Composition.compose ~k:active_rounds ~d:Composition.default_d per_round in
  Printf.printf
    "\nphase 4: privacy accounting (production parameters)\n";
  Printf.printf "  rounds differing from the idle cover story: %d\n"
    active_rounds;
  Printf.printf "  spent budget: ε'=%.5f δ'=%.2e (target ln2=%.4f, 1e-4)\n"
    spent.Mechanism.eps spent.Mechanism.delta (log 2.);
  List.iter
    (fun prior ->
      Printf.printf
        "  adversary prior %.0f%% that source↔reporter -> worst-case \
         posterior %.1f%%\n"
        (100. *. prior)
        (100. *. Bayes.posterior ~prior ~eps:spent.Mechanism.eps))
    [ 0.01; 0.25; 0.5 ];
  Printf.printf
    "  (after the full %d-round budget the posterior bound reaches %.1f%% \
     from 50%%)\n"
    budget_rounds
    (100. *. Bayes.posterior ~prior:0.5 ~eps:(log 2.));

  (* Phase 5: the source goes quiet again — indistinguishable from never
     having spoken. *)
  ignore (Network.run_rounds net 5);
  Printf.printf
    "phase 5: source idles again; its traffic never changed shape.\ndone.\n"
