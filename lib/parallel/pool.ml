(* A persistent domain pool with a shared job queue.

   Workers block on a condition variable between batches, so an idle
   pool costs nothing but memory.  A batch ([run]) enqueues one closure
   per chunk; the coordinating domain executes chunk 0 itself, helps
   drain the queue, then waits for stragglers.  There is exactly one
   coordinator per pool (the round engine is single-threaded above us),
   so the queue only ever holds jobs of the current batch. *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable live : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

let worker t =
  let rec next () =
    Mutex.lock t.lock;
    let rec take () =
      if not t.live then begin
        Mutex.unlock t.lock;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some job ->
            Mutex.unlock t.lock;
            Some job
        | None ->
            Condition.wait t.work_available t.lock;
            take ()
    in
    match take () with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      live = true;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.live <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Execute all thunks, blocking until every one has finished.  The
   first exception (from any domain) is re-raised on the caller. *)
let run_units t (thunks : (unit -> unit) array) =
  let n = Array.length thunks in
  if n = 0 then ()
  else if t.jobs = 1 || n = 1 then Array.iter (fun job -> job ()) thunks
  else begin
    let remaining = ref n in
    let all_done = Condition.create () in
    let first_exn = ref None in
    let wrapped job () =
      (try job ()
       with e ->
         Mutex.lock t.lock;
         if !first_exn = None then first_exn := Some e;
         Mutex.unlock t.lock);
      Mutex.lock t.lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    for i = 1 to n - 1 do
      Queue.add (wrapped thunks.(i)) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    wrapped thunks.(0) ();
    (* Help drain the queue rather than idling. *)
    let rec help () =
      Mutex.lock t.lock;
      match Queue.take_opt t.queue with
      | Some job ->
          Mutex.unlock t.lock;
          job ();
          help ()
      | None -> Mutex.unlock t.lock
    in
    help ();
    Mutex.lock t.lock;
    while !remaining > 0 do
      Condition.wait all_done t.lock
    done;
    Mutex.unlock t.lock;
    match !first_exn with Some e -> raise e | None -> ()
  end

let run t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_units t
      (Array.mapi (fun i job () -> results.(i) <- Some (job ())) thunks);
    Array.map Option.get results
  end

(* Contiguous chunks, one per domain: the per-item cost on our hot
   paths is uniform (fixed-size crypto), so equal splits balance well
   and keep per-batch overhead at [jobs] closures. *)
let mapi_array t f a =
  let n = Array.length a in
  if t.jobs = 1 || n < 2 * t.jobs then Array.mapi f a
  else begin
    let chunks = t.jobs in
    let parts = Array.make chunks [||] in
    run_units t
      (Array.init chunks (fun c () ->
           let lo = c * n / chunks and hi = (c + 1) * n / chunks in
           parts.(c) <- Array.init (hi - lo) (fun k -> f (lo + k) a.(lo + k))));
    Array.concat (Array.to_list parts)
  end

let map_array t f a = mapi_array t (fun _ x -> f x) a

let iter_array t f a =
  let n = Array.length a in
  if t.jobs = 1 || n < 2 * t.jobs then Array.iter f a
  else begin
    let chunks = t.jobs in
    run_units t
      (Array.init chunks (fun c () ->
           let lo = c * n / chunks and hi = (c + 1) * n / chunks in
           for i = lo to hi - 1 do
             f a.(i)
           done))
  end
