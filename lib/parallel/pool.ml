(* A persistent domain pool with a shared job queue.

   Workers block on a condition variable between batches, so an idle
   pool costs nothing but memory.  A batch enqueues one closure per
   *chunk* — never one per item — and the coordinating domain executes
   chunk 0 itself, helps drain the queue, then waits for stragglers.
   There is exactly one coordinator per pool (the round engine is
   single-threaded above us), so the queue only ever holds jobs of the
   current batch.

   The chunked combinators write straight into one preallocated result
   array: each domain owns a contiguous index range, so there are no
   per-chunk intermediate arrays, no concatenation copy, and no per-item
   closure or option box.  (The per-item strategy is retained as
   [mapi_array_per_item] purely as a benchmark baseline.) *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;  (** reused across batches — one coordinator *)
  mutable live : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

let worker t =
  let rec next () =
    Mutex.lock t.lock;
    let rec take () =
      if not t.live then begin
        Mutex.unlock t.lock;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some job ->
            Mutex.unlock t.lock;
            Some job
        | None ->
            Condition.wait t.work_available t.lock;
            take ()
    in
    match take () with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      live = true;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.live <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Execute all thunks, blocking until every one has finished.  The
   first exception (from any domain) is re-raised on the caller. *)
let run_units t (thunks : (unit -> unit) array) =
  let n = Array.length thunks in
  if n = 0 then ()
  else if t.jobs = 1 || n = 1 then Array.iter (fun job -> job ()) thunks
  else begin
    let remaining = ref n in
    let first_exn = ref None in
    let wrapped job () =
      (try job ()
       with e ->
         Mutex.lock t.lock;
         if !first_exn = None then first_exn := Some e;
         Mutex.unlock t.lock);
      Mutex.lock t.lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    for i = 1 to n - 1 do
      Queue.add (wrapped thunks.(i)) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    wrapped thunks.(0) ();
    (* Help drain the queue rather than idling. *)
    let rec help () =
      Mutex.lock t.lock;
      match Queue.take_opt t.queue with
      | Some job ->
          Mutex.unlock t.lock;
          job ();
          help ()
      | None -> Mutex.unlock t.lock
    in
    help ();
    Mutex.lock t.lock;
    while !remaining > 0 do
      Condition.wait t.batch_done t.lock
    done;
    Mutex.unlock t.lock;
    match !first_exn with Some e -> raise e | None -> ()
  end

let run t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_units t
      (Array.mapi (fun i job () -> results.(i) <- Some (job ())) thunks);
    Array.map Option.get results
  end

(* Contiguous chunks, one per domain: the per-item cost on our hot
   paths is uniform (fixed-size crypto), so equal splits balance well
   and keep per-batch overhead at [jobs] closures. *)
let run_ranges t n body =
  if n > 0 then begin
    let chunks = min t.jobs n in
    if chunks <= 1 then body 0 n
    else
      run_units t
        (Array.init chunks (fun c ->
             let lo = c * n / chunks and hi = (c + 1) * n / chunks in
             fun () -> body lo hi))
  end

let mapi_array t f a =
  let n = Array.length a in
  if t.jobs = 1 || n < 2 * t.jobs then Array.mapi f a
  else begin
    (* Seed the output with element 0 (computed on the coordinator; [f]
       is pure, so evaluation order is unobservable), then let each
       chunk fill its own range in place — result [i] is written from
       input [i] whatever domain ran it. *)
    let out = Array.make n (f 0 a.(0)) in
    run_ranges t n (fun lo hi ->
        for i = max 1 lo to hi - 1 do
          out.(i) <- f i a.(i)
        done);
    out
  end

let map_array t f a = mapi_array t (fun _ x -> f x) a

let iter_array t f a =
  let n = Array.length a in
  if t.jobs = 1 || n < 2 * t.jobs then Array.iter f a
  else
    run_ranges t n (fun lo hi ->
        for i = lo to hi - 1 do
          f a.(i)
        done)

(* The naive strategy the chunked engine replaced: one closure and one
   option box per item, all of it through the shared queue.  Kept only
   so the benchmark can show the A/B delta; never used on a hot path. *)
let mapi_array_per_item t f a =
  let n = Array.length a in
  if t.jobs = 1 || n < 2 then Array.mapi f a
  else begin
    let results = Array.make n None in
    run_units t (Array.init n (fun i () -> results.(i) <- Some (f i a.(i))));
    Array.map Option.get results
  end
