(** A reusable OCaml 5 domain pool for the per-onion crypto hot paths.

    The paper's servers spend nearly all their CPU on per-request
    Curve25519/AEAD work (§8.2: the 340K DH ops/s budget of a 36-core
    server sets the latency floor).  That work is embarrassingly
    parallel: each onion peels, seals, or wraps independently.  This
    pool fans an array of such pure computations out over [jobs - 1]
    worker domains plus the calling domain.

    Determinism contract: [map_array]/[mapi_array] write result [i]
    from input [i] regardless of which domain computed it, so for a
    pure [f] the output is bit-identical to [Array.map f] at every
    [jobs] value.  Anything stateful — RNG draws, metrics, hash tables
    — must stay on the coordinating domain; only pure per-item crypto
    belongs in [f]. *)

type t

val create : jobs:int -> t
(** A pool running work on [max 1 jobs] domains in total ([jobs - 1]
    spawned workers; the caller is the remaining one).  [jobs = 1]
    spawns nothing and degrades every combinator to its sequential
    equivalent. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available to this process. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Chunked parallel [Array.map]: at most [jobs] tasks, each filling a
    contiguous range of one preallocated result array in place — no
    per-item closures, no intermediate chunk arrays, no concatenation
    copy.  [f] must be pure (or at least domain-safe and
    index-independent); exceptions raised by [f] are re-raised on the
    calling domain after the batch drains. *)

val mapi_array : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Chunked parallel [Array.mapi]. *)

val mapi_array_per_item : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** The naive one-task-per-item strategy (one closure and one option box
    per element, all through the shared queue).  Semantically identical
    to {!mapi_array}; kept only as the benchmark baseline that shows
    what per-domain chunking buys.  Never use it on a hot path. *)

val iter_array : t -> ('a -> unit) -> 'a array -> unit
(** Chunked parallel [Array.iter].  Side effects of [f] run in no
    particular order across chunks; [f] must not touch shared mutable
    state without its own synchronization. *)

val run : t -> (unit -> 'a) array -> 'a array
(** Run independent thunks, one result slot each, in parallel. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must not be used afterwards;
    idempotent.  A pool with [jobs = 1] has nothing to join. *)
