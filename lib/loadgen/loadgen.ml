(* Vectorized synthetic population for scale benchmarks; see the
   interface.

   The representation is deliberately NOT n [Client.t] machines — a
   full client carries session tables, outboxes, ratchets, an address
   book, and its own DRBG, none of which the server side can observe.
   What the servers *do* see is one onion per slot per round, so that
   is all the population stores: flat per-client arrays (identifier,
   partner index, shared pair secret) plus per-round reply secrets.
   ~100 bytes per client of steady state means 100k clients fit where
   24 full clients used to live.

   Pairing is the paper's steady-state workload: client 2k converses
   with client 2k+1, every pair exchanges a real message every round
   (Figure 9 measures exactly this all-active population).  An odd
   population's last client plays the idle role: a random dead drop
   and random sealed bytes each round — the Algorithm 1 step 1b cover
   behaviour — which never rendezvous and must come back as the empty
   result.

   Cryptographic shortcuts, and why they are sound for load: real
   partners agree on dead drops and message keys via an X25519 handshake
   (Conversation.derive).  The servers never verify that derivation —
   they only match equal 128-bit drop ids and AEAD-seal whatever 256-byte
   sealed message rides along.  So the population draws each pair's
   shared secret straight from the seeded DRBG and derives drops
   (HMAC(base, round)) and direction keys (Message.direction_keys) from
   it, skipping n key generations and n/2 DH handshakes that would
   otherwise dominate setup at 100k clients without changing a single
   byte the servers touch.  The onions themselves are the real thing —
   full per-layer X25519 + AEAD via Onion.wrap_with, fanned over the
   domain pool — because per-onion crypto is precisely the server-side
   cost being measured. *)

open Vuvuzela
module Drbg = Vuvuzela_crypto.Drbg
module Hmac = Vuvuzela_crypto.Hmac
module Bytes_util = Vuvuzela_crypto.Bytes_util
module Onion = Vuvuzela_mixnet.Onion
module Pool = Vuvuzela_parallel.Pool

type t = {
  n : int;
  pks : bytes array;  (** 32-byte pseudo-identifiers (ordering only) *)
  partner : int array;  (** partner slot; [-1] for the idle straggler *)
  bases : bytes array;  (** per-pair shared secret (same ref both slots) *)
  eph_rng : Drbg.t;  (** onion ephemerals, drawn on the coordinator *)
  cover_rng : Drbg.t;  (** the idle client's random drops/padding *)
  mutable secrets : bytes array array;
      (** per-slot reply secrets of the round in flight *)
  mutable secrets_round : int;
}

let create ?(seed = "loadgen") ~n () =
  if n < 1 then invalid_arg "Loadgen.create: n < 1";
  let id_rng = Drbg.of_string (seed ^ "-identities") in
  let pair_rng = Drbg.of_string (seed ^ "-pairs") in
  let pks = Array.init n (fun _ -> Drbg.bytes ~rng:id_rng 32) in
  let partner =
    Array.init n (fun i ->
        if i = n - 1 && n mod 2 = 1 then -1
        else if i mod 2 = 0 then i + 1
        else i - 1)
  in
  let bases = Array.make n Bytes.empty in
  for k = 0 to (n / 2) - 1 do
    let base = Drbg.bytes ~rng:pair_rng 32 in
    bases.(2 * k) <- base;
    bases.((2 * k) + 1) <- base
  done;
  if n mod 2 = 1 then bases.(n - 1) <- Drbg.bytes ~rng:pair_rng 32;
  {
    n;
    pks;
    partner;
    bases;
    eph_rng = Drbg.of_string (seed ^ "-ephemerals");
    cover_rng = Drbg.of_string (seed ^ "-cover");
    secrets = [||];
    secrets_round = -1;
  }

let size t = t.n
let pairs t = t.n / 2

(* Both partners hash the same base, so both send the same id — which
   is all the dead-drop match requires. *)
let drop_id t ~round i =
  let r = Bytes.create 8 in
  Bytes_util.store_le64 r 0 round;
  Bytes.sub
    (Hmac.sha256 ~key:t.bases.(i)
       (Bytes_util.concat [ Bytes.of_string "loadgen-drop"; r ]))
    0 Types.drop_id_len

let keys t i =
  Message.direction_keys ~base:t.bases.(i) ~my_pk:t.pks.(i)
    ~their_pk:t.pks.(t.partner.(i))

(* What slot [i] says in [round] — reconstructible at verify time, so
   nothing is stored between build and verify. *)
let sent_message ~round i =
  Message.Data
    {
      seq = round land 0xffffffff;
      ack = max 0 (round - 1) land 0xffffffff;
      text = Printf.sprintf "r%d from %d" (round land 0xffff) (i land 0xffffff);
    }

(* The innermost onion plaintext for slot [i]: drop id ‖ sealed message
   for a paired client, indistinguishable random bytes for the idle
   one. *)
let payload t ~round i =
  if t.partner.(i) < 0 then
    Drbg.bytes ~rng:t.cover_rng Types.exchange_payload_len
  else
    Bytes_util.concat
      [
        drop_id t ~round i;
        Message.seal ~keys:(keys t i) ~round (sent_message ~round i);
      ]

let map_slots ?pool f slots =
  match pool with
  | Some p -> Pool.mapi_array p f slots
  | None -> Array.mapi f slots

let feed_conversation ?pool t ~round ~server_pks ~chunk ~sink =
  if chunk < 1 then invalid_arg "Loadgen.feed_conversation: chunk < 1";
  let chain_len = List.length server_pks in
  t.secrets <- Array.make t.n [||];
  t.secrets_round <- round;
  let off = ref 0 in
  while !off < t.n do
    let len = min chunk (t.n - !off) in
    let base = !off in
    (* Stateful work (payload sealing draws nothing, but the cover
       client's DRBG and every ephemeral draw do) stays on the
       coordinator, in slot order; only the pure per-onion wrap fans
       out. *)
    let payloads = Array.init len (fun k -> payload t ~round (base + k)) in
    let eph =
      Array.init len (fun _ ->
          Onion.draw_eph_sks ~rng:t.eph_rng ~chain_len ())
    in
    let wrapped =
      map_slots ?pool
        (fun k p -> Onion.wrap_with ~eph_sks:eph.(k) ~server_pks ~round p)
        payloads
    in
    Array.iteri
      (fun k (w : Onion.wrapped) -> t.secrets.(base + k) <- w.secrets)
      wrapped;
    sink (Array.map (fun (w : Onion.wrapped) -> w.onion) wrapped);
    off := !off + len
  done

let conversation_onions ?pool t ~round ~server_pks =
  let acc = ref [] in
  feed_conversation ?pool t ~round ~server_pks ~chunk:t.n ~sink:(fun c ->
      acc := c :: !acc);
  match !acc with [ one ] -> one | parts -> Array.concat (List.rev parts)

type delivery = { delivered : int; expected : int; lone : int }

let verify ?pool t ~round results =
  if round <> t.secrets_round then
    invalid_arg
      (Printf.sprintf
         "Loadgen.verify: round %d but the round in flight is %d" round
         t.secrets_round);
  if Array.length results <> t.n then
    invalid_arg "Loadgen.verify: result count <> population";
  let opened =
    map_slots ?pool
      (fun i reply -> Onion.unwrap_reply ~secrets:t.secrets.(i) ~round reply)
      results
  in
  let delivered = ref 0 and lone = ref 0 in
  Array.iteri
    (fun i sealed ->
      let j = t.partner.(i) in
      if j < 0 then begin
        (* The idle client must get the empty (all-zero) result back —
           anything else means its cover payload matched something. *)
        match sealed with
        | Some s when Bytes.equal s (Bytes.make Types.exchange_result_len '\000')
          -> incr lone
        | Some _ | None -> ()
      end
      else
        match Option.bind sealed (Message.open_ ~keys:(keys t i) ~round) with
        | Some m when Message.equal m (sent_message ~round j) ->
            incr delivered
        | Some _ | None -> ())
    opened;
  {
    delivered = !delivered;
    expected = 2 * pairs t;
    lone = !lone;
  }
