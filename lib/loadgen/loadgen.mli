(** Vectorized synthetic client population for scale benchmarks.

    Holds a population of [n] simulated conversation clients as flat
    arrays (~100 bytes of steady state per client) instead of [n] full
    {!Vuvuzela.Client} machines, and builds each round's onion batch in
    bulk — sealing on the coordinator, the per-onion X25519/AEAD wrap
    fanned over the domain pool.  Clients 2k and 2k+1 are conversation
    partners exchanging one real message per round; an odd population's
    last client sends indistinguishable cover (random drop, random
    sealed bytes) and must receive the empty result.

    The pair handshake is synthesized from the seeded DRBG rather than
    derived via X25519 (the servers never observe that derivation — only
    equal drop ids and opaque sealed messages), but the onions are the
    real thing, so server-side cost under this load is the deployment's
    real per-onion cost.

    The population is deployment-agnostic: [feed_conversation] matches
    the streamed-entry [produce] hook of {!Vuvuzela.Chain},
    {!Vuvuzela.Remote} and the supervisor's streaming collector sink;
    [conversation_onions] materializes the batch for the classic path. *)

type t

val create : ?seed:string -> n:int -> unit -> t
(** A deterministic population of [n] clients.
    @raise Invalid_argument if [n < 1]. *)

val size : t -> int

val pairs : t -> int
(** Conversing pairs ([n / 2]). *)

val feed_conversation :
  ?pool:Vuvuzela_parallel.Pool.t ->
  t ->
  round:int ->
  server_pks:bytes list ->
  chunk:int ->
  sink:(bytes array -> unit) ->
  unit
(** Build round [round]'s batch slot by slot and hand it to [sink] in
    slot-ordered chunks of at most [chunk] onions, retaining each slot's
    reply secrets for {!verify}.  At no point do more than [chunk]
    onions exist on this side, so a streaming entry tier keeps the whole
    path population-independent.  DRBG draws happen on the calling
    domain in slot order; the pure per-onion wrap fans over [pool] —
    chunks are bit-identical at every job count.
    @raise Invalid_argument if [chunk < 1]. *)

val conversation_onions :
  ?pool:Vuvuzela_parallel.Pool.t ->
  t ->
  round:int ->
  server_pks:bytes list ->
  bytes array
(** The whole batch at once (= the concatenation of
    {!feed_conversation}'s chunks), for the materializing entry path. *)

type delivery = {
  delivered : int;
      (** replies that unwrapped, opened under the pair keys, and
          matched the partner's message for this round exactly *)
  expected : int;  (** [2 * pairs t] *)
  lone : int;  (** idle clients that correctly got the empty result *)
}

val verify :
  ?pool:Vuvuzela_parallel.Pool.t ->
  t ->
  round:int ->
  bytes array ->
  delivery
(** Check a round's slot-aligned reply array end to end.  A full
    round trip is [delivered = expected] (every pair exchanged) and
    [lone = n mod 2].
    @raise Invalid_argument if [round] is not the round last built, or
    the array length differs from the population. *)
