(* Calibrated cost model of the paper's testbed (§8.1-§8.2).

   The paper's evaluation runs on c4.8xlarge EC2 VMs (36 cores, 10 Gbps).
   Round latency is dominated by two explicit costs:

   - Diffie-Hellman operations: "Each 36-core machine can perform about
     340,000 Curve25519 Diffie-Hellman operations per second", one per
     request per server;
   - the full protocol runs "within 2× of the cost of the inevitable
     cryptographic operations" — serialization, shuffling, cover-traffic
     generation and RPC; we calibrate this to the paper's own numbers
     (20 s at 10 users, 37 s at 1M, 55 s at 2M all give ≈ 1.9).

   The model reproduces the paper's own §8.2 arithmetic exactly and is
   the substrate for regenerating Figures 9-11.

   Calibration note: [dh_ops_per_sec] is an *all-cores* aggregate — the
   paper's 340K ops/s is what 36 cores deliver together.  The live
   implementation mirrors this with the [Vuvuzela_parallel] domain pool
   (the servers' [jobs] knob): per-onion DH+AEAD work scales with
   domains while RNG-dependent steps stay on one coordinating domain, so
   the parallel fraction here is the peel/reseal share of a round, not
   the whole of [protocol_overhead].  `bench/main.exe` §Parallel measures
   the live onions/s per job count against this model's per-core floor
   (340K/36 ≈ 9.4K ops/s/core). *)

type t = {
  dh_ops_per_sec : float;  (** per server machine, all cores *)
  protocol_overhead : float;  (** full protocol vs bare crypto (≈1.9) *)
  link_bandwidth : float;  (** bytes/sec between servers (10 Gbps) *)
  rpc_overhead_bytes : int;  (** per-message framing on the wire *)
  pipeline_efficiency : float;
      (** fraction of a server's time spent on round work when rounds are
          pipelined; the remainder is round coordination (the entry
          server's collection window, §3.1).  Calibrated so 1M users at
          µ=300K yields the paper's 68K msgs/s. *)
  dial_coschedule_latency : float;
      (** §8.1 runs dialing concurrently with a µ=300K conversation
          workload; dialing rounds inherit a fixed queueing delay behind
          conversation batches (13 s at 10 users in Figure 10). *)
}

let paper =
  {
    dh_ops_per_sec = 340_000.;
    protocol_overhead = 1.9;
    link_bandwidth = 10e9 /. 8.;
    rpc_overhead_bytes = 64;
    pipeline_efficiency = 0.85;
    dial_coschedule_latency = 12.5;
  }

(* Mean noise requests one mixing server adds per conversation round:
   E[⌈n1⌉ + 2·⌈n2/2⌉] ≈ 2µ (Algorithm 2 step 2). *)
let conv_noise_per_server (noise : Vuvuzela_dp.Laplace.params) =
  2. *. noise.Vuvuzela_dp.Laplace.mu

(* Total requests the last server sees in a conversation round:
   n real users + 2µ from each of the (s−1) mixing servers. *)
let conv_total_requests ~users ~servers ~noise =
  float_of_int users
  +. (float_of_int (servers - 1) *. conv_noise_per_server noise)

(* §8.2's lower bound: every request costs one DH per server, and servers
   process strictly in sequence ("one server cannot start processing a
   round until the previous server finishes").  The paper evaluates this
   at the final batch size: (3.2e6 × 3)/3.4e5 ≈ 28 s for 2M users. *)
let conv_lower_bound t ~users ~servers ~noise =
  conv_total_requests ~users ~servers ~noise
  *. float_of_int servers /. t.dh_ops_per_sec

(* Bytes a request occupies on the hop into server [i] (0-based): the
   onion sheds 48 bytes per peel. *)
let request_bytes ~servers ~at =
  Vuvuzela.Types.exchange_payload_len
  + ((servers - at) * Vuvuzela_mixnet.Onion.layer_overhead)

let reply_bytes ~servers ~at =
  Vuvuzela.Types.exchange_result_len
  + ((servers - at) * Vuvuzela_mixnet.Onion.reply_overhead)

(* End-to-end conversation round latency: sequential CPU at each server
   plus batch transfer time on each hop (both directions). *)
let conv_latency t ~users ~servers ~noise =
  let cpu =
    conv_lower_bound t ~users ~servers ~noise *. t.protocol_overhead
  in
  let transfer =
    (* Hop into server i carries the batch present at that point:
       n + 2µ·i requests of shrinking size, and the same back. *)
    let total = ref 0. in
    for i = 0 to servers - 1 do
      let batch =
        float_of_int users
        +. (float_of_int i *. conv_noise_per_server noise)
      in
      let bytes =
        float_of_int
          (request_bytes ~servers ~at:i + reply_bytes ~servers ~at:i
         + (2 * t.rpc_overhead_bytes))
      in
      total := !total +. (batch *. bytes /. t.link_bandwidth)
    done;
    !total
  in
  cpu +. transfer

(* Throughput in exchanged messages per second once rounds are
   pipelined: each server is busy (total_requests / dh_rate) ×
   overhead per round, so rounds complete at that interval and each
   round carries [users] messages. *)
let conv_round_interval t ~users ~servers ~noise =
  conv_total_requests ~users ~servers ~noise
  *. t.protocol_overhead /. t.dh_ops_per_sec /. t.pipeline_efficiency

let conv_throughput t ~users ~servers ~noise =
  float_of_int users /. conv_round_interval t ~users ~servers ~noise

(* ------------------------------------------------------------------ *)
(* Dialing (§5, Figure 10)                                             *)
(* ------------------------------------------------------------------ *)

(* Every connected user sends one dialing request per dialing round
   (real or no-op); each mixing server adds m·µ_dial noise invitations
   that transit the rest of the chain. *)
let dial_total_requests ~users ~servers ~m ~dial_noise =
  float_of_int users
  +. (float_of_int (servers - 1) *. float_of_int m
     *. dial_noise.Vuvuzela_dp.Laplace.mu)

let dial_latency t ~users ~servers ~m ~dial_noise =
  let cpu =
    dial_total_requests ~users ~servers ~m ~dial_noise
    *. float_of_int servers *. t.protocol_overhead /. t.dh_ops_per_sec
  in
  t.dial_coschedule_latency +. cpu

(* ------------------------------------------------------------------ *)
(* Bandwidth (§8.2-§8.3)                                               *)
(* ------------------------------------------------------------------ *)

(* Server bandwidth, averaged over a pipelined round interval.  Each
   request and its reply pass through the server once; we count the
   bytes of each message once per server (the paper's 166 MB/s at 1M
   users is a per-NIC average under the same accounting, within ~20%). *)
let server_bandwidth t ~users ~servers ~noise =
  let batch = conv_total_requests ~users ~servers ~noise in
  let per_request =
    float_of_int
      (request_bytes ~servers ~at:1 + reply_bytes ~servers ~at:1
     + (2 * t.rpc_overhead_bytes))
  in
  batch *. per_request /. conv_round_interval t ~users ~servers ~noise

(* Client dialing download (§8.3): one invitation drop per dialing
   round = noise from every server plus the real invitations that hash
   there. *)
let invitation_drop_bytes ~users ~servers ~m ~dial_fraction ~dial_noise =
  let noise_invites =
    float_of_int servers *. dial_noise.Vuvuzela_dp.Laplace.mu
  in
  let real_invites =
    float_of_int users *. dial_fraction /. float_of_int m
  in
  (noise_invites +. real_invites)
  *. float_of_int Vuvuzela.Types.invitation_len

(* Average client bandwidth in bytes/sec: conversation request+reply per
   conversation round plus the dialing download per dialing round. *)
let client_bandwidth t ~users ~servers ~noise ~m ~dial_fraction ~dial_noise
    ~dial_interval =
  let conv_per_round =
    float_of_int
      (request_bytes ~servers ~at:0 + reply_bytes ~servers ~at:0)
  in
  let conv_interval = conv_round_interval t ~users ~servers ~noise in
  let dial =
    invitation_drop_bytes ~users ~servers ~m ~dial_fraction ~dial_noise
    /. dial_interval
  in
  (conv_per_round /. Float.max conv_interval 1e-9) +. dial
