(* Synthetic workload generation: populations of clients with the
   behavioural mix of §8.1 (a fraction of users conversing, 5% dialing
   per dialing round, the rest idle cover traffic), plus churn and
   outages.

   Drives the *functional* implementation (Vuvuzela.Network, real
   crypto) and reports end-to-end delivery statistics — the counterpart
   of the paper's client simulators, at laptop scale.  The same profile
   numbers feed the cost model's dial_fraction input at paper scale. *)

open Vuvuzela_crypto
open Vuvuzela

type profile = {
  users : int;
  paired_fraction : float;  (** users in active conversations *)
  message_rate : float;  (** P(paired user sends a text each round) *)
  dial_fraction : float;  (** §8.1: fraction dialing per dialing round *)
  churn : float;  (** P(a pair hangs up each round) *)
  offline : float;  (** P(a client misses a round) *)
  dial_every : int;  (** conversation rounds per dialing round *)
}

(* The paper's evaluation mix (§8.1): every simulated user exchanges
   messages every round, 5% dial per dialing round.  Offline/churn are
   zero there; the [stress] profile below turns them on. *)
let paper_mix ~users =
  {
    users;
    paired_fraction = 1.0;
    message_rate = 1.0;
    dial_fraction = 0.05;
    churn = 0.;
    offline = 0.;
    dial_every = 10;
  }

let stress ~users =
  {
    users;
    paired_fraction = 0.6;
    message_rate = 0.4;
    dial_fraction = 0.1;
    churn = 0.05;
    offline = 0.15;
    dial_every = 5;
  }

type summary = {
  rounds : int;
  dial_rounds : int;
  sent : int;
  delivered : int;
  retransmissions : int;
  duplicates : int;
  calls_placed : int;
  calls_heard : int;
  mean_delivery_rounds : float;
      (** rounds between send and in-order delivery *)
  max_delivery_rounds : int;
  final_m : int;  (** invitation drops after auto-tuning *)
}

let pp_summary fmt s =
  Format.fprintf fmt
    "{rounds=%d; sent=%d; delivered=%d; retx=%d; dup=%d; calls=%d/%d; \
     delivery=%.2f rounds (max %d); m=%d}"
    s.rounds s.sent s.delivered s.retransmissions s.duplicates s.calls_heard
    s.calls_placed s.mean_delivery_rounds s.max_delivery_rounds s.final_m

(* Run [profile] for [rounds] conversation rounds over a fresh network.
   Message payloads encode their send round so delivery latency is
   measured end to end. *)
let run ?(seed = "workload") ?(noise = Vuvuzela_dp.Laplace.params ~mu:4. ~b:1.)
    ?(dial_noise = Vuvuzela_dp.Laplace.params ~mu:2. ~b:1.) ~profile ~rounds ()
    =
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed seed |> with_noise noise
        |> with_dial_noise dial_noise
        |> with_noise_mode Vuvuzela_dp.Noise.Deterministic)
  in
  Network.set_auto_tune_drops net true;
  let rng = Drbg.of_string (seed ^ "-driver") in
  let clients =
    Array.init profile.users (fun i ->
        Network.connect ~seed:(Printf.sprintf "%s-c%d" seed i) net)
  in
  let n = Array.length clients in
  let partner = Array.make n (-1) in
  let unpair i =
    if partner.(i) >= 0 then begin
      let j = partner.(i) in
      partner.(i) <- -1;
      partner.(j) <- -1;
      Client.end_conversation clients.(i);
      Client.end_conversation clients.(j)
    end
  in
  let pair i j =
    unpair i;
    unpair j;
    partner.(i) <- j;
    partner.(j) <- i;
    Client.start_conversation clients.(i) ~peer_pk:(Client.public_key clients.(j));
    Client.start_conversation clients.(j) ~peer_pk:(Client.public_key clients.(i))
  in
  (* Initial pairing. *)
  let want_paired = int_of_float (profile.paired_fraction *. float_of_int n) in
  let idx = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Drbg.uniform ~rng (i + 1) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  let p = ref 0 in
  while !p + 1 < want_paired do
    pair idx.(!p) idx.(!p + 1);
    p := !p + 2
  done;
  let sent = ref 0
  and delivered = ref 0
  and calls_placed = ref 0
  and calls_heard = ref 0
  and latency_sum = ref 0
  and latency_max = ref 0
  and dial_rounds = ref 0 in
  let bernoulli prob = Drbg.float_unit ~rng () < prob in
  for round = 1 to rounds do
    (* Churn: some pairs hang up; the freed clients may redial later. *)
    for i = 0 to n - 1 do
      if partner.(i) > i && bernoulli profile.churn then unpair i
    done;
    (* Dialing rounds on schedule. *)
    if round mod profile.dial_every = 0 then begin
      incr dial_rounds;
      for i = 0 to n - 1 do
        if partner.(i) < 0 && bernoulli profile.dial_fraction then begin
          (* Dial a random unpaired other. *)
          let j = Drbg.uniform ~rng n in
          if j <> i && partner.(j) < 0 then begin
            incr calls_placed;
            Client.dial clients.(i) ~callee_pk:(Client.public_key clients.(j));
            (* Caller pre-enters the conversation (§3). *)
            Client.start_conversation clients.(i)
              ~peer_pk:(Client.public_key clients.(j));
            partner.(i) <- j (* provisional; confirmed on answer *)
          end
        end
      done;
      let events = (Network.run ~kind:Round.Dialing net).Network.events in
      List.iter
        (fun (c, evs) ->
          List.iter
            (function
              | Client.Incoming_call { caller; _ } ->
                  incr calls_heard;
                  (* Callee answers if still free. *)
                  let ci = ref (-1) in
                  Array.iteri (fun k cl -> if cl == c then ci := k) clients;
                  if !ci >= 0 && partner.(!ci) < 0 then begin
                    Client.start_conversation c ~peer_pk:caller;
                    (match Network.find_client net caller with
                    | Some caller_client ->
                        Array.iteri
                          (fun k cl ->
                            if cl == caller_client then partner.(!ci) <- k)
                          clients;
                        if partner.(!ci) >= 0 then
                          partner.(partner.(!ci)) <- !ci
                    | None -> ())
                  end
              | _ -> ())
            evs)
        events
    end;
    (* Sends: paired clients emit round-stamped texts. *)
    for i = 0 to n - 1 do
      let j = partner.(i) in
      if j >= 0 && partner.(j) = i && bernoulli profile.message_rate then begin
        incr sent;
        Client.send clients.(i) (Printf.sprintf "r%d.%d" round !sent)
      end
    done;
    (* Outages: each client independently misses the round. *)
    let blocked _c = bernoulli profile.offline in
    let events = (Network.run ~blocked ~kind:Round.Conversation net).Network.events in
    List.iter
      (fun (_, evs) ->
        List.iter
          (function
            | Client.Delivered { text; _ } -> (
                incr delivered;
                (* recover the send round from the stamp *)
                try
                  Scanf.sscanf text "r%d." (fun r ->
                      let lat = round - r in
                      latency_sum := !latency_sum + lat;
                      if lat > !latency_max then latency_max := lat)
                with Scanf.Scan_failure _ | End_of_file -> ())
            | _ -> ())
          evs)
      events
  done;
  (* Drain outstanding retransmissions. *)
  let drain = 15 in
  for extra = 1 to drain do
    let events = (Network.run ~kind:Round.Conversation net).Network.events in
    List.iter
      (fun (_, evs) ->
        List.iter
          (function
            | Client.Delivered { text; _ } -> (
                incr delivered;
                try
                  Scanf.sscanf text "r%d." (fun r ->
                      let lat = rounds + extra - r in
                      latency_sum := !latency_sum + lat;
                      if lat > !latency_max then latency_max := lat)
                with Scanf.Scan_failure _ | End_of_file -> ())
            | _ -> ())
          evs)
      events
  done;
  let retransmissions =
    Array.fold_left
      (fun acc c -> acc + (Client.stats c).Client.retransmissions)
      0 clients
  in
  let duplicates =
    Array.fold_left
      (fun acc c -> acc + (Client.stats c).Client.duplicates)
      0 clients
  in
  {
    rounds;
    dial_rounds = !dial_rounds;
    sent = !sent;
    delivered = !delivered;
    retransmissions;
    duplicates;
    calls_placed = !calls_placed;
    calls_heard = !calls_heard;
    mean_delivery_rounds =
      (if !delivered = 0 then 0.
       else float_of_int !latency_sum /. float_of_int !delivered);
    max_delivery_rounds = !latency_max;
    final_m = Network.invitation_drops net;
  }
