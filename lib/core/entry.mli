(** The untrusted entry server (§7): multiplexes client requests into
    rounds and demultiplexes results. *)

type submit_status =
  | Accepted  (** inside the admission window; the request has a slot *)
  | Late of { next_round : int }
      (** the round already closed — onions are round-keyed, so the
          request cannot join it; re-wrap for [next_round] *)

type 'id t

val create : ?round:int -> unit -> 'id t
(** A fresh collector for [round] (default [0]). *)

val round : 'id t -> int

val submit : 'id t -> 'id -> bytes -> submit_status
(** Before {!close_round}: record the request, [Accepted].  After:
    record the straggler in {!late} and answer [Late] — never raises. *)

val size : 'id t -> int
(** Admitted requests so far; O(1). *)

val late : 'id t -> 'id list
(** Clients that submitted after {!close_round}, in arrival order. *)

val close_round : 'id t -> bytes array * 'id array
(** Slot-ordered request batch and the matching client ids. *)

val demux : ids:'id array -> bytes array -> ('id * bytes) list
(** Pair each slot's result with its client.
    @raise Invalid_argument on size mismatch. *)
