(** The untrusted entry server (§7): multiplexes client requests into
    rounds and demultiplexes results. *)

type submit_status =
  | Accepted  (** inside the admission window; the request has a slot *)
  | Late of { next_round : int }
      (** the round already closed — onions are round-keyed, so the
          request cannot join it; re-wrap for [next_round] *)

type 'id t

val create : ?round:int -> unit -> 'id t
(** A fresh materializing collector for [round] (default [0]): all
    requests are buffered until {!close_round}. *)

val create_streaming :
  ?round:int -> chunk:int -> sink:(bytes array -> unit) -> unit -> 'id t
(** A streaming collector: every time [chunk] requests are buffered
    they are flushed to [sink] as one slot-ordered chunk, so the peak
    buffered onion count is bounded by [chunk], not the population
    (checked by {!peak_buffered}).  Close with {!close_stream}.
    @raise Invalid_argument if [chunk < 1]. *)

val round : 'id t -> int

val submit : 'id t -> 'id -> bytes -> submit_status
(** Before the round freezes: record the request, [Accepted].  After:
    record the straggler in {!late} and answer [Late] — never raises. *)

val size : 'id t -> int
(** Admitted requests so far; O(1). *)

val late : 'id t -> 'id list
(** Clients that submitted after the round froze, in arrival order. *)

val peak_buffered : 'id t -> int
(** High-water mark of simultaneously buffered requests.  Equals
    {!size} for a materializing collector; at most the chunk size for a
    streaming one. *)

val close_round : 'id t -> bytes array * 'id array
(** Slot-ordered request batch and the matching client ids.
    @raise Invalid_argument on a streaming collector. *)

val close_stream : 'id t -> 'id array
(** Flush the tail chunk to the sink and return the slot-ordered client
    ids (the requests already went to the sink).
    @raise Invalid_argument on a materializing collector. *)

val demux : ids:'id array -> bytes array -> ('id * bytes) list
(** Pair each slot's result with its client.
    @raise Invalid_argument on size mismatch. *)
