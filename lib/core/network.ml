(* A complete in-process Vuvuzela deployment: chain of servers, entry
   server, client population, and the round clock.

   This is the functional (real-crypto) counterpart of the performance
   simulator in [vuvuzela_sim]: every byte that would cross the network
   in a deployment is actually constructed, encrypted, shuffled and
   decrypted here.  Tests, the examples, and the attack harness all run
   against this module.

   Fault handling: the coordinator is a round supervisor.  A round that
   fails — a typed [Rpc.status] from any link (crash, dropped or
   corrupted frame) or a deadline miss — is aborted everywhere: servers
   discard the round's state (the retry redraws noise), clients discard
   the round's reply secrets and requeue what it carried.  The retry
   runs under a fresh round number and clients rebuild their requests
   from scratch, so fresh ephemeral keys are drawn and no onion
   ciphertext ever crosses a link twice (re-submitting a stored onion
   would let the §2.1 adversary correlate attempts).  Retries are
   bounded by [max_retries]; a round that still fails is reported with
   its full abort history and per-client [Round_failed] events.

   [run_round ~blocked] additionally models the active network adversary
   of §2.1 ("block network traffic from Alice") by suppressing chosen
   clients' requests for a round. *)

open Vuvuzela_dp
module Telemetry = Vuvuzela_telemetry.Telemetry
module Trace = Vuvuzela_telemetry.Trace
module Ledger = Vuvuzela_telemetry.Ledger
module Drbg = Vuvuzela_crypto.Drbg
module Shaper = Vuvuzela_transport.Shaper
module Config = Config

(* Where the chain lives: in this process, or behind a TCP connection to
   the first hop of a multi-process deployment (§7).  The supervisor is
   backend-agnostic — both produce results-or-typed-status per round —
   but a few capabilities are local-only: fault injection and [tap] live
   inside the in-process chain, virtual [Delay_ms] accounting has no TCP
   counterpart (socket delays are real and show up in wall clock), and
   §5.4 auto-tuning needs the last server's [proposed_m], which the wire
   protocol does not carry. *)
type backend = Local of Chain.t | Tcp of Remote.t

type t = {
  backend : backend;
  tel : Telemetry.t option;
      (** shared with the chain and its servers; [None] is the nil sink *)
  server_pks : bytes list;
  clients : (bytes, Client.t) Hashtbl.t;  (** keyed by public key *)
  mutable order : Client.t list;  (** connection order, for determinism *)
  mutable round : int;
  mutable dial_round : int;
  mutable m : int;  (** invitation drops for the next dialing round *)
  mutable auto_tune_m : bool;
  dial_kind : Dialing.kind;
  cdn : Cdn.t option;  (** §5.5 distribution of invitation drops *)
  mutable entry_streaming : bool;
      (** scale plane: collect entry requests through a streaming
          {!Entry} collector feeding the chain in chunks, so no tier
          materializes the whole onion batch *)
  entry_chunk : int;  (** onions per streamed entry chunk *)
  mutable round_deadline_ms : float option;
      (** supervisor deadline per attempt; [None] disables the check *)
  mutable max_retries : int;  (** extra attempts after the first *)
  admission_rng : Drbg.t;
      (** arrival-latency draws for the admission check, derived from
          the deployment seed so admission outcomes replay *)
  mutable admission_ms : float option;
      (** entry-server admission window; [None] admits everyone *)
  mutable client_latency : (float * float) option;
      (** [(base_ms, jitter_ms)] emulated client → entry arrival *)
  link : Shaper.config option;
      (** emulated WAN link profile: widens the effective deadline by
          the chain's RTT budget so shaped links aren't misread as
          failures *)
  mutable m_history : (int * int) list;
      (** completed dialing rounds and their [m], newest first, bounded
          by the last server's invitation retention — the download
          catch-up schedule for clients that missed rounds *)
  last_fetched : (bytes, int) Hashtbl.t;
      (** per client: the newest dialing round whose drops it has
          downloaded (or predates) *)
  obs : Obs.t option;
      (** the [--obs-dir] collector: one event per round, scrape +
          trace merge + digest at shutdown *)
}

(* The privacy-budget ledger composes the deployment's actual per-round
   guarantees (Theorem 1 for conversations, §6.5 for dialing) under
   Theorem 2, per client, per *attempt* — each attempt publishes a
   fresh noise draw. *)
(* Admission draws come from their own DRBG stream (domain-separated
   from keys/noise/shuffles) so turning the admission window on or off
   never perturbs the rest of a seeded deployment. *)
let admission_rng_of (cfg : Config.t) =
  match cfg.seed with
  | Some s -> Drbg.of_string (s ^ "-admission")
  | None -> Drbg.create_system ()

(* The observability collector is best-effort infrastructure: a
   directory that cannot be created costs the collection, not the
   deployment. *)
let obs_of (cfg : Config.t) =
  match cfg.obs_dir with
  | None -> None
  | Some dir -> (
      match Obs.create ~dir ~scrape:cfg.obs_scrape () with
      | Ok obs -> Some obs
      | Error e ->
          Printf.eprintf "[vuvuzela] %s (observability disabled)\n%!" e;
          None)

let install_ledger (cfg : Config.t) =
  Option.iter
    (fun tel ->
      Telemetry.set_ledger tel
        (Ledger.create ?warn_eps:cfg.budget_warn
           ~conv:(Mechanism.conversation cfg.noise)
           ~dial:(Mechanism.dialing cfg.dial_noise) ()))
    cfg.telemetry

let of_config (cfg : Config.t) =
  let chain = Chain.of_config cfg in
  install_ledger cfg;
  let cdn =
    if cfg.cdn_edges > 0 then
      Some
        (Cdn.create ~edges:cfg.cdn_edges ~history:Server.invitation_history
           ?bloom_fp:cfg.cdn_bloom_fp
           ~fetch:(fun ~dial_round ~index ->
             Chain.fetch_invitations chain ~dial_round ~index)
           ())
    else None
  in
  {
    backend = Local chain;
    entry_streaming = cfg.entry_streaming;
    entry_chunk = max 1 cfg.pipeline_chunk;
    admission_rng = admission_rng_of cfg;
    admission_ms = cfg.admission_ms;
    client_latency = cfg.client_latency;
    link = cfg.link;
    tel = cfg.telemetry;
    server_pks = Chain.public_keys chain;
    clients = Hashtbl.create 64;
    order = [];
    round = 1;
    dial_round = 1;
    m = 1;
    auto_tune_m = false;
    dial_kind = cfg.dial_kind;
    cdn;
    round_deadline_ms = cfg.round_deadline_ms;
    max_retries = max 0 cfg.max_retries;
    m_history = [];
    last_fetched = Hashtbl.create 64;
    obs = obs_of cfg;
  }

let create ?seed ?(n_servers = 3)
    ?(noise = Laplace.params ~mu:10. ~b:2.)
    ?(dial_noise = Laplace.params ~mu:3. ~b:1.)
    ?(noise_mode = Noise.Sampled) ?dial_kind ?jobs ?(cdn_edges = 0)
    ?fault_plan ?tap ?telemetry ?budget_warn ?round_deadline_ms
    ?(max_retries = 2) () =
  of_config
    {
      Config.default with
      seed;
      n_servers;
      noise;
      dial_noise;
      noise_mode;
      dial_kind = Option.value ~default:Config.default.dial_kind dial_kind;
      jobs = Option.value ~default:Config.default.jobs jobs;
      cdn_edges;
      fault_plan;
      tap;
      telemetry;
      budget_warn;
      round_deadline_ms;
      max_retries;
    }

(* The coordinator of a multi-process deployment: same clients, same
   supervisor, but rounds cross a TCP connection to server 0.  [noise]
   and [dial_noise] only feed the privacy-budget ledger here (the
   daemons own the actual noise) — pass the daemons' parameters or the
   ledger composes the wrong guarantee.  With [pipeline] set, entry
   batches leave the coordinator as streamed [*_batch_part] frames. *)
let of_config_tcp (cfg : Config.t) ~addr =
  (* The coordinator → first-hop link gets the same WAN profile the
     daemons put on their inter-server links, with its own derived
     jitter seed, plus deterministic reconnect backoff under a seed. *)
  let link =
    Option.map
      (fun l ->
        match cfg.seed with
        | Some s -> Shaper.with_seed (s ^ "-link-coordinator") l
        | None -> l)
      cfg.link
  in
  match
    Remote.connect ?telemetry:cfg.telemetry ~dial_kind:cfg.dial_kind
      ?deadline_ms:cfg.round_deadline_ms
      ~handshake_timeout_ms:cfg.handshake_timeout_ms
      ?backoff_seed:(Option.map (fun s -> s ^ "-backoff-coordinator") cfg.seed)
      ?link ~flap_grace_ms:cfg.flap_grace_ms ~addr ()
  with
  | Error e -> Error e
  | Ok remote ->
      install_ledger cfg;
      Remote.set_pipeline remote
        (if cfg.pipeline then Some (max 1 cfg.pipeline_chunk) else None);
      Ok
        {
          backend = Tcp remote;
          entry_streaming = cfg.entry_streaming;
          entry_chunk = max 1 cfg.pipeline_chunk;
          admission_rng = admission_rng_of cfg;
          admission_ms = cfg.admission_ms;
          client_latency = cfg.client_latency;
          link = cfg.link;
          tel = cfg.telemetry;
          server_pks = Remote.public_keys remote;
          clients = Hashtbl.create 64;
          order = [];
          round = 1;
          dial_round = 1;
          m = 1;
          auto_tune_m = false;
          dial_kind = cfg.dial_kind;
          cdn = None;
          round_deadline_ms = cfg.round_deadline_ms;
          max_retries = max 0 cfg.max_retries;
          m_history = [];
          last_fetched = Hashtbl.create 64;
          obs = obs_of cfg;
        }

let create_tcp ?(noise = Laplace.params ~mu:10. ~b:2.)
    ?(dial_noise = Laplace.params ~mu:3. ~b:1.) ?dial_kind ?telemetry
    ?budget_warn ?round_deadline_ms ?(max_retries = 2)
    ?handshake_timeout_ms ~addr () =
  of_config_tcp
    {
      Config.default with
      noise;
      dial_noise;
      dial_kind = Option.value ~default:Config.default.dial_kind dial_kind;
      telemetry;
      budget_warn;
      round_deadline_ms;
      max_retries;
      handshake_timeout_ms =
        Option.value ~default:Config.default.handshake_timeout_ms
          handshake_timeout_ms;
    }
    ~addr

let chain t =
  match t.backend with
  | Local c -> c
  | Tcp _ -> invalid_arg "Network.chain: TCP deployment has no in-process chain"

let is_remote t = match t.backend with Local _ -> false | Tcp _ -> true
let telemetry t = t.tel

let jobs t =
  match t.backend with Local c -> Chain.jobs c | Tcp _ -> 1

let shutdown t =
  (* Finalize observability first: the scrape needs the daemons still
     answering, so it must precede the Bye cascade. *)
  Option.iter (fun obs -> Obs.finalize ?telemetry:t.tel obs) t.obs;
  match t.backend with
  | Local c -> Chain.shutdown c
  | Tcp r -> Remote.shutdown r

(* Backend dispatch for the round operations.  The per-round deadline is
   synced into the remote before each call: over TCP the deadline also
   bounds the wait for the results frame itself (a silently dead link
   otherwise blocks forever), surfacing as a retryable transport
   status. *)
let chain_length t =
  match t.backend with Local c -> Chain.length c | Tcp r -> Remote.length r

(* Hedged deadline (§WAN): an emulated link adds a predictable RTT to
   every round, so the effective deadline is the configured one widened
   by the link's round-trip budget across the chain's hops — a shaped
   link costs latency without being misread as a failure, while a link
   that is genuinely stuck still trips the (widened) deadline. *)
let effective_deadline_ms t =
  match t.round_deadline_ms with
  | None -> None
  | Some d ->
      Some
        (match t.link with
        | Some link -> d +. Shaper.rtt_budget_ms link ~hops:(chain_length t)
        | None -> d)

(* The TCP counterpart of the chain's per-round root span
   ([conv-round] / [dial-round], opened inside {!Chain} in-process):
   the remote chain cannot open one in this process, so the coordinator
   wraps the round trip itself and announces the span's wire context to
   the first hop ahead of the batch — at merge time every daemon hop
   span parents transitively into this root. *)
let round_root t r ~name ~round ~dialing f =
  match t.tel with
  | None -> f ()
  | Some tel ->
      let tr = Telemetry.trace tel in
      let span = Trace.begin_span tr ~name ~round ~dialing () in
      Remote.set_trace_ctx r (Some (Trace.context_of tr span));
      Fun.protect
        ~finally:(fun () ->
          Remote.set_trace_ctx r None;
          Trace.end_span tr span)
        f

let chain_conversation_round t ~round requests =
  match t.backend with
  | Local c -> Chain.conversation_round c ~round requests
  | Tcp r ->
      Remote.set_deadline_ms r (effective_deadline_ms t);
      round_root t r ~name:"conv-round" ~round ~dialing:false (fun () ->
          Remote.conversation_round r ~round requests)

let chain_conversation_round_streamed t ~round ~produce =
  match t.backend with
  | Local c -> Chain.conversation_round_streamed c ~round ~produce
  | Tcp r ->
      Remote.set_deadline_ms r (effective_deadline_ms t);
      round_root t r ~name:"conv-round" ~round ~dialing:false (fun () ->
          Remote.conversation_round_streamed r ~round ~produce)

let chain_dialing_round t ~round ~m requests =
  match t.backend with
  | Local c -> Chain.dialing_round c ~round ~m requests
  | Tcp r ->
      Remote.set_deadline_ms r (effective_deadline_ms t);
      round_root t r ~name:"dial-round" ~round ~dialing:true (fun () ->
          Remote.dialing_round r ~round ~m requests)

let chain_dialing_round_streamed t ~round ~m ~produce =
  match t.backend with
  | Local c -> Chain.dialing_round_streamed c ~round ~m ~produce
  | Tcp r ->
      Remote.set_deadline_ms r (effective_deadline_ms t);
      round_root t r ~name:"dial-round" ~round ~dialing:true (fun () ->
          Remote.dialing_round_streamed r ~round ~m ~produce)

let chain_abort_round t ~round =
  match t.backend with
  | Local c -> Chain.abort_round c ~round
  | Tcp r -> Remote.abort_round r ~round

let chain_abort_dialing_round t ~round =
  match t.backend with
  | Local c -> Chain.abort_dialing_round c ~round
  | Tcp r -> Remote.abort_dialing_round r ~round

let chain_fetch_invitations t ~dial_round ~index =
  match t.backend with
  | Local c -> Chain.fetch_invitations c ~dial_round ~index
  | Tcp r -> Remote.fetch_invitations r ~dial_round ~index

(* Virtual injected delay is an in-process construct; socket-level
   delays are real and already inside the wall clock. *)
let chain_last_round_delay_ms t =
  match t.backend with
  | Local c -> Chain.last_round_delay_ms c
  | Tcp _ -> 0.
let round t = t.round
let dial_round t = t.dial_round
let n_clients t = Hashtbl.length t.clients
let set_invitation_drops t m = t.m <- max 1 m
let set_auto_tune_drops t flag = t.auto_tune_m <- flag
let cdn_stats t = Option.map Cdn.stats t.cdn
let invitation_drops t = t.m
let set_round_deadline_ms t d = t.round_deadline_ms <- d
let round_deadline_ms t = t.round_deadline_ms
let set_max_retries t n = t.max_retries <- max 0 n
let max_retries t = t.max_retries
let set_entry_streaming t flag = t.entry_streaming <- flag
let entry_streaming t = t.entry_streaming
let entry_chunk t = t.entry_chunk
let set_admission_ms t w = t.admission_ms <- w
let admission_ms t = t.admission_ms
let set_client_latency t l = t.client_latency <- l
let client_latency t = t.client_latency

let connect ?seed ?window ?rtt ?max_conversations ?certified t =
  let identity =
    match seed with
    | Some s -> Types.identity_of_seed (Bytes.of_string ("id-" ^ s))
    | None -> Types.fresh_identity ()
  in
  let client =
    Client.create ?seed ?window ?rtt ?max_conversations
      ~dial_kind:t.dial_kind ?certified ~identity ~server_pks:t.server_pks ()
  in
  Hashtbl.replace t.clients identity.Types.public client;
  t.order <- client :: t.order;
  (* A new client has nothing to catch up on: its download history
     starts at the most recently completed dialing round. *)
  Hashtbl.replace t.last_fetched identity.Types.public (t.dial_round - 1);
  client

let clients t = List.rev t.order
let find_client t pk = Hashtbl.find_opt t.clients pk

(* What one round did, beyond the per-client events: enough for a
   coordinator (or a test) to account for load and spot failures without
   re-deriving anything. *)
type round_report = {
  round : int;  (** the round number of the last attempt *)
  dialing : bool;
  events : (Client.t * Client.event list) list;
      (** per participating client, in connection order; on a failed
          report these are the [Round_failed] notifications *)
  batch_size : int;  (** requests the entry server forwarded *)
  peak_buffered : int;
      (** most onions the entry server held at once: [batch_size] when
          it materialized the batch, at most the configured chunk when
          it streamed (the scale plane's memory bound) *)
  admitted : int;
      (** clients inside the last attempt's admission window (= all
          participants when no window is configured) *)
  late : int;
      (** clients the last attempt excluded as stragglers: their onions
          reached the closed collector, earned the typed
          [Entry.Late] answer, and what they carried was requeued *)
  wire_bytes : int;  (** size of the entry → first-server batch frame *)
  elapsed_ms : float;
      (** wall clock for the last attempt's chain round trip, plus any
          injected virtual link delay *)
  confirmed_acks : int;
      (** dialing rounds: acks that unwrapped to the expected fixed
          plaintext; [0] for conversation rounds *)
  attempts : int;  (** total attempts, [1] when nothing failed *)
  aborts : Rpc.status list;
      (** each failed attempt's status, in order; on a report that
          ultimately succeeded the last entry is the abort the
          successful retry recovered from *)
  failure : Rpc.status option;
      (** set iff the round ultimately failed (= last element of
          [aborts]); the real events of the round were lost *)
}

(* Failed reports carry only [Round_failed] notifications, not protocol
   events, so flattening skips them; [failures_of] is the other half. *)
let events_of reports =
  List.concat_map
    (fun r -> if r.failure = None then r.events else [])
    reports

let failures_of reports = List.filter_map (fun r -> r.failure) reports

(* One stable line per report, success or failure — machine-grepable:
   every field appears in every line, in the same order, so log
   consumers need exactly one format.  Pinned by a regression test. *)
let pp_round_report ppf r =
  Format.fprintf ppf
    "%s round %d%s: %d requests (peak %d buffered), %d B wire, %.1f ms%s, \
     attempts=%d, aborts=%d, admitted=%d, late=%d%a"
    (if r.dialing then "dialing" else "conv")
    r.round
    (if r.failure = None then "" else " FAILED")
    r.batch_size r.peak_buffered r.wire_bytes r.elapsed_ms
    (if r.dialing then Printf.sprintf ", %d acks" r.confirmed_acks else "")
    r.attempts
    (List.length r.aborts)
    r.admitted r.late
    (fun ppf -> function
      | None -> ()
      | Some st -> Format.fprintf ppf " (%a)" Rpc.pp_status st)
    r.failure

(* The single monotonic-enough clock shared with the transport event
   loop, so supervisor deadlines and socket deadlines measure time the
   same way. *)
let timed = Vuvuzela_transport.Clock.timed

(* The supervisor's per-attempt deadline check.  Injected [Delay_ms]
   faults stall a link virtually (the chain accumulates them instead of
   sleeping), so the effective round time is wall clock plus virtual
   delay — which keeps deadline misses deterministic under a seed. *)
let check_deadline t ~round ~elapsed_ms outcome =
  match (outcome, effective_deadline_ms t) with
  | Ok _, Some deadline_ms when elapsed_ms > deadline_ms ->
      Error (Rpc.deadline_exceeded ~round ~deadline_ms)
  | _ -> outcome

(* One conversation round for the whole deployment, supervised.  Clients
   in [blocked] stay silent (adversarial blocking or a flaky link).
   Each client submits [max_conversations] requests (one slot each, §9).

   Each attempt consumes a fresh round number and rebuilds every request
   from scratch — fresh ephemeral keys, fresh noise — so a failed
   attempt leaks nothing that links it to the retry. *)
(* Per-attempt bookkeeping shared by the two supervisors: one charge per
   participant (each attempt publishes a fresh noise draw), budget
   gauges refreshed, attempt counted. *)
let charge_attempt t ~participants ~dialing =
  match t.tel with
  | None -> ()
  | Some _ ->
      List.iter
        (fun c ->
          Telemetry.charge t.tel ~client:(Client.public_key c) ~dialing)
        participants;
      Telemetry.refresh_budget t.tel;
      Telemetry.add_counter t.tel
        ~labels:[ ("kind", if dialing then "dial" else "conv") ]
        "vuvuzela_round_attempts_total"

(* Satellite of the fault layer: [Delay_ms] faults are virtual (the
   chain accumulates them instead of sleeping), so latency metrics
   record the *wall* time only — injected stall lives in its own
   counter ([vuvuzela_injected_delay_ms_total]) and in [elapsed_ms],
   which the deadline check uses. *)
let observe_attempt t ~dialing ~wall_ms ~wire_bytes =
  match t.tel with
  | None -> ()
  | Some _ ->
      let kind = [ ("kind", if dialing then "dial" else "conv") ] in
      Telemetry.observe t.tel ~labels:kind "vuvuzela_round_ms" wall_ms;
      Telemetry.add_counter t.tel ~labels:kind
        ~by:(float_of_int wire_bytes) "vuvuzela_wire_bytes_total"

let count_outcome t ~dialing outcome =
  match t.tel with
  | None -> ()
  | Some _ ->
      Telemetry.add_counter t.tel
        ~labels:[ ("kind", if dialing then "dial" else "conv") ]
        (match outcome with
        | `Completed -> "vuvuzela_rounds_total"
        | `Retried -> "vuvuzela_round_retries_total"
        | `Failed -> "vuvuzela_round_failures_total")

(* Layer (b) of the WAN story: round admission.  The entry server no
   longer freezes the round on an all-or-nothing barrier — clients
   "arrive" under an emulated last-mile latency, and whoever misses the
   [admission_ms] window is excluded from this round and redirected to
   the next one.  One arrival draw per participant, in connection
   order, from the dedicated admission DRBG stream, so a seeded
   deployment replays the same admission outcome bit for bit.  [late]
   (tests, attack harnesses) forces chosen clients late regardless of
   their draw; the draw still happens so the stream stays aligned. *)
let admission_split t ~late_pred ~participants =
  let arrival () =
    match (t.admission_ms, t.client_latency) with
    | Some _, Some (base, jitter) ->
        Some
          (base
          +.
          if jitter > 0. then
            Drbg.float_unit ~rng:t.admission_rng () *. jitter
          else 0.)
    | _ -> None
  in
  let rec go admitted late = function
    | [] -> (List.rev admitted, List.rev late)
    | c :: rest ->
        let drawn_late =
          match (arrival (), t.admission_ms) with
          | Some a, Some window -> a > window
          | _ -> false
        in
        let forced = match late_pred with Some f -> f c | None -> false in
        if drawn_late || forced then go admitted (c :: late) rest
        else go (c :: admitted) late rest
  in
  go [] [] participants

let observe_admission t ~dialing ~admitted ~late =
  match t.tel with
  | None -> ()
  | Some _ ->
      let kind = [ ("kind", if dialing then "dial" else "conv") ] in
      Telemetry.set_gauge t.tel ~labels:kind "vuvuzela_admitted_clients"
        (float_of_int admitted);
      if late > 0 then
        Telemetry.add_counter t.tel ~labels:kind ~by:(float_of_int late)
          "vuvuzela_late_onions_total"

(* The attempt loop shared by both round kinds: bump the round counter,
   split the participants at the admission window, charge the ledger
   (admitted only — stragglers publish nothing, and the redrawn noise
   of the retried/naturally-next round covers them), collect requests
   through the entry server, time the chain call, check the (hedged)
   deadline, and either finish or abort + retry (bounded, and only for
   retryable statuses).  The two kinds plug in their request builder,
   chain call, abort propagation, per-client requeue, and success
   handler; the supervisor proper exists exactly once. *)
(* One observability event per completed round report (success or
   failure), carrying the ledger's worst-case cumulative spend so the
   event log doubles as the privacy-budget curve. *)
let record_obs t (r : round_report) =
  match t.obs with
  | None -> ()
  | Some obs ->
      let budget =
        Option.bind t.tel (fun tel ->
            Option.map
              (fun l ->
                let g = Ledger.worst l in
                (g.Mechanism.eps, g.Mechanism.delta))
              (Telemetry.ledger tel))
      in
      Obs.record_round obs
        ~kind:(if r.dialing then "dial" else "conv")
        ~round:r.round ~attempts:r.attempts ~batch:r.batch_size
        ~admitted:r.admitted ~late:r.late ~wire_bytes:r.wire_bytes
        ~elapsed_ms:r.elapsed_ms ~acks:r.confirmed_acks
        ~aborts:(List.map (Format.asprintf "%a" Rpc.pp_status) r.aborts)
        ~failed:(r.failure <> None) ?budget ()

let supervise t ~dialing ~late_pred ~participants ~next_round ~submit
    ~wire_bytes_of ~call ~call_streamed ~abort ~requeue ~finish =
  let aborts = ref [] in
  let rec attempt n =
    let round = next_round () in
    let admitted, stragglers = admission_split t ~late_pred ~participants in
    charge_attempt t ~participants:admitted ~dialing;
    observe_admission t ~dialing ~admitted:(List.length admitted)
      ~late:(List.length stragglers);
    (* Collect requests and run the chain call.  Materializing (the
       default): close the round first, then time the chain trip alone.
       Streaming (scale plane): the chain call's [produce] hook owns the
       collector — clients submit into a streaming {!Entry} whose sink
       is the chain's chunk feed, so the entry tier never holds more
       than [entry_chunk] onions while server 0 peels earlier chunks.
       Building then overlaps the wire, so the timed window includes
       it.  Either way the chain sees the same slot-ordered request
       bytes, so transcripts are bit-identical. *)
    let collector = ref None in
    let ids = ref [||] in
    let batch_size = ref 0 in
    let peak = ref 0 in
    let outcome, wall_ms =
      if not t.entry_streaming then begin
        let entry = Entry.create ~round () in
        collector := Some entry;
        Telemetry.span t.tel ~name:"client-build" ~round ~dialing (fun () ->
            submit entry ~round admitted);
        let requests, i = Entry.close_round entry in
        ids := i;
        batch_size := Array.length requests;
        peak := Entry.peak_buffered entry;
        timed (fun () -> call ~round requests)
      end
      else
        timed (fun () ->
            call_streamed ~round ~produce:(fun feed ->
                let entry =
                  Entry.create_streaming ~round ~chunk:t.entry_chunk
                    ~sink:feed ()
                in
                collector := Some entry;
                Telemetry.span t.tel ~name:"client-build" ~round ~dialing
                  (fun () -> submit entry ~round admitted);
                ids := Entry.close_stream entry;
                batch_size := Array.length !ids;
                peak := Entry.peak_buffered entry))
    in
    (* Stragglers still sent: their onions reach the closed collector,
       earn the typed [Entry.Late] answer (onions are round-keyed, so
       joining a sealed round is impossible), and what they carried is
       requeued for the round the entry server named.  A streamed call
       that failed before opening its collector answers from the round
       number alone. *)
    let late_events =
      List.map
        (fun c ->
          Option.iter (fun entry -> submit entry ~round [ c ]) !collector;
          requeue c ~round;
          let next_round =
            match !collector with
            | Some entry -> Entry.round entry + 1
            | None -> round + 1
          in
          (c, [ Client.Round_late { round; next_round; dialing } ]))
        stragglers
    in
    let ids = !ids in
    let batch_size = !batch_size in
    let peak_buffered = !peak in
    let wire_bytes = wire_bytes_of ~count:batch_size in
    let elapsed_ms = wall_ms +. chain_last_round_delay_ms t in
    observe_attempt t ~dialing ~wall_ms ~wire_bytes;
    let report failure ~confirmed_acks events =
      { round; dialing; events; batch_size; peak_buffered;
        admitted = List.length admitted; late = List.length stragglers;
        wire_bytes; elapsed_ms; confirmed_acks; attempts = n;
        aborts = List.rev !aborts; failure }
    in
    match check_deadline t ~round ~elapsed_ms outcome with
    | Error st ->
        (* Abort everywhere: servers drop the round's state (noise is
           redrawn on retry), admitted clients drop its reply secrets
           and requeue what the round carried.  Stragglers were already
           requeued above. *)
        abort ~round;
        List.iter (fun c -> requeue c ~round) admitted;
        aborts := st :: !aborts;
        if n <= t.max_retries && Rpc.retryable st then begin
          count_outcome t ~dialing `Retried;
          attempt (n + 1)
        end
        else begin
          count_outcome t ~dialing `Failed;
          report (Some st) ~confirmed_acks:0
            (List.map
               (fun c ->
                 (c, [ Client.Round_failed { round; dialing; status = st } ]))
               admitted
            @ late_events)
        end
    | Ok results ->
        count_outcome t ~dialing `Completed;
        let confirmed_acks, events = finish ~round ~ids results in
        report None ~confirmed_acks (events @ late_events)
  in
  let r = attempt 1 in
  record_obs t r;
  r

let run_conversation ?late ~participants (t : t) =
  supervise t ~dialing:false ~late_pred:late ~participants
    ~next_round:(fun () ->
      let round = t.round in
      t.round <- round + 1;
      round)
    ~submit:(fun entry ~round cs ->
      List.iter
        (fun c ->
          List.iteri
            (fun slot onion ->
              ignore
                (Entry.submit entry (Client.public_key c, slot) onion
                  : Entry.submit_status))
            (Client.conversation_requests c ~round))
        cs)
    ~wire_bytes_of:(fun ~count ->
      Rpc.conv_batch_bytes ~count
        ~item_len:
          (Vuvuzela_mixnet.Onion.request_size ~chain_len:(chain_length t)
             ~payload_len:Types.exchange_payload_len))
    ~call:(fun ~round requests -> chain_conversation_round t ~round requests)
    ~call_streamed:(fun ~round ~produce ->
      chain_conversation_round_streamed t ~round ~produce)
    ~abort:(fun ~round -> chain_abort_round t ~round)
    ~requeue:(fun c ~round -> Client.abort_round c ~round)
    ~finish:(fun ~round ~ids results ->
      (* Group each client's slot replies back together, in slot order. *)
      let by_client = Hashtbl.create 64 in
      List.iter
        (fun ((pk, slot), reply) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_client pk) in
          Hashtbl.replace by_client pk ((slot, reply) :: prev))
        (Entry.demux ~ids results);
      ( 0,
        Telemetry.span t.tel ~name:"client-decrypt" ~round (fun () ->
            List.filter_map
              (fun c ->
                let pk = Client.public_key c in
                match Hashtbl.find_opt by_client pk with
                | None -> None
                | Some slot_replies ->
                    let replies =
                      List.sort compare slot_replies |> List.map snd
                    in
                    Some (c, Client.handle_conversation_replies c ~round replies))
              participants) ))

(* The download/scan phase of a dialing round (unmixed; §5.5) — through
   the CDN when one is deployed, straight from the last server
   otherwise.  A client downloads every completed dialing round it has
   not seen yet (each with that round's own [m]), so a client that was
   blocked across dialing rounds still receives its invitations once it
   participates again. *)
let download_invitations t c =
  let pk = Client.public_key c in
  let upto = t.dial_round - 1 in
  let from =
    match Hashtbl.find_opt t.last_fetched pk with
    | Some r -> r + 1
    | None -> upto
  in
  let events = ref [] in
  for r = from to upto do
    match List.assoc_opt r t.m_history with
    | None -> ()  (* aborted round, or older than the retention window *)
    | Some m ->
        let index = Client.my_invitation_drop c ~m in
        let drop =
          match t.cdn with
          | Some cdn when Cdn.has_prefilter cdn ->
              (* Prefiltered download: the edge registers this client's
                 subscription tag and serves every drop of the round its
                 bloom filter matches — always including [index] (no
                 false negatives), plus false-positive drops whose
                 invitations simply fail trial decryption below. *)
              List.concat_map snd
                (Cdn.fetch_matched cdn ~client_pk:pk ~dial_round:r ~index ~m)
          | Some cdn -> Cdn.fetch cdn ~client_pk:pk ~dial_round:r ~index
          | None -> chain_fetch_invitations t ~dial_round:r ~index
        in
        events := !events @ Client.handle_invitations c drop
  done;
  Hashtbl.replace t.last_fetched pk upto;
  !events

(* One dialing round, supervised like [run_round]: every participating
   client sends an invitation or no-op, confirms the chain's ack, then
   downloads and scans the invitation drops it has not seen yet.  An
   aborted attempt requeues each client's invitation (the retry builds a
   fresh one) and discards the last server's partial invitation store. *)
let run_dialing ?late ~participants (t : t) =
  let m = t.m in
  supervise t ~dialing:true ~late_pred:late ~participants
    ~next_round:(fun () ->
      let dial_round = t.dial_round in
      t.dial_round <- dial_round + 1;
      dial_round)
    ~submit:(fun entry ~round cs ->
      List.iter
        (fun c ->
          ignore
            (Entry.submit entry (Client.public_key c)
               (Client.dialing_request c ~dial_round:round ~m)
              : Entry.submit_status))
        cs)
    ~wire_bytes_of:(fun ~count ->
      Rpc.dial_batch_bytes ~count
        ~item_len:
          (Vuvuzela_mixnet.Onion.request_size ~chain_len:(chain_length t)
             ~payload_len:(Dialing.payload_len t.dial_kind)))
    ~call:(fun ~round requests -> chain_dialing_round t ~round ~m requests)
    ~call_streamed:(fun ~round ~produce ->
      chain_dialing_round_streamed t ~round ~m ~produce)
    ~abort:(fun ~round -> chain_abort_dialing_round t ~round)
    ~requeue:(fun c ~round -> Client.abort_dial_round c ~dial_round:round)
    ~finish:(fun ~round ~ids acks ->
      (* Route each slot's ack back to its client; a confirmed ack
         means that request survived every hop. *)
      let confirmed_acks =
        Telemetry.span t.tel ~name:"client-decrypt" ~round ~dialing:true
          (fun () ->
            List.fold_left
              (fun n (pk, ack) ->
                match Hashtbl.find_opt t.clients pk with
                | Some c when Client.confirm_dial_ack c ~dial_round:round ack
                  -> n + 1
                | Some _ | None -> n)
              0
              (Entry.demux ~ids acks))
      in
      (* §5.4: adopt the last server's m recommendation for the next
         round.  The wire protocol does not carry [proposed_m], so a
         TCP deployment keeps its configured m. *)
      (match t.backend with
      | Local c -> if t.auto_tune_m then t.m <- max 1 (Chain.proposed_m c)
      | Tcp _ -> ());
      (* Only completed rounds enter the download schedule; the bound
         matches the last server's invitation retention. *)
      t.m_history <-
        (round, m)
        :: List.filteri
             (fun i _ -> i < Server.invitation_history - 1)
             t.m_history;
      ( confirmed_acks,
        List.filter_map
          (fun c ->
            match download_invitations t c with
            | [] -> None
            | events -> Some (c, events))
          participants ))

(* The one round entry point: both protocols run under the same
   supervisor, selected by {!Round.kind}. *)
let run ?(blocked = fun _ -> false) ?late ~kind (t : t) =
  let participants = List.filter (fun c -> not (blocked c)) (clients t) in
  match (kind : Round.kind) with
  | Round.Conversation -> run_conversation ?late ~participants t
  | Round.Dialing -> run_dialing ?late ~participants t

let run_round ?blocked t = run ?blocked ~kind:Round.Conversation t
let run_dialing_round ?blocked t = run ?blocked ~kind:Round.Dialing t

(* Convenience: run n conversation rounds, collecting the reports. *)
let run_rounds ?blocked ?late t n =
  List.init n (fun _ -> run ?blocked ?late ~kind:Round.Conversation t)

(* The deployment schedule of §8.1: conversation rounds run continuously
   and a dialing round fires every [dial_every] conversation rounds (the
   paper's prototype uses 10-minute dialing rounds against tens of
   seconds per conversation round). *)
let run_schedule ?blocked ?late ?(dial_every = 10) t ~rounds =
  let acc = ref [] in
  for i = 1 to rounds do
    if i mod dial_every = 0 then
      acc := run ?blocked ?late ~kind:Round.Dialing t :: !acc;
    acc := run ?blocked ?late ~kind:Round.Conversation t :: !acc
  done;
  List.rev !acc
