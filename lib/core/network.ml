(* A complete in-process Vuvuzela deployment: chain of servers, entry
   server, client population, and the round clock.

   This is the functional (real-crypto) counterpart of the performance
   simulator in [vuvuzela_sim]: every byte that would cross the network
   in a deployment is actually constructed, encrypted, shuffled and
   decrypted here.  Tests, the examples, and the attack harness all run
   against this module.

   Fault injection: [run_round ~blocked] lets the caller model the
   active network adversary of §2.1 ("block network traffic from Alice")
   by suppressing chosen clients' requests for a round. *)

open Vuvuzela_dp

type t = {
  chain : Chain.t;
  server_pks : bytes list;
  clients : (bytes, Client.t) Hashtbl.t;  (** keyed by public key *)
  mutable order : Client.t list;  (** connection order, for determinism *)
  mutable round : int;
  mutable dial_round : int;
  mutable m : int;  (** invitation drops for the next dialing round *)
  mutable auto_tune_m : bool;
  dial_kind : Dialing.kind;
  cdn : Cdn.t option;  (** §5.5 distribution of invitation drops *)
}

let create ?seed ?(n_servers = 3)
    ?(noise = Laplace.params ~mu:10. ~b:2.)
    ?(dial_noise = Laplace.params ~mu:3. ~b:1.)
    ?(noise_mode = Noise.Sampled) ?dial_kind ?jobs ?(cdn_edges = 0) () =
  let chain =
    Chain.create ?seed ?dial_kind ?jobs ~n_servers ~noise ~dial_noise
      ~noise_mode ()
  in
  let cdn =
    if cdn_edges > 0 then
      Some
        (Cdn.create ~edges:cdn_edges
           ~fetch:(fun ~dial_round:_ ~index -> Chain.fetch_invitations chain ~index)
           ())
    else None
  in
  {
    chain;
    server_pks = Chain.public_keys chain;
    clients = Hashtbl.create 64;
    order = [];
    round = 1;
    dial_round = 1;
    m = 1;
    auto_tune_m = false;
    dial_kind = Option.value ~default:Dialing.Plain dial_kind;
    cdn;
  }

let chain t = t.chain
let jobs t = Chain.jobs t.chain
let shutdown t = Chain.shutdown t.chain
let round t = t.round
let dial_round t = t.dial_round
let n_clients t = Hashtbl.length t.clients
let set_invitation_drops t m = t.m <- max 1 m
let set_auto_tune_drops t flag = t.auto_tune_m <- flag
let cdn_stats t = Option.map Cdn.stats t.cdn
let invitation_drops t = t.m

let connect ?seed ?window ?rtt ?max_conversations ?certified t =
  let identity =
    match seed with
    | Some s -> Types.identity_of_seed (Bytes.of_string ("id-" ^ s))
    | None -> Types.fresh_identity ()
  in
  let client =
    Client.create ?seed ?window ?rtt ?max_conversations
      ~dial_kind:t.dial_kind ?certified ~identity ~server_pks:t.server_pks ()
  in
  Hashtbl.replace t.clients identity.Types.public client;
  t.order <- client :: t.order;
  client

let clients t = List.rev t.order
let find_client t pk = Hashtbl.find_opt t.clients pk

(* What one round did, beyond the per-client events: enough for a
   coordinator (or a test) to account for load and spot failures without
   re-deriving anything. *)
type round_report = {
  round : int;  (** the conversation or dialing round that ran *)
  dialing : bool;
  events : (Client.t * Client.event list) list;
      (** per participating client, in connection order *)
  batch_size : int;  (** requests the entry server forwarded *)
  wire_bytes : int;  (** size of the entry → first-server batch frame *)
  elapsed_ms : float;  (** wall clock for the chain round trip *)
  confirmed_acks : int;
      (** dialing rounds: acks that unwrapped to the expected fixed
          plaintext; [0] for conversation rounds *)
  failure : Rpc.status option;
      (** a link's typed error frame; when set, [events] is empty *)
}

let events_of reports = List.concat_map (fun r -> r.events) reports

let pp_round_report ppf r =
  match r.failure with
  | Some st ->
      Format.fprintf ppf "%s round %d FAILED (%a)"
        (if r.dialing then "dialing" else "conv")
        r.round Rpc.pp_status st
  | None ->
      Format.fprintf ppf
        "%s round %d: %d requests, %d B on the wire, %.1f ms%s"
        (if r.dialing then "dialing" else "conv")
        r.round r.batch_size r.wire_bytes r.elapsed_ms
        (if r.dialing then Printf.sprintf ", %d acks" r.confirmed_acks else "")

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, (Unix.gettimeofday () -. t0) *. 1000.)

(* One conversation round for the whole deployment.  Clients in
   [blocked] stay silent this round (adversarial blocking or a flaky
   link).  Each client submits [max_conversations] requests (one slot
   each, §9). *)
let run_round ?(blocked = fun _ -> false) (t : t) =
  let round = t.round in
  t.round <- round + 1;
  let entry = Entry.create () in
  List.iter
    (fun c ->
      if not (blocked c) then
        List.iteri
          (fun slot onion ->
            Entry.submit entry (Client.public_key c, slot) onion)
          (Client.conversation_requests c ~round))
    (clients t);
  let requests, ids = Entry.close_round entry in
  let batch_size = Array.length requests in
  let wire_bytes =
    Rpc.conv_batch_bytes ~count:batch_size
      ~item_len:
        (Vuvuzela_mixnet.Onion.request_size ~chain_len:(Chain.length t.chain)
           ~payload_len:Types.exchange_payload_len)
  in
  let outcome, elapsed_ms =
    timed (fun () -> Chain.conversation_round t.chain ~round requests)
  in
  let report failure events =
    { round; dialing = false; events; batch_size; wire_bytes; elapsed_ms;
      confirmed_acks = 0; failure }
  in
  match outcome with
  | Error st -> report (Some st) []
  | Ok results ->
      (* Group each client's slot replies back together, in slot order. *)
      let by_client = Hashtbl.create 64 in
      List.iter
        (fun ((pk, slot), reply) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_client pk) in
          Hashtbl.replace by_client pk ((slot, reply) :: prev))
        (Entry.demux ~ids results);
      report None
        (List.filter_map
           (fun c ->
             let pk = Client.public_key c in
             match Hashtbl.find_opt by_client pk with
             | None -> None
             | Some slot_replies ->
                 let replies =
                   List.sort compare slot_replies |> List.map snd
                 in
                 Some (c, Client.handle_conversation_replies c ~round replies))
           (clients t))

(* One dialing round: every connected client sends an invitation or
   no-op, confirms the chain's ack, then downloads and scans its own
   invitation drop. *)
let run_dialing_round ?(blocked = fun _ -> false) (t : t) =
  let dial_round = t.dial_round in
  t.dial_round <- dial_round + 1;
  let m = t.m in
  let entry = Entry.create () in
  List.iter
    (fun c ->
      if not (blocked c) then
        Entry.submit entry (Client.public_key c)
          (Client.dialing_request c ~dial_round ~m))
    (clients t);
  let requests, ids = Entry.close_round entry in
  let batch_size = Array.length requests in
  let wire_bytes =
    Rpc.dial_batch_bytes ~count:batch_size
      ~item_len:
        (Vuvuzela_mixnet.Onion.request_size ~chain_len:(Chain.length t.chain)
           ~payload_len:(Dialing.payload_len t.dial_kind))
  in
  let outcome, elapsed_ms =
    timed (fun () -> Chain.dialing_round t.chain ~round:dial_round ~m requests)
  in
  let report failure ~confirmed_acks events =
    { round = dial_round; dialing = true; events; batch_size; wire_bytes;
      elapsed_ms; confirmed_acks; failure }
  in
  match outcome with
  | Error st -> report (Some st) ~confirmed_acks:0 []
  | Ok acks ->
      (* Route each slot's ack back to its client; a confirmed ack means
         that request survived every hop. *)
      let confirmed_acks =
        List.fold_left
          (fun n (pk, ack) ->
            match Hashtbl.find_opt t.clients pk with
            | Some c when Client.confirm_dial_ack c ~dial_round ack -> n + 1
            | Some _ | None -> n)
          0
          (Entry.demux ~ids acks)
      in
      (* §5.4: adopt the last server's m recommendation for the next
         round. *)
      if t.auto_tune_m then t.m <- max 1 (Chain.proposed_m t.chain);
      (* Download phase (unmixed; §5.5) — through the CDN when one is
         deployed, straight from the last server otherwise. *)
      report None ~confirmed_acks
        (List.filter_map
           (fun c ->
             if blocked c then None
             else begin
               let index = Client.my_invitation_drop c ~m in
               let drop =
                 match t.cdn with
                 | Some cdn ->
                     Cdn.fetch cdn ~client_pk:(Client.public_key c) ~dial_round
                       ~index
                 | None -> Chain.fetch_invitations t.chain ~index
               in
               match Client.handle_invitations c drop with
               | [] -> None
               | events -> Some (c, events)
             end)
           (clients t))

(* Convenience: run n conversation rounds, collecting the reports. *)
let run_rounds ?blocked t n =
  List.init n (fun _ -> run_round ?blocked t)

(* The deployment schedule of §8.1: conversation rounds run continuously
   and a dialing round fires every [dial_every] conversation rounds (the
   paper's prototype uses 10-minute dialing rounds against tens of
   seconds per conversation round). *)
let run_schedule ?blocked ?(dial_every = 10) t ~rounds =
  let acc = ref [] in
  for i = 1 to rounds do
    if i mod dial_every = 0 then acc := run_dialing_round ?blocked t :: !acc;
    acc := run_round ?blocked t :: !acc
  done;
  List.rev !acc
