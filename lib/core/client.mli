(** The full Vuvuzela client: a fixed number of fixed-size requests per
    round (real or cover), reliable in-order text delivery with a
    pipelined retransmission window, dialing participation, and the §9
    multiple-conversations extension. *)

type event =
  | Delivered of { peer : bytes; text : string }
  | Acked of { peer : bytes; seq : int }
  | Incoming_call of { caller : bytes; certificate : Certificate.t option }
      (** [certificate], when present, is NOT yet verified — apply
          {!Certificate.verify} under your trust policy. *)
  | Round_failed of { round : int; dialing : bool; status : Rpc.status }
      (** a round this client submitted to was aborted (fault, deadline,
          or shutdown); queued messages are retried in later rounds *)
  | Round_late of { round : int; next_round : int; dialing : bool }
      (** this client missed [round]'s admission window — the entry
          server excluded it and whatever it carried was requeued for
          [next_round]; cover traffic for the slot is redrawn noise *)

val pp_event : Format.formatter -> event -> unit

type stats = {
  mutable rounds : int;
  mutable data_sent : int;
  mutable retransmissions : int;
  mutable data_received : int;
  mutable duplicates : int;
  mutable dial_rounds : int;
  mutable invitations_scanned : int;
}

type certified_config = {
  signing_sk : bytes;  (** Ed25519 seed for issuing certificates *)
  name : string;
  validity : int;  (** dialing rounds each certificate stays valid *)
}

type t

val create :
  ?seed:string ->
  ?window:int ->
  ?rtt:int ->
  ?max_conversations:int ->
  ?dial_kind:Dialing.kind ->
  ?certified:certified_config ->
  identity:Types.identity ->
  server_pks:bytes list ->
  unit ->
  t
(** [window] is the pipelining depth per conversation (default 4); [rtt]
    the rounds before a retransmission (default 2); [max_conversations]
    the fixed number of exchange requests sent every round (default 1 —
    the paper's prototype; §9 suggests e.g. 5). *)

val identity : t -> Types.identity
val public_key : t -> bytes
val stats : t -> stats
val max_conversations : t -> int

val in_conversation : t -> bool
val peer : t -> bytes option
val peers : t -> bytes list

val start_conversation : t -> peer_pk:bytes -> unit
(** Enter a conversation.  Restarts an existing one with the same peer;
    at capacity, the oldest conversation is ended to make room. *)

val end_conversation : ?peer:bytes -> t -> unit
(** End one conversation, or all when [peer] is omitted. *)

val send : t -> string -> unit
(** Queue text for the single active partner.
    @raise Invalid_argument if there is no (or more than one) active
    conversation, or the text exceeds {!Types.text_capacity}. *)

val send_to : t -> peer:bytes -> string -> unit

val queued : ?peer:bytes -> t -> int
(** Messages queued or in flight (for one peer, or in total). *)

val conversation_requests : t -> round:int -> bytes list
(** The onions to submit this round — always exactly
    [max_conversations] of them, active or idle. *)

val conversation_request : t -> round:int -> bytes
(** Single-conversation convenience.
    @raise Invalid_argument when [max_conversations > 1]. *)

val handle_conversation_replies : t -> round:int -> bytes list -> event list
(** Process the round's replies (slot-aligned with
    {!conversation_requests}); returns deliveries and acks in order. *)

val handle_conversation_reply : t -> round:int -> bytes -> event list
(** Single-slot convenience (slot 0). *)

val dial : t -> callee_pk:bytes -> unit
(** Request a conversation at the next dialing round. *)

val dialing_request : t -> dial_round:int -> m:int -> bytes
(** This dialing round's onion (a real invitation or a no-op).  The
    reply secrets are retained for {!confirm_dial_ack}. *)

val confirm_dial_ack : t -> dial_round:int -> bytes -> bool
(** Unwrap the chain's fixed-size ack for [dial_round] and check it;
    [true] means the request survived every hop.  Each round's ack can
    be confirmed at most once. *)

val my_invitation_drop : t -> m:int -> int

(** {2 Round aborts}

    The supervisor's client-side recovery: when a round fails in the
    chain, each participant discards that round's reply secrets (the
    onions never completed, and a stored onion must never be
    re-submitted — the retry rebuilds requests with fresh ephemeral
    keys) and requeues whatever the round carried. *)

val abort_round : t -> round:int -> unit
(** Conversation round [round] was aborted: drop its slot contexts and
    mark messages first sent in it as immediately overdue, so the next
    round retransmits them in fresh onions. *)

val abort_dial_round : t -> dial_round:int -> unit
(** Dialing round [dial_round] was aborted: drop its ack secrets and, if
    this client's invitation went into it, requeue the callee so the
    next dialing round sends a fresh invitation. *)

val handle_invitations : t -> bytes list -> event list
(** Trial-decrypt a downloaded invitation drop. *)
