(* The entry server (§7): an untrusted multiplexer that batches client
   requests into a round for the chain and routes results back.

   It learns only which clients are connected — which the threat model
   already concedes — and cannot read or alter onions undetected (any
   tampering makes the first server's AEAD open fail).

   Admission: the collector is tied to a round number.  Once the round
   closes, a straggler is not a protocol error any more — its onion is
   keyed to a round that is already sealed, so the only sound move is to
   tell the sender which round to re-wrap for.  [submit] therefore
   returns a typed status instead of raising.

   Two intake modes:
   - materializing (seed behavior): every onion is buffered until
     [close_round] freezes the slot-ordered batch — peak memory grows
     with the population;
   - streaming (scale plane): [create_streaming] attaches a sink and a
     chunk size; whenever [chunk] onions are buffered they are flushed
     to the sink (in slot order) and the buffer drains, so the peak
     buffered onion count is bounded by the chunk size, not the
     population.  The sink feeds the pipelined relay's part frames
     ([Rpc.Conv_batch_part]), which is why the chunking matches
     [Rpc.split_parts] exactly. *)

type submit_status = Accepted | Late of { next_round : int }

type 'id stream = { chunk : int; sink : bytes array -> unit }

type 'id t = {
  round : int;
  mutable pending : ('id * bytes) list;  (** buffered requests, newest first *)
  mutable count : int;  (** admitted requests, O(1) [size] *)
  mutable buffered : int;  (** |pending| *)
  mutable peak : int;  (** high-water mark of [buffered] *)
  stream : 'id stream option;
  mutable ids_rev : 'id list;  (** streaming mode: ids of flushed slots *)
  mutable closed : bool;
  mutable late : 'id list;  (** stragglers seen after close, newest first *)
}

let make ?(round = 0) stream =
  {
    round;
    pending = [];
    count = 0;
    buffered = 0;
    peak = 0;
    stream;
    ids_rev = [];
    closed = false;
    late = [];
  }

let create ?round () = make ?round None

let create_streaming ?round ~chunk ~sink () =
  if chunk < 1 then invalid_arg "Entry.create_streaming: chunk < 1";
  make ?round (Some { chunk; sink })

let round t = t.round

(* Drain the buffer to the sink as one slot-ordered chunk. *)
let flush t sink =
  if t.buffered > 0 then begin
    let in_order = List.rev t.pending in
    sink (Array.of_list (List.map snd in_order));
    t.ids_rev <- List.rev_append (List.map fst in_order) t.ids_rev;
    t.pending <- [];
    t.buffered <- 0
  end

let submit t id request =
  if t.closed then begin
    t.late <- id :: t.late;
    Late { next_round = t.round + 1 }
  end
  else begin
    t.pending <- (id, request) :: t.pending;
    t.count <- t.count + 1;
    t.buffered <- t.buffered + 1;
    if t.buffered > t.peak then t.peak <- t.buffered;
    (match t.stream with
    | Some { chunk; sink } when t.buffered >= chunk -> flush t sink
    | _ -> ());
    Accepted
  end

let size t = t.count
let late t = List.rev t.late
let peak_buffered t = t.peak

(* Freeze a materializing round: slot-ordered requests plus the
   slot → client map. *)
let close_round t =
  if t.stream <> None then
    invalid_arg "Entry.close_round: streaming collector (use close_stream)";
  t.closed <- true;
  let in_order = List.rev t.pending in
  let requests = Array.of_list (List.map snd in_order) in
  let ids = Array.of_list (List.map fst in_order) in
  (requests, ids)

(* Freeze a streaming round: flush the tail chunk and return the
   slot → client map (the requests already went to the sink). *)
let close_stream t =
  match t.stream with
  | None -> invalid_arg "Entry.close_stream: materializing collector"
  | Some { sink; _ } ->
      flush t sink;
      t.closed <- true;
      Array.of_list (List.rev t.ids_rev)

(* Route results back: pairs each slot's result with its client. *)
let demux ~ids results =
  if Array.length ids <> Array.length results then
    invalid_arg "Entry.demux: result batch size mismatch";
  Array.to_list (Array.map2 (fun id r -> (id, r)) ids results)
