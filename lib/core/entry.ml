(* The entry server (§7): an untrusted multiplexer that batches client
   requests into a round for the chain and routes results back.

   It learns only which clients are connected — which the threat model
   already concedes — and cannot read or alter onions undetected (any
   tampering makes the first server's AEAD open fail).

   Admission: the collector is tied to a round number.  Once the round
   closes, a straggler is not a protocol error any more — its onion is
   keyed to a round that is already sealed, so the only sound move is to
   tell the sender which round to re-wrap for.  [submit] therefore
   returns a typed status instead of raising. *)

type submit_status = Accepted | Late of { next_round : int }

type 'id t = {
  round : int;
  mutable pending : ('id * bytes) list;  (** newest first *)
  mutable count : int;  (** |pending|, tracked so [size] is O(1) *)
  mutable closed : bool;
  mutable late : 'id list;  (** stragglers seen after close, newest first *)
}

let create ?(round = 0) () =
  { round; pending = []; count = 0; closed = false; late = [] }

let round t = t.round

let submit t id request =
  if t.closed then begin
    t.late <- id :: t.late;
    Late { next_round = t.round + 1 }
  end
  else begin
    t.pending <- (id, request) :: t.pending;
    t.count <- t.count + 1;
    Accepted
  end

let size t = t.count
let late t = List.rev t.late

(* Freeze the round: slot-ordered requests plus the slot → client map. *)
let close_round t =
  t.closed <- true;
  let in_order = List.rev t.pending in
  let requests = Array.of_list (List.map snd in_order) in
  let ids = Array.of_list (List.map fst in_order) in
  (requests, ids)

(* Route results back: pairs each slot's result with its client. *)
let demux ~ids results =
  if Array.length ids <> Array.length results then
    invalid_arg "Entry.demux: result batch size mismatch";
  Array.to_list (Array.map2 (fun id r -> (id, r)) ids results)
