(* The chain of Vuvuzela servers and round orchestration (§3).

   All clients connect (through the entry server) to server 0; requests
   travel down the chain, are resolved at the last server, and results
   travel back up.  This module runs the whole in-process round trip,
   calling each server in order — the same sequence of messages a
   networked deployment would exchange. *)

module Pool = Vuvuzela_parallel.Pool
module Fault = Vuvuzela_faults.Fault
module Telemetry = Vuvuzela_telemetry.Telemetry

type t = {
  servers : Server.t array;
  pool : Pool.t option;  (** shared by all servers; [None] ⇒ sequential *)
  faults : Fault.injector option;  (** injected at forward link crossings *)
  tap : (round:int -> server:int -> bytes array -> unit) option;
      (** observes every forward batch exactly as it crosses the wire
          (post-tamper, pre-framing) — the tests' wiretap *)
  tel : Telemetry.t option;
      (** shared with the servers; [None] is the nil sink *)
  pipeline : bool;  (** relay forward batches as streamed parts *)
  chunk : int;  (** onions per part when pipelined *)
  mutable shut_down : bool;
  mutable delay_ms : float;
      (** virtual link stall accumulated by [Delay_ms] faults during the
          round in flight; reset when a round starts *)
}

let of_config (cfg : Config.t) =
  if cfg.n_servers < 1 then
    invalid_arg "Chain.of_config: need at least one server";
  if cfg.jobs < 1 then invalid_arg "Chain.of_config: jobs must be >= 1";
  (* The servers take turns (the in-process round trip is sequential
     along the chain), so one pool serves them all. *)
  let pool = if cfg.jobs > 1 then Some (Pool.create ~jobs:cfg.jobs) else None in
  (* Build from the last server backwards so each server knows the public
     keys of its downstream suffix. *)
  let servers = Array.make cfg.n_servers None in
  let suffix = ref [] in
  for position = cfg.n_servers - 1 downto 0 do
    let scfg =
      {
        Server.position;
        chain_len = cfg.n_servers;
        noise = cfg.noise;
        dial_noise = cfg.dial_noise;
        noise_mode = cfg.noise_mode;
        dial_kind = cfg.dial_kind;
        jobs = cfg.jobs;
        deaddrop_shards = cfg.deaddrop_shards;
      }
    in
    let rng_seed =
      Option.map
        (fun s ->
          Bytes.cat (Bytes.of_string s)
            (Bytes.of_string (Printf.sprintf "-server-%d" position)))
        cfg.seed
    in
    let server =
      Server.create ?rng_seed ?pool ?telemetry:cfg.telemetry ~cfg:scfg
        ~suffix_pks:!suffix ()
    in
    servers.(position) <- Some server;
    suffix := Server.public_key server :: !suffix
  done;
  {
    servers = Array.map Option.get servers;
    pool;
    faults = Option.map Fault.injector cfg.fault_plan;
    tap = cfg.tap;
    tel = cfg.telemetry;
    pipeline = cfg.pipeline;
    chunk = max 1 cfg.pipeline_chunk;
    shut_down = false;
    delay_ms = 0.;
  }

let create ?seed ?(dial_kind = Dialing.Plain) ?(jobs = 1) ?fault_plan ?tap
    ?telemetry ~n_servers ~noise ~dial_noise ~noise_mode () =
  of_config
    {
      Config.default with
      seed;
      n_servers;
      noise;
      dial_noise;
      noise_mode;
      dial_kind;
      jobs;
      fault_plan;
      tap;
      telemetry;
    }

let length t = Array.length t.servers
let server t i = t.servers.(i)
let last t = t.servers.(length t - 1)
let jobs t = match t.pool with Some p -> Pool.jobs p | None -> 1
let pipelined t = t.pipeline
let pipeline_chunk t = t.chunk

let shutdown t =
  t.shut_down <- true;
  Option.iter Pool.shutdown t.pool

let is_shut_down t = t.shut_down
let last_round_delay_ms t = t.delay_ms

let pending_faults t =
  match t.faults with None -> 0 | Some inj -> Fault.pending inj

(* Public keys in chain order — what clients onion-wrap against. *)
let public_keys t =
  Array.to_list (Array.map Server.public_key t.servers)

(* Every batch that crosses a link is routed through the Rpc codec, so
   the in-process chain exchanges exactly the bytes a networked
   deployment would (framing, versioning, fixed item sizes).  A batch
   the codec rejects becomes a typed [Rpc.status] error — itself pushed
   through the codec, since a real deployment would send the failure as
   a frame too. *)
let status_frame st =
  match Rpc.decode (Rpc.encode (Rpc.Status st)) with
  | Ok (Rpc.Status st) -> st
  | Ok _ | Error _ -> assert false (* the codec round-trips its own frames *)

let through ~round ~server ~stage codec_encode codec_decode payload =
  match codec_decode (codec_encode payload) with
  | Ok v -> Ok v
  | Error detail ->
      Error (status_frame { Rpc.round; server; stage; detail })

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Fault injection at forward links                                    *)
(* ------------------------------------------------------------------ *)

(* A forward batch crossing the link into [server]: fire the faults
   scheduled for this (round, server) site, then frame, then decode at
   the receiver.  Control faults (crash/drop) abort with a typed status;
   [Delay_ms] accumulates virtual stall time for the supervisor's
   deadline check; [Tamper_slot] flips a byte of one onion (the §2.1
   active adversary — framing survives, authentication at the receiver
   does not). *)
(* Short tag for a fault kind — the metric label and span annotation. *)
let fault_tag = function
  | Fault.Crash -> "crash"
  | Fault.Drop_link -> "drop-link"
  | Fault.Delay_ms _ -> "delay"
  | Fault.Tamper_slot _ -> "tamper-slot"
  | Fault.Corrupt_frame _ -> "corrupt-frame"
  | Fault.Truncate_frame _ -> "truncate-frame"
  | Fault.Extend_frame _ -> "extend-frame"
  | Fault.Slow_link _ -> "slow-link"
  | Fault.Flap _ -> "flap"
  | Fault.Partition _ -> "partition"

(* Every fired fault becomes a counter sample and a span annotation on
   the innermost open span (the round's root span when firing between
   stages); [Delay_ms] additionally feeds its own counter so the virtual
   stall is visible separately from wall-clock timings (which exclude
   it). *)
let record_faults t ~server kinds =
  match (t.tel, kinds) with
  | None, _ | _, [] -> ()
  | Some _, kinds ->
      List.iter
        (fun k ->
          let tag = fault_tag k in
          Telemetry.add_counter t.tel
            ~labels:[ ("kind", tag) ]
            "vuvuzela_faults_injected_total";
          Telemetry.annotate t.tel
            (Printf.sprintf "fault.%s" tag)
            (Printf.sprintf "server=%d" server);
          match k with
          | Fault.Delay_ms ms ->
              Telemetry.add_counter t.tel ~by:(float_of_int ms)
                "vuvuzela_injected_delay_ms_total"
          | Fault.Slow_link ms | Fault.Flap ms | Fault.Partition ms ->
              (* Churn kinds are link stalls: count the event and the
                 stall time so degraded rounds are observable. *)
              Telemetry.add_counter t.tel
                ~labels:[ ("kind", tag) ]
                "vuvuzela_link_stalls_total";
              Telemetry.add_counter t.tel ~by:(float_of_int ms)
                "vuvuzela_injected_delay_ms_total"
          | _ -> ())
        kinds

(* The fault/tap prelude of a link crossing, shared by the lockstep and
   pipelined relays: faults fire once per (round, server) site against
   the WHOLE logical batch — a crash kills the entire batch, a
   [Tamper_slot] indexes into the full batch, and the tap observes the
   batch exactly once — so fault semantics are identical in both relay
   modes by construction.  Returns the (possibly tampered) batch plus
   any frame-level faults left to apply at the framing stage. *)
let apply_link_faults t ~round ~server ~stage (batch : bytes array) =
  let kinds =
    match t.faults with
    | None -> []
    | Some inj -> Fault.fire inj ~round ~server
  in
  record_faults t ~server kinds;
  let batch = ref batch in
  let frame_faults = ref [] in
  let fatal = ref None in
  List.iter
    (fun k ->
      if !fatal = None then
        match k with
        | Fault.Crash -> fatal := Some "server crashed (injected fault)"
        | Fault.Drop_link -> fatal := Some "link dropped (injected fault)"
        | Fault.Delay_ms ms -> t.delay_ms <- t.delay_ms +. float_of_int ms
        | Fault.Slow_link ms ->
            (* Congested link: the batch arrives intact, late. *)
            t.delay_ms <- t.delay_ms +. float_of_int ms
        | Fault.Flap ms ->
            (* A reset that heals: the in-process link has no socket to
               reset, so only the outage's stall is observable. *)
            t.delay_ms <- t.delay_ms +. float_of_int ms
        | Fault.Partition ms ->
            (* A cut link: the batch is lost and the heal takes [ms]. *)
            t.delay_ms <- t.delay_ms +. float_of_int ms;
            fatal := Some "link partitioned (injected fault)"
        | Fault.Tamper_slot s -> batch := Fault.apply_tamper !batch s
        | (Fault.Corrupt_frame _ | Fault.Truncate_frame _ | Fault.Extend_frame _)
          as k -> frame_faults := k :: !frame_faults)
    kinds;
  match !fatal with
  | Some detail -> Error (status_frame { Rpc.round; server; stage; detail })
  | None ->
      let batch = !batch in
      Option.iter (fun tap -> tap ~round ~server batch) t.tap;
      Ok (batch, List.rev !frame_faults)

let forward_send t ~round ~server ~stage encode decode (batch : bytes array) =
  let* batch, frame_faults =
    apply_link_faults t ~round ~server ~stage batch
  in
  let frame = List.fold_left Fault.apply_frame (encode batch) frame_faults in
  match decode frame with
  | Ok v -> Ok v
  | Error detail -> Error (status_frame { Rpc.round; server; stage; detail })

(* The pipelined relay for one link: split the batch into ≤[chunk]-sized
   parts, push each through the part codec, and feed the decoded onions
   straight into the receiver's stream.  Frame-level faults corrupt the
   first part's frame (the lockstep relay corrupts its single frame, so
   "the frame on this link is damaged" maps to "the first part frame is
   damaged"). *)
let forward_send_parts t ~round ~server ~stage encode_part decode_part feed
    (batch : bytes array) =
  let* batch, frame_faults =
    apply_link_faults t ~round ~server ~stage batch
  in
  let parts = Rpc.split_parts ~chunk:t.chunk batch in
  let n_parts = Array.length parts in
  let rec loop seq =
    if seq >= n_parts then Ok ()
    else begin
      let frame = encode_part ~seq ~last:(seq = n_parts - 1) parts.(seq) in
      let frame =
        if seq = 0 then List.fold_left Fault.apply_frame frame frame_faults
        else frame
      in
      match decode_part frame with
      | Ok onions ->
          feed onions;
          loop (seq + 1)
      | Error detail ->
          Error (status_frame { Rpc.round; server; stage; detail })
    end
  in
  loop 0

let send_conv_batch t ~round ~server onions =
  forward_send t ~round ~server ~stage:"conv-batch"
    (fun o -> Rpc.encode (Rpc.Conv_batch { round; onions = o }))
    (fun b ->
      match Rpc.decode b with
      | Ok (Rpc.Conv_batch { onions; _ }) -> Ok onions
      | Ok _ -> Error "unexpected message"
      | Error e -> Error e)
    onions

let send_conv_results ~round ~server replies =
  through ~round ~server ~stage:"conv-results"
    (fun r -> Rpc.encode (Rpc.Conv_results { round; replies = r }))
    (fun b ->
      match Rpc.decode b with
      | Ok (Rpc.Conv_results { replies; _ }) -> Ok replies
      | Ok _ -> Error "unexpected message"
      | Error e -> Error e)
    replies

let send_dial_results ~round ~server replies =
  through ~round ~server ~stage:"dial-results"
    (fun r -> Rpc.encode (Rpc.Dial_results { round; replies = r }))
    (fun b ->
      match Rpc.decode b with
      | Ok (Rpc.Dial_results { replies; _ }) -> Ok replies
      | Ok _ -> Error "unexpected message"
      | Error e -> Error e)
    replies

let send_dial_batch t ~round ~m ~server onions =
  forward_send t ~round ~server ~stage:"dial-batch"
    (fun o -> Rpc.encode (Rpc.Dial_batch { round; m; onions = o }))
    (fun b ->
      match Rpc.decode b with
      | Ok (Rpc.Dial_batch { onions; _ }) -> Ok onions
      | Ok _ -> Error "unexpected message"
      | Error e -> Error e)
    onions

(* Entry-server ingress policy: the framed batches require uniform item
   sizes, so a wrong-sized client request is replaced with random bytes
   of the correct size.  Its slot (and reply) survive; the garbage fails
   authentication at the first server and earns a dummy reply. *)
let normalize ~expected requests =
  Array.map
    (fun r ->
      if Bytes.length r = expected then r
      else Vuvuzela_crypto.Drbg.bytes expected)
    requests

(* The conversation descent from server [i] down: forward through each
   mixing server, exchange at the last, results back up.  Shared by the
   materializing round (which starts at server 0) and the streamed-entry
   round (which hand-feeds server 0 and descends from server 1). *)
let rec conv_go t ~round i batch =
  let n = length t in
  let srv = t.servers.(i) in
  let* peeled =
    if t.pipeline then begin
      (* Streamed relay: the batch crosses the link as ordered
         [Conv_batch_part] frames and the receiver peels each part
         as it lands — the same code path a pipelined TCP
         deployment runs, so its determinism is tested here. *)
      let stream = Server.conv_stream srv ~round in
      let* () =
        forward_send_parts t ~round ~server:i ~stage:"conv-batch"
          (fun ~seq ~last onions ->
            Rpc.encode (Rpc.Conv_batch_part { round; seq; last; onions }))
          (fun b ->
            match Rpc.decode b with
            | Ok (Rpc.Conv_batch_part { onions; _ }) -> Ok onions
            | Ok _ -> Error "unexpected message"
            | Error e -> Error e)
          (fun onions -> Server.stream_feed srv stream onions)
          batch
      in
      Ok (`Stream stream)
    end
    else
      let* batch = send_conv_batch t ~round ~server:i batch in
      Ok (`Batch batch)
  in
  if i = n - 1 then
    Ok
      (match peeled with
      | `Stream stream -> Server.conv_finish_exchange srv stream
      | `Batch batch -> Server.conv_exchange srv ~round batch)
  else begin
    let forwarded =
      match peeled with
      | `Stream stream -> Server.conv_finish_forward srv stream
      | `Batch batch -> Server.conv_forward srv ~round batch
    in
    let* below = conv_go t ~round (i + 1) forwarded in
    let* results = send_conv_results ~round ~server:i below in
    Ok (Server.conv_backward srv ~round results)
  end

(* One conversation round: forward through each mixing server, exchange
   at the last, then backward.  [requests] are the clients' onions in
   slot order; the result array is aligned with it. *)
let conversation_round t ~round requests =
  if t.shut_down then Error (status_frame (Rpc.chain_shutdown ~round))
  else begin
    t.delay_ms <- 0.;
    let n = length t in
    let requests =
      normalize
        ~expected:
          (Vuvuzela_mixnet.Onion.request_size ~chain_len:n
             ~payload_len:Types.exchange_payload_len)
        requests
    in
    Telemetry.span t.tel ~name:"conv-round" ~round (fun () ->
        conv_go t ~round 0 requests)
  end

(* The dialing descent from server [i] down (see [conv_go]). *)
let rec dial_go t ~round ~m i batch =
  let n = length t in
  let srv = t.servers.(i) in
  let* peeled =
    if t.pipeline then begin
      let stream = Server.dial_stream srv ~round in
      let* () =
        forward_send_parts t ~round ~server:i ~stage:"dial-batch"
          (fun ~seq ~last onions ->
            Rpc.encode (Rpc.Dial_batch_part { round; m; seq; last; onions }))
          (fun b ->
            match Rpc.decode b with
            | Ok (Rpc.Dial_batch_part { onions; _ }) -> Ok onions
            | Ok _ -> Error "unexpected message"
            | Error e -> Error e)
          (fun onions -> Server.stream_feed srv stream onions)
          batch
      in
      Ok (`Stream stream)
    end
    else
      let* batch = send_dial_batch t ~round ~m ~server:i batch in
      Ok (`Batch batch)
  in
  if i = n - 1 then
    Ok
      (match peeled with
      | `Stream stream -> Server.dial_finish_deliver srv stream ~m
      | `Batch batch -> Server.dial_deliver srv ~round ~m batch)
  else begin
    let forwarded =
      match peeled with
      | `Stream stream -> Server.dial_finish_forward srv stream ~m
      | `Batch batch -> Server.dial_forward srv ~round ~m batch
    in
    let* below = dial_go t ~round ~m (i + 1) forwarded in
    let* results = send_dial_results ~round ~server:i below in
    Ok (Server.dial_backward srv ~round results)
  end

(* One dialing round with [m] invitation drops. *)
let dialing_round t ~round ~m requests =
  if t.shut_down then Error (status_frame (Rpc.chain_shutdown ~round))
  else begin
    t.delay_ms <- 0.;
    let n = length t in
    let requests =
      normalize
        ~expected:
          (Vuvuzela_mixnet.Onion.request_size ~chain_len:n
             ~payload_len:(Dialing.payload_len (Server.dial_kind t.servers.(0))))
        requests
    in
    Telemetry.span t.tel ~name:"dial-round" ~round ~dialing:true (fun () ->
        dial_go t ~round ~m 0 requests)
  end

(* ------------------------------------------------------------------ *)
(* Streamed-entry rounds (scale plane)                                 *)
(* ------------------------------------------------------------------ *)

(* The streamed-entry ingress into server 0: the producer pushes the
   batch in slot-ordered chunks (the streaming [Entry] collector's
   sink), each crossing the link as a [*_batch_part] frame, so neither
   the entry tier nor server 0 ever holds the whole onion batch.

   Fault semantics stay lockstep-equivalent, mirroring the daemon's
   part-stream ingress: the (round, server 0) site fires once before
   the first chunk against the logical batch — crash/drop kill the
   whole round, frame faults damage the first part's frame, and
   [Tamper_slot] is applied to whichever chunk carries its absolute
   slot.  The tap observes each chunk as it crosses the link (same
   bytes in the same order as the lockstep tap, just chunked). *)
type entry_ingress = {
  mutable in_off : int;  (** onions fed so far = absolute slot offset *)
  mutable in_seq : int;
  mutable in_tampers : int list;  (** absolute slots not yet applied *)
  mutable in_err : Rpc.status option;
}

let stream_entry_prelude t ~round ~stage =
  let kinds =
    match t.faults with
    | None -> []
    | Some inj -> Fault.fire inj ~round ~server:0
  in
  record_faults t ~server:0 kinds;
  let fatal = ref None in
  let tampers = ref [] in
  let frame_faults = ref [] in
  List.iter
    (fun k ->
      if !fatal = None then
        match k with
        | Fault.Crash -> fatal := Some "server crashed (injected fault)"
        | Fault.Drop_link -> fatal := Some "link dropped (injected fault)"
        | Fault.Delay_ms ms | Fault.Slow_link ms | Fault.Flap ms ->
            t.delay_ms <- t.delay_ms +. float_of_int ms
        | Fault.Partition ms ->
            t.delay_ms <- t.delay_ms +. float_of_int ms;
            fatal := Some "link partitioned (injected fault)"
        | Fault.Tamper_slot s -> tampers := s :: !tampers
        | (Fault.Corrupt_frame _ | Fault.Truncate_frame _ | Fault.Extend_frame _)
          as k -> frame_faults := k :: !frame_faults)
    kinds;
  match !fatal with
  | Some detail -> Error (status_frame { Rpc.round; server = 0; stage; detail })
  | None -> Ok (List.rev !tampers, List.rev !frame_faults)

(* Feed one producer chunk through the part codec into server 0's
   stream, applying any pending absolute-slot tampers and (on the first
   part) the frame faults. *)
let stream_entry_feed t ~round ~stage ~expected ~encode_part ~decode_part
    ~frame_faults ingress feed_server chunk =
  if ingress.in_err = None then begin
    let onions = normalize ~expected chunk in
    let len = Array.length onions in
    let onions =
      List.fold_left
        (fun o s ->
          if s >= ingress.in_off && s < ingress.in_off + len then
            Fault.apply_tamper o (s - ingress.in_off)
          else o)
        onions ingress.in_tampers
    in
    ingress.in_tampers <-
      List.filter (fun s -> s >= ingress.in_off + len) ingress.in_tampers;
    Option.iter (fun tap -> tap ~round ~server:0 onions) t.tap;
    let frame = encode_part ~seq:ingress.in_seq onions in
    let frame =
      if ingress.in_seq = 0 then
        List.fold_left Fault.apply_frame frame frame_faults
      else frame
    in
    match decode_part frame with
    | Ok onions ->
        feed_server onions;
        ingress.in_off <- ingress.in_off + len;
        ingress.in_seq <- ingress.in_seq + 1
    | Error detail ->
        ingress.in_err <-
          Some (status_frame { Rpc.round; server = 0; stage; detail })
  end

(* A conversation round whose entry batch arrives as a stream:
   [produce feed] must call [feed chunk] with slot-ordered chunks (the
   streaming [Entry] collector does exactly this) and return once the
   round's intake is complete.  Decoded onions, and therefore results,
   are bit-identical to [conversation_round] on the concatenation of
   the chunks. *)
let conversation_round_streamed t ~round ~produce =
  if t.shut_down then Error (status_frame (Rpc.chain_shutdown ~round))
  else begin
    t.delay_ms <- 0.;
    let n = length t in
    let stage = "conv-batch" in
    let expected =
      Vuvuzela_mixnet.Onion.request_size ~chain_len:n
        ~payload_len:Types.exchange_payload_len
    in
    Telemetry.span t.tel ~name:"conv-round" ~round (fun () ->
        let srv0 = t.servers.(0) in
        let* tampers, frame_faults = stream_entry_prelude t ~round ~stage in
        let stream = Server.conv_stream srv0 ~round in
        let ingress =
          { in_off = 0; in_seq = 0; in_tampers = tampers; in_err = None }
        in
        produce
          (stream_entry_feed t ~round ~stage ~expected
             ~encode_part:(fun ~seq onions ->
               Rpc.encode (Rpc.Conv_batch_part { round; seq; last = false; onions }))
             ~decode_part:(fun b ->
               match Rpc.decode b with
               | Ok (Rpc.Conv_batch_part { onions; _ }) -> Ok onions
               | Ok _ -> Error "unexpected message"
               | Error e -> Error e)
             ~frame_faults ingress
             (fun onions -> Server.stream_feed srv0 stream onions));
        match ingress.in_err with
        | Some st -> Error st
        | None ->
            if n = 1 then Ok (Server.conv_finish_exchange srv0 stream)
            else begin
              let forwarded = Server.conv_finish_forward srv0 stream in
              let* below = conv_go t ~round 1 forwarded in
              let* results = send_conv_results ~round ~server:0 below in
              Ok (Server.conv_backward srv0 ~round results)
            end)
  end

(* Streamed-entry dialing round (see [conversation_round_streamed]). *)
let dialing_round_streamed t ~round ~m ~produce =
  if t.shut_down then Error (status_frame (Rpc.chain_shutdown ~round))
  else begin
    t.delay_ms <- 0.;
    let n = length t in
    let stage = "dial-batch" in
    let expected =
      Vuvuzela_mixnet.Onion.request_size ~chain_len:n
        ~payload_len:(Dialing.payload_len (Server.dial_kind t.servers.(0)))
    in
    Telemetry.span t.tel ~name:"dial-round" ~round ~dialing:true (fun () ->
        let srv0 = t.servers.(0) in
        let* tampers, frame_faults = stream_entry_prelude t ~round ~stage in
        let stream = Server.dial_stream srv0 ~round in
        let ingress =
          { in_off = 0; in_seq = 0; in_tampers = tampers; in_err = None }
        in
        produce
          (stream_entry_feed t ~round ~stage ~expected
             ~encode_part:(fun ~seq onions ->
               Rpc.encode
                 (Rpc.Dial_batch_part { round; m; seq; last = false; onions }))
             ~decode_part:(fun b ->
               match Rpc.decode b with
               | Ok (Rpc.Dial_batch_part { onions; _ }) -> Ok onions
               | Ok _ -> Error "unexpected message"
               | Error e -> Error e)
             ~frame_faults ingress
             (fun onions -> Server.stream_feed srv0 stream onions));
        match ingress.in_err with
        | Some st -> Error st
        | None ->
            if n = 1 then Ok (Server.dial_finish_deliver srv0 stream ~m)
            else begin
              let forwarded = Server.dial_finish_forward srv0 stream ~m in
              let* below = dial_go t ~round ~m 1 forwarded in
              let* results = send_dial_results ~round ~server:0 below in
              Ok (Server.dial_backward srv0 ~round results)
            end)
  end

(* Convenience for callers (benchmarks, attack harnesses) that treat a
   framing failure as fatal. *)
let fail_status st = failwith (Format.asprintf "Chain: %a" Rpc.pp_status st)

let conversation_round_exn t ~round requests =
  match conversation_round t ~round requests with
  | Ok replies -> replies
  | Error st -> fail_status st

let dialing_round_exn t ~round ~m requests =
  match dialing_round t ~round ~m requests with
  | Ok replies -> replies
  | Error st -> fail_status st

let fetch_invitations ?dial_round t ~index =
  Server.fetch_invitations ?dial_round (last t) ~index

(* ------------------------------------------------------------------ *)
(* Round aborts                                                        *)
(* ------------------------------------------------------------------ *)

(* Discard a failed round's state on every server so the supervisor's
   retry (under a fresh round number) starts from a clean slate and each
   server redraws its noise for the new attempt. *)

let abort_round t ~round =
  Array.iter (fun s -> Server.abort_conv_round s ~round) t.servers

let abort_dialing_round t ~round =
  Array.iter (fun s -> Server.abort_dial_round s ~round) t.servers

(* §5.4: "The first server then informs clients of the value of m for a
   given dialing round" — surfaced here for the coordinator. *)
let proposed_m t = Server.proposed_m (last t)

(* Adversary's view of the most recent round (for the attack harness). *)
let observed_histogram t = Server.last_histogram (last t)
