(** A Vuvuzela chain server (Algorithm 2): peel, noise, shuffle, forward;
    unshuffle, seal on the way back.  The last server hosts dead drops
    and invitation drops. *)

type config = {
  position : int;
  chain_len : int;
  noise : Vuvuzela_dp.Laplace.params;
  dial_noise : Vuvuzela_dp.Laplace.params;
  noise_mode : Vuvuzela_dp.Noise.mode;
  dial_kind : Dialing.kind;
  jobs : int;
      (** domains for the per-onion crypto hot paths; [1] = sequential.
          Results are bit-identical at any job count. *)
  deaddrop_shards : int;
      (** conversation dead-drop store shards (>= 1); the exchange
          pair-matches per shard over the pool, bit-identical for any
          count *)
}

type metrics = {
  mutable requests_in : int;
  mutable invalid_requests : int;
  mutable duplicate_requests : int;
  mutable noise_singles : int;
  mutable noise_pairs : int;
  mutable noise_invitations : int;
  mutable rounds : int;
}

type t

val create :
  ?rng_seed:bytes ->
  ?pool:Vuvuzela_parallel.Pool.t ->
  ?telemetry:Vuvuzela_telemetry.Telemetry.t ->
  cfg:config ->
  suffix_pks:bytes list ->
  unit ->
  t
(** [suffix_pks] are the public keys of the servers after this one in the
    chain (needed to wrap noise requests).  [pool] shares a domain pool
    with other servers (the chain does this — its servers take turns);
    without it, [cfg.jobs > 1] creates a private pool owned by this
    server.

    [telemetry] (default: the nil sink) records a span per pipeline
    stage per round — [peel], [noise], [shuffle], [exchange], [reseal],
    [unpeel]; stages that do not apply to this position appear as
    zero-duration markers so coverage is total — and counts
    requests/noise into the registry.  Instrumentation never draws from
    the RNG, so rounds are bit-identical with telemetry on or off.
    @raise Invalid_argument on inconsistent position/suffix. *)

val public_key : t -> bytes

val jobs : t -> int
(** The configured degree of parallelism. *)

val shutdown : t -> unit
(** Join the server's own worker domains, if it created any.  A shared
    [?pool] is the chain's to shut down.  Idempotent. *)

val dial_kind : t -> Dialing.kind
val is_last : t -> bool
val metrics : t -> metrics

val last_histogram : t -> Deaddrop.histogram option
(** Instrumentation: the access-count histogram the last server observed
    in the most recent conversation round — exactly the adversary's view
    (§4.2). *)

(** {2 Streamed ingress}

    The pipelined relay feeds a round's batch to a server in contiguous
    chunks as they come off the wire, so the expensive per-onion peel
    overlaps with the upstream server still producing the rest of the
    batch.  Start a stream, feed it every chunk in slot order, then call
    the matching [*_finish_*] exactly once.  The one-shot entry points
    below ({!conv_forward} etc.) are these three steps with a single
    chunk, so lockstep and pipelined relays share every line of ingress
    logic and produce bit-identical results. *)

type stream
(** Incremental peel state for one round on one server: the dedup table,
    slot table, and peeled inners accumulated so far. *)

val conv_stream : t -> round:int -> stream
val dial_stream : t -> round:int -> stream

val stream_feed : t -> stream -> bytes array -> unit
(** Peel one contiguous chunk (size-check, dedup against the whole
    round so far, fan the DH + AEAD out over the pool).  Chunks must
    arrive in slot order. *)

val stream_round : stream -> int
val stream_dialing : stream -> bool

val conv_finish_forward : t -> stream -> bytes array
(** Mixing server: noise + shuffle over everything fed so far; returns
    the outgoing batch.  Equals [conv_forward] on the concatenation of
    the fed chunks. *)

val conv_finish_exchange : t -> stream -> bytes array
(** Last server: dead-drop matching + reseal over everything fed. *)

val dial_finish_forward : t -> stream -> m:int -> bytes array
val dial_finish_deliver : t -> stream -> m:int -> bytes array

(** {2 Conversation rounds} *)

val conv_forward : t -> round:int -> bytes array -> bytes array
(** Mixing server: peel, add cover traffic, shuffle.  Invalid onions are
    dropped from the forwarded batch but keep their reply slot. *)

val conv_backward : t -> round:int -> bytes array -> bytes array
(** Mixing server: unshuffle, discard own noise, seal replies.
    @raise Invalid_argument for an unknown round or wrong batch size. *)

val conv_exchange : t -> round:int -> bytes array -> bytes array
(** Last server: peel, match dead drops, seal results. *)

(** {2 Dialing rounds} *)

val dial_forward : t -> round:int -> m:int -> bytes array -> bytes array
val dial_backward : t -> round:int -> bytes array -> bytes array

val dial_deliver : t -> round:int -> m:int -> bytes array -> bytes array
(** Last server: file invitations into the [m] drops, add its own noise,
    return fixed-size acks. *)

val proposed_m : t -> int
(** The last server's §5.4 recommendation for the next dialing round's
    invitation-drop count (m = n·f/µ, estimated from the latest round's
    arrivals minus upstream noise). *)

val fetch_invitations : ?dial_round:int -> t -> index:int -> bytes list
(** Download an invitation drop from the last server (unmixed, §5.5).
    Defaults to the most recent dialing round; [?dial_round] reaches any
    of the last {!invitation_history} rounds' stores, so a
    briefly-blocked client can catch up on the invitations it missed. *)

val invitation_drop_size : ?dial_round:int -> t -> index:int -> int

val invitation_history : int
(** How many past dialing rounds' invitation stores the last server
    retains (older stores are dropped). *)

(** {2 Round aborts}

    The round supervisor's recovery path: a failed round's state is
    discarded on every server so the retry — under a fresh round number,
    with freshly drawn noise — starts clean.  Conversation and dialing
    rounds number independently, hence separate entry points. *)

val abort_conv_round : t -> round:int -> unit
val abort_dial_round : t -> round:int -> unit
(** Also discards the round's invitation store, if it was filed. *)
