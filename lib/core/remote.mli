(** The coordinator's view of a chain whose servers are separate
    processes: the same round operations {!Chain} offers in-process,
    carried over a framed TCP connection to the first hop.

    The coordinator dials server 0 ([Hello] with index -1), learns the
    full public-key list from the handshake reply ([Chain_info] — each
    server learned its suffix the same way from its successor), then
    drives lockstep rounds: send a batch frame, pump the event loop
    until the results frame (or a typed [Status], or the deadline)
    comes back.  Connection loss is never fatal here — the transport
    redials under backoff while failures surface per round as retryable
    {!Rpc.transport_error} statuses for the supervisor's existing
    abort/retry machinery. *)

type t

val connect :
  ?telemetry:Vuvuzela_telemetry.Telemetry.t ->
  ?dial_kind:Dialing.kind ->
  ?deadline_ms:float ->
  ?handshake_timeout_ms:float ->
  ?backoff_seed:string ->
  ?link:Vuvuzela_transport.Shaper.config ->
  ?flap_grace_ms:float ->
  addr:Unix.sockaddr ->
  unit ->
  (t, string) result
(** Dial the first hop and wait (at most [handshake_timeout_ms],
    default 30s) for the chain to assemble — the handshake reply only
    arrives once every server downstream has its keys.  [dial_kind]
    must match the daemons' (it sizes dialing batches).  [deadline_ms]
    bounds each round's wait for results; [None] waits forever.
    [backoff_seed] makes the reconnect backoff's full jitter
    deterministic, [link] emulates WAN characteristics on the
    coordinator → first-hop link, and [flap_grace_ms] (default [0.])
    lets a round survive a mid-round connection flap: on a drop the
    coordinator keeps pumping that long for the healed link to
    re-deliver the reply the daemon parked in its outbox. *)

val length : t -> int
val public_keys : t -> bytes list

val set_deadline_ms : t -> float option -> unit
val deadline_ms : t -> float option

val set_pipeline : t -> int option -> unit
(** [Some chunk] (clamped ≥ 1): send entry batches as streamed
    [*_batch_part] frames of [chunk] onions each, so the first hop
    peels early parts while later ones are still crossing the wire.
    [None] (the default) sends one whole-batch frame.  The daemons
    accept both framings on any round; results are bit-identical. *)

val pipeline : t -> int option

val set_flap_grace_ms : t -> float -> unit
(** Change the mid-round flap tolerance (clamped ≥ 0; [0.] restores
    fail-on-drop). *)

val flap_grace_ms : t -> float

val set_trace_ctx : t -> Vuvuzela_telemetry.Trace.context option -> unit
(** Announce this context to the first hop ahead of the next round's
    batch (an [Rpc.Trace_ctx] control frame on the same ordered link),
    so daemon hop spans parent into the coordinator's round root.
    [None] stops announcing.  Pure control plane: transcripts cover
    request/reply bytes only, so this never perturbs a digest. *)

val conversation_round :
  t -> round:int -> bytes array -> (bytes array, Rpc.status) result
(** Same contract as {!Chain.conversation_round}, including the
    entry-server ingress policy (wrong-sized requests replaced with
    random bytes of the right size).  [Error] is a typed status: one a
    server sent in place of results, or a local
    {!Rpc.transport_error}/deadline for a link that failed silently. *)

val dialing_round :
  t -> round:int -> m:int -> bytes array -> (bytes array, Rpc.status) result

val conversation_round_streamed :
  t ->
  round:int ->
  produce:((bytes array -> unit) -> unit) ->
  (bytes array, Rpc.status) result
(** Streamed-entry variant (same contract as
    {!Chain.conversation_round_streamed}): each producer chunk leaves
    as one [Conv_batch_part] frame with one chunk of lookahead (so the
    final part carries [last]), bounding the coordinator's buffered
    onions at two chunks while the first hop peels early parts.
    Results are bit-identical to {!conversation_round} on the chunk
    concatenation. *)

val dialing_round_streamed :
  t ->
  round:int ->
  m:int ->
  produce:((bytes array -> unit) -> unit) ->
  (bytes array, Rpc.status) result

val abort_round : t -> round:int -> unit
(** Best-effort [Abort] frame, forwarded hop to hop; a link that is
    down simply misses it (stale round state on a server is inert —
    every retry uses a fresh round number). *)

val abort_dialing_round : t -> round:int -> unit

val fetch_invitations : t -> dial_round:int -> index:int -> bytes list
(** Download one invitation drop from the last server (relayed down the
    chain).  Returns [[]] if the link fails — the client scans nothing
    now and catches up on a later dialing round, exactly like a blocked
    client. *)

val stats : t -> Vuvuzela_transport.Conn.stats
(** Wire counters for this endpoint (bytes, frames, reconnects). *)

val shutdown : t -> unit
(** Send [Bye] down the chain and close.  Idempotent. *)

val is_shut_down : t -> bool
