(* The inter-server wire protocol: the framed messages that cross the
   links between the entry server and the chain (§3.1's round
   coordination and §7's architecture).

   The in-process Network could pass OCaml values directly; routing every
   batch through this codec instead keeps the implementation honest about
   what actually crosses the wire — sizes, framing, and versioning — and
   gives the cost model its byte counts.

   Frame layout:  magic (u32) | version (u8) | tag (u8) | body

   Batches carry a fixed per-item length so a malformed item cannot
   desynchronize the stream. *)

open Vuvuzela_mixnet

let magic = 0x56555655 (* "VUVU" *)
let version = 1

type status = {
  round : int;
  server : int;  (** chain position reporting the failure *)
  stage : string;  (** e.g. ["conv-batch"], ["dial-results"] *)
  detail : string;
}

type message =
  | Round_announce of { round : int; deadline_ms : int }
      (** first server → clients: a conversation round is open (§3.1
          "announcing the start of a round ... waiting a fixed amount of
          time") *)
  | Dial_announce of { dial_round : int; m : int }
      (** first server → clients: dialing round parameters, including
          the §5.4-tuned drop count *)
  | Conv_batch of { round : int; onions : bytes array }
      (** entry → server 1, or server i → server i+1 (forward) *)
  | Conv_results of { round : int; replies : bytes array }
      (** backward pass *)
  | Dial_batch of { round : int; m : int; onions : bytes array }
  | Dial_results of { round : int; replies : bytes array }
  | Fetch_drop of { dial_round : int; index : int }
      (** client → last server (or CDN): download an invitation drop *)
  | Drop_contents of { dial_round : int; index : int; invitations : bytes list }
  | Status of status
      (** error frame: a server rejected a batch (framing, size, or
          protocol violation); replaces the results it cannot produce *)
  | Hello of { index : int }
      (** transport handshake, dialer → listener: who is connecting
          (chain position; [-1] is the coordinator/entry) *)
  | Chain_info of { pks : bytes list }
      (** handshake reply, listener → dialer: the public keys of the
          listener and everything downstream of it, in chain order —
          how key material propagates up a multi-process chain *)
  | Abort of { round : int; dialing : bool }
      (** coordinator → chain (forwarded hop to hop): discard this
          round's state; the supervisor is about to retry *)
  | Bye  (** graceful shutdown, forwarded down the chain *)
  | Conv_batch_part of {
      round : int;
      seq : int;
      last : bool;
      onions : bytes array;
    }
      (** pipelined relay: one contiguous chunk of a [Conv_batch], sent
          as soon as the upstream server has produced it so the receiver
          peels while the rest of the batch is still being computed.
          Parts arrive in [seq] order on a single ordered link; the part
          with [last = true] closes the batch.  Reassembling the parts
          of a round yields exactly the [Conv_batch] the lockstep relay
          would have sent. *)
  | Dial_batch_part of {
      round : int;
      m : int;
      seq : int;
      last : bool;
      onions : bytes array;
    }  (** pipelined chunk of a [Dial_batch]; [m] repeats on every part *)
  | Trace_ctx of { ctx : bytes }
      (** observability control frame, sent immediately before a batch:
          an opaque [Trace.context] blob naming the sender's open span so
          the receiver's hop span can parent into it across the process
          boundary.  Tolerated-if-absent, ignored-if-malformed: a peer
          that never sends it, or sends garbage, costs nothing but the
          cross-process parent link. *)

let tag_of = function
  | Round_announce _ -> 1
  | Dial_announce _ -> 2
  | Conv_batch _ -> 3
  | Conv_results _ -> 4
  | Dial_batch _ -> 5
  | Dial_results _ -> 6
  | Fetch_drop _ -> 7
  | Drop_contents _ -> 8
  | Status _ -> 9
  | Hello _ -> 10
  | Chain_info _ -> 11
  | Abort _ -> 12
  | Bye -> 13
  | Conv_batch_part _ -> 14
  | Dial_batch_part _ -> 15
  | Trace_ctx _ -> 16

(* Uniform-size batch: u32 count, u32 item length, then count items. *)
let write_batch w (items : bytes array) =
  let item_len =
    if Array.length items = 0 then 0 else Bytes.length items.(0)
  in
  Array.iter
    (fun b ->
      if Bytes.length b <> item_len then
        raise (Wire.Error "Rpc.write_batch: ragged batch"))
    items;
  Wire.Writer.u32 w (Array.length items);
  Wire.Writer.u32 w item_len;
  Array.iter (fun b -> Wire.Writer.raw w b) items

let read_batch r =
  let count = Wire.Reader.u32 r in
  let item_len = Wire.Reader.u32 r in
  if count > 1 lsl 26 then raise (Wire.Error "Rpc.read_batch: absurd count");
  (* The whole batch obeys the same ceiling as a frame, so a hostile
     (count, item_len) pair is rejected before any allocation. *)
  if item_len > Wire.max_frame_len || count * item_len > Wire.max_frame_len
  then
    raise
      (Wire.Error
         (Printf.sprintf "Rpc.read_batch: %d x %d B exceeds max frame (%d)"
            count item_len Wire.max_frame_len));
  Array.init count (fun _ -> Wire.Reader.bytes_fixed r item_len)

let encode msg =
  Wire.encode (fun w ->
      Wire.Writer.u32 w magic;
      Wire.Writer.u8 w version;
      Wire.Writer.u8 w (tag_of msg);
      match msg with
      | Round_announce { round; deadline_ms } ->
          Wire.Writer.u64 w round;
          Wire.Writer.u32 w deadline_ms
      | Dial_announce { dial_round; m } ->
          Wire.Writer.u64 w dial_round;
          Wire.Writer.u32 w m
      | Conv_batch { round; onions } ->
          Wire.Writer.u64 w round;
          write_batch w onions
      | Conv_results { round; replies } ->
          Wire.Writer.u64 w round;
          write_batch w replies
      | Dial_batch { round; m; onions } ->
          Wire.Writer.u64 w round;
          Wire.Writer.u32 w m;
          write_batch w onions
      | Dial_results { round; replies } ->
          Wire.Writer.u64 w round;
          write_batch w replies
      | Fetch_drop { dial_round; index } ->
          Wire.Writer.u64 w dial_round;
          Wire.Writer.u32 w index
      | Drop_contents { dial_round; index; invitations } ->
          Wire.Writer.u64 w dial_round;
          Wire.Writer.u32 w index;
          Wire.Writer.u32 w (List.length invitations);
          List.iter (fun inv -> Wire.Writer.bytes_var w inv) invitations
      | Status { round; server; stage; detail } ->
          Wire.Writer.u64 w round;
          Wire.Writer.u32 w server;
          Wire.Writer.bytes_var w (Bytes.of_string stage);
          Wire.Writer.bytes_var w (Bytes.of_string detail)
      | Hello { index } ->
          (* Biased by one so the coordinator's -1 fits a u32. *)
          Wire.Writer.u32 w (index + 1)
      | Chain_info { pks } ->
          Wire.Writer.u32 w (List.length pks);
          List.iter (fun pk -> Wire.Writer.bytes_var w pk) pks
      | Abort { round; dialing } ->
          Wire.Writer.u64 w round;
          Wire.Writer.u8 w (if dialing then 1 else 0)
      | Bye -> ()
      | Conv_batch_part { round; seq; last; onions } ->
          Wire.Writer.u64 w round;
          Wire.Writer.u32 w seq;
          Wire.Writer.u8 w (if last then 1 else 0);
          write_batch w onions
      | Dial_batch_part { round; m; seq; last; onions } ->
          Wire.Writer.u64 w round;
          Wire.Writer.u32 w m;
          Wire.Writer.u32 w seq;
          Wire.Writer.u8 w (if last then 1 else 0);
          write_batch w onions
      | Trace_ctx { ctx } -> Wire.Writer.bytes_var w ctx)

let read_seq r =
  let seq = Wire.Reader.u32 r in
  if seq > 1 lsl 26 then raise (Wire.Error "Rpc.decode: absurd part seq");
  seq

let decode b =
  Wire.decode
    (fun r ->
      if Wire.Reader.u32 r <> magic then
        raise (Wire.Error "Rpc.decode: bad magic");
      let v = Wire.Reader.u8 r in
      if v <> version then
        raise (Wire.Error (Printf.sprintf "Rpc.decode: version %d" v));
      match Wire.Reader.u8 r with
      | 1 ->
          let round = Wire.Reader.u64 r in
          let deadline_ms = Wire.Reader.u32 r in
          Round_announce { round; deadline_ms }
      | 2 ->
          let dial_round = Wire.Reader.u64 r in
          let m = Wire.Reader.u32 r in
          Dial_announce { dial_round; m }
      | 3 ->
          let round = Wire.Reader.u64 r in
          Conv_batch { round; onions = read_batch r }
      | 4 ->
          let round = Wire.Reader.u64 r in
          Conv_results { round; replies = read_batch r }
      | 5 ->
          let round = Wire.Reader.u64 r in
          let m = Wire.Reader.u32 r in
          Dial_batch { round; m; onions = read_batch r }
      | 6 ->
          let round = Wire.Reader.u64 r in
          Dial_results { round; replies = read_batch r }
      | 7 ->
          let dial_round = Wire.Reader.u64 r in
          let index = Wire.Reader.u32 r in
          Fetch_drop { dial_round; index }
      | 8 ->
          let dial_round = Wire.Reader.u64 r in
          let index = Wire.Reader.u32 r in
          let n = Wire.Reader.u32 r in
          if n > 1 lsl 26 then raise (Wire.Error "Rpc.decode: absurd count");
          let invitations =
            List.init n (fun _ -> Wire.Reader.bytes_var r)
          in
          Drop_contents { dial_round; index; invitations }
      | 9 ->
          let round = Wire.Reader.u64 r in
          let server = Wire.Reader.u32 r in
          let stage = Bytes.to_string (Wire.Reader.bytes_var r) in
          let detail = Bytes.to_string (Wire.Reader.bytes_var r) in
          Status { round; server; stage; detail }
      | 10 -> Hello { index = Wire.Reader.u32 r - 1 }
      | 11 ->
          let n = Wire.Reader.u32 r in
          if n > 1024 then raise (Wire.Error "Rpc.decode: absurd chain");
          Chain_info { pks = List.init n (fun _ -> Wire.Reader.bytes_var r) }
      | 12 ->
          let round = Wire.Reader.u64 r in
          let dialing = Wire.Reader.u8 r <> 0 in
          Abort { round; dialing }
      | 13 -> Bye
      | 14 ->
          let round = Wire.Reader.u64 r in
          let seq = read_seq r in
          let last = Wire.Reader.u8 r <> 0 in
          Conv_batch_part { round; seq; last; onions = read_batch r }
      | 15 ->
          let round = Wire.Reader.u64 r in
          let m = Wire.Reader.u32 r in
          let seq = read_seq r in
          let last = Wire.Reader.u8 r <> 0 in
          Dial_batch_part { round; m; seq; last; onions = read_batch r }
      | 16 ->
          (* The blob is bounded but otherwise uninterpreted here;
             [Trace.decode_context] decides whether it is usable. *)
          let ctx = Wire.Reader.bytes_var r in
          if Bytes.length ctx > 256 then
            raise (Wire.Error "Rpc.decode: absurd trace context");
          Trace_ctx { ctx }
      | t -> raise (Wire.Error (Printf.sprintf "Rpc.decode: unknown tag %d" t)))
    b

let equal_message a b =
  match (a, b) with
  | ( Round_announce { round = r1; deadline_ms = d1 },
      Round_announce { round = r2; deadline_ms = d2 } ) -> r1 = r2 && d1 = d2
  | ( Dial_announce { dial_round = r1; m = m1 },
      Dial_announce { dial_round = r2; m = m2 } ) -> r1 = r2 && m1 = m2
  | Conv_batch x, Conv_batch y -> x.round = y.round && x.onions = y.onions
  | Conv_results x, Conv_results y -> x.round = y.round && x.replies = y.replies
  | Dial_batch x, Dial_batch y ->
      x.round = y.round && x.m = y.m && x.onions = y.onions
  | Dial_results x, Dial_results y -> x.round = y.round && x.replies = y.replies
  | ( Fetch_drop { dial_round = r1; index = i1 },
      Fetch_drop { dial_round = r2; index = i2 } ) -> r1 = r2 && i1 = i2
  | Drop_contents x, Drop_contents y ->
      x.dial_round = y.dial_round && x.index = y.index
      && x.invitations = y.invitations
  | Status x, Status y -> x = y
  | Hello { index = i1 }, Hello { index = i2 } -> i1 = i2
  | Chain_info { pks = p1 }, Chain_info { pks = p2 } -> p1 = p2
  | ( Abort { round = r1; dialing = d1 },
      Abort { round = r2; dialing = d2 } ) -> r1 = r2 && d1 = d2
  | Bye, Bye -> true
  | Conv_batch_part x, Conv_batch_part y ->
      x.round = y.round && x.seq = y.seq && x.last = y.last
      && x.onions = y.onions
  | Dial_batch_part x, Dial_batch_part y ->
      x.round = y.round && x.m = y.m && x.seq = y.seq && x.last = y.last
      && x.onions = y.onions
  | Trace_ctx { ctx = c1 }, Trace_ctx { ctx = c2 } -> c1 = c2
  | _ -> false

(* Split a logical batch into the contiguous slices the pipelined relay
   ships as [*_batch_part] frames.  An empty batch is one empty part so
   a [last = true] frame always closes the round. *)
let split_parts ~chunk onions =
  let n = Array.length onions in
  if n = 0 then [| onions |]
  else
    let chunk = max 1 chunk in
    let parts = (n + chunk - 1) / chunk in
    Array.init parts (fun p ->
        Array.sub onions (p * chunk) (min chunk (n - (p * chunk))))

(* Byte size of a message on the wire without building it (used by the
   cost model's bandwidth accounting and the round reports). *)
let conv_batch_bytes ~count ~item_len = 4 + 1 + 1 + 8 + 4 + 4 + (count * item_len)

(* A [Dial_batch] additionally carries the u32 drop count [m]. *)
let dial_batch_bytes ~count ~item_len = conv_batch_bytes ~count ~item_len + 4

let pp_status ppf { round; server; stage; detail } =
  Format.fprintf ppf "round %d: server %d [%s]: %s" round server stage detail

(* Well-known coordinator statuses.  These never cross a link (there is
   nobody left to send them to), but they share the [status] type so the
   round supervisor and the reports treat every abort reason
   uniformly. *)

let shutdown_stage = "chain-shutdown"
let deadline_stage = "deadline"
let transport_stage = "transport"

let transport_error ~round ~server ~detail =
  { round; server; stage = transport_stage; detail }

let chain_shutdown ~round =
  {
    round;
    server = 0;
    stage = shutdown_stage;
    detail = "round attempted after Chain.shutdown";
  }

let deadline_exceeded ~round ~deadline_ms =
  {
    round;
    server = 0;
    stage = deadline_stage;
    detail = Printf.sprintf "exceeded %.0f ms round deadline" deadline_ms;
  }

let is_chain_shutdown st = st.stage = shutdown_stage

(* A shut-down chain stays shut down; everything else (framing faults,
   crashes, deadline misses) is transient under the paper's model — a
   crashed server restarts, so a fresh attempt can succeed. *)
let retryable st = not (is_chain_shutdown st)
