(** Coordinator-side round inspector — the [--obs-dir] collection mode.

    A deployment run with an observability directory leaves behind:

    - [events.jsonl] — one event per completed round (counts, latency,
      admission split, aborts, cumulative privacy spend), appended as
      rounds finish;
    - [trace.jsonl], [metrics.prom], [metrics.json] — the coordinator's
      own telemetry exports;
    - [daemon-I-metrics.prom], [daemon-I-healthz.json],
      [daemon-I-trace.jsonl] — each scrape target's endpoints, fetched
      at {!finalize} while the daemons are still alive;
    - [merged-trace.jsonl] — the per-process traces merged with
      {!Vuvuzela_telemetry.Trace.merge_jsonl}, every daemon hop span
      parenting transitively into the coordinator's round root;
    - [digest.txt] — the human-readable rendering of {!render_digest}.

    Collection is pure control plane: transcripts are bit-identical
    with or without it. *)

type t

val create :
  dir:string -> ?scrape:(int * Unix.sockaddr) list -> unit ->
  (t, string) result
(** Create [dir] (and parents) if needed and open the event log for
    appending.  [scrape] lists [(server index, metrics address)] pairs
    — each daemon's [--metrics-listen] address — collected at
    {!finalize}. *)

val dir : t -> string

val record_event : t -> Vuvuzela_telemetry.Json.t -> unit
(** Append one raw event line (flushed immediately); dropped after
    {!finalize}. *)

val record_round :
  t ->
  kind:string ->
  round:int ->
  attempts:int ->
  batch:int ->
  admitted:int ->
  late:int ->
  wire_bytes:int ->
  elapsed_ms:float ->
  acks:int ->
  aborts:string list ->
  failed:bool ->
  ?budget:float * float ->
  unit ->
  unit
(** Append one round event.  [kind] is ["conv"] or ["dial"]; [aborts]
    holds each failed attempt's rendered status in order; [budget] is
    the ledger's worst-case cumulative [(ε′, δ′)] after this round. *)

val finalize : ?telemetry:Vuvuzela_telemetry.Telemetry.t -> t -> unit
(** Scrape the daemons (they must still be running — call before the
    Bye cascade), write the coordinator's exports from [telemetry],
    merge the traces, close the event log and render [digest.txt].
    Scrape and merge failures are recorded as events, never raised.
    Idempotent. *)

val render_digest : dir:string -> (string, string) result
(** Re-render the per-round digest from an observability directory:
    one line per round plus a hop-by-hop latency waterfall (durations
    from the merged trace — cross-process timestamps are incomparable
    epochs, so only durations are drawn), an abort/late timeline, and
    the cumulative privacy-budget endpoint.  This is the
    [vuvuzela inspect] subcommand; it needs only the files on disk, so
    it works long after the deployment is gone. *)
