(** One chain server as its own OS process: the engine behind the
    [vuvuzela-server] executable (and the forked processes of the
    loopback tests).

    Topology is the paper's §7 chain: the daemon listens for exactly
    one upstream peer (the coordinator, or the previous server) and —
    unless it is the last server — maintains one dialed connection to
    [next].  Key material assembles bottom-up at handshake time: the
    last server derives its keys immediately; every other server dials
    its successor, learns the downstream public keys from the
    [Chain_info] reply, and only then creates its own {!Server} and
    starts answering its own upstream handshake.  A restarted server
    re-derives everything from its seed and rejoins the same way, which
    is what lets the supervisor's retry outlast a crash.

    Churn resilience: frames owed upstream while that link is down wait
    in a bounded outbox and are flushed (after the handshake reply) when
    the peer reconnects, and a lost downstream link gets [flap_grace_ms]
    to heal before the in-flight round is abandoned — so a connection
    flap that recovers inside the grace costs latency, not the round.

    A [fault_plan] arms the socket-level counterparts of the in-process
    link faults, fired at this daemon's incoming link (plan entries
    must name [server = index]): [Crash] resets the upstream
    connection, [Drop_link] swallows the batch (the coordinator's
    deadline catches it), frame faults mutate the received frame before
    decoding (the typed rejection crosses the wire as a [Status]),
    [Delay_ms] and [Slow_link] stall the process for real,
    [Tamper_slot] flips an onion byte, [Flap] resets the upstream
    socket but keeps the batch (the reply waits in the outbox),
    [Partition] drops the batch and resets the socket. *)

type config = {
  listen : Unix.sockaddr;
  next : Unix.sockaddr option;  (** [None] for the last server *)
  index : int;  (** 0-based chain position *)
  chain_len : int;
  seed : string option;
      (** same derivation as {!Chain.create}: a multi-process chain
          with seed [s] is bit-identical to [Chain.create ~seed:s] *)
  noise : Vuvuzela_dp.Laplace.params;
  dial_noise : Vuvuzela_dp.Laplace.params;
  noise_mode : Vuvuzela_dp.Noise.mode;
  dial_kind : Dialing.kind;
  jobs : int;
  deaddrop_shards : int;
      (** conversation dead-drop store shards (last server; >= 1) *)
  pipeline_chunk : int option;
      (** [Some chunk]: forward batches leave for the next server as
          streamed [*_batch_part] frames of [chunk] onions each, so the
          successor peels early parts while later ones are still in
          flight.  [None]: one whole-batch frame.  Ingress always
          accepts both framings; results are bit-identical either
          way. *)
  fault_plan : Vuvuzela_faults.Fault.plan option;
  link : Vuvuzela_transport.Shaper.config option;
      (** emulated WAN characteristics of the downstream link (jitter
          seed derived per link from [seed] when present) *)
  flap_grace_ms : float;
      (** grace for a lost downstream link to heal before the in-flight
          round is abandoned with a [Status]; [0.] restores the old
          abort-on-drop behaviour *)
  metrics_listen : Unix.sockaddr option;
      (** mount the scrape endpoints on this address (the
          [--metrics-listen] flag): [/metrics] is the daemon's own
          registry in Prometheus text format, [/healthz] a JSON liveness
          document (chain position, peer connectivity, round progress,
          uptime), [/trace] the span trace as JSONL for the
          coordinator's merge.  Served from the daemon's own select
          loop; requests never block the round pipeline.  When set (or
          when [trace_out] is), a telemetry sink with merge origin
          [index + 1] is created if the embedder passed none. *)
  trace_out : string option;
      (** write the daemon's span trace (JSONL, one span per line) to
          this path on shutdown *)
}

val run :
  ?telemetry:Vuvuzela_telemetry.Telemetry.t ->
  ?log:(string -> unit) ->
  ?on_ready:(unit -> unit) ->
  config ->
  (unit, string) result
(** Run until a [Bye] arrives from upstream (forwarded down the chain
    first), then shut the server down and return.  [Error] only for
    startup failures (bad config, cannot bind [listen]) — runtime link
    failures are survived: upstream may disconnect and re-accept,
    downstream redials under backoff.  [on_ready] fires once the
    server exists and handshakes can be answered. *)
