(* Seed conversation dead-drop store, retained verbatim as the
   differential oracle for the rewritten {!Deaddrop} (the Chacha20_ref /
   Fe25519_ref playbook).  Only `test/prop/prop_deaddrop.ml` should use
   this module; production code goes through {!Deaddrop}.

   Known quirks preserved on purpose:
   - [histogram] recomputes [List.length] per drop (O(accesses));
   - [resolve] fills every lone slot with the *same* mutable
     [empty_result] buffer. *)

type access = { slot : int; sealed : bytes }

type t = {
  drops : (string, access list) Hashtbl.t;
      (* key: drop id; value: accesses in arrival order (newest first) *)
  mutable total_accesses : int;
}

let create () = { drops = Hashtbl.create 1024; total_accesses = 0 }

let clear t =
  Hashtbl.reset t.drops;
  t.total_accesses <- 0

(* Record one exchange request. *)
let put t ~slot ~drop_id ~sealed =
  let key = Bytes.to_string drop_id in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.drops key) in
  Hashtbl.replace t.drops key ({ slot; sealed } :: prev);
  t.total_accesses <- t.total_accesses + 1

let empty_result = Bytes.make Types.exchange_result_len '\000'

(* Resolve all drops: returns the per-slot results.  [n_slots] is the
   batch size; every slot receives exactly [Types.exchange_result_len]
   bytes. *)
let resolve t ~n_slots =
  let results = Array.make n_slots empty_result in
  Hashtbl.iter
    (fun _ accesses ->
      match List.rev accesses with
      | [ _ ] -> () (* lone access: empty result *)
      | a :: b :: _rest ->
          (* First two accesses exchange contents; any later (necessarily
             adversarial) duplicates keep the empty result. *)
          results.(a.slot) <- b.sealed;
          results.(b.slot) <- a.sealed
      | [] -> ())
    t.drops;
  results

type histogram = { m1 : int; m2 : int; m_more : int }

let histogram t =
  Hashtbl.fold
    (fun _ accesses acc ->
      match List.length accesses with
      | 1 -> { acc with m1 = acc.m1 + 1 }
      | 2 -> { acc with m2 = acc.m2 + 1 }
      | n when n > 2 -> { acc with m_more = acc.m_more + 1 }
      | _ -> acc)
    t.drops
    { m1 = 0; m2 = 0; m_more = 0 }
