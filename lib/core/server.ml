(* A Vuvuzela chain server (Algorithm 2).

   Mixing servers (every position but the last) peel one onion layer,
   inject cover traffic, shuffle, and forward; on the way back they
   unshuffle, discard their own noise, and seal replies.  The last server
   hosts the dead drops: it peels the final layer, matches exchanges, and
   seals results.

   The same object also implements the dialing round (§5): mixing servers
   add per-drop noise invitations; the last server files invitations into
   the invitation store that clients later download from. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela_mixnet
module Pool = Vuvuzela_parallel.Pool
module Telemetry = Vuvuzela_telemetry.Telemetry

let log_src = Logs.Src.create "vuvuzela.server" ~doc:"Vuvuzela chain server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  position : int;  (** 0-based index in the chain *)
  chain_len : int;
  noise : Laplace.params;  (** conversation noise (µ, b) *)
  dial_noise : Laplace.params;  (** per-invitation-drop noise *)
  noise_mode : Noise.mode;
  dial_kind : Dialing.kind;  (** deployment-wide invitation format *)
  jobs : int;  (** domains for the per-onion crypto hot paths *)
  deaddrop_shards : int;  (** conversation dead-drop store shards (>= 1) *)
}

type slot = Valid of { index : int; secret : bytes } | Invalid
(* [index] is the request's position in this server's outgoing batch
   before shuffling. *)

type round_state = {
  slots : slot array;  (** one per incoming request *)
  perm : Shuffle.permutation;  (** over the outgoing batch *)
  n_forwarded : int;
  reply_payload_len : int;  (** result size arriving from downstream *)
}

type metrics = {
  mutable requests_in : int;
  mutable invalid_requests : int;
  mutable duplicate_requests : int;
  mutable noise_singles : int;
  mutable noise_pairs : int;
  mutable noise_invitations : int;
  mutable rounds : int;
}

type t = {
  cfg : config;
  secret : bytes;
  public : bytes;
  suffix_pks : bytes list;  (** public keys of the downstream servers *)
  pool : Pool.t option;  (** [None] ⇒ sequential *)
  owns_pool : bool;  (** created here (vs. shared by the chain) *)
  rng : Drbg.t;
  conv_rounds : (int, round_state) Hashtbl.t;
  dial_rounds : (int, round_state) Hashtbl.t;
  drops : Deaddrop.Sharded.t;  (** last server only *)
  mutable invitations : (int * Deaddrop.Invitation.store) list;
      (** last server only; newest round first, at most
          [invitation_history] rounds so briefly-blocked clients can
          catch up on missed downloads *)
  mutable last_histogram : Deaddrop.histogram option;
      (** instrumentation: what a compromised last server observes *)
  mutable proposed_m : int;
      (** last server's §5.4 recommendation for the next dialing round *)
  metrics : metrics;
  tel : Telemetry.t option;
      (** the deployment's telemetry sink; [None] is the nil sink *)
}

let create ?rng_seed ?pool ?telemetry ~cfg ~suffix_pks () =
  let rng =
    match rng_seed with
    | Some seed -> Drbg.create ~seed
    | None -> Drbg.create_system ()
  in
  let secret, public = Drbg.keypair ~rng () in
  if cfg.position < 0 || cfg.position >= cfg.chain_len then
    invalid_arg "Server.create: bad position";
  if List.length suffix_pks <> cfg.chain_len - cfg.position - 1 then
    invalid_arg "Server.create: suffix length mismatch";
  (* A chain shares one pool across its servers (they take turns, so
     per-server pools would idle); a standalone server with [jobs > 1]
     gets its own. *)
  let pool, owns_pool =
    match pool with
    | Some p -> (Some p, false)
    | None when cfg.jobs > 1 -> (Some (Pool.create ~jobs:cfg.jobs), true)
    | None -> (None, false)
  in
  {
    cfg;
    secret;
    public;
    suffix_pks;
    pool;
    owns_pool;
    rng;
    conv_rounds = Hashtbl.create 8;
    dial_rounds = Hashtbl.create 8;
    drops = Deaddrop.Sharded.create ~shards:cfg.deaddrop_shards ();
    invitations = [];
    last_histogram = None;
    proposed_m = 1;
    metrics =
      {
        requests_in = 0;
        invalid_requests = 0;
        duplicate_requests = 0;
        noise_singles = 0;
        noise_pairs = 0;
        noise_invitations = 0;
        rounds = 0;
      };
    tel = telemetry;
  }

let public_key t = t.public
let jobs t = t.cfg.jobs

let shutdown t =
  match t.pool with
  | Some p when t.owns_pool -> Pool.shutdown p
  | _ -> ()

(* Fan a pure per-item function out over the pool (sequential when the
   server runs with jobs = 1).  The combinators write slot [i] of the
   output from slot [i] of the input, so results are bit-identical to
   [Array.mapi] at any job count; all RNG draws, metrics, and table
   updates stay on the coordinating domain. *)
let par_mapi t f a =
  match t.pool with Some p -> Pool.mapi_array p f a | None -> Array.mapi f a

let proposed_m t = t.proposed_m
let dial_kind t = t.cfg.dial_kind

(* How many past dialing rounds' invitation stores the last server keeps
   on hand, so a briefly-blocked client can still download the drops it
   missed once it reconnects. *)
let invitation_history = 8
let is_last t = t.cfg.position = t.cfg.chain_len - 1
let metrics t = t.metrics
let last_histogram t = t.last_histogram

(* Number of downstream servers (those that still add reply layers under
   this server's results). *)
let downstream t = t.cfg.chain_len - t.cfg.position - 1

(* ------------------------------------------------------------------ *)
(* Streaming peel                                                      *)
(* ------------------------------------------------------------------ *)

(* A round's ingress is a stream: the pipelined relay feeds the batch in
   contiguous chunks as they come off the wire, and the expensive peel
   happens per chunk — so this server overlaps its DH + AEAD work with
   the upstream server still producing the rest of the batch.  The
   lockstep path uses the same machinery with a single chunk, so the two
   modes share every line of ingress logic.

   Determinism: chunks arrive in slot order on one ordered link, the
   dedup table and valid-index counter persist across feeds, and the
   peel itself is a pure per-onion function — so the final (slots,
   inners) pair is byte-identical to peeling the whole batch at once,
   at any chunk size and any job count. *)
type stream = {
  s_round : int;
  s_dialing : bool;
  s_expected_len : int;
  s_seen : (string, unit) Hashtbl.t;  (** dedup across the whole round *)
  mutable s_slots_rev : slot list;
  mutable s_inners_rev : bytes list;
  mutable s_n_valid : int;
  mutable s_n_in : int;
}

let stream_round st = st.s_round
let stream_dialing st = st.s_dialing

(* Expected request size arriving at this server: the payload plus one
   onion layer per remaining server. *)
let conv_request_len t =
  Onion.request_size
    ~chain_len:(t.cfg.chain_len - t.cfg.position)
    ~payload_len:Types.exchange_payload_len

let dial_request_len t =
  Onion.request_size
    ~chain_len:(t.cfg.chain_len - t.cfg.position)
    ~payload_len:(Dialing.payload_len t.cfg.dial_kind)

let make_stream ~round ~dialing ~expected_len =
  {
    s_round = round;
    s_dialing = dialing;
    s_expected_len = expected_len;
    s_seen = Hashtbl.create 64;
    s_slots_rev = [];
    s_inners_rev = [];
    s_n_valid = 0;
    s_n_in = 0;
  }

let conv_stream t ~round =
  make_stream ~round ~dialing:false ~expected_len:(conv_request_len t)

let dial_stream t ~round =
  make_stream ~round ~dialing:true ~expected_len:(dial_request_len t)

(* Peel one chunk of the round's ingress.

   Two ingress defenses run before any request enters the mix:

   - size uniformity ([expected_len]): a wrong-sized request is dropped;
     it could otherwise be traced by its size through every hop;
   - deduplication: a byte-identical copy of an earlier request anywhere
     in the round (the table spans chunks) is dropped.  Without this, an
     adversary who replays a victim's onion makes her dead drop receive
     three accesses — m_more is observable and NOT covered by the
     (m1, m2) noise, so replay would reveal that the victim is in a
     conversation. *)
let stream_feed t st (onions : bytes array) =
  Telemetry.stage t.tel ~name:"peel" ~round:st.s_round
    ~server:t.cfg.position ~dialing:st.s_dialing
  @@ fun () ->
  (* Pass 1 (coordinator): the cheap ingress checks, in slot order —
     they share the round's dedup table. *)
  let admitted =
    Array.map
      (fun onion ->
        if Bytes.length onion <> st.s_expected_len then `Bad_size
        else begin
          let key = Bytes.to_string onion in
          if Hashtbl.mem st.s_seen key then `Duplicate
          else begin
            Hashtbl.replace st.s_seen key ();
            `Peel
          end
        end)
      onions
  in
  (* Pass 2 (fan-out): the expensive DH + AEAD peel, pure per slot. *)
  let peeled =
    par_mapi t
      (fun i onion ->
        match admitted.(i) with
        | `Peel -> Onion.peel ~server_sk:t.secret ~round:st.s_round onion
        | `Bad_size | `Duplicate -> None)
      onions
  in
  (* Pass 3 (coordinator): assign batch indices in slot order, count. *)
  Array.iteri
    (fun i admit ->
      match (admit, peeled.(i)) with
      | `Peel, Some (inner, secret) ->
          st.s_slots_rev <-
            Valid { index = st.s_n_valid; secret } :: st.s_slots_rev;
          st.s_n_valid <- st.s_n_valid + 1;
          st.s_inners_rev <- inner :: st.s_inners_rev
      | `Duplicate, _ ->
          t.metrics.duplicate_requests <- t.metrics.duplicate_requests + 1;
          st.s_slots_rev <- Invalid :: st.s_slots_rev
      | (`Bad_size | `Peel), _ ->
          t.metrics.invalid_requests <- t.metrics.invalid_requests + 1;
          st.s_slots_rev <- Invalid :: st.s_slots_rev)
    admitted;
  st.s_n_in <- st.s_n_in + Array.length onions;
  t.metrics.requests_in <- t.metrics.requests_in + Array.length onions;
  match t.tel with
  | None -> ()
  | Some _ ->
      let server = [ ("server", string_of_int t.cfg.position) ] in
      Telemetry.add_counter t.tel ~labels:server
        ~by:(float_of_int (Array.length onions))
        "vuvuzela_requests_total"

(* Materialize the accumulated ingress in slot order. *)
let stream_collect t st =
  let slots = Array.of_list (List.rev st.s_slots_rev) in
  let inners = Array.of_list (List.rev st.s_inners_rev) in
  (match t.tel with
  | None -> ()
  | Some _ ->
      let bad = st.s_n_in - st.s_n_valid in
      if bad > 0 then
        Telemetry.add_counter t.tel
          ~labels:[ ("server", string_of_int t.cfg.position) ]
          ~by:(float_of_int bad) "vuvuzela_rejected_requests_total");
  (slots, inners)


(* Noise onions are planned in two stages so the wrapping crypto can
   fan out: the coordinator draws every random input (payload bytes and
   per-layer ephemeral secrets — in exactly the order the one-shot
   [Onion.wrap] would have consumed the DRBG), then the pure
   [Onion.wrap_with] runs on the pool.  A spec is one pending noise
   onion. *)
type noise_spec = { payload : bytes; eph_sks : bytes array }

let noise_spec t payload =
  {
    payload;
    eph_sks =
      Onion.draw_eph_sks ~rng:t.rng ~chain_len:(List.length t.suffix_pks) ();
  }

(* Wrap the planned noise for the downstream chain, exactly as client
   requests arriving at the next server look. *)
let wrap_noise_specs t ~round specs =
  par_mapi t
    (fun _ { payload; eph_sks } ->
      (Onion.wrap_with ~eph_sks ~server_pks:t.suffix_pks ~round payload)
        .Onion.onion)
    specs

let shuffle_and_record t table ~round ~slots ~reply_payload_len batch =
  let perm = Shuffle.random_permutation ~rng:t.rng (Array.length batch) in
  Hashtbl.replace table round
    { slots; perm; n_forwarded = Array.length batch; reply_payload_len };
  t.metrics.rounds <- t.metrics.rounds + 1;
  Shuffle.apply perm batch

(* Backward pass common to both protocols: unshuffle, keep the first
   [n_valid] results (ours; noise occupied the tail), seal a reply per
   incoming slot.  Invalid slots get a dummy of the correct size so batch
   alignment and sizes stay uniform. *)
let unshuffle_and_reply t table ~round ~dialing (results : bytes array) =
  match Hashtbl.find_opt table round with
  | None -> invalid_arg "Server: backward pass for unknown round"
  | Some st ->
      Hashtbl.remove table round;
      if Array.length results <> st.n_forwarded then
        invalid_arg "Server: result batch size mismatch";
      let unshuffled =
        Telemetry.stage t.tel ~name:"unpeel" ~round ~server:t.cfg.position
          ~dialing (fun () -> Shuffle.unapply st.perm results)
      in
      Telemetry.stage t.tel ~name:"reseal" ~round ~server:t.cfg.position
        ~dialing
      @@ fun () ->
      let dummy_len = st.reply_payload_len + Onion.reply_overhead in
      (* Dummies consume the DRBG in slot order on the coordinator
         (sealing draws nothing, so the stream matches the old
         interleaved loop); the AEAD seals then fan out. *)
      let dummies =
        Array.map
          (function
            | Valid _ -> Bytes.empty
            | Invalid -> Drbg.generate t.rng dummy_len)
          st.slots
      in
      par_mapi t
        (fun i -> function
          | Valid { index; secret } ->
              Onion.seal_reply ~secret ~round unshuffled.(index)
          | Invalid -> dummies.(i))
        st.slots

(* ------------------------------------------------------------------ *)
(* Conversation protocol                                               *)
(* ------------------------------------------------------------------ *)

(* A noise exchange payload: random dead drop, random "sealed" bytes
   (real sealed messages are uniformly distributed, so uniform bytes are
   indistinguishable). *)
let noise_exchange_payload ?(drop = None) t =
  let drop_id =
    match drop with Some d -> d | None -> Drbg.generate t.rng Types.drop_id_len
  in
  Bytes_util.concat
    [ drop_id; Drbg.generate t.rng Types.sealed_message_len ]

(* Cover traffic (Algorithm 2 step 2): ⌈n1⌉ single accesses and ⌈n2/2⌉
   paired accesses, wrapped for the downstream chain. *)
let conv_noise t ~round =
  let plan = Noise.conversation ~rng:t.rng ~mode:t.cfg.noise_mode t.cfg.noise in
  t.metrics.noise_singles <- t.metrics.noise_singles + plan.singles;
  t.metrics.noise_pairs <- t.metrics.noise_pairs + plan.pairs;
  Telemetry.add_counter t.tel
    ~labels:[ ("kind", "single") ]
    ~by:(float_of_int plan.singles) "vuvuzela_noise_onions_total";
  Telemetry.add_counter t.tel
    ~labels:[ ("kind", "pair") ]
    ~by:(float_of_int (2 * plan.pairs))
    "vuvuzela_noise_onions_total";
  let out = ref [] in
  for _ = 1 to plan.singles do
    out := noise_spec t (noise_exchange_payload t) :: !out
  done;
  for _ = 1 to plan.pairs do
    let drop = Drbg.generate t.rng Types.drop_id_len in
    out := noise_spec t (noise_exchange_payload ~drop:(Some drop) t) :: !out;
    out := noise_spec t (noise_exchange_payload ~drop:(Some drop) t) :: !out
  done;
  wrap_noise_specs t ~round (Array.of_list !out)

(* Forward pass of a mixing server: peel (already done, chunk by chunk,
   by [stream_feed]), add noise, shuffle.  The stage spans
   ([noise]/[shuffle], plus a zero-duration [exchange] marker — mixing
   servers host no dead drops) wrap the work without reordering it: each
   thunk runs exactly once, in place, so the DRBG stream is identical
   with telemetry on or off, pipelined or not. *)
let conv_finish_forward t st =
  if is_last t then invalid_arg "Server.conv_forward: last server";
  if st.s_dialing then
    invalid_arg "Server.conv_finish_forward: dialing stream";
  let round = st.s_round in
  let pos = t.cfg.position in
  let slots, inners = stream_collect t st in
  let noise =
    Telemetry.stage t.tel ~name:"noise" ~round ~server:pos (fun () ->
        conv_noise t ~round)
  in
  Telemetry.mark t.tel ~name:"exchange" ~round ~server:pos ();
  Log.debug (fun m ->
      m "server %d: round %d fwd: %d in, %d valid, %d noise"
        t.cfg.position round st.s_n_in (Array.length inners)
        (Array.length noise));
  let reply_payload_len =
    Types.exchange_result_len + (Onion.reply_overhead * downstream t)
  in
  Telemetry.stage t.tel ~name:"shuffle" ~round ~server:pos (fun () ->
      shuffle_and_record t t.conv_rounds ~round ~slots ~reply_payload_len
        (Array.append inners noise))

let conv_forward t ~round onions =
  let st = conv_stream t ~round in
  stream_feed t st onions;
  conv_finish_forward t st

let conv_backward t ~round results =
  unshuffle_and_reply t t.conv_rounds ~round ~dialing:false results

(* The last server: dead-drop matching over the streamed ingress, record
   the observable histogram, seal results (Algorithm 2 steps 3b/4). *)
let conv_finish_exchange t st =
  if not (is_last t) then invalid_arg "Server.conv_exchange: not last server";
  if st.s_dialing then
    invalid_arg "Server.conv_finish_exchange: dialing stream";
  let round = st.s_round in
  let pos = t.cfg.position in
  let slots, inners = stream_collect t st in
  (* The last server adds no conversation noise and never shuffles (its
     output goes straight back up); zero-duration markers keep stage
     coverage total for every (round, server) pair. *)
  Telemetry.mark t.tel ~name:"noise" ~round ~server:pos ();
  Telemetry.mark t.tel ~name:"shuffle" ~round ~server:pos ();
  let results =
    Telemetry.stage t.tel ~name:"exchange" ~round ~server:pos (fun () ->
        Deaddrop.Sharded.clear t.drops;
        Array.iteri
          (fun slot payload ->
            if Bytes.length payload = Types.exchange_payload_len then begin
              let drop_id = Bytes.sub payload 0 Types.drop_id_len in
              let sealed =
                Bytes.sub payload Types.drop_id_len Types.sealed_message_len
              in
              Deaddrop.Sharded.put t.drops ~slot ~drop_id ~sealed
            end)
          inners;
        t.last_histogram <- Some (Deaddrop.Sharded.histogram t.drops);
        t.metrics.rounds <- t.metrics.rounds + 1;
        Deaddrop.Sharded.resolve ?pool:t.pool t.drops
          ~n_slots:(Array.length inners))
  in
  Log.debug (fun m ->
      let h = Deaddrop.Sharded.histogram t.drops in
      m "server %d: round %d exchange: %d requests, m1=%d m2=%d"
        t.cfg.position round (Array.length inners) h.Deaddrop.m1
        h.Deaddrop.m2);
  Telemetry.mark t.tel ~name:"unpeel" ~round ~server:pos ();
  Telemetry.stage t.tel ~name:"reseal" ~round ~server:pos
  @@ fun () ->
  (* Seal each result under the layer secret of its request.  Dummies
     (RNG) first, in slot order; the seals fan out. *)
  let dummy_len = Types.exchange_result_len + Onion.reply_overhead in
  let dummies =
    Array.map
      (function
        | Valid _ -> Bytes.empty | Invalid -> Drbg.generate t.rng dummy_len)
      slots
  in
  par_mapi t
    (fun i -> function
      | Valid { index; secret } -> Onion.seal_reply ~secret ~round results.(index)
      | Invalid -> dummies.(i))
    slots

let conv_exchange t ~round onions =
  let st = conv_stream t ~round in
  stream_feed t st onions;
  conv_finish_exchange t st

(* ------------------------------------------------------------------ *)
(* Dialing protocol                                                    *)
(* ------------------------------------------------------------------ *)

(* Mixing-server noise: ⌈max(0, Laplace)⌉ noise invitations per drop
   (§5.3: every server must noise every drop). *)
let dial_noise t ~round ~m =
  let out = ref [] in
  for index = 0 to m - 1 do
    let n = Noise.dialing_per_drop ~rng:t.rng ~mode:t.cfg.noise_mode t.cfg.dial_noise in
    t.metrics.noise_invitations <- t.metrics.noise_invitations + n;
    for _ = 1 to n do
      out :=
        noise_spec t (Dialing.noise ~rng:t.rng ~kind:t.cfg.dial_kind ~index ())
        :: !out
    done
  done;
  Telemetry.add_counter t.tel
    ~labels:[ ("kind", "invitation") ]
    ~by:(float_of_int (List.length !out))
    "vuvuzela_noise_onions_total";
  wrap_noise_specs t ~round (Array.of_list !out)

let dial_finish_forward t st ~m =
  if is_last t then invalid_arg "Server.dial_forward: last server";
  if not st.s_dialing then
    invalid_arg "Server.dial_finish_forward: conversation stream";
  let round = st.s_round in
  let pos = t.cfg.position in
  let slots, inners = stream_collect t st in
  let noise =
    Telemetry.stage t.tel ~name:"noise" ~round ~server:pos ~dialing:true
      (fun () -> dial_noise t ~round ~m)
  in
  Telemetry.mark t.tel ~name:"exchange" ~round ~server:pos ~dialing:true ();
  let reply_payload_len =
    Types.dial_result_len + (Onion.reply_overhead * downstream t)
  in
  Telemetry.stage t.tel ~name:"shuffle" ~round ~server:pos ~dialing:true
    (fun () ->
      shuffle_and_record t t.dial_rounds ~round ~slots ~reply_payload_len
        (Array.append inners noise))

let dial_forward t ~round ~m onions =
  let st = dial_stream t ~round in
  stream_feed t st onions;
  dial_finish_forward t st ~m

let dial_backward t ~round results =
  unshuffle_and_reply t t.dial_rounds ~round ~dialing:true results

let dial_ack = Bytes.make Types.dial_result_len '\x01'

(* Last server: file invitations into drops, add its own per-drop noise
   (the last server's noise need not transit the mixnet), ack. *)
let dial_finish_deliver t st ~m =
  if not (is_last t) then invalid_arg "Server.dial_deliver: not last server";
  if not st.s_dialing then
    invalid_arg "Server.dial_finish_deliver: conversation stream";
  let round = st.s_round in
  let pos = t.cfg.position in
  let slots, inners = stream_collect t st in
  let store = Deaddrop.Invitation.create ~m in
  Telemetry.stage t.tel ~name:"exchange" ~round ~server:pos ~dialing:true
    (fun () ->
      let arrived = ref 0 in
      let expected_len = Dialing.invitation_len t.cfg.dial_kind in
      Array.iter
        (fun payload ->
          match Dialing.decode_payload payload with
          | Ok (index, invitation)
            when Bytes.length invitation = expected_len
                 && (index = Types.noop_drop || (index >= 0 && index < m)) ->
              if index <> Types.noop_drop then incr arrived;
              Deaddrop.Invitation.put store ~index invitation
          | Ok _ | Error _ -> ())
        inners;
      (* §5.4: propose m for the next round so each drop carries roughly µ
         real invitations.  The arrivals include the mixing servers' noise
         ((chain_len−1)·µ per drop on average), which the last server
         subtracts out before applying m = n·f/µ. *)
      let mu = t.cfg.dial_noise.Vuvuzela_dp.Laplace.mu in
      let upstream_noise = float_of_int ((t.cfg.chain_len - 1) * m) *. mu in
      let real_estimate =
        Float.max 0. (float_of_int !arrived -. upstream_noise)
      in
      t.proposed_m <- max 1 (int_of_float (Float.round (real_estimate /. mu)));
      Log.debug (fun lm ->
          lm
            "server %d: dial round %d: %d arrivals, est. %.0f real, propose \
             m=%d"
            t.cfg.position round !arrived real_estimate t.proposed_m));
  (* The last server's own per-drop noise goes straight into the store —
     it need not transit the mixnet (§5.3). *)
  Telemetry.stage t.tel ~name:"noise" ~round ~server:pos ~dialing:true
    (fun () ->
      for index = 0 to m - 1 do
        let n =
          Noise.dialing_per_drop ~rng:t.rng ~mode:t.cfg.noise_mode
            t.cfg.dial_noise
        in
        t.metrics.noise_invitations <- t.metrics.noise_invitations + n;
        for _ = 1 to n do
          match
            Dialing.decode_payload
              (Dialing.noise ~rng:t.rng ~kind:t.cfg.dial_kind ~index ())
          with
          | Ok (_, invitation) -> Deaddrop.Invitation.put store ~index invitation
          | Error _ -> assert false
        done
      done);
  Telemetry.mark t.tel ~name:"shuffle" ~round ~server:pos ~dialing:true ();
  Telemetry.mark t.tel ~name:"unpeel" ~round ~server:pos ~dialing:true ();
  t.invitations <-
    (round, store)
    :: List.filteri (fun i _ -> i < invitation_history - 1) t.invitations;
  t.metrics.rounds <- t.metrics.rounds + 1;
  Telemetry.stage t.tel ~name:"reseal" ~round ~server:pos ~dialing:true
  @@ fun () ->
  let dummy_len = Types.dial_result_len + Onion.reply_overhead in
  let dummies =
    Array.map
      (function
        | Valid _ -> Bytes.empty | Invalid -> Drbg.generate t.rng dummy_len)
      slots
  in
  par_mapi t
    (fun i -> function
      | Valid { secret; _ } -> Onion.seal_reply ~secret ~round dial_ack
      | Invalid -> dummies.(i))
    slots

let dial_deliver t ~round ~m onions =
  let st = dial_stream t ~round in
  stream_feed t st onions;
  dial_finish_deliver t st ~m

(* Clients download invitation drops directly (§5.5: fetches need no
   mixing or noising, and would be served by a CDN at scale).  Without
   [dial_round] the newest store answers; with it, a client that missed
   rounds can still fetch any store inside the retention window. *)
let invitation_store t = function
  | None -> (
      match t.invitations with [] -> None | (_, store) :: _ -> Some store)
  | Some dial_round -> List.assoc_opt dial_round t.invitations

let fetch_invitations ?dial_round t ~index =
  match invitation_store t dial_round with
  | None -> []
  | Some store -> Deaddrop.Invitation.fetch store ~index

let invitation_drop_size ?dial_round t ~index =
  match invitation_store t dial_round with
  | None -> 0
  | Some store -> Deaddrop.Invitation.size store ~index

(* ------------------------------------------------------------------ *)
(* Round aborts                                                        *)
(* ------------------------------------------------------------------ *)

(* The supervisor's recovery path: discard everything this server
   recorded for a failed round so the retry (under a fresh round number)
   starts clean.  Conversation and dialing rounds number independently,
   so the abort entry points are separate — aborting conversation round
   N must not destroy dialing round N's invitation store. *)

let abort_conv_round t ~round = Hashtbl.remove t.conv_rounds round

let abort_dial_round t ~round =
  Hashtbl.remove t.dial_rounds round;
  t.invitations <- List.remove_assoc round t.invitations
