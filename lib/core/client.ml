(* The full Vuvuzela client state machine.

   Responsibilities (§3, §7, §9):
   - send a fixed number of fixed-size conversation requests every round
     — [max_conversations] of them (§9 "Multiple conversations": "the
     client should pick a maximum number of conversations a priori, and
     always send that many conversation protocol exchange messages per
     round"), filling unused slots with indistinguishable fakes;
   - queue user text per conversation and deliver it reliably and in
     order over the lossy round abstraction ("Vuvuzela deals with these
     issues through retransmission at a higher level (in the client
     itself)", §3.1) — a go-back-style scheme with a configurable
     pipeline window (§8.3: "clients can pipeline conversation
     messages");
   - participate in every dialing round, sending a real invitation or a
     no-op;
   - scan downloaded invitation drops and surface incoming calls. *)

open Vuvuzela_crypto

type event =
  | Delivered of { peer : bytes; text : string }
      (** an in-order message from a conversation partner *)
  | Acked of { peer : bytes; seq : int }
      (** our message [seq] to [peer] was received *)
  | Incoming_call of { caller : bytes; certificate : Certificate.t option }
      (** [certificate] is present (but not yet verified!) in certified
          deployments; check it with {!Certificate.verify} before
          trusting the caller's claimed identity *)
  | Round_failed of { round : int; dialing : bool; status : Rpc.status }
      (** the round this client submitted a request to was aborted; the
          supervisor will retry (or has given up — see the report) *)
  | Round_late of { round : int; next_round : int; dialing : bool }
      (** this client's request missed the round's admission window; the
          entry server excluded it and what it carried was requeued for
          [next_round] *)

let pp_event fmt = function
  | Delivered { text; _ } -> Format.fprintf fmt "Delivered %S" text
  | Acked { seq; _ } -> Format.fprintf fmt "Acked %d" seq
  | Incoming_call _ -> Format.fprintf fmt "Incoming_call"
  | Round_failed { round; dialing; status } ->
      Format.fprintf fmt "Round_failed %s%d [%s]"
        (if dialing then "dial " else "")
        round status.Rpc.stage
  | Round_late { round; next_round; dialing } ->
      Format.fprintf fmt "Round_late %s%d->%d"
        (if dialing then "dial " else "")
        round next_round

type unacked = { seq : int; text : string; mutable last_sent : int }

type conv_state = {
  session : Conversation.session;
  cpeer : bytes;
  mutable next_seq : int;
  mutable inflight : unacked list;  (** oldest first *)
  outgoing : string Queue.t;
  mutable recv_next : int;  (** next expected seq from the peer *)
  reorder : (int, string) Hashtbl.t;
}

type slot_ctx = {
  secrets : bytes array;
  conv : conv_state option;  (** conversation bound to this slot *)
  fake : Conversation.session option;
}

type stats = {
  mutable rounds : int;
  mutable data_sent : int;
  mutable retransmissions : int;
  mutable data_received : int;
  mutable duplicates : int;
  mutable dial_rounds : int;
  mutable invitations_scanned : int;
}

(* Configuration for certified dialing (§9): the client's signing
   identity, display name, and how many dialing rounds each issued
   certificate stays valid. *)
type certified_config = {
  signing_sk : bytes;
  name : string;
  validity : int;
}

type t = {
  identity : Types.identity;
  server_pks : bytes list;
  rng : Drbg.t;
  window : int;
  rtt : int;  (** rounds to wait before retransmitting (>= 2) *)
  max_conversations : int;
  dial_kind : Dialing.kind;
  certified : certified_config option;
  mutable convs : conv_state list;  (** oldest first; length <= max *)
  mutable pending_dial : bytes option;
  mutable last_dial : (int * bytes) option;
      (** the dialing round our latest real invitation went into, and
          its callee — so an aborted dialing round can requeue it *)
  pending_rounds : (int * int, slot_ctx) Hashtbl.t;  (** (round, slot) *)
  pending_dial_rounds : (int, bytes array) Hashtbl.t;
      (** dial_round → reply secrets, for confirming the chain's ack *)
  stats : stats;
}

let create ?seed ?(window = 4) ?(rtt = 2) ?(max_conversations = 1) ?dial_kind
    ?certified ~identity ~server_pks () =
  if window < 1 then invalid_arg "Client.create: window must be >= 1";
  if rtt < 2 then invalid_arg "Client.create: rtt must be >= 2";
  if max_conversations < 1 then
    invalid_arg "Client.create: max_conversations must be >= 1";
  let rng =
    match seed with
    | Some s -> Drbg.of_string s
    | None -> Drbg.create_system ()
  in
  {
    identity;
    server_pks;
    rng;
    window;
    rtt;
    max_conversations;
    (* The deployment's invitation format; a client that can issue
       certificates implies Certified, but a certificate-less client can
       still live in (receive calls and idle within) a certified
       deployment. *)
    dial_kind =
      (match (dial_kind, certified) with
      | Some k, _ -> k
      | None, Some _ -> Dialing.Certified
      | None, None -> Dialing.Plain);
    certified;
    convs = [];
    pending_dial = None;
    last_dial = None;
    pending_rounds = Hashtbl.create 8;
    pending_dial_rounds = Hashtbl.create 8;
    stats =
      {
        rounds = 0;
        data_sent = 0;
        retransmissions = 0;
        data_received = 0;
        duplicates = 0;
        dial_rounds = 0;
        invitations_scanned = 0;
      };
  }

let identity t = t.identity
let public_key t = t.identity.Types.public
let stats t = t.stats
let max_conversations t = t.max_conversations
let in_conversation t = t.convs <> []
let peers t = List.map (fun c -> c.cpeer) t.convs
let peer t = match t.convs with [] -> None | c :: _ -> Some c.cpeer

let find_conv t peer_pk =
  List.find_opt (fun c -> Bytes.equal c.cpeer peer_pk) t.convs

(* ------------------------------------------------------------------ *)
(* Conversation management                                             *)
(* ------------------------------------------------------------------ *)

(* Enter a conversation.  An existing conversation with the same peer is
   restarted; at capacity the oldest conversation is ended to make room
   (§5: "a user may end one conversation to make room for another"). *)
let start_conversation t ~peer_pk =
  let fresh =
    {
      session = Conversation.derive ~identity:t.identity ~peer_pk;
      cpeer = peer_pk;
      next_seq = 1;
      inflight = [];
      outgoing = Queue.create ();
      recv_next = 1;
      reorder = Hashtbl.create 8;
    }
  in
  let without = List.filter (fun c -> not (Bytes.equal c.cpeer peer_pk)) t.convs in
  let trimmed =
    if List.length without >= t.max_conversations then List.tl without
    else without
  in
  t.convs <- trimmed @ [ fresh ]

let end_conversation ?peer t =
  match peer with
  | None -> t.convs <- []
  | Some pk ->
      t.convs <- List.filter (fun c -> not (Bytes.equal c.cpeer pk)) t.convs

let send_to t ~peer text =
  if String.length text > Types.text_capacity then
    invalid_arg
      (Printf.sprintf "Client.send: text exceeds %d bytes" Types.text_capacity);
  match find_conv t peer with
  | None -> invalid_arg "Client.send: no conversation with that peer"
  | Some c -> Queue.push text c.outgoing

let send t text =
  match t.convs with
  | [] -> invalid_arg "Client.send: no active conversation"
  | [ c ] -> send_to t ~peer:c.cpeer text
  | _ ->
      invalid_arg
        "Client.send: multiple conversations active; use send_to"

let queued ?peer t =
  let count c = Queue.length c.outgoing + List.length c.inflight in
  match peer with
  | Some pk -> ( match find_conv t pk with None -> 0 | Some c -> count c)
  | None -> List.fold_left (fun acc c -> acc + count c) 0 t.convs

(* ------------------------------------------------------------------ *)
(* Conversation rounds                                                 *)
(* ------------------------------------------------------------------ *)

(* Pick this round's message for one conversation: first retransmit
   anything overdue, else send the next fresh text if the window allows,
   else cover. *)
let compose_message t c ~round =
  let ack = c.recv_next - 1 in
  let overdue =
    List.find_opt (fun u -> round - u.last_sent >= t.rtt) c.inflight
  in
  match overdue with
  | Some u ->
      u.last_sent <- round;
      t.stats.retransmissions <- t.stats.retransmissions + 1;
      Message.Data { seq = u.seq; ack; text = u.text }
  | None ->
      if List.length c.inflight < t.window && not (Queue.is_empty c.outgoing)
      then begin
        let text = Queue.pop c.outgoing in
        let seq = c.next_seq in
        c.next_seq <- seq + 1;
        c.inflight <- c.inflight @ [ { seq; text; last_sent = round } ];
        t.stats.data_sent <- t.stats.data_sent + 1;
        Message.Data { seq; ack; text }
      end
      else Message.Empty { ack }

(* Contexts for rounds whose replies never arrived (lost on the network
   or suppressed by an adversary) would otherwise accumulate forever. *)
let gc_pending t ~round =
  if Hashtbl.length t.pending_rounds > 4 * t.max_conversations * 64 then
    Hashtbl.iter
      (fun ((r, _) as key) _ ->
        if r < round - 64 then Hashtbl.remove t.pending_rounds key)
      (Hashtbl.copy t.pending_rounds)

(* Algorithm 1, steps 1-2: build this round's onion-wrapped requests,
   exactly [max_conversations] of them. *)
let conversation_requests t ~round =
  t.stats.rounds <- t.stats.rounds + 1;
  gc_pending t ~round;
  List.init t.max_conversations (fun slot ->
      let payload, conv, fake =
        match List.nth_opt t.convs slot with
        | Some c ->
            let msg = compose_message t c ~round in
            (Conversation.exchange_payload c.session ~round msg, Some c, None)
        | None ->
            (* Step 1b: fake request via a random public key. *)
            let session = Conversation.fake ~rng:t.rng ~identity:t.identity () in
            let msg = Message.Empty { ack = 0 } in
            ( Conversation.exchange_payload session ~round msg,
              None,
              Some session )
      in
      let wrapped =
        Vuvuzela_mixnet.Onion.wrap ~rng:t.rng ~server_pks:t.server_pks ~round
          payload
      in
      Hashtbl.replace t.pending_rounds (round, slot)
        { secrets = wrapped.secrets; conv; fake };
      wrapped.onion)

(* Single-conversation convenience (the prototype configuration). *)
let conversation_request t ~round =
  match conversation_requests t ~round with
  | [ r ] -> r
  | _ ->
      invalid_arg
        "Client.conversation_request: client has max_conversations > 1; \
         use conversation_requests"

(* Process an ack from the peer: everything <= ack is delivered. *)
let process_ack c ~ack =
  let acked, live = List.partition (fun u -> u.seq <= ack) c.inflight in
  c.inflight <- live;
  List.map (fun u -> Acked { peer = c.cpeer; seq = u.seq }) acked

(* Process incoming data: deliver in order, buffering ahead-of-order
   arrivals (possible when a retransmitted message overtakes a gap). *)
let process_data t c ~seq ~text =
  if seq < c.recv_next then begin
    t.stats.duplicates <- t.stats.duplicates + 1;
    []
  end
  else begin
    Hashtbl.replace c.reorder seq text;
    let delivered = ref [] in
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt c.reorder c.recv_next with
      | Some txt ->
          Hashtbl.remove c.reorder c.recv_next;
          delivered := Delivered { peer = c.cpeer; text = txt } :: !delivered;
          t.stats.data_received <- t.stats.data_received + 1;
          c.recv_next <- c.recv_next + 1
      | None -> continue := false
    done;
    List.rev !delivered
  end

(* Algorithm 1, step 3: unwrap one slot's reply and surface events. *)
let handle_slot_reply t ~round ~slot reply =
  match Hashtbl.find_opt t.pending_rounds (round, slot) with
  | None -> []
  | Some ctx -> (
      Hashtbl.remove t.pending_rounds (round, slot);
      match
        Vuvuzela_mixnet.Onion.unwrap_reply ~secrets:ctx.secrets ~round reply
      with
      | None -> []
      | Some result -> (
          match ctx.conv with
          | None ->
              (* Idle slot: attempt the read anyway so timing stays
                 uniform; it can never succeed. *)
              (match ctx.fake with
              | Some session ->
                  ignore (Conversation.read_result session ~round result)
              | None -> ());
              []
          | Some c -> (
              (* The conversation may have ended or restarted since. *)
              match find_conv t c.cpeer with
              | Some current when current == c -> (
                  match Conversation.read_result c.session ~round result with
                  | None -> []
                  | Some (Message.Empty { ack }) -> process_ack c ~ack
                  | Some (Message.Data { seq; ack; text }) ->
                      let acks = process_ack c ~ack in
                      acks @ process_data t c ~seq ~text)
              | _ -> [])))

let handle_conversation_replies t ~round replies =
  List.concat (List.mapi (fun slot r -> handle_slot_reply t ~round ~slot r) replies)

let handle_conversation_reply t ~round reply =
  handle_slot_reply t ~round ~slot:0 reply

(* ------------------------------------------------------------------ *)
(* Dialing rounds                                                      *)
(* ------------------------------------------------------------------ *)

let dial t ~callee_pk = t.pending_dial <- Some callee_pk

(* Build this dialing round's request (a real invitation or a no-op) and
   wrap it for the chain. *)
let dialing_request t ~dial_round ~m =
  t.stats.dial_rounds <- t.stats.dial_rounds + 1;
  let payload =
    match t.pending_dial with
    | Some callee_pk -> (
        t.pending_dial <- None;
        t.last_dial <- Some (dial_round, callee_pk);
        match (t.dial_kind, t.certified) with
        | Dialing.Certified, None ->
            invalid_arg
              "Client.dialing_request: certified deployment requires a \
               signing identity to dial"
        | Dialing.Plain, _ ->
            Dialing.invite ~rng:t.rng ~identity:t.identity ~callee_pk ~m ()
        | Dialing.Certified, Some cc ->
            (* Fresh self-signed certificate per dial, expiring after
               [validity] dialing rounds. *)
            let cert =
              Certificate.self_signed ~signing_sk:cc.signing_sk
                ~conversation_pk:t.identity.Types.public ~name:cc.name
                ~expires:(dial_round + cc.validity)
            in
            Dialing.invite_certified ~rng:t.rng ~identity:t.identity ~cert
              ~callee_pk ~m ())
    | None -> Dialing.noop ~rng:t.rng ~kind:t.dial_kind ()
  in
  let wrapped =
    Vuvuzela_mixnet.Onion.wrap ~rng:t.rng ~server_pks:t.server_pks
      ~round:dial_round payload
  in
  (* Keep the reply secrets so the chain's fixed-size ack can be
     confirmed when it comes back.  Unconfirmed entries (lost acks)
     would otherwise accumulate forever. *)
  if Hashtbl.length t.pending_dial_rounds > 64 then
    Hashtbl.iter
      (fun r _ ->
        if r < dial_round - 64 then Hashtbl.remove t.pending_dial_rounds r)
      (Hashtbl.copy t.pending_dial_rounds);
  Hashtbl.replace t.pending_dial_rounds dial_round
    wrapped.Vuvuzela_mixnet.Onion.secrets;
  wrapped.Vuvuzela_mixnet.Onion.onion

(* The chain acks every dialing request with the same fixed plaintext,
   sealed per-layer like any reply; a confirmed ack tells the client its
   invitation (or no-op) survived every hop. *)
let dial_ack_plaintext = Bytes.make Types.dial_result_len '\x01'

let confirm_dial_ack t ~dial_round ack =
  match Hashtbl.find_opt t.pending_dial_rounds dial_round with
  | None -> false
  | Some secrets -> (
      Hashtbl.remove t.pending_dial_rounds dial_round;
      match
        Vuvuzela_mixnet.Onion.unwrap_reply ~secrets ~round:dial_round ack
      with
      | Some result -> Bytes.equal result dial_ack_plaintext
      | None -> false)

let my_invitation_drop t ~m = Dialing.my_drop ~identity:t.identity ~m

(* ------------------------------------------------------------------ *)
(* Round aborts                                                        *)
(* ------------------------------------------------------------------ *)

(* A conversation round died in the chain: no reply is coming, so the
   per-slot contexts are garbage.  Drop them — the reply secrets were
   for onions that never completed the round trip and must never be
   reused — and mark anything first sent in that round as immediately
   overdue, so the retry round's [compose_message] retransmits it
   (inside a fresh onion with fresh ephemeral keys) instead of waiting a
   full RTT. *)
let abort_round t ~round =
  for slot = 0 to t.max_conversations - 1 do
    Hashtbl.remove t.pending_rounds (round, slot)
  done;
  List.iter
    (fun c ->
      List.iter
        (fun u -> if u.last_sent = round then u.last_sent <- round - t.rtt)
        c.inflight)
    t.convs

(* A dialing round died: forget its ack secrets, and if our invitation
   went into it, requeue the callee so the next dialing round re-sends a
   fresh invitation (never the stored onion). *)
let abort_dial_round t ~dial_round =
  Hashtbl.remove t.pending_dial_rounds dial_round;
  match t.last_dial with
  | Some (r, callee_pk) when r = dial_round ->
      t.last_dial <- None;
      if t.pending_dial = None then t.pending_dial <- Some callee_pk
  | _ -> ()

(* Scan a downloaded invitation drop; surface each caller exactly once.
   In certified deployments the (unverified) certificate rides along on
   the event for the application's trust policy. *)
let handle_invitations t invitations =
  t.stats.invitations_scanned <-
    t.stats.invitations_scanned + List.length invitations;
  match t.dial_kind with
  | Dialing.Plain ->
      Dialing.scan ~identity:t.identity invitations
      |> List.map (fun caller -> Incoming_call { caller; certificate = None })
  | Dialing.Certified ->
      Dialing.scan_certified ~identity:t.identity invitations
      |> List.map (fun (caller, cert) ->
             Incoming_call { caller; certificate = Some cert })
