(** The two round types of the protocol, as data, so one supervisor
    ({!Network.run}) serves both. *)

type kind = Conversation | Dialing

val is_dialing : kind -> bool
val pp_kind : Format.formatter -> kind -> unit
