(** Invitation-drop distribution (§5.5): untrusted edge caches in front
    of the last server, exploiting that a dialing round's drops are
    immutable.  Origin egress becomes O(m · drop size) per round instead
    of O(clients · drop size). *)

type t

val create :
  ?edges:int ->
  ?history:int ->
  ?bloom_fp:float ->
  ?bloom_capacity:int ->
  fetch:(dial_round:int -> index:int -> bytes list) ->
  unit ->
  t
(** [fetch] is the origin (the last server); [history] (default 2) is
    how many dialing rounds edges retain before eviction.

    [bloom_fp] mounts a {!Stable_bloom} subscription prefilter on every
    edge at that target false-positive rate (sized for [bloom_capacity]
    live subscriptions, default 4096), enabling {!fetch_matched}'s
    scan-free download path. *)

val has_prefilter : t -> bool
(** Whether edges carry a subscription prefilter ([bloom_fp] was set). *)

val fetch : t -> client_pk:bytes -> dial_round:int -> index:int -> bytes list
(** Serve a client's drop download through its edge (clients hash to
    edges by public key).  Returns [] for evicted (too-old) rounds. *)

val fetch_matched :
  t ->
  client_pk:bytes ->
  dial_round:int ->
  index:int ->
  m:int ->
  (int * bytes list) list
(** [fetch_matched t ~client_pk ~dial_round ~index ~m] registers the
    client's subscription (a tag over pk, round, and drop index) with
    its edge's prefilter, then serves every drop index in [0..m-1] whose
    tag the filter matches.  The client's own [index] always matches
    (registration precedes the scan, so there are no false negatives —
    a real invitation can never be filtered out); other indices pass
    only at the configured false-positive rate, adding tunable cover
    traffic on this unmixed path.  Without a prefilter this degrades to
    [[(index, fetch ...)]].  Returns [] for evicted rounds. *)

type stats = {
  origin_requests : int;
  origin_bytes : int;
  edge_hits : int;
  edge_misses : int;
  edge_bytes : int;
  hit_ratio : float;
  prefilter_tested : int;  (** tags scanned by {!fetch_matched} *)
  prefilter_served : int;  (** scans that matched (incl. false positives) *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
