(** Seed conversation dead-drop store, kept verbatim as the differential
    oracle for the rewritten {!Deaddrop} (see
    [test/prop/prop_deaddrop.ml]).  Not for production use. *)

type t

val create : unit -> t
val clear : t -> unit
val put : t -> slot:int -> drop_id:Types.drop_id -> sealed:bytes -> unit
val empty_result : bytes
val resolve : t -> n_slots:int -> bytes array

type histogram = { m1 : int; m2 : int; m_more : int }

val histogram : t -> histogram
