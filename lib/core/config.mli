(** Deployment configuration — the one record behind {!Chain.of_config},
    {!Network.of_config} and {!Network.of_config_tcp}.

    Build one with {!default} and the [with_*] helpers:
    {[
      Config.(default |> with_seed "demo" |> with_jobs 4
              |> with_pipeline true)
    ]}

    The legacy keyword-argument constructors ([Chain.create],
    [Network.create], [Network.create_tcp]) survive one release as
    deprecated wrappers over this record. *)

type t = {
  seed : string option;
      (** deployment seed: keys, noise and shuffles become a pure
          function of it (tests); [None] draws from the system RNG *)
  n_servers : int;
  noise : Vuvuzela_dp.Laplace.params;  (** conversation noise (µ, b) *)
  dial_noise : Vuvuzela_dp.Laplace.params;  (** per-invitation-drop noise *)
  noise_mode : Vuvuzela_dp.Noise.mode;
  dial_kind : Dialing.kind;
  jobs : int;  (** domains for the per-onion crypto; [1] = sequential *)
  pipeline : bool;
      (** stream forward batches between servers as chunked
          [*_batch_part] frames so a receiver peels while the rest of
          the batch is still in flight; results are bit-identical to
          lockstep *)
  pipeline_chunk : int;  (** onions per streamed part (≥ 1) *)
  deaddrop_shards : int;
      (** conversation dead-drop store shards (≥ 1): drops are routed
          by id prefix and [exchange] pair-matches per shard over the
          domain pool; results are bit-identical for any count *)
  entry_streaming : bool;
      (** stream client onions through the entry tier in
          [pipeline_chunk]-sized chunks instead of materializing the
          whole batch — peak buffered onions are bounded by the chunk
          size, not the population; transcripts are bit-identical *)
  cdn_edges : int;  (** §5.5 invitation-drop distribution; [0] = none *)
  cdn_bloom_fp : float option;
      (** stable-bloom invitation prefilter at the CDN edges: clients
          register subscription tags and edges serve every drop whose
          tag matches, at the configured false-positive rate (never a
          false negative); [None] keeps the exact-index fetch *)
  fault_plan : Vuvuzela_faults.Fault.plan option;
  tap : (round:int -> server:int -> bytes array -> unit) option;
      (** observes every forward batch as it crosses a link
          (post-tamper, pre-framing) *)
  telemetry : Vuvuzela_telemetry.Telemetry.t option;
  budget_warn : float option;  (** ledger cumulative-ε′ warning threshold *)
  round_deadline_ms : float option;
      (** supervisor deadline per attempt; [None] disables the check *)
  max_retries : int;  (** extra attempts after the first (≥ 0) *)
  handshake_timeout_ms : float;  (** TCP deployments only *)
  admission_ms : float option;
      (** entry-server admission window per round: clients whose
          (emulated) arrival exceeds it are excluded from the round and
          told to re-wrap for the next one; [None] admits everyone *)
  client_latency : (float * float) option;
      (** [(base_ms, jitter_ms)] emulated client → entry arrival delay;
          drawn per client per round from the deployment DRBG when
          [seed] is set, so admission outcomes replay bit-identically *)
  flap_grace_ms : float;
      (** how long a dropped server link may stay down mid-round before
          the attempt is abandoned; [0.] aborts on the first drop *)
  link : Vuvuzela_transport.Shaper.config option;
      (** emulated WAN characteristics of every chain link; also widens
          the effective round deadline by the links' RTT budget *)
  obs_dir : string option;
      (** observability collection directory (the [--obs-dir] mode):
          {!Network} appends one JSONL event per round, and shutdown
          writes the coordinator trace/metrics, scrapes the daemons
          named in [obs_scrape], merges the traces, and renders a
          per-round digest.  See {!Obs}.  Requires [telemetry] for
          traces; the event log works without it. *)
  obs_scrape : (int * Unix.sockaddr) list;
      (** [(server index, metrics address)] scrape targets — each
          daemon's [--metrics-listen] address — collected into [obs_dir]
          at shutdown *)
}

val default : t
(** Test-sized defaults: 3 servers, tiny sampled noise, sequential,
    lockstep relay, no faults, no telemetry, 2 retries. *)

(** Functional updates, pipeline-friendly (value first, record last). *)

val with_seed : string -> t -> t
val with_n_servers : int -> t -> t
val with_noise : Vuvuzela_dp.Laplace.params -> t -> t
val with_dial_noise : Vuvuzela_dp.Laplace.params -> t -> t
val with_noise_mode : Vuvuzela_dp.Noise.mode -> t -> t
val with_dial_kind : Dialing.kind -> t -> t
val with_jobs : int -> t -> t

val with_pipeline : ?chunk:int -> bool -> t -> t
(** Enable/disable the streamed relay; [chunk] (default
    {!default}[.pipeline_chunk], clamped ≥ 1) sets the onions per part. *)

val with_deaddrop_shards : int -> t -> t
(** Shard count for the conversation dead-drop store (clamped ≥ 1). *)

val with_entry_streaming : bool -> t -> t
(** Chunked entry-tier intake (see {!type-t.entry_streaming}). *)

val with_cdn_edges : int -> t -> t

val with_cdn_bloom_fp : float -> t -> t
(** Enable the CDN stable-bloom prefilter at this false-positive rate. *)

val with_fault_plan : Vuvuzela_faults.Fault.plan -> t -> t
val with_tap : (round:int -> server:int -> bytes array -> unit) -> t -> t
val with_telemetry : Vuvuzela_telemetry.Telemetry.t -> t -> t
val with_budget_warn : float -> t -> t
val with_round_deadline_ms : float -> t -> t
val with_max_retries : int -> t -> t
val with_handshake_timeout_ms : float -> t -> t
val with_admission_ms : float -> t -> t

val with_client_latency : base_ms:float -> jitter_ms:float -> t -> t
(** Emulated client arrival latency feeding the admission check. *)

val with_flap_grace_ms : float -> t -> t
val with_link : Vuvuzela_transport.Shaper.config -> t -> t
val with_obs_dir : string -> t -> t
val with_obs_scrape : (int * Unix.sockaddr) list -> t -> t
