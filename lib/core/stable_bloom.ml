(* Stable bloom filter (Deng & Rafiei, SIGMOD 2006) for the CDN's
   invitation-subscription prefilter (§5.5).

   A classic bloom filter over a continuous stream saturates: once
   enough distinct elements have been inserted, every cell is set and
   the false-positive rate goes to 1.  The stable variant replaces bits
   with small saturating counters and, before each insert, decrements a
   few deterministically-drawn cells — stale elements decay, recent ones
   stay at the ceiling, and the fraction of zero cells converges to a
   stable point that bounds the false-positive rate forever.

   Guarantees as used by {!Cdn}:
   - An element queried in the same operation that inserted it (or
     before any further inserts) is ALWAYS found: [insert] decrements
     first and then raises the element's own cells to the ceiling, so
     there are no false negatives for fresh elements — the soundness the
     invitation prefilter needs, since a subscription is registered and
     matched inside one [fetch_matched] call.
   - With [decay = 0] the structure degenerates to a classic counting
     bloom filter: no decay, no false negatives ever, the usual
     (1 - e^{-kn/m})^k false-positive rate while under capacity.

   Sizing is the classic one from the target rate p and capacity n:
   m = ceil(-n ln p / (ln 2)^2) cells, k = round(m/n ln 2) hashes.  Cell
   positions come from double hashing over one SHA-256 of the element;
   the decay victims come from a ChaCha20 DRBG seeded at [create], so a
   filter's whole trajectory is a deterministic function of (seed,
   insert sequence). *)

type t = {
  cells : Bytes.t;  (* saturating counters, one byte each *)
  m : int;  (* number of cells *)
  k : int;  (* hash positions per element *)
  ceiling : int;  (* value a fresh insert sets its cells to *)
  decay : int;  (* cells decremented before each insert; 0 = classic *)
  fp : float;  (* configured target false-positive rate *)
  rng : Vuvuzela_crypto.Drbg.t;  (* decay victim stream *)
  mutable inserts : int;
}

let ln2 = log 2.

let create ?(seed = "stable-bloom") ?decay ~capacity ~fp () =
  if not (fp > 0. && fp < 1.) then invalid_arg "Stable_bloom.create: fp";
  let n = max 1 capacity in
  let m = max 8 (int_of_float (ceil (-.float n *. log fp /. (ln2 *. ln2)))) in
  let k = max 1 (int_of_float (Float.round (float m /. float n *. ln2))) in
  (* Deng & Rafiei eq. 17 rearranged: pick the decrement budget P so the
     stable fraction of zero cells keeps the false-positive rate at the
     target.  At the stable point each of the k cells of a stale element
     is zero with probability p0 >= fp^{1/k}; P = m / (ceiling * steps)
     with steps = the expected survival window.  A window of [capacity]
     inserts keeps anything from the last capacity-insert epoch alive. *)
  let decay =
    match decay with
    | Some d -> max 0 d
    | None -> max 1 (m / (max 1 (3 * n)))
  in
  {
    cells = Bytes.make m '\000';
    m;
    k;
    ceiling = 3;
    decay;
    fp;
    rng = Vuvuzela_crypto.Drbg.of_string (seed ^ "-sbf");
    inserts = 0;
  }

let bits t = t.m
let hashes t = t.k
let fp_rate t = t.fp
let inserts t = t.inserts

(* Double hashing (Kirsch–Mitzenmacher): position_i = h1 + i*h2 mod m,
   both halves read big-endian from one SHA-256 of the element. *)
let positions t element =
  let h = Vuvuzela_crypto.Sha256.digest element in
  let word off =
    let v = ref 0 in
    for i = off to off + 7 do
      v := ((!v lsl 8) lor Char.code (Bytes.get h i)) land max_int
    done;
    !v
  in
  let h1 = word 0 mod t.m and h2 = (word 8 mod (t.m - 1)) + 1 in
  Array.init t.k (fun i -> (h1 + (i * h2)) mod t.m)

let insert t element =
  (* Decay first, then set: the element's own cells always end at the
     ceiling, so a query immediately after an insert cannot miss. *)
  if t.decay > 0 then
    for _ = 1 to t.decay do
      let victim = Vuvuzela_crypto.Drbg.uniform ~rng:t.rng t.m in
      let v = Char.code (Bytes.get t.cells victim) in
      if v > 0 then Bytes.set t.cells victim (Char.chr (v - 1))
    done;
  Array.iter
    (fun pos -> Bytes.set t.cells pos (Char.chr t.ceiling))
    (positions t element);
  t.inserts <- t.inserts + 1

let query t element =
  Array.for_all (fun pos -> Bytes.get t.cells pos <> '\000') (positions t element)
