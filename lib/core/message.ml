(* Conversation message codec: the fixed-size plaintext that rides inside
   a dead-drop exchange, and the transport header used by the client's
   retransmission machinery (§3.1: "Vuvuzela deals with these issues
   through retransmission at a higher level (in the client itself)").

   Plaintext layout (always exactly [Types.message_plain_len] bytes):

     kind : u8      0 = empty (cover / keepalive), 1 = data
     seq  : u32     sender's sequence number (data only)
     ack  : u32     highest in-order sequence received from the peer
     len  : u16     number of meaningful text bytes
     text : 229 B   user text, zero-padded

   Every user, active or idle, sends a message every round; [Empty]
   messages make the padding explicit.  After AEAD sealing, empty and
   data messages are indistinguishable on the wire. *)

open Vuvuzela_crypto
open Vuvuzela_mixnet

type t =
  | Empty of { ack : int }
  | Data of { seq : int; ack : int; text : string }

let ack = function Empty { ack } -> ack | Data { ack; _ } -> ack

let pp fmt = function
  | Empty { ack } -> Format.fprintf fmt "Empty{ack=%d}" ack
  | Data { seq; ack; text } ->
      Format.fprintf fmt "Data{seq=%d; ack=%d; %S}" seq ack text

let equal a b =
  match (a, b) with
  | Empty { ack = a1 }, Empty { ack = a2 } -> a1 = a2
  | Data d1, Data d2 ->
      d1.seq = d2.seq && d1.ack = d2.ack && String.equal d1.text d2.text
  | _ -> false

let encode t =
  let kind, seq, ack, text =
    match t with
    | Empty { ack } -> (0, 0, ack, "")
    | Data { seq; ack; text } -> (1, seq, ack, text)
  in
  if String.length text > Types.text_capacity then
    invalid_arg
      (Printf.sprintf "Message.encode: text exceeds %d bytes"
         Types.text_capacity);
  let body =
    Wire.encode (fun w ->
        Wire.Writer.u8 w kind;
        Wire.Writer.u32 w seq;
        Wire.Writer.u32 w ack;
        Wire.Writer.u16 w (String.length text);
        Wire.Writer.raw w (Bytes.of_string text))
  in
  Bytes_util.pad_to Types.message_plain_len body

let decode b =
  if Bytes.length b <> Types.message_plain_len then
    Error
      (Printf.sprintf "Message.decode: expected %d bytes, got %d"
         Types.message_plain_len (Bytes.length b))
  else
    try
      let r = Wire.Reader.of_bytes b in
      let kind = Wire.Reader.u8 r in
      let seq = Wire.Reader.u32 r in
      let ack = Wire.Reader.u32 r in
      let len = Wire.Reader.u16 r in
      if len > Types.text_capacity then Error "Message.decode: bad length"
      else begin
        let text = Bytes.to_string (Wire.Reader.bytes_fixed r len) in
        match kind with
        | 0 -> Ok (Empty { ack })
        | 1 -> Ok (Data { seq; ack; text })
        | k -> Error (Printf.sprintf "Message.decode: unknown kind %d" k)
      end
    with Wire.Error msg -> Error msg

(* Sealing. Both conversation partners share one secret, but encrypting
   two different plaintexts under the same (key, nonce) would be
   catastrophic, so keys are direction-separated: the party whose public
   key sorts lower uses [key_lo] to send, the other uses [key_hi]
   (a documented deviation from Algorithm 1 as printed; see DESIGN.md). *)

type keys = { send : bytes; recv : bytes }

let direction_keys ~base ~my_pk ~their_pk =
  let okm = Hkdf.derive ~ikm:base ~info:(Bytes.of_string "vuvuzela-convo-v1") 64 in
  let lo = Bytes.sub okm 0 32 and hi = Bytes.sub okm 32 32 in
  if Types.compare_pk my_pk their_pk <= 0 then { send = lo; recv = hi }
  else { send = hi; recv = lo }

let msg_nonce ~round = Aead.nonce_of ~domain:0x564d ~counter:round

let seal ~keys ~round t =
  let plain = encode t in
  let out = Bytes.create Types.sealed_message_len in
  Aead.seal_into ~key:keys.send
    ~nonce:(msg_nonce ~round)
    ~src:plain ~src_off:0 ~len:Types.message_plain_len ~dst:out ~dst_off:0 ();
  out

let open_ ~keys ~round sealed =
  if Bytes.length sealed <> Types.sealed_message_len then None
  else begin
    let plain = Bytes.create Types.message_plain_len in
    if
      Aead.open_into ~key:keys.recv
        ~nonce:(msg_nonce ~round)
        ~src:sealed ~src_off:0 ~len:Types.sealed_message_len ~dst:plain
        ~dst_off:0 ()
    then match decode plain with Ok m -> Some m | Error _ -> None
    else None
  end
