(* Deployment configuration; see the interface.  One record replaces
   the optional-argument sprawl that accreted on [Chain.create],
   [Network.create] and [Network.create_tcp]. *)

type t = {
  seed : string option;
  n_servers : int;
  noise : Vuvuzela_dp.Laplace.params;
  dial_noise : Vuvuzela_dp.Laplace.params;
  noise_mode : Vuvuzela_dp.Noise.mode;
  dial_kind : Dialing.kind;
  jobs : int;
  pipeline : bool;
  pipeline_chunk : int;
  deaddrop_shards : int;
  entry_streaming : bool;
  cdn_edges : int;
  cdn_bloom_fp : float option;
  fault_plan : Vuvuzela_faults.Fault.plan option;
  tap : (round:int -> server:int -> bytes array -> unit) option;
  telemetry : Vuvuzela_telemetry.Telemetry.t option;
  budget_warn : float option;
  round_deadline_ms : float option;
  max_retries : int;
  handshake_timeout_ms : float;
  admission_ms : float option;
  client_latency : (float * float) option;
  flap_grace_ms : float;
  link : Vuvuzela_transport.Shaper.config option;
  obs_dir : string option;
  obs_scrape : (int * Unix.sockaddr) list;
}

let default =
  {
    seed = None;
    n_servers = 3;
    noise = Vuvuzela_dp.Laplace.params ~mu:10. ~b:2.;
    dial_noise = Vuvuzela_dp.Laplace.params ~mu:3. ~b:1.;
    noise_mode = Vuvuzela_dp.Noise.Sampled;
    dial_kind = Dialing.Plain;
    jobs = 1;
    pipeline = false;
    pipeline_chunk = 16;
    deaddrop_shards = 1;
    entry_streaming = false;
    cdn_edges = 0;
    cdn_bloom_fp = None;
    fault_plan = None;
    tap = None;
    telemetry = None;
    budget_warn = None;
    round_deadline_ms = None;
    max_retries = 2;
    handshake_timeout_ms = 30_000.;
    admission_ms = None;
    client_latency = None;
    flap_grace_ms = 2000.;
    link = None;
    obs_dir = None;
    obs_scrape = [];
  }

let with_seed seed t = { t with seed = Some seed }
let with_n_servers n_servers t = { t with n_servers }
let with_noise noise t = { t with noise }
let with_dial_noise dial_noise t = { t with dial_noise }
let with_noise_mode noise_mode t = { t with noise_mode }
let with_dial_kind dial_kind t = { t with dial_kind }
let with_jobs jobs t = { t with jobs }
let with_pipeline ?(chunk = default.pipeline_chunk) pipeline t =
  { t with pipeline; pipeline_chunk = max 1 chunk }
let with_deaddrop_shards shards t = { t with deaddrop_shards = max 1 shards }
let with_entry_streaming entry_streaming t = { t with entry_streaming }
let with_cdn_edges cdn_edges t = { t with cdn_edges }
let with_cdn_bloom_fp fp t = { t with cdn_bloom_fp = Some fp }
let with_fault_plan plan t = { t with fault_plan = Some plan }
let with_tap tap t = { t with tap = Some tap }
let with_telemetry tel t = { t with telemetry = Some tel }
let with_budget_warn eps t = { t with budget_warn = Some eps }
let with_round_deadline_ms ms t = { t with round_deadline_ms = Some ms }
let with_max_retries max_retries t = { t with max_retries = max 0 max_retries }
let with_handshake_timeout_ms handshake_timeout_ms t =
  { t with handshake_timeout_ms }
let with_admission_ms ms t = { t with admission_ms = Some ms }
let with_client_latency ~base_ms ~jitter_ms t =
  { t with client_latency = Some (base_ms, jitter_ms) }
let with_flap_grace_ms flap_grace_ms t = { t with flap_grace_ms }
let with_link link t = { t with link = Some link }
let with_obs_dir dir t = { t with obs_dir = Some dir }
let with_obs_scrape targets t = { t with obs_scrape = targets }
