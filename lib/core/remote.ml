(* Coordinator-side remote chain; see the interface.

   The protocol is lockstep — one request, one matching reply — so the
   only asynchrony to handle is stale frames: a results frame for a
   round the supervisor already abandoned (it timed out, aborted,
   retried) can still arrive and must be discarded by round number, or
   it would be taken for the retry's results. *)

module Transport = Vuvuzela_transport.Transport
module Trace = Vuvuzela_telemetry.Trace

type t = {
  tp : Transport.t;
  client : Transport.client;
  pks : bytes list;
  dial_kind : Dialing.kind;
  mutable deadline_ms : float option;
  mutable pipeline : int option;
      (** [Some chunk]: entry batches leave as streamed [*_batch_part]
          frames of [chunk] onions, so server 0 peels while the rest of
          the batch is still crossing the wire *)
  mutable flap_grace_ms : float;
      (** on a mid-round drop, keep pumping this long for the healed
          link to re-deliver the reply (the daemon's outbox holds it) *)
  mutable trace_ctx : Trace.context option;
      (** announced to the first hop ahead of the next batch so its hop
          span parents into the coordinator's round root *)
  mutable shut_down : bool;
}

let length t = List.length t.pks
let public_keys t = t.pks
let set_deadline_ms t d = t.deadline_ms <- d
let deadline_ms t = t.deadline_ms
let set_pipeline t p = t.pipeline <- Option.map (max 1) p
let pipeline t = t.pipeline
let set_flap_grace_ms t g = t.flap_grace_ms <- Float.max 0. g
let flap_grace_ms t = t.flap_grace_ms
let stats t = Transport.stats t.tp
let is_shut_down t = t.shut_down
let set_trace_ctx t c = t.trace_ctx <- c

let connect ?telemetry ?(dial_kind = Dialing.Plain) ?deadline_ms
    ?(handshake_timeout_ms = 30_000.) ?backoff_seed ?link
    ?(flap_grace_ms = 0.) ~addr () =
  let tp = Transport.create ?telemetry () in
  let client =
    Transport.connect tp ~addr ~hello:(Rpc.encode (Rpc.Hello { index = -1 }))
      ?backoff_seed ?shaper:link ()
  in
  match Transport.handshake ~deadline_ms:handshake_timeout_ms tp client with
  | Error `Timeout ->
      Transport.close_client tp client;
      Error
        (Printf.sprintf "remote chain at %s: no handshake within %.0f ms"
           (Vuvuzela_transport.Addr.to_string addr)
           handshake_timeout_ms)
  | Ok payload -> (
      match Rpc.decode payload with
      | Ok (Rpc.Chain_info { pks }) when pks <> [] ->
          Ok
            {
              tp;
              client;
              pks;
              dial_kind;
              deadline_ms;
              pipeline = None;
              flap_grace_ms = Float.max 0. flap_grace_ms;
              trace_ctx = None;
              shut_down = false;
            }
      | Ok _ | Error _ ->
          Transport.close_client tp client;
          Error "remote chain: malformed handshake reply")

(* Entry-server ingress policy, duplicated from the in-process chain so
   both deployments put the same bytes on the wire: a wrong-sized
   request is replaced with random bytes of the correct size (the
   garbage fails authentication downstream and earns a dummy reply). *)
let normalize ~expected requests =
  Array.map
    (fun r ->
      if Bytes.length r = expected then r
      else Vuvuzela_crypto.Drbg.bytes expected)
    requests

(* Send the request frame(s) and pump until the matching reply.
   [expect] filters: [Some] for the reply (or a status) of *this*
   round, [None] for anything stale.  A pipelined round queues several
   part frames at once; the transport's write path drains them in
   order while the first hop starts peeling the earliest parts. *)
(* The trace context precedes the batch on the same ordered link, so
   the first hop reads it before opening its hop span.  It is a pure
   control frame: digests cover request/reply bytes only, so presence
   or absence cannot perturb the transcript. *)
let send_trace_ctx t =
  match t.trace_ctx with
  | Some c ->
      Transport.send_batch t.client
        (Rpc.encode (Rpc.Trace_ctx { ctx = Trace.encode_context c }))
  | None -> ()

let await_reply t ~round ~expect =
  let grace_ms = if t.flap_grace_ms > 0. then Some t.flap_grace_ms else None in
  let rec await () =
    match Transport.recv_batch ?deadline_ms:t.deadline_ms ?grace_ms t.tp t.client with
    | Error `Timeout ->
        Error
          (Rpc.transport_error ~round ~server:0
             ~detail:
               (Printf.sprintf "no reply within %.0f ms"
                  (Option.value ~default:0. t.deadline_ms)))
    | Error `Dropped ->
        Error
          (Rpc.transport_error ~round ~server:0
             ~detail:"connection to first hop lost")
    | Ok payload -> (
        match Rpc.decode payload with
        | Error _ -> await () (* unparseable frame: skip, keep waiting *)
        | Ok msg -> (
            match expect msg with
            | Some outcome ->
                Transport.publish t.tp;
                outcome
            | None -> await ()))
  in
  await ()

let exchange t ~round ~send_frames ~expect =
  send_trace_ctx t;
  List.iter (fun frame -> Transport.send_batch t.client frame) send_frames;
  await_reply t ~round ~expect

(* Streamed-entry send: each producer chunk leaves as one [*_batch_part]
   frame as soon as it exists, with one chunk of lookahead so the final
   part carries [last = true] (the daemon finishes the round on it).
   The coordinator therefore holds at most two chunks of onions, and the
   first hop peels early parts while later ones are still being built.
   Zero chunks degrade to one empty [last] part — the same framing
   [Rpc.split_parts] gives an empty batch. *)
let stream_parts t ~encode_part ~produce =
  send_trace_ctx t;
  let held = ref None in
  let seq = ref 0 in
  produce (fun chunk ->
      (match !held with
      | Some prev ->
          Transport.send_batch t.client
            (encode_part ~seq:!seq ~last:false prev);
          incr seq;
          (* Opportunistically drain the socket so parts cross the wire
             (and the first hop starts peeling) while the producer is
             still wrapping later chunks. *)
          Transport.run_once ~max_wait_ms:0. t.tp
      | None -> ());
      held := Some chunk);
  let final = Option.value !held ~default:[||] in
  Transport.send_batch t.client (encode_part ~seq:!seq ~last:true final)

let conversation_round_streamed t ~round ~produce =
  if t.shut_down then Error (Rpc.chain_shutdown ~round)
  else begin
    let expected =
      Vuvuzela_mixnet.Onion.request_size ~chain_len:(length t)
        ~payload_len:Types.exchange_payload_len
    in
    stream_parts t
      ~encode_part:(fun ~seq ~last onions ->
        Rpc.encode (Rpc.Conv_batch_part { round; seq; last; onions }))
      ~produce:(fun feed -> produce (fun chunk -> feed (normalize ~expected chunk)));
    await_reply t ~round
      ~expect:(function
        | Rpc.Conv_results { round = r; replies } when r = round ->
            Some (Ok replies)
        | Rpc.Status st when st.Rpc.round = round -> Some (Error st)
        | _ -> None)
  end

let dialing_round_streamed t ~round ~m ~produce =
  if t.shut_down then Error (Rpc.chain_shutdown ~round)
  else begin
    let expected =
      Vuvuzela_mixnet.Onion.request_size ~chain_len:(length t)
        ~payload_len:(Dialing.payload_len t.dial_kind)
    in
    stream_parts t
      ~encode_part:(fun ~seq ~last onions ->
        Rpc.encode (Rpc.Dial_batch_part { round; m; seq; last; onions }))
      ~produce:(fun feed -> produce (fun chunk -> feed (normalize ~expected chunk)));
    await_reply t ~round
      ~expect:(function
        | Rpc.Dial_results { round = r; replies } when r = round ->
            Some (Ok replies)
        | Rpc.Status st when st.Rpc.round = round -> Some (Error st)
        | _ -> None)
  end

let conversation_round t ~round requests =
  if t.shut_down then Error (Rpc.chain_shutdown ~round)
  else begin
    let requests =
      normalize
        ~expected:
          (Vuvuzela_mixnet.Onion.request_size ~chain_len:(length t)
             ~payload_len:Types.exchange_payload_len)
        requests
    in
    let send_frames =
      match t.pipeline with
      | None -> [ Rpc.encode (Rpc.Conv_batch { round; onions = requests }) ]
      | Some chunk ->
          let parts = Rpc.split_parts ~chunk requests in
          let n = Array.length parts in
          List.init n (fun seq ->
              Rpc.encode
                (Rpc.Conv_batch_part
                   { round; seq; last = seq = n - 1; onions = parts.(seq) }))
    in
    exchange t ~round ~send_frames
      ~expect:(function
        | Rpc.Conv_results { round = r; replies } when r = round ->
            Some (Ok replies)
        | Rpc.Status st when st.Rpc.round = round -> Some (Error st)
        | _ -> None)
  end

let dialing_round t ~round ~m requests =
  if t.shut_down then Error (Rpc.chain_shutdown ~round)
  else begin
    let requests =
      normalize
        ~expected:
          (Vuvuzela_mixnet.Onion.request_size ~chain_len:(length t)
             ~payload_len:(Dialing.payload_len t.dial_kind))
        requests
    in
    let send_frames =
      match t.pipeline with
      | None ->
          [ Rpc.encode (Rpc.Dial_batch { round; m; onions = requests }) ]
      | Some chunk ->
          let parts = Rpc.split_parts ~chunk requests in
          let n = Array.length parts in
          List.init n (fun seq ->
              Rpc.encode
                (Rpc.Dial_batch_part
                   { round; m; seq; last = seq = n - 1; onions = parts.(seq) }))
    in
    exchange t ~round ~send_frames
      ~expect:(function
        | Rpc.Dial_results { round = r; replies } when r = round ->
            Some (Ok replies)
        | Rpc.Status st when st.Rpc.round = round -> Some (Error st)
        | _ -> None)
  end

let abort_round t ~round =
  if not t.shut_down then
    Transport.send_batch t.client
      (Rpc.encode (Rpc.Abort { round; dialing = false }))

let abort_dialing_round t ~round =
  if not t.shut_down then
    Transport.send_batch t.client
      (Rpc.encode (Rpc.Abort { round; dialing = true }))

let fetch_invitations t ~dial_round ~index =
  if t.shut_down then []
  else
    match
      exchange t ~round:dial_round
        ~send_frames:[ Rpc.encode (Rpc.Fetch_drop { dial_round; index }) ]
        ~expect:(function
          | Rpc.Drop_contents { dial_round = r; index = i; invitations }
            when r = dial_round && i = index -> Some (Ok invitations)
          | Rpc.Status st when st.Rpc.round = dial_round -> Some (Error st)
          | _ -> None)
    with
    | Ok invitations -> invitations
    | Error _ -> []

let shutdown t =
  if not t.shut_down then begin
    t.shut_down <- true;
    Transport.send_batch t.client (Rpc.encode Rpc.Bye);
    (* Give the Bye a beat to reach the wire before tearing down. *)
    for _ = 1 to 5 do
      Transport.run_once ~max_wait_ms:2. t.tp
    done;
    Transport.close_client t.tp t.client
  end
