(* Invitation-drop distribution (§5.5).

   "Each dead drop is downloaded by a large number of clients ... this
   traffic can overwhelm Vuvuzela's servers, but ... requests for
   downloading invitations do not need to be routed through Vuvuzela's
   servers, since they do not need to be mixed or noised.  Thus, we
   envision that Vuvuzela could use a CDN or BitTorrent-like design."

   This module is that design, in-process: a set of untrusted cache
   nodes in front of the last server (the origin).  Each dialing round's
   drops are immutable once published, so caching is trivial — a cache
   fills once per (round, drop) and serves every subsequent request
   locally.  Byte counters on the origin and each edge show the §5.5
   effect: origin egress is O(m · drop_size) per round instead of
   O(users · drop_size).

   Privacy note, as in the paper: fetches are not mixed, so the CDN (and
   anyone watching it) learns which drop index a client downloads — which
   the adversary already knows from H(pk) mod m.  Contents are still
   trial-decryption-protected. *)

type origin = {
  fetch : dial_round:int -> index:int -> bytes list;
  mutable origin_requests : int;
  mutable origin_bytes : int;
}

type edge = {
  name : string;
  cache : (int * int, bytes list) Hashtbl.t;  (** (dial_round, index) *)
  bloom : Stable_bloom.t option;  (** subscription prefilter *)
  mutable hits : int;
  mutable misses : int;
  mutable served_bytes : int;
  mutable prefilter_tested : int;
  mutable prefilter_served : int;
}

type t = {
  origin : origin;
  edges : edge array;
  mutable round_floor : int;  (** rounds below this are evicted *)
  history : int;  (** dialing rounds retained in caches *)
}

let invitations_bytes invs =
  List.fold_left (fun acc b -> acc + Bytes.length b) 0 invs

let create ?(edges = 3) ?(history = 2) ?bloom_fp ?(bloom_capacity = 4096)
    ~fetch () =
  if edges < 1 then invalid_arg "Cdn.create: need at least one edge";
  {
    origin = { fetch; origin_requests = 0; origin_bytes = 0 };
    edges =
      Array.init edges (fun i ->
          let name = Printf.sprintf "edge-%d" i in
          {
            name;
            cache = Hashtbl.create 16;
            bloom =
              Option.map
                (fun fp ->
                  Stable_bloom.create ~seed:("cdn-" ^ name)
                    ~capacity:bloom_capacity ~fp ())
                bloom_fp;
            hits = 0;
            misses = 0;
            served_bytes = 0;
            prefilter_tested = 0;
            prefilter_served = 0;
          });
    round_floor = 0;
    history;
  }

let has_prefilter t = Array.exists (fun e -> e.bloom <> None) t.edges

(* Clients are spread across edges by their public key, like a DNS-based
   CDN would. *)
let edge_for t ~client_pk =
  let h = Vuvuzela_crypto.Sha256.digest client_pk in
  t.edges.(Char.code (Bytes.get h 0) mod Array.length t.edges)

(* Evict drops older than [history] dialing rounds; they are ephemeral
   and no honest client re-fetches them. *)
let advance_round t ~dial_round =
  let floor = dial_round - t.history in
  if floor > t.round_floor then begin
    t.round_floor <- floor;
    Array.iter
      (fun e ->
        Hashtbl.iter
          (fun ((r, _) as key) _ ->
            if r < floor then Hashtbl.remove e.cache key)
          (Hashtbl.copy e.cache))
      t.edges
  end

(* Serve one (round, index) drop through [edge]'s fill-once cache. *)
let serve origin edge ~dial_round ~index =
  let key = (dial_round, index) in
  let invs =
    match Hashtbl.find_opt edge.cache key with
    | Some invs ->
        edge.hits <- edge.hits + 1;
        invs
    | None ->
        edge.misses <- edge.misses + 1;
        let invs = origin.fetch ~dial_round ~index in
        origin.origin_requests <- origin.origin_requests + 1;
        origin.origin_bytes <- origin.origin_bytes + invitations_bytes invs;
        Hashtbl.replace edge.cache key invs;
        invs
  in
  edge.served_bytes <- edge.served_bytes + invitations_bytes invs;
  invs

let fetch t ~client_pk ~dial_round ~index =
  advance_round t ~dial_round;
  if dial_round < t.round_floor then []
  else serve t.origin (edge_for t ~client_pk) ~dial_round ~index

(* Subscription tags bind the client, round, and drop index, so one
   client's registration can only match another's scan at the filter's
   false-positive rate. *)
let subscription_tag ~client_pk ~dial_round ~index =
  let r = Bytes.create 8 and i = Bytes.create 8 in
  Vuvuzela_crypto.Bytes_util.store_le64 r 0 dial_round;
  Vuvuzela_crypto.Bytes_util.store_le64 i 0 index;
  Vuvuzela_crypto.Sha256.digest
    (Vuvuzela_crypto.Bytes_util.concat
       [ Bytes.of_string "vuvuzela-cdn-subscription"; client_pk; r; i ])

let fetch_matched t ~client_pk ~dial_round ~index ~m =
  advance_round t ~dial_round;
  if dial_round < t.round_floor then []
  else begin
    let edge = edge_for t ~client_pk in
    match edge.bloom with
    | None -> [ (index, serve t.origin edge ~dial_round ~index) ]
    | Some filter ->
        (* Register the subscription, then scan every drop of the round.
           Insert-before-query makes the client's own index a guaranteed
           match (the filter decays before it sets, and nothing
           intervenes), so the prefilter can never lose a real
           invitation.  Other indices pass only at the configured
           false-positive rate — each extra drop served is cover traffic
           on this unmixed path. *)
        Stable_bloom.insert filter
          (subscription_tag ~client_pk ~dial_round ~index);
        let acc = ref [] in
        for j = m - 1 downto 0 do
          edge.prefilter_tested <- edge.prefilter_tested + 1;
          if
            Stable_bloom.query filter
              (subscription_tag ~client_pk ~dial_round ~index:j)
          then begin
            edge.prefilter_served <- edge.prefilter_served + 1;
            acc := (j, serve t.origin edge ~dial_round ~index:j) :: !acc
          end
        done;
        !acc
  end

type stats = {
  origin_requests : int;
  origin_bytes : int;
  edge_hits : int;
  edge_misses : int;
  edge_bytes : int;
  hit_ratio : float;
  prefilter_tested : int;
  prefilter_served : int;
}

let stats t =
  let hits = Array.fold_left (fun a e -> a + e.hits) 0 t.edges in
  let misses = Array.fold_left (fun a e -> a + e.misses) 0 t.edges in
  {
    origin_requests = t.origin.origin_requests;
    origin_bytes = t.origin.origin_bytes;
    edge_hits = hits;
    edge_misses = misses;
    edge_bytes = Array.fold_left (fun a e -> a + e.served_bytes) 0 t.edges;
    hit_ratio =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses));
    prefilter_tested =
      Array.fold_left (fun a (e : edge) -> a + e.prefilter_tested) 0 t.edges;
    prefilter_served =
      Array.fold_left (fun a (e : edge) -> a + e.prefilter_served) 0 t.edges;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "{origin: %d reqs, %d B; edges: %d hits / %d misses (%.0f%%), %d B \
     served%t}"
    s.origin_requests s.origin_bytes s.edge_hits s.edge_misses
    (100. *. s.hit_ratio) s.edge_bytes (fun fmt ->
      if s.prefilter_tested > 0 then
        Format.fprintf fmt "; prefilter: %d/%d matched" s.prefilter_served
          s.prefilter_tested)
