(** The chain of Vuvuzela servers and in-process round orchestration. *)

type t

val create :
  ?seed:string ->
  ?dial_kind:Dialing.kind ->
  ?jobs:int ->
  n_servers:int ->
  noise:Vuvuzela_dp.Laplace.params ->
  dial_noise:Vuvuzela_dp.Laplace.params ->
  noise_mode:Vuvuzela_dp.Noise.mode ->
  unit ->
  t
(** Build a chain; with [seed] the whole deployment (keys, noise,
    shuffles) is deterministic, for tests.  [jobs] (default 1) sets the
    domain count for the per-onion crypto; the servers share one pool.
    Round results are bit-identical at any job count. *)

val length : t -> int
val server : t -> int -> Server.t
val last : t -> Server.t

val jobs : t -> int
(** The chain's configured degree of parallelism. *)

val shutdown : t -> unit
(** Join the shared worker domains, if any.  Idempotent; further rounds
    after shutdown run sequentially on servers whose pool is gone, so
    treat the chain as finished. *)

val public_keys : t -> bytes list
(** In chain order; clients wrap onions against these. *)

val conversation_round :
  t -> round:int -> bytes array -> (bytes array, Rpc.status) result
(** Run a complete conversation round; the result array is slot-aligned
    with [requests].  [Error] carries the typed status frame of the
    first link whose batch failed to decode. *)

val dialing_round :
  t -> round:int -> m:int -> bytes array -> (bytes array, Rpc.status) result

val conversation_round_exn : t -> round:int -> bytes array -> bytes array
(** [conversation_round], raising [Failure] on a status frame. *)

val dialing_round_exn : t -> round:int -> m:int -> bytes array -> bytes array

val fetch_invitations : t -> index:int -> bytes list

val proposed_m : t -> int
(** The last server's recommended invitation-drop count (§5.4). *)

val observed_histogram : t -> Deaddrop.histogram option
(** The last server's (i.e. the adversary's) view of the latest
    conversation round. *)
