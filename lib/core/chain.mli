(** The chain of Vuvuzela servers and in-process round orchestration. *)

type t

val of_config : Config.t -> t
(** Build a chain from a {!Config.t}.  With [seed] the whole deployment
    (keys, noise, shuffles) is deterministic, for tests.  [jobs] sets
    the domain count for the per-onion crypto; the servers share one
    pool.  [pipeline] relays forward batches between servers as streamed
    [*_batch_part] frames of [pipeline_chunk] onions each, the same code
    path a pipelined TCP deployment runs.  Round results are
    bit-identical at any job count, pipelined or lockstep.

    [fault_plan] arms deterministic fault injection at the forward link
    boundaries (each fault fires once at its (round, server) site,
    against the whole logical batch — identically in both relay modes).
    [tap] observes every forward batch exactly as it crosses a link —
    after any [Tamper_slot] fault, before framing — so tests can assert
    wire-level invariants such as "no onion ciphertext crosses twice".

    [telemetry] (default: the nil sink) is shared with every server: each
    round gets a root span ([conv-round] / [dial-round]) with the
    per-stage server spans beneath it, and fired faults are counted
    ([vuvuzela_faults_injected_total{kind}], with [Delay_ms] stall also
    accumulated into [vuvuzela_injected_delay_ms_total]) and annotated
    on the innermost open span.  Instrumentation never draws from the
    RNG — rounds are bit-identical with telemetry on or off.
    @raise Invalid_argument on [n_servers < 1] or [jobs < 1]. *)

val create :
  ?seed:string ->
  ?dial_kind:Dialing.kind ->
  ?jobs:int ->
  ?fault_plan:Vuvuzela_faults.Fault.plan ->
  ?tap:(round:int -> server:int -> bytes array -> unit) ->
  ?telemetry:Vuvuzela_telemetry.Telemetry.t ->
  n_servers:int ->
  noise:Vuvuzela_dp.Laplace.params ->
  dial_noise:Vuvuzela_dp.Laplace.params ->
  noise_mode:Vuvuzela_dp.Noise.mode ->
  unit ->
  t
[@@ocaml.deprecated "use Chain.of_config with a Config.t"]
(** @deprecated The keyword-argument constructor; equivalent to
    {!of_config} on {!Config.default} with the given fields. *)

val pipelined : t -> bool
(** Whether forward batches are relayed as streamed parts. *)

val pipeline_chunk : t -> int
(** Onions per streamed part (meaningful when {!pipelined}). *)

val length : t -> int
val server : t -> int -> Server.t
val last : t -> Server.t

val jobs : t -> int
(** The chain's configured degree of parallelism. *)

val shutdown : t -> unit
(** Join the shared worker domains, if any, and mark the chain finished.
    Idempotent.  Rounds attempted afterwards return the typed
    {!Rpc.chain_shutdown} status instead of silently running
    sequentially on servers whose pool is gone. *)

val is_shut_down : t -> bool

val last_round_delay_ms : t -> float
(** Virtual link stall accumulated by [Delay_ms] faults during the most
    recent round (0 when no delay fault fired).  The supervisor adds
    this to the measured wall-clock time before its deadline check, so
    deadline misses are deterministic under a fixed seed. *)

val pending_faults : t -> int
(** Scheduled faults that have not fired yet (0 without a fault plan). *)

val public_keys : t -> bytes list
(** In chain order; clients wrap onions against these. *)

val conversation_round :
  t -> round:int -> bytes array -> (bytes array, Rpc.status) result
(** Run a complete conversation round; the result array is slot-aligned
    with [requests].  [Error] carries the typed status frame of the
    first link whose batch failed to decode. *)

val dialing_round :
  t -> round:int -> m:int -> bytes array -> (bytes array, Rpc.status) result

val conversation_round_streamed :
  t ->
  round:int ->
  produce:((bytes array -> unit) -> unit) ->
  (bytes array, Rpc.status) result
(** Streamed-entry conversation round: [produce feed] pushes the batch
    as slot-ordered chunks (a streaming {!Entry} collector's sink) and
    returns when the intake is complete; server 0 peels each chunk as
    it lands, so no tier materializes the whole onion batch.  Results
    are bit-identical to {!conversation_round} on the chunk
    concatenation; faults for the entry link keep lockstep semantics
    (fire once against the logical batch, absolute tamper slots). *)

val dialing_round_streamed :
  t ->
  round:int ->
  m:int ->
  produce:((bytes array -> unit) -> unit) ->
  (bytes array, Rpc.status) result

val conversation_round_exn : t -> round:int -> bytes array -> bytes array
(** [conversation_round], raising [Failure] on a status frame. *)

val dialing_round_exn : t -> round:int -> m:int -> bytes array -> bytes array

val fetch_invitations : ?dial_round:int -> t -> index:int -> bytes list
(** Defaults to the most recent dialing round's store; [?dial_round]
    reaches any round inside the last server's retention window. *)

val abort_round : t -> round:int -> unit
(** Discard a failed conversation round's state on every server, so the
    supervisor's retry (under a fresh round number, with freshly drawn
    noise) starts clean. *)

val abort_dialing_round : t -> round:int -> unit
(** Same for a dialing round; also discards its invitation store. *)

val proposed_m : t -> int
(** The last server's recommended invitation-drop count (§5.4). *)

val observed_histogram : t -> Deaddrop.histogram option
(** The last server's (i.e. the adversary's) view of the latest
    conversation round. *)
