(* One chain server per process; see the interface for the topology and
   the handshake cascade.

   Concurrency shape: everything runs on the transport's event loop in
   one thread.  The round protocol is lockstep per link, so the daemon
   is a state machine over four events — upstream frame, downstream
   frame, downstream drop, upstream accept — plus the fault injector. *)

module Transport = Vuvuzela_transport.Transport
module Conn = Vuvuzela_transport.Conn
module Evloop = Vuvuzela_transport.Evloop
module Shaper = Vuvuzela_transport.Shaper
module Httpd = Vuvuzela_transport.Httpd
module Fault = Vuvuzela_faults.Fault
module Telemetry = Vuvuzela_telemetry.Telemetry
module Trace = Vuvuzela_telemetry.Trace
module Metrics = Vuvuzela_telemetry.Metrics
module Json = Vuvuzela_telemetry.Json

type config = {
  listen : Unix.sockaddr;
  next : Unix.sockaddr option;
  index : int;
  chain_len : int;
  seed : string option;
  noise : Vuvuzela_dp.Laplace.params;
  dial_noise : Vuvuzela_dp.Laplace.params;
  noise_mode : Vuvuzela_dp.Noise.mode;
  dial_kind : Dialing.kind;
  jobs : int;
  deaddrop_shards : int;
  pipeline_chunk : int option;
      (** [Some chunk]: forward batches downstream as streamed
          [*_batch_part] frames of [chunk] onions.  Ingress always
          accepts both framings. *)
  fault_plan : Vuvuzela_faults.Fault.plan option;
  link : Shaper.config option;
      (** emulated WAN characteristics of the downstream link *)
  flap_grace_ms : float;
      (** how long a lost downstream link may stay down mid-round before
          the round is abandoned with a [Status] *)
  metrics_listen : Unix.sockaddr option;
      (** mount the scrape endpoints ([/metrics], [/healthz], [/trace])
          on this address; a telemetry sink is created if none is
          supplied *)
  trace_out : string option;
      (** write this daemon's span trace (JSONL) here on shutdown *)
}

(* The ingress state of one pipelined round: parts are peeled into the
   server's stream as they arrive; the faults of this (round, server)
   site fired once, at part 0, against the logical whole batch. *)
type part_stream = {
  ps_round : int;
  ps_dialing : bool;
  ps_m : int;  (** dial rounds; [0] for conversation *)
  ps_stream : Server.stream;
  mutable ps_seq : int;  (** next expected part sequence number *)
  mutable ps_off : int;  (** onions received so far = absolute slot offset *)
  mutable ps_tampers : int list;
      (** [Tamper_slot] absolute slots not yet applied *)
  mutable ps_poisoned : bool;
      (** a crash/drop fault consumed this round: swallow its remaining
          parts silently, exactly as the lockstep wire loses the whole
          batch *)
}

type st = {
  cfg : config;
  tp : Transport.t;
  log : string -> unit;
  tel : Telemetry.t option;
  started_ms : float;
  faults : Fault.injector option;
  mutable server : Server.t option;
  mutable suffix : bytes list;  (** downstream public keys, chain order *)
  mutable upstream : Conn.t option;
  mutable downstream : Conn.t option;
  mutable hello_pending : bool;
      (** upstream said Hello before our own keys existed *)
  mutable inflight : (int * bool) option;
      (** (round, dialing) forwarded downstream, results still owed *)
  mutable stream : part_stream option;
      (** at most one pipelined round assembles at a time (the protocol
          is lockstep per link; a part for a different round supersedes
          the stale stream) *)
  outbox : bytes Queue.t;
      (** upstream frames owed while the upstream link is down; flushed
          (after the Chain_info reply) when the peer reconnects — a
          round survives an upstream flap instead of silently losing its
          results *)
  mutable ctx : Trace.context option;
      (** trace context announced by the upstream peer for the next
          batch; consumed when the hop span opens *)
  mutable hop : (Trace.span * (float * int)) option;
      (** the open per-round hop span, with the (shaped delay, outage
          count) transport-stats snapshot taken when it opened *)
  mutable last_round : int;
  mutable hops_done : int;
  mutable stop : bool;
}

let is_last st = st.cfg.next = None

(* Bounded so a peer that never returns cannot pin unbounded replies;
   drop-oldest, because the supervisor has certainly abandoned the
   oldest round first. *)
let outbox_cap = 128

let outbox_gauge st =
  Telemetry.set_gauge st.tel "vuvuzela_daemon_outbox_depth"
    (float_of_int (Queue.length st.outbox))

let send_upstream st msg =
  (match st.upstream with
  | Some up when Conn.state up <> Conn.Closed -> Conn.send up (Rpc.encode msg)
  | _ ->
      if Queue.length st.outbox >= outbox_cap then ignore (Queue.pop st.outbox);
      Queue.push (Rpc.encode msg) st.outbox);
  outbox_gauge st

let flush_outbox st =
  (match st.upstream with
  | Some up when Conn.state up <> Conn.Closed ->
      while not (Queue.is_empty st.outbox) do
        Conn.send up (Queue.pop st.outbox)
      done
  | _ -> ());
  outbox_gauge st

let send_downstream st msg =
  match st.downstream with
  | Some down -> Conn.send down (Rpc.encode msg)
  | None -> ()

let status st ~round ~stage detail =
  { Rpc.round; server = st.cfg.index; stage; detail }

(* ------------------------------------------------------------------ *)
(* Hop spans (distributed tracing)                                     *)
(* ------------------------------------------------------------------ *)

(* One span per (round, daemon) covering everything between batch
   arrival and the last frame owed for it; the upstream [Trace_ctx] (if
   any) becomes its remote parent, and the [Server] stage spans nest
   under it via the tracer's open stack.  WAN-emulation waits are
   recorded as annotations, not latency: the shaped delay and flap
   outages accumulated while the hop was open mirror PR 3's
   virtual-delay exclusion rule on the daemon side. *)

let close_hop st =
  match st.hop with
  | None -> ()
  | Some (span, (shaped0, outages0)) ->
      st.hop <- None;
      (match st.tel with
      | None -> ()
      | Some tel ->
          let s = Transport.stats st.tp in
          let shaped = s.Conn.shaped_delay_ms -. shaped0 in
          if shaped > 0. then
            span.Trace.annotations <-
              ("shaper.delay_ms", Printf.sprintf "%.3f" shaped)
              :: span.Trace.annotations;
          if s.Conn.outages > outages0 then begin
            span.Trace.annotations <-
              ("flap.outages", string_of_int (s.Conn.outages - outages0))
              :: span.Trace.annotations;
            span.Trace.annotations <-
              ("flap.wait_ms", Printf.sprintf "%.3f" s.Conn.last_outage_ms)
              :: span.Trace.annotations
          end;
          Trace.end_span (Telemetry.trace tel) span;
          st.hops_done <- st.hops_done + 1;
          Telemetry.add_counter st.tel "vuvuzela_daemon_hops_total";
          Transport.publish st.tp)

let open_hop st ~round ~dialing =
  st.last_round <- round;
  match st.tel with
  | None -> st.ctx <- None
  | Some tel ->
      close_hop st;
      let span =
        Trace.begin_remote_span (Telemetry.trace tel) ~name:"hop" ~round
          ~server:st.cfg.index ~dialing ?remote:st.ctx ()
      in
      st.ctx <- None;
      let s = Transport.stats st.tp in
      st.hop <- Some (span, (s.Conn.shaped_delay_ms, s.Conn.outages))

(* Forward a processed batch to the next hop — as one frame, or as
   streamed parts when this daemon pipelines, so the next server starts
   peeling while we are still queueing the rest. *)
let forward_downstream st ~round ~dialing ~m onions =
  st.inflight <- Some (round, dialing);
  (* Re-stamp the trace context per hop: downstream parents into our
     hop span (transitively into the coordinator's round root).  With
     tracing off, the upstream context passes through unchanged so the
     hops beyond us still link up. *)
  (match st.tel, st.hop with
  | Some tel, Some (span, _) ->
      send_downstream st
        (Rpc.Trace_ctx
           {
             ctx =
               Trace.encode_context
                 (Trace.context_of (Telemetry.trace tel) span);
           })
  | _ -> (
      match st.ctx with
      | Some c ->
          st.ctx <- None;
          send_downstream st (Rpc.Trace_ctx { ctx = Trace.encode_context c })
      | None -> ()));
  match st.cfg.pipeline_chunk with
  | None ->
      if dialing then send_downstream st (Rpc.Dial_batch { round; m; onions })
      else send_downstream st (Rpc.Conv_batch { round; onions })
  | Some chunk ->
      let parts = Rpc.split_parts ~chunk onions in
      let n = Array.length parts in
      for seq = 0 to n - 1 do
        let last = seq = n - 1 in
        let onions = parts.(seq) in
        if dialing then
          send_downstream st (Rpc.Dial_batch_part { round; m; seq; last; onions })
        else send_downstream st (Rpc.Conv_batch_part { round; seq; last; onions })
      done

(* Create the Server once the downstream suffix is known — immediately
   for the last server, after the first successful handshake otherwise.
   The rng-seed derivation matches Chain.create byte for byte: that is
   the whole determinism argument for the multi-process deployment. *)
let ensure_server ?telemetry ?on_ready st =
  if st.server = None then begin
    let cfg = st.cfg in
    let rng_seed =
      Option.map
        (fun s ->
          Bytes.cat (Bytes.of_string s)
            (Bytes.of_string (Printf.sprintf "-server-%d" cfg.index)))
        cfg.seed
    in
    let server =
      Server.create ?rng_seed ?telemetry
        ~cfg:
          {
            Server.position = cfg.index;
            chain_len = cfg.chain_len;
            noise = cfg.noise;
            dial_noise = cfg.dial_noise;
            noise_mode = cfg.noise_mode;
            dial_kind = cfg.dial_kind;
            jobs = cfg.jobs;
            deaddrop_shards = cfg.deaddrop_shards;
          }
        ~suffix_pks:st.suffix ()
    in
    st.server <- Some server;
    st.log
      (Printf.sprintf "server %d/%d ready (%d downstream key(s))" cfg.index
         cfg.chain_len (List.length st.suffix));
    Option.iter (fun f -> f ()) on_ready;
    if st.hello_pending then begin
      st.hello_pending <- false;
      send_upstream st
        (Rpc.Chain_info { pks = Server.public_key server :: st.suffix });
      flush_outbox st
    end
  end

(* ------------------------------------------------------------------ *)
(* Socket-level fault injection                                        *)
(* ------------------------------------------------------------------ *)

(* The in-process chain injects faults as a batch crosses the link into
   server i; here the same plan entry fires as daemon i receives the
   batch.  Returns what the faulty wire delivered: [None] means the
   batch never arrives (drop, crash). *)
let inject st ~round raw msg =
  match st.faults with
  | None -> Some (Ok msg, [])
  | Some inj -> (
      match Fault.fire inj ~round ~server:st.cfg.index with
      | [] -> Some (Ok msg, [])
      | kinds ->
          st.log
            (Printf.sprintf "round %d: firing %s" round
               (String.concat ","
                  (List.map (Format.asprintf "%a" Fault.pp_kind) kinds)));
          let dropped = ref false in
          let tampers = ref [] in
          let frame_faults = ref [] in
          List.iter
            (fun k ->
              match k with
              | Fault.Crash ->
                  (* The receiving server "crashes": reset the upstream
                     connection; the peer's in-flight round dies with
                     it and its reconnect finds us again. *)
                  dropped := true;
                  Option.iter Conn.close st.upstream;
                  st.upstream <- None
              | Fault.Drop_link -> dropped := true
              | Fault.Delay_ms ms ->
                  (* A real stall: over sockets there is no virtual
                     clock to account it to. *)
                  Unix.sleepf (float_of_int ms /. 1000.)
              | Fault.Slow_link ms ->
                  (* Congested link: the batch arrived, late. *)
                  Unix.sleepf (float_of_int ms /. 1000.)
              | Fault.Flap ms ->
                  (* A reset that heals: drop the socket but keep the
                     batch — the round's reply waits in the outbox for
                     the peer's reconnect. *)
                  Option.iter Conn.close st.upstream;
                  st.upstream <- None;
                  if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)
              | Fault.Partition ms ->
                  (* A cut link: batch lost, socket reset, slow heal. *)
                  dropped := true;
                  Option.iter Conn.close st.upstream;
                  st.upstream <- None;
                  if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)
              | Fault.Tamper_slot s -> tampers := s :: !tampers
              | Fault.Corrupt_frame _ | Fault.Truncate_frame _
              | Fault.Extend_frame _ -> frame_faults := k :: !frame_faults)
            kinds;
          if !dropped then None
          else if !frame_faults <> [] then
            (* Mutate the received frame, then decode what's left: the
               typed rejection is exactly what the in-process receiver
               produces. *)
            let raw =
              List.fold_left Fault.apply_frame raw (List.rev !frame_faults)
            in
            Some (Rpc.decode raw, [])
          else Some (Ok msg, List.rev !tampers))

(* ------------------------------------------------------------------ *)
(* Pipelined ingress                                                   *)
(* ------------------------------------------------------------------ *)

(* One [*_batch_part] frame.  The faults of this (round, server) site
   fire once, at part 0, with lockstep semantics: crash/drop lose the
   whole logical batch (remaining parts are swallowed silently), frame
   faults damage the first part's frame, and [Tamper_slot] indexes the
   logical batch — it is applied to whichever arriving part carries
   that absolute slot. *)
let handle_part st server ~raw msg =
  let round, dialing, m, seq, last, onions =
    match msg with
    | Rpc.Conv_batch_part { round; seq; last; onions } ->
        (round, false, 0, seq, last, onions)
    | Rpc.Dial_batch_part { round; m; seq; last; onions } ->
        (round, true, m, seq, last, onions)
    | _ -> assert false
  in
  let stage = if dialing then "dial-batch" else "conv-batch" in
  let fail detail =
    st.stream <- None;
    send_upstream st (Rpc.Status (status st ~round ~stage detail));
    close_hop st
  in
  let feed ps ~last onions =
    let len = Array.length onions in
    let onions =
      List.fold_left
        (fun o s ->
          if s >= ps.ps_off && s < ps.ps_off + len then
            Fault.apply_tamper o (s - ps.ps_off)
          else o)
        onions ps.ps_tampers
    in
    ps.ps_tampers <- List.filter (fun s -> s >= ps.ps_off + len) ps.ps_tampers;
    match Server.stream_feed server ps.ps_stream onions with
    | () -> (
        ps.ps_off <- ps.ps_off + len;
        ps.ps_seq <- ps.ps_seq + 1;
        if last then begin
          st.stream <- None;
          match
            if dialing then
              if is_last st then
                `Reply (Server.dial_finish_deliver server ps.ps_stream ~m:ps.ps_m)
              else
                `Forward (Server.dial_finish_forward server ps.ps_stream ~m:ps.ps_m)
            else if is_last st then
              `Reply (Server.conv_finish_exchange server ps.ps_stream)
            else `Forward (Server.conv_finish_forward server ps.ps_stream)
          with
          | `Reply replies ->
              send_upstream st
                (if dialing then Rpc.Dial_results { round; replies }
                 else Rpc.Conv_results { round; replies });
              close_hop st
          | `Forward onions ->
              forward_downstream st ~round ~dialing ~m:ps.ps_m onions
          | exception e -> fail (Printexc.to_string e)
        end)
    | exception e -> fail (Printexc.to_string e)
  in
  (* A part for a different round supersedes the stale stream: the
     supervisor moved on (its abort may have been lost with a link). *)
  (match st.stream with
  | Some ps when ps.ps_round <> round || ps.ps_dialing <> dialing ->
      st.stream <- None
  | _ -> ());
  if seq = 0 then begin
    open_hop st ~round ~dialing;
    let ps =
      {
        ps_round = round;
        ps_dialing = dialing;
        ps_m = m;
        ps_stream =
          (if dialing then Server.dial_stream server ~round
           else Server.conv_stream server ~round);
        ps_seq = 0;
        ps_off = 0;
        ps_tampers = [];
        ps_poisoned = false;
      }
    in
    st.stream <- Some ps;
    match inject st ~round raw msg with
    | None ->
        ps.ps_poisoned <- true (* the whole batch never arrives *);
        close_hop st
    | Some (Error e, _) ->
        ps.ps_poisoned <- true;
        send_upstream st (Rpc.Status (status st ~round ~stage e));
        close_hop st
    | Some (Ok msg, tampers) ->
        ps.ps_tampers <- tampers;
        (* A [Corrupt_frame] can re-decode to different content. *)
        let last, onions =
          match msg with
          | Rpc.Conv_batch_part { last; onions; _ }
          | Rpc.Dial_batch_part { last; onions; _ } -> (last, onions)
          | _ -> (last, onions)
        in
        feed ps ~last onions
  end
  else
    match st.stream with
    | None -> () (* stale tail of an abandoned round *)
    | Some ps when ps.ps_poisoned -> ()
    | Some ps when ps.ps_seq = seq -> feed ps ~last onions
    | Some ps ->
        (* Ordered link: a sequence gap is a protocol violation. *)
        fail (Printf.sprintf "part %d arrived, expected %d" seq ps.ps_seq)

(* ------------------------------------------------------------------ *)
(* Frame handling                                                      *)
(* ------------------------------------------------------------------ *)

let handle_downstream st msg =
  let server = Option.get st.server in
  let finish round =
    match st.inflight with
    | Some (r, _) when r = round -> st.inflight <- None
    | _ -> ()
  in
  match msg with
  | Rpc.Conv_results { round; replies } -> (
      finish round;
      match Server.conv_backward server ~round replies with
      | replies ->
          send_upstream st (Rpc.Conv_results { round; replies });
          close_hop st
      | exception e ->
          send_upstream st
            (Rpc.Status
               (status st ~round ~stage:"conv-results"
                  (Printexc.to_string e)));
          close_hop st)
  | Rpc.Dial_results { round; replies } -> (
      finish round;
      match Server.dial_backward server ~round replies with
      | replies ->
          send_upstream st (Rpc.Dial_results { round; replies });
          close_hop st
      | exception e ->
          send_upstream st
            (Rpc.Status
               (status st ~round ~stage:"dial-results"
                  (Printexc.to_string e)));
          close_hop st)
  | Rpc.Drop_contents _ as m -> send_upstream st m
  | Rpc.Status s ->
      finish s.Rpc.round;
      send_upstream st (Rpc.Status s);
      close_hop st
  | _ -> ()

let handle_upstream st raw =
  match Rpc.decode raw with
  | Error e ->
      send_upstream st
        (Rpc.Status (status st ~round:0 ~stage:"frame" e))
  | Ok (Rpc.Hello _) -> (
      match st.server with
      | Some server ->
          send_upstream st
            (Rpc.Chain_info { pks = Server.public_key server :: st.suffix });
          (* Frames owed from before the flap follow the handshake
             reply, in order: the reconnected peer's pending round can
             still complete. *)
          flush_outbox st
      | None -> st.hello_pending <- true)
  | Ok (Rpc.Trace_ctx { ctx }) ->
      (* Tolerated-if-absent, ignored-if-malformed: a poisoned blob
         decodes to [None] and costs only the parent link. *)
      st.ctx <- Trace.decode_context ctx
  | Ok (Rpc.Bye) ->
      close_hop st;
      send_downstream st Rpc.Bye;
      st.stop <- true
  | Ok (Rpc.Abort { round; dialing }) -> (
      close_hop st;
      (match st.inflight with
      | Some (r, d) when r = round && d = dialing -> st.inflight <- None
      | _ -> ());
      (match st.stream with
      | Some ps when ps.ps_round = round && ps.ps_dialing = dialing ->
          st.stream <- None
      | _ -> ());
      send_downstream st (Rpc.Abort { round; dialing });
      match st.server with
      | None -> ()
      | Some server ->
          if dialing then Server.abort_dial_round server ~round
          else Server.abort_conv_round server ~round)
  | Ok msg -> (
      match st.server with
      | None -> (
          (* A batch before our keys exist can only mean the chain is
             still assembling; the peer's supervisor will retry.  A
             streamed round answers once, at its first part. *)
          match msg with
          | Rpc.Conv_batch_part { seq; _ } | Rpc.Dial_batch_part { seq; _ }
            when seq > 0 ->
              ()
          | _ ->
              let round =
                match msg with
                | Rpc.Conv_batch { round; _ }
                | Rpc.Dial_batch { round; _ }
                | Rpc.Conv_batch_part { round; _ }
                | Rpc.Dial_batch_part { round; _ } -> round
                | _ -> 0
              in
              send_upstream st
                (Rpc.Status
                   (status st ~round ~stage:"transport" "server not ready")))
      | Some server -> (
          let dispatch msg =
            match msg with
            | Rpc.Conv_batch { round; onions } -> (
                match
                  if is_last st then `Reply (Server.conv_exchange server ~round onions)
                  else `Forward (Server.conv_forward server ~round onions)
                with
                | `Reply replies ->
                    send_upstream st (Rpc.Conv_results { round; replies });
                    close_hop st
                | `Forward onions ->
                    forward_downstream st ~round ~dialing:false ~m:0 onions
                | exception e ->
                    send_upstream st
                      (Rpc.Status
                         (status st ~round ~stage:"conv-batch"
                            (Printexc.to_string e)));
                    close_hop st)
            | Rpc.Dial_batch { round; m; onions } -> (
                match
                  if is_last st then
                    `Reply (Server.dial_deliver server ~round ~m onions)
                  else `Forward (Server.dial_forward server ~round ~m onions)
                with
                | `Reply replies ->
                    send_upstream st (Rpc.Dial_results { round; replies });
                    close_hop st
                | `Forward onions ->
                    forward_downstream st ~round ~dialing:true ~m onions
                | exception e ->
                    send_upstream st
                      (Rpc.Status
                         (status st ~round ~stage:"dial-batch"
                            (Printexc.to_string e)));
                    close_hop st)
            | Rpc.Fetch_drop { dial_round; index } -> (
                if is_last st then
                  match
                    Server.fetch_invitations ~dial_round server ~index
                  with
                  | invitations ->
                      send_upstream st
                        (Rpc.Drop_contents { dial_round; index; invitations })
                  | exception e ->
                      send_upstream st
                        (Rpc.Status
                           (status st ~round:dial_round ~stage:"fetch-drop"
                              (Printexc.to_string e)))
                else send_downstream st (Rpc.Fetch_drop { dial_round; index }))
            | _ -> ()
          in
          (* Socket-level fault injection happens on the received batch
             frames, keyed like the in-process chain: (round, index). *)
          match msg with
          | Rpc.Conv_batch { round; _ } | Rpc.Dial_batch { round; _ } -> (
              let dialing =
                match msg with Rpc.Dial_batch _ -> true | _ -> false
              in
              open_hop st ~round ~dialing;
              match inject st ~round raw msg with
              | None -> close_hop st (* dropped or crashed: nobody replies *)
              | Some (Error e, _) ->
                  (* a frame fault made the batch undecodable *)
                  send_upstream st
                    (Rpc.Status
                       (status st ~round
                          ~stage:(if dialing then "dial-batch" else "conv-batch")
                          e));
                  close_hop st
              | Some (Ok msg, tampers) ->
                  let msg =
                    List.fold_left
                      (fun msg slot ->
                        match msg with
                        | Rpc.Conv_batch { round; onions } ->
                            Rpc.Conv_batch
                              { round; onions = Fault.apply_tamper onions slot }
                        | Rpc.Dial_batch { round; m; onions } ->
                            Rpc.Dial_batch
                              { round; m; onions = Fault.apply_tamper onions slot }
                        | m -> m)
                      msg tampers
                  in
                  dispatch msg)
          | (Rpc.Conv_batch_part _ | Rpc.Dial_batch_part _) as msg ->
              handle_part st server ~raw msg
          | msg -> dispatch msg))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let run ?telemetry ?(log = fun _ -> ()) ?on_ready cfg =
  if cfg.index < 0 || cfg.index >= cfg.chain_len then
    Error
      (Printf.sprintf "daemon: index %d outside chain of %d" cfg.index
         cfg.chain_len)
  else if (cfg.next = None) <> (cfg.index = cfg.chain_len - 1) then
    Error "daemon: exactly the last server runs without --next"
  else begin
    (* Scrape endpoints imply a sink: a daemon asked to expose /metrics
       self-instruments even when the embedder passed none.  Origin
       [index + 1] is the merge convention (0 is the coordinator). *)
    let telemetry =
      match telemetry with
      | Some _ -> telemetry
      | None when cfg.metrics_listen <> None || cfg.trace_out <> None ->
          Some (Telemetry.create ~origin:(cfg.index + 1) ())
      | None -> None
    in
    let tp = Transport.create ?telemetry () in
    let st =
      {
        cfg;
        tp;
        log;
        tel = telemetry;
        started_ms = Unix.gettimeofday () *. 1000.;
        faults = Option.map Fault.injector cfg.fault_plan;
        server = None;
        suffix = [];
        upstream = None;
        downstream = None;
        hello_pending = false;
        inflight = None;
        stream = None;
        outbox = Queue.create ();
        ctx = None;
        hop = None;
        last_round = 0;
        hops_done = 0;
        stop = false;
      }
    in
    (* Listen before anything else: an upstream peer may dial while the
       downstream handshake is still assembling; its Hello waits. *)
    let listener =
      Transport.listen tp cfg.listen
        ~on_accept:(fun fd peer ->
          st.log
            (Printf.sprintf "upstream connection from %s"
               (Vuvuzela_transport.Addr.to_string peer));
          (* The chain has exactly one upstream; a new connection
             replaces a dead (or superseded) predecessor. *)
          Option.iter Conn.close st.upstream;
          let conn =
            Conn.of_fd ~loop:(Transport.loop tp) ~fd
              ~stats:(Transport.stats tp)
              ~on_frame:(fun _ raw -> handle_upstream st raw)
              ~on_drop:(fun conn ->
                (* physical equality: a Conn.t holds closures, and this
                   conn may already have been superseded by a newer
                   accept *)
                match st.upstream with
                | Some current when current == conn -> st.upstream <- None
                | _ -> ())
              ()
          in
          st.upstream <- Some conn)
        ()
    in
    match listener with
    | Error e -> Error e
    | Ok _listener -> (
        (* /healthz is rendered per request, so it always reflects live
           state: chain position, peer liveness, round progress. *)
        let healthz () =
          let connected = function
            | Some c -> Conn.state c <> Conn.Closed
            | None -> false
          in
          Json.to_string
            (Json.Obj
               [
                 ( "status",
                   Json.Str (if st.server <> None then "ok" else "starting") );
                 ("index", Json.Num (float_of_int cfg.index));
                 ("chain_len", Json.Num (float_of_int cfg.chain_len));
                 ("last", Json.Bool (is_last st));
                 ("round", Json.Num (float_of_int st.last_round));
                 ("hops_done", Json.Num (float_of_int st.hops_done));
                 ("upstream_connected", Json.Bool (connected st.upstream));
                 ("downstream_connected", Json.Bool (connected st.downstream));
                 ("outbox_depth", Json.Num (float_of_int (Queue.length st.outbox)));
                 ( "uptime_ms",
                   Json.Num ((Unix.gettimeofday () *. 1000.) -. st.started_ms) );
               ])
          ^ "\n"
        in
        let routes path =
          match (path, st.tel) with
          | "/healthz", _ -> Some ("application/json", healthz ())
          | "/metrics", Some tel ->
              (* Refresh the liveness gauges at scrape time so the
                 exposition is never empty: a freshly started daemon
                 already reports uptime, position, and queue depth. *)
              Telemetry.set_gauge st.tel "vuvuzela_daemon_uptime_ms"
                ((Unix.gettimeofday () *. 1000.) -. st.started_ms);
              Telemetry.set_gauge st.tel "vuvuzela_daemon_chain_index"
                (float_of_int cfg.index);
              Telemetry.set_gauge st.tel "vuvuzela_daemon_outbox_depth"
                (float_of_int (Queue.length st.outbox));
              Telemetry.set_gauge st.tel "vuvuzela_daemon_round"
                (float_of_int st.last_round);
              Some
                ( "text/plain; version=0.0.4",
                  Metrics.to_prometheus (Telemetry.metrics tel) )
          | "/trace", Some tel ->
              Some ("application/jsonl", Trace.to_jsonl (Telemetry.trace tel))
          | _ -> None
        in
        let httpd =
          match cfg.metrics_listen with
          | None -> Ok None
          | Some addr -> (
              match Httpd.serve (Transport.loop tp) ~addr ~routes with
              | Ok h ->
                  st.log (Printf.sprintf "scrape endpoints on port %d" (Httpd.port h));
                  Ok (Some h)
              | Error e -> Error e)
        in
        match httpd with
        | Error e -> Error e
        | Ok httpd ->
        (match cfg.next with
        | None ->
            ensure_server ?telemetry ?on_ready st (* last server: no suffix *)
        | Some next_addr ->
            let backoff_seed =
              Option.map
                (fun s -> Printf.sprintf "%s-backoff-%d" s cfg.index)
                cfg.seed
            in
            let shaper =
              Option.map
                (fun link ->
                  match cfg.seed with
                  | Some s ->
                      Shaper.with_seed
                        (Printf.sprintf "%s-link-%d" s cfg.index)
                        link
                  | None -> link)
                cfg.link
            in
            let down =
              Transport.dial tp ~addr:next_addr
                ~hello:(Rpc.encode (Rpc.Hello { index = cfg.index }))
                ?backoff_seed ?shaper
                ~on_established:(fun _ payload ->
                  match Rpc.decode payload with
                  | Ok (Rpc.Chain_info { pks }) ->
                      if st.server = None then begin
                        st.suffix <- pks;
                        ensure_server ?telemetry ?on_ready st
                      end
                  | Ok _ | Error _ ->
                      st.log "malformed downstream handshake reply")
                ~on_frame:(fun _ raw ->
                  match Rpc.decode raw with
                  | Ok msg when st.server <> None -> handle_downstream st msg
                  | Ok _ | Error _ -> ())
                ~on_drop:(fun conn ->
                  st.log "downstream link lost";
                  (* Grace, not instant abort: the connection redials on
                     its own, the successor holds our round's results in
                     its outbox, and a link that heals inside
                     [flap_grace_ms] lets the round complete.  Only a
                     link still down (for the same in-flight round) when
                     the grace expires abandons the round. *)
                  match st.inflight with
                  | Some (round, dialing) when cfg.flap_grace_ms > 0. ->
                      ignore
                        (Evloop.after (Transport.loop tp)
                           ~ms:cfg.flap_grace_ms (fun () ->
                             match st.inflight with
                             | Some (r, d)
                               when r = round && d = dialing
                                    && not (Conn.established conn) ->
                                 st.inflight <- None;
                                 send_upstream st
                                   (Rpc.Status
                                      (status st ~round
                                         ~stage:
                                           (if dialing then "dial-batch"
                                            else "conv-batch")
                                         "downstream link lost"))
                             | _ -> ()))
                  | Some (round, dialing) ->
                      st.inflight <- None;
                      send_upstream st
                        (Rpc.Status
                           (status st ~round
                              ~stage:(if dialing then "dial-batch" else "conv-batch")
                              "downstream link lost"))
                  | None -> ())
                ()
            in
            st.downstream <- Some down);
        while not st.stop do
          Transport.run_once tp
        done;
        (* Drain: let the forwarded Bye and any last replies flush. *)
        for _ = 1 to 10 do
          Transport.run_once ~max_wait_ms:5. tp
        done;
        close_hop st;
        (match (cfg.trace_out, st.tel) with
        | Some path, Some tel ->
            let oc = open_out path in
            output_string oc (Trace.to_jsonl (Telemetry.trace tel));
            close_out oc
        | _ -> ());
        Option.iter (fun h -> Httpd.close h) httpd;
        Option.iter Conn.close st.downstream;
        Option.iter Conn.close st.upstream;
        Option.iter Server.shutdown st.server;
        Ok ())
  end
