(* One chain server per process; see the interface for the topology and
   the handshake cascade.

   Concurrency shape: everything runs on the transport's event loop in
   one thread.  The round protocol is lockstep per link, so the daemon
   is a state machine over four events — upstream frame, downstream
   frame, downstream drop, upstream accept — plus the fault injector. *)

module Transport = Vuvuzela_transport.Transport
module Conn = Vuvuzela_transport.Conn
module Fault = Vuvuzela_faults.Fault

type config = {
  listen : Unix.sockaddr;
  next : Unix.sockaddr option;
  index : int;
  chain_len : int;
  seed : string option;
  noise : Vuvuzela_dp.Laplace.params;
  dial_noise : Vuvuzela_dp.Laplace.params;
  noise_mode : Vuvuzela_dp.Noise.mode;
  dial_kind : Dialing.kind;
  jobs : int;
  fault_plan : Vuvuzela_faults.Fault.plan option;
}

type st = {
  cfg : config;
  tp : Transport.t;
  log : string -> unit;
  faults : Fault.injector option;
  mutable server : Server.t option;
  mutable suffix : bytes list;  (** downstream public keys, chain order *)
  mutable upstream : Conn.t option;
  mutable downstream : Conn.t option;
  mutable hello_pending : bool;
      (** upstream said Hello before our own keys existed *)
  mutable inflight : (int * bool) option;
      (** (round, dialing) forwarded downstream, results still owed *)
  mutable stop : bool;
}

let is_last st = st.cfg.next = None

let send_upstream st msg =
  match st.upstream with
  | Some up when Conn.state up <> Conn.Closed -> Conn.send up (Rpc.encode msg)
  | _ -> ()

let send_downstream st msg =
  match st.downstream with
  | Some down -> Conn.send down (Rpc.encode msg)
  | None -> ()

let status st ~round ~stage detail =
  { Rpc.round; server = st.cfg.index; stage; detail }

(* Create the Server once the downstream suffix is known — immediately
   for the last server, after the first successful handshake otherwise.
   The rng-seed derivation matches Chain.create byte for byte: that is
   the whole determinism argument for the multi-process deployment. *)
let ensure_server ?telemetry ?on_ready st =
  if st.server = None then begin
    let cfg = st.cfg in
    let rng_seed =
      Option.map
        (fun s ->
          Bytes.cat (Bytes.of_string s)
            (Bytes.of_string (Printf.sprintf "-server-%d" cfg.index)))
        cfg.seed
    in
    let server =
      Server.create ?rng_seed ?telemetry
        ~cfg:
          {
            Server.position = cfg.index;
            chain_len = cfg.chain_len;
            noise = cfg.noise;
            dial_noise = cfg.dial_noise;
            noise_mode = cfg.noise_mode;
            dial_kind = cfg.dial_kind;
            jobs = cfg.jobs;
          }
        ~suffix_pks:st.suffix ()
    in
    st.server <- Some server;
    st.log
      (Printf.sprintf "server %d/%d ready (%d downstream key(s))" cfg.index
         cfg.chain_len (List.length st.suffix));
    Option.iter (fun f -> f ()) on_ready;
    if st.hello_pending then begin
      st.hello_pending <- false;
      send_upstream st
        (Rpc.Chain_info { pks = Server.public_key server :: st.suffix })
    end
  end

(* ------------------------------------------------------------------ *)
(* Socket-level fault injection                                        *)
(* ------------------------------------------------------------------ *)

(* The in-process chain injects faults as a batch crosses the link into
   server i; here the same plan entry fires as daemon i receives the
   batch.  Returns what the faulty wire delivered: [None] means the
   batch never arrives (drop, crash). *)
let inject st ~round raw msg =
  match st.faults with
  | None -> Some (Ok msg, [])
  | Some inj -> (
      match Fault.fire inj ~round ~server:st.cfg.index with
      | [] -> Some (Ok msg, [])
      | kinds ->
          st.log
            (Printf.sprintf "round %d: firing %s" round
               (String.concat ","
                  (List.map (Format.asprintf "%a" Fault.pp_kind) kinds)));
          let dropped = ref false in
          let tampers = ref [] in
          let frame_faults = ref [] in
          List.iter
            (fun k ->
              match k with
              | Fault.Crash ->
                  (* The receiving server "crashes": reset the upstream
                     connection; the peer's in-flight round dies with
                     it and its reconnect finds us again. *)
                  dropped := true;
                  Option.iter Conn.close st.upstream;
                  st.upstream <- None
              | Fault.Drop_link -> dropped := true
              | Fault.Delay_ms ms ->
                  (* A real stall: over sockets there is no virtual
                     clock to account it to. *)
                  Unix.sleepf (float_of_int ms /. 1000.)
              | Fault.Tamper_slot s -> tampers := s :: !tampers
              | Fault.Corrupt_frame _ | Fault.Truncate_frame _
              | Fault.Extend_frame _ -> frame_faults := k :: !frame_faults)
            kinds;
          if !dropped then None
          else if !frame_faults <> [] then
            (* Mutate the received frame, then decode what's left: the
               typed rejection is exactly what the in-process receiver
               produces. *)
            let raw =
              List.fold_left Fault.apply_frame raw (List.rev !frame_faults)
            in
            Some (Rpc.decode raw, [])
          else Some (Ok msg, List.rev !tampers))

(* ------------------------------------------------------------------ *)
(* Frame handling                                                      *)
(* ------------------------------------------------------------------ *)

let handle_downstream st msg =
  let server = Option.get st.server in
  let finish round =
    match st.inflight with
    | Some (r, _) when r = round -> st.inflight <- None
    | _ -> ()
  in
  match msg with
  | Rpc.Conv_results { round; replies } -> (
      finish round;
      match Server.conv_backward server ~round replies with
      | replies -> send_upstream st (Rpc.Conv_results { round; replies })
      | exception e ->
          send_upstream st
            (Rpc.Status
               (status st ~round ~stage:"conv-results"
                  (Printexc.to_string e))))
  | Rpc.Dial_results { round; replies } -> (
      finish round;
      match Server.dial_backward server ~round replies with
      | replies -> send_upstream st (Rpc.Dial_results { round; replies })
      | exception e ->
          send_upstream st
            (Rpc.Status
               (status st ~round ~stage:"dial-results"
                  (Printexc.to_string e))))
  | Rpc.Drop_contents _ as m -> send_upstream st m
  | Rpc.Status s ->
      finish s.Rpc.round;
      send_upstream st (Rpc.Status s)
  | _ -> ()

let handle_upstream st raw =
  match Rpc.decode raw with
  | Error e ->
      send_upstream st
        (Rpc.Status (status st ~round:0 ~stage:"frame" e))
  | Ok (Rpc.Hello _) -> (
      match st.server with
      | Some server ->
          send_upstream st
            (Rpc.Chain_info { pks = Server.public_key server :: st.suffix })
      | None -> st.hello_pending <- true)
  | Ok (Rpc.Bye) ->
      send_downstream st Rpc.Bye;
      st.stop <- true
  | Ok (Rpc.Abort { round; dialing }) -> (
      (match st.inflight with
      | Some (r, d) when r = round && d = dialing -> st.inflight <- None
      | _ -> ());
      send_downstream st (Rpc.Abort { round; dialing });
      match st.server with
      | None -> ()
      | Some server ->
          if dialing then Server.abort_dial_round server ~round
          else Server.abort_conv_round server ~round)
  | Ok msg -> (
      match st.server with
      | None ->
          (* A batch before our keys exist can only mean the chain is
             still assembling; the peer's supervisor will retry. *)
          let round =
            match msg with
            | Rpc.Conv_batch { round; _ }
            | Rpc.Dial_batch { round; _ } -> round
            | _ -> 0
          in
          send_upstream st
            (Rpc.Status
               (status st ~round ~stage:"transport" "server not ready"))
      | Some server -> (
          let dispatch msg =
            match msg with
            | Rpc.Conv_batch { round; onions } -> (
                match
                  if is_last st then `Reply (Server.conv_exchange server ~round onions)
                  else `Forward (Server.conv_forward server ~round onions)
                with
                | `Reply replies ->
                    send_upstream st (Rpc.Conv_results { round; replies })
                | `Forward onions ->
                    st.inflight <- Some (round, false);
                    send_downstream st (Rpc.Conv_batch { round; onions })
                | exception e ->
                    send_upstream st
                      (Rpc.Status
                         (status st ~round ~stage:"conv-batch"
                            (Printexc.to_string e))))
            | Rpc.Dial_batch { round; m; onions } -> (
                match
                  if is_last st then
                    `Reply (Server.dial_deliver server ~round ~m onions)
                  else `Forward (Server.dial_forward server ~round ~m onions)
                with
                | `Reply replies ->
                    send_upstream st (Rpc.Dial_results { round; replies })
                | `Forward onions ->
                    st.inflight <- Some (round, true);
                    send_downstream st (Rpc.Dial_batch { round; m; onions })
                | exception e ->
                    send_upstream st
                      (Rpc.Status
                         (status st ~round ~stage:"dial-batch"
                            (Printexc.to_string e))))
            | Rpc.Fetch_drop { dial_round; index } -> (
                if is_last st then
                  match
                    Server.fetch_invitations ~dial_round server ~index
                  with
                  | invitations ->
                      send_upstream st
                        (Rpc.Drop_contents { dial_round; index; invitations })
                  | exception e ->
                      send_upstream st
                        (Rpc.Status
                           (status st ~round:dial_round ~stage:"fetch-drop"
                              (Printexc.to_string e)))
                else send_downstream st (Rpc.Fetch_drop { dial_round; index }))
            | _ -> ()
          in
          (* Socket-level fault injection happens on the received batch
             frames, keyed like the in-process chain: (round, index). *)
          match msg with
          | Rpc.Conv_batch { round; _ } | Rpc.Dial_batch { round; _ } -> (
              let dialing =
                match msg with Rpc.Dial_batch _ -> true | _ -> false
              in
              match inject st ~round raw msg with
              | None -> () (* dropped or crashed: nobody replies *)
              | Some (Error e, _) ->
                  (* a frame fault made the batch undecodable *)
                  send_upstream st
                    (Rpc.Status
                       (status st ~round
                          ~stage:(if dialing then "dial-batch" else "conv-batch")
                          e))
              | Some (Ok msg, tampers) ->
                  let msg =
                    List.fold_left
                      (fun msg slot ->
                        match msg with
                        | Rpc.Conv_batch { round; onions } ->
                            Rpc.Conv_batch
                              { round; onions = Fault.apply_tamper onions slot }
                        | Rpc.Dial_batch { round; m; onions } ->
                            Rpc.Dial_batch
                              { round; m; onions = Fault.apply_tamper onions slot }
                        | m -> m)
                      msg tampers
                  in
                  dispatch msg)
          | msg -> dispatch msg))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let run ?telemetry ?(log = fun _ -> ()) ?on_ready cfg =
  if cfg.index < 0 || cfg.index >= cfg.chain_len then
    Error
      (Printf.sprintf "daemon: index %d outside chain of %d" cfg.index
         cfg.chain_len)
  else if (cfg.next = None) <> (cfg.index = cfg.chain_len - 1) then
    Error "daemon: exactly the last server runs without --next"
  else begin
    let tp = Transport.create ?telemetry () in
    let st =
      {
        cfg;
        tp;
        log;
        faults = Option.map Fault.injector cfg.fault_plan;
        server = None;
        suffix = [];
        upstream = None;
        downstream = None;
        hello_pending = false;
        inflight = None;
        stop = false;
      }
    in
    (* Listen before anything else: an upstream peer may dial while the
       downstream handshake is still assembling; its Hello waits. *)
    let listener =
      Transport.listen tp cfg.listen
        ~on_accept:(fun fd peer ->
          st.log
            (Printf.sprintf "upstream connection from %s"
               (Vuvuzela_transport.Addr.to_string peer));
          (* The chain has exactly one upstream; a new connection
             replaces a dead (or superseded) predecessor. *)
          Option.iter Conn.close st.upstream;
          let conn =
            Conn.of_fd ~loop:(Transport.loop tp) ~fd
              ~stats:(Transport.stats tp)
              ~on_frame:(fun _ raw -> handle_upstream st raw)
              ~on_drop:(fun conn ->
                (* physical equality: a Conn.t holds closures, and this
                   conn may already have been superseded by a newer
                   accept *)
                match st.upstream with
                | Some current when current == conn -> st.upstream <- None
                | _ -> ())
              ()
          in
          st.upstream <- Some conn)
        ()
    in
    match listener with
    | Error e -> Error e
    | Ok _listener ->
        (match cfg.next with
        | None ->
            ensure_server ?telemetry ?on_ready st (* last server: no suffix *)
        | Some next_addr ->
            let down =
              Transport.dial tp ~addr:next_addr
                ~hello:(Rpc.encode (Rpc.Hello { index = cfg.index }))
                ~on_established:(fun _ payload ->
                  match Rpc.decode payload with
                  | Ok (Rpc.Chain_info { pks }) ->
                      if st.server = None then begin
                        st.suffix <- pks;
                        ensure_server ?telemetry ?on_ready st
                      end
                  | Ok _ | Error _ ->
                      st.log "malformed downstream handshake reply")
                ~on_frame:(fun _ raw ->
                  match Rpc.decode raw with
                  | Ok msg when st.server <> None -> handle_downstream st msg
                  | Ok _ | Error _ -> ())
                ~on_drop:(fun _ ->
                  st.log "downstream link lost";
                  match st.inflight with
                  | Some (round, dialing) ->
                      st.inflight <- None;
                      send_upstream st
                        (Rpc.Status
                           (status st ~round
                              ~stage:(if dialing then "dial-batch" else "conv-batch")
                              "downstream link lost"))
                  | None -> ())
                ()
            in
            st.downstream <- Some down);
        while not st.stop do
          Transport.run_once tp
        done;
        (* Drain: let the forwarded Bye and any last replies flush. *)
        for _ = 1 to 10 do
          Transport.run_once ~max_wait_ms:5. tp
        done;
        Option.iter Conn.close st.downstream;
        Option.iter Conn.close st.upstream;
        Option.iter Server.shutdown st.server;
        Ok ()
  end
