(* Coordinator-side observability collector; see the interface.

   The collector is deliberately out-of-band: [record_round] appends to
   a JSONL event log as rounds complete, and everything expensive —
   scraping the daemons, merging traces, rendering the digest — happens
   once, at [finalize], while the daemons are still alive (the scrape
   must precede the Bye cascade or there is nothing left to scrape).
   Nothing here touches the round pipeline, so a deployment's
   transcript is bit-identical with or without an [--obs-dir]. *)

module Json = Vuvuzela_telemetry.Json
module Telemetry = Vuvuzela_telemetry.Telemetry
module Trace = Vuvuzela_telemetry.Trace
module Metrics = Vuvuzela_telemetry.Metrics
module Httpd = Vuvuzela_transport.Httpd

type t = {
  dir : string;
  scrape : (int * Unix.sockaddr) list;
  events : out_channel;
  mutable finalized : bool;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir ?(scrape = []) () =
  try
    mkdir_p dir;
    let events =
      open_out_gen
        [ Open_creat; Open_append; Open_wronly ]
        0o644
        (Filename.concat dir "events.jsonl")
    in
    Ok { dir; scrape; events; finalized = false }
  with
  | Sys_error e -> Error (Printf.sprintf "obs: %s" e)
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "obs: %s %s: %s" fn arg (Unix.error_message e))

let dir t = t.dir

let record_event t json =
  if not t.finalized then begin
    output_string t.events (Json.to_string json);
    output_char t.events '\n';
    flush t.events
  end

let record_round t ~kind ~round ~attempts ~batch ~admitted ~late ~wire_bytes
    ~elapsed_ms ~acks ~aborts ~failed ?budget () =
  let base =
    [
      ("event", Json.Str "round");
      ("kind", Json.Str kind);
      ("round", Json.Num (float_of_int round));
      ("attempts", Json.Num (float_of_int attempts));
      ("batch", Json.Num (float_of_int batch));
      ("admitted", Json.Num (float_of_int admitted));
      ("late", Json.Num (float_of_int late));
      ("wire_bytes", Json.Num (float_of_int wire_bytes));
      ("elapsed_ms", Json.Num elapsed_ms);
      ("acks", Json.Num (float_of_int acks));
      ("aborts", Json.List (List.map (fun a -> Json.Str a) aborts));
      ("failed", Json.Bool failed);
    ]
  in
  let budget_fields =
    match budget with
    | None -> []
    | Some (eps, delta) ->
        [ ("eps", Json.Num eps); ("delta", Json.Num delta) ]
  in
  record_event t (Json.Obj (base @ budget_fields))

let write_file t name contents =
  let oc = open_out (Filename.concat t.dir name) in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Digest rendering                                                    *)
(* ------------------------------------------------------------------ *)

(* The digest reads only what [finalize] wrote to disk, so
   [vuvuzela inspect DIR] can re-render long after the deployment is
   gone. *)

type round_event = {
  kind : string;
  round : int;
  attempts : int;
  batch : int;
  admitted : int;
  late : int;
  wire_bytes : int;
  elapsed_ms : float;
  acks : int;
  aborts : string list;
  failed : bool;
  eps : float option;
}

let parse_round_event json =
  let int_field name = Option.bind (Json.member name json) Json.to_int in
  let num name = Option.bind (Json.member name json) Json.to_float in
  match
    ( Option.bind (Json.member "event" json) Json.to_str,
      Option.bind (Json.member "kind" json) Json.to_str,
      int_field "round" )
  with
  | Some "round", Some kind, Some round ->
      Some
        {
          kind;
          round;
          attempts = Option.value ~default:1 (int_field "attempts");
          batch = Option.value ~default:0 (int_field "batch");
          admitted = Option.value ~default:0 (int_field "admitted");
          late = Option.value ~default:0 (int_field "late");
          wire_bytes = Option.value ~default:0 (int_field "wire_bytes");
          elapsed_ms = Option.value ~default:0. (num "elapsed_ms");
          acks = Option.value ~default:0 (int_field "acks");
          aborts =
            (match Json.member "aborts" json with
            | Some (Json.List l) -> List.filter_map Json.to_str l
            | _ -> []);
          failed =
            Option.value ~default:false
              (Option.bind (Json.member "failed" json) Json.to_bool);
          eps = num "eps";
        }
  | _ -> None

type merged_span = {
  sname : string;
  sround : int;
  sdialing : bool;
  sdur_ms : float;
  process : string;
}

let parse_merged_span json =
  match
    ( Option.bind (Json.member "name" json) Json.to_str,
      Option.bind (Json.member "round" json) Json.to_int,
      Option.bind (Json.member "dur_ms" json) Json.to_float )
  with
  | Some sname, Some sround, Some sdur_ms ->
      Some
        {
          sname;
          sround;
          sdialing =
            Option.value ~default:false
              (Option.bind (Json.member "dialing" json) Json.to_bool);
          sdur_ms;
          process =
            Option.value ~default:"?"
              (Option.bind (Json.member "process" json) Json.to_str);
        }
  | _ -> None

let parse_jsonl parse_line contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else
           match Json.parse line with
           | Ok json -> parse_line json
           | Error _ -> None)

let bar ~width ~scale v =
  let n =
    if scale <= 0. then 0
    else min width (int_of_float (ceil (v /. scale *. float_of_int width)))
  in
  String.make (max 0 n) '#' ^ String.make (width - max 0 n) ' '

(* Spans worth a waterfall line: round roots, daemon hops, the pipeline
   stages under them, and the coordinator's client phases.  Timestamps
   are per-process epochs and incomparable across the merge, so the
   waterfall renders durations only. *)
let waterfall_names =
  [ "conv-round"; "dial-round"; "hop"; "client-build"; "client-decrypt" ]
  @ Telemetry.server_stages

let indent_of = function
  | "conv-round" | "dial-round" -> "  "
  | "hop" | "client-build" | "client-decrypt" -> "    "
  | _ -> "      "

let render_waterfall buf spans (ev : round_event) =
  let dialing = ev.kind = "dial" in
  let mine =
    List.filter
      (fun s ->
        s.sround = ev.round && s.sdialing = dialing
        && List.mem s.sname waterfall_names)
      spans
  in
  match mine with
  | [] -> ()
  | _ ->
      let scale =
        List.fold_left (fun acc s -> Float.max acc s.sdur_ms) 0. mine
      in
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%s%-14s %-14s %9.2f ms  |%s|\n"
               (indent_of s.sname) s.process s.sname s.sdur_ms
               (bar ~width:30 ~scale s.sdur_ms)))
        mine

let render_digest ~dir =
  let events_path = Filename.concat dir "events.jsonl" in
  if not (Sys.file_exists events_path) then
    Error (Printf.sprintf "no events.jsonl under %s" dir)
  else begin
    let events = parse_jsonl parse_round_event (read_file events_path) in
    let spans =
      let merged = Filename.concat dir "merged-trace.jsonl" in
      if Sys.file_exists merged then
        parse_jsonl parse_merged_span (read_file merged)
      else []
    in
    let buf = Buffer.create 4096 in
    let conv = List.filter (fun e -> e.kind = "conv") events in
    let dial = List.filter (fun e -> e.kind = "dial") events in
    let failures = List.filter (fun e -> e.failed) events in
    let retried = List.filter (fun e -> e.attempts > 1) events in
    Buffer.add_string buf "Vuvuzela round digest\n";
    Buffer.add_string buf "=====================\n";
    Buffer.add_string buf
      (Printf.sprintf
         "rounds: %d (%d conversation, %d dialing), %d retried, %d failed\n\n"
         (List.length events) (List.length conv) (List.length dial)
         (List.length retried) (List.length failures));
    List.iter
      (fun ev ->
        Buffer.add_string buf
          (Printf.sprintf
             "%s round %d%s: batch=%d admitted=%d late=%d wire=%dB \
              %.1fms attempts=%d%s%s\n"
             ev.kind ev.round
             (if ev.failed then " FAILED" else "")
             ev.batch ev.admitted ev.late ev.wire_bytes ev.elapsed_ms
             ev.attempts
             (if ev.kind = "dial" then Printf.sprintf " acks=%d" ev.acks
              else "")
             (match ev.eps with
             | Some e -> Printf.sprintf " eps'=%.4g" e
             | None -> ""));
        render_waterfall buf spans ev)
      events;
    (* The abort/late timeline: only the rounds where something went
       sideways, each abort in attempt order. *)
    let eventful =
      List.filter (fun e -> e.aborts <> [] || e.late > 0) events
    in
    if eventful <> [] then begin
      Buffer.add_string buf "\ntimeline:\n";
      List.iter
        (fun ev ->
          if ev.late > 0 then
            Buffer.add_string buf
              (Printf.sprintf "  %s round %d: %d late (requeued)\n" ev.kind
                 ev.round ev.late);
          List.iteri
            (fun i a ->
              Buffer.add_string buf
                (Printf.sprintf "  %s round %d: abort #%d %s -> %s\n" ev.kind
                   ev.round (i + 1) a
                   (if ev.failed && i = List.length ev.aborts - 1 then
                      "gave up"
                    else "retried")))
            ev.aborts)
        eventful
    end;
    (* The budget curve's endpoint: the last charged round's worst-case
       cumulative spend (the curve itself is in the per-round lines). *)
    (match
       List.fold_left
         (fun acc ev -> match ev.eps with Some e -> Some e | None -> acc)
         None events
     with
    | Some eps ->
        Buffer.add_string buf
          (Printf.sprintf "\nprivacy budget: cumulative eps'=%.4g\n" eps)
    | None -> ());
    Ok (Buffer.contents buf)
  end

(* ------------------------------------------------------------------ *)
(* Finalize                                                            *)
(* ------------------------------------------------------------------ *)

let scrape_daemon t (index, addr) =
  let fetch path file =
    match Httpd.get addr path with
    | Ok (200, body) ->
        write_file t file body;
        Some body
    | Ok (status, _) ->
        record_event t
          (Json.Obj
             [
               ("event", Json.Str "scrape-error");
               ("server", Json.Num (float_of_int index));
               ("path", Json.Str path);
               ("status", Json.Num (float_of_int status));
             ]);
        None
    | Error e ->
        record_event t
          (Json.Obj
             [
               ("event", Json.Str "scrape-error");
               ("server", Json.Num (float_of_int index));
               ("path", Json.Str path);
               ("detail", Json.Str e);
             ]);
        None
  in
  ignore
    (fetch "/metrics" (Printf.sprintf "daemon-%d-metrics.prom" index)
      : string option);
  ignore
    (fetch "/healthz" (Printf.sprintf "daemon-%d-healthz.json" index)
      : string option);
  Option.map
    (fun body -> (Printf.sprintf "server-%d" index, body))
    (fetch "/trace" (Printf.sprintf "daemon-%d-trace.jsonl" index))

let finalize ?telemetry t =
  if not t.finalized then begin
    (* Scrape while the daemons are still alive — the caller runs this
       before sending Bye down the chain. *)
    let daemon_traces = List.filter_map (scrape_daemon t) t.scrape in
    let coordinator_trace =
      match telemetry with
      | None -> None
      | Some tel ->
          let jsonl = Trace.to_jsonl (Telemetry.trace tel) in
          write_file t "trace.jsonl" jsonl;
          write_file t "metrics.prom"
            (Metrics.to_prometheus (Telemetry.metrics tel));
          write_file t "metrics.json"
            (Json.to_string (Metrics.to_json (Telemetry.metrics tel)) ^ "\n");
          Some jsonl
    in
    (match coordinator_trace with
    | None -> ()
    | Some coord -> (
        match Trace.merge_jsonl (("coordinator", coord) :: daemon_traces) with
        | Ok merged -> write_file t "merged-trace.jsonl" merged
        | Error e ->
            record_event t
              (Json.Obj
                 [
                   ("event", Json.Str "merge-error"); ("detail", Json.Str e);
                 ])));
    t.finalized <- true;
    close_out t.events;
    match render_digest ~dir:t.dir with
    | Ok digest -> write_file t "digest.txt" digest
    | Error _ -> ()
  end
