(** Stable bloom filter (Deng & Rafiei) backing the CDN's
    invitation-subscription prefilter (§5.5).

    Approximate membership over a continuous stream with a bounded
    false-positive rate: cells are small saturating counters, and each
    insert first decays a few deterministically-drawn cells before
    raising the element's own cells to the ceiling.  Stale elements fade
    instead of saturating the filter.

    Soundness: an element queried after its own insert, with no
    intervening inserts, is always found (decay happens before set), and
    with [decay = 0] there are no false negatives ever. *)

type t

val create : ?seed:string -> ?decay:int -> capacity:int -> fp:float -> unit -> t
(** Size the filter for [capacity] live elements at target
    false-positive rate [fp] (0 < fp < 1).  [decay] is the number of
    cells decremented per insert: [0] gives a classic (non-decaying)
    counting bloom filter; the default keeps elements from the last
    ~[3*capacity] inserts alive.  [seed] fixes the decay victim stream.
    @raise Invalid_argument if [fp] is out of range. *)

val insert : t -> bytes -> unit
val query : t -> bytes -> bool

val bits : t -> int
(** Number of cells [m]. *)

val hashes : t -> int
(** Hash positions per element [k]. *)

val fp_rate : t -> float
(** The configured target rate. *)

val inserts : t -> int
(** Total inserts so far. *)
