(* The two round types of the protocol, as data.

   Conversation rounds (§3-4) carry exchange payloads to the dead drops;
   dialing rounds (§5) carry invitations to the invitation drops.  The
   supervisor logic — deadlines, aborts, bounded retries, ledger charges
   — is identical for both, so [Network.run] takes the kind as a value
   instead of existing twice. *)

type kind = Conversation | Dialing

let is_dialing = function Conversation -> false | Dialing -> true

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Conversation -> "conversation" | Dialing -> "dialing")
