(** Dead-drop stores kept by the last server (§4 conversation drops,
    §5 invitation drops) and the observable access-count histogram. *)

type t

val create : unit -> t
val clear : t -> unit

val put : t -> slot:int -> drop_id:Types.drop_id -> sealed:bytes -> unit
(** Record one exchange request occupying batch position [slot].  Each
    slot must be put at most once per round. *)

val empty_result : bytes
(** The all-zero {!Types.exchange_result_len}-byte reference value for
    lone accesses.  Treat as immutable: {!resolve} never returns this
    buffer itself, only fresh copies. *)

val resolve : t -> n_slots:int -> bytes array
(** Match up all accesses: the first two requests to a drop swap sealed
    messages; every other slot gets a fresh all-zero buffer (mutating
    one slot's result never affects another's). *)

type histogram = { m1 : int; m2 : int; m_more : int }
(** The protocol's only observable variables (§4.2): counts of drops
    accessed once, twice, and (adversarially) more than twice. *)

val histogram : t -> histogram
(** O(1): the counts are maintained incrementally at {!put} time. *)

val pp_histogram : Format.formatter -> histogram -> unit

(** Sharded conversation store (scale plane): drops are routed to
    shards by drop-id prefix, so [resolve] parallelizes per shard over
    the domain pool.  Observationally identical to the monolithic store
    for any shard count — gated by [test/prop/prop_deaddrop.ml] against
    the retained seed oracle {!Deaddrop_ref}. *)
module Sharded : sig
  type t

  val create : ?shards:int -> unit -> t
  (** [shards] defaults to 1; clamped to at least 1. *)

  val shard_count : t -> int

  val shard_of : t -> Types.drop_id -> int
  (** Shard owning a drop id (big-endian 2-byte prefix mod shard count). *)

  val put : t -> slot:int -> drop_id:Types.drop_id -> sealed:bytes -> unit
  val clear : t -> unit
  val total_accesses : t -> int

  val histogram : t -> histogram
  (** Sum of per-shard O(1) histograms. *)

  val resolve : ?pool:Vuvuzela_parallel.Pool.t -> t -> n_slots:int -> bytes array
  (** As {!Deaddrop.resolve}; with [pool] the per-shard pair matching
      fans out over the domain pool (each slot belongs to exactly one
      drop, hence one shard, so the writes are disjoint and the result
      is bit-identical to the sequential path). *)
end

module Invitation : sig
  type store

  val create : m:int -> store
  val drop_count : store -> int
  val clear : store -> unit

  val index_of : m:int -> bytes -> int
  (** [H(pk) mod m] (§5.1). *)

  val put : store -> index:int -> bytes -> unit
  (** Append an invitation; writes to {!Types.noop_drop} are discarded. *)

  val fetch : store -> index:int -> bytes list
  (** All invitations in arrival order (clients trial-decrypt each). *)

  val size : store -> index:int -> int
  (** O(1): per-index counts are tracked at {!put} time. *)

  val total : store -> int
end
