(** A complete in-process deployment: chain + entry server + clients +
    round clock, run by a supervisor with deadlines, bounded retries,
    and fault injection for the active adversary. *)

module Config = Config
(** The deployment configuration record; see {!Config.default} and the
    [with_*] helpers. *)

type t

val of_config : Config.t -> t
(** An in-process deployment from a {!Config.t}.  Defaults are sized for
    tests (tiny noise); production parameters come from
    {!Vuvuzela_dp.Composition.noise_for_target}.  [jobs] sets the
    chain's crypto parallelism and [pipeline] relays forward batches
    between servers as streamed parts; results are bit-identical at any
    job count, pipelined or lockstep.

    [fault_plan] arms deterministic fault injection at the chain's link
    boundaries and [tap] observes every forward batch on the wire (see
    {!Chain.of_config}).  [round_deadline_ms] ([None]: no deadline)
    bounds each round attempt — wall clock plus any injected virtual
    delay — and [max_retries] bounds how many times the supervisor
    retries an aborted round before giving up.

    [telemetry] (default: the nil sink) is shared down the stack (chain,
    servers): per-stage spans, round spans, client-build/client-decrypt
    spans, round latency/wire-byte/outcome metrics — latency histograms
    record wall-clock only, with injected virtual delay kept in its own
    counter — and a privacy-budget ledger composing the deployment's
    per-round guarantees under Theorem 2, charged per client per
    attempt.  [budget_warn] sets the ledger's cumulative-ε′ warning
    threshold.  Instrumentation never draws from the RNG: a seeded
    deployment is bit-identical with telemetry on or off. *)

val of_config_tcp : Config.t -> addr:Unix.sockaddr -> (t, string) result
(** The coordinator of a multi-process deployment (§7): dial the first
    [vuvuzela-server] daemon at [addr], learn the chain's public keys
    from the handshake, and run the same supervisor over TCP.  With a
    shared deployment seed the rounds are bit-identical to
    {!of_config}'s.

    Differences from the in-process deployment: [noise]/[dial_noise]
    here only parameterise the privacy-budget ledger (the daemons own
    the actual noise — pass their parameters); [fault_plan]/[tap] live
    in the daemons ([--fault-plan]); [jobs] is inert (each daemon
    configures its own); {!set_auto_tune_drops} is inert (the wire
    protocol does not carry the last server's §5.4 recommendation); and
    [round_deadline_ms] additionally bounds the wait for each results
    frame, so a dead link surfaces as a retryable transport status
    instead of blocking.  With [pipeline] set, entry batches leave the
    coordinator as streamed [*_batch_part] frames of [pipeline_chunk]
    onions.  [Error] if the chain cannot be reached within
    [handshake_timeout_ms]. *)

val create :
  ?seed:string ->
  ?n_servers:int ->
  ?noise:Vuvuzela_dp.Laplace.params ->
  ?dial_noise:Vuvuzela_dp.Laplace.params ->
  ?noise_mode:Vuvuzela_dp.Noise.mode ->
  ?dial_kind:Dialing.kind ->
  ?jobs:int ->
  ?cdn_edges:int ->
  ?fault_plan:Vuvuzela_faults.Fault.plan ->
  ?tap:(round:int -> server:int -> bytes array -> unit) ->
  ?telemetry:Vuvuzela_telemetry.Telemetry.t ->
  ?budget_warn:float ->
  ?round_deadline_ms:float ->
  ?max_retries:int ->
  unit ->
  t
[@@ocaml.deprecated "use Network.of_config with a Network.Config.t"]
(** @deprecated The keyword-argument constructor; equivalent to
    {!of_config} on {!Config.default} with the given fields. *)

val create_tcp :
  ?noise:Vuvuzela_dp.Laplace.params ->
  ?dial_noise:Vuvuzela_dp.Laplace.params ->
  ?dial_kind:Dialing.kind ->
  ?telemetry:Vuvuzela_telemetry.Telemetry.t ->
  ?budget_warn:float ->
  ?round_deadline_ms:float ->
  ?max_retries:int ->
  ?handshake_timeout_ms:float ->
  addr:Unix.sockaddr ->
  unit ->
  (t, string) result
[@@ocaml.deprecated "use Network.of_config_tcp with a Network.Config.t"]
(** @deprecated The keyword-argument constructor; equivalent to
    {!of_config_tcp} on {!Config.default} with the given fields. *)

val chain : t -> Chain.t
(** The in-process chain.
    @raise Invalid_argument on a {!create_tcp} deployment — the servers
    live in other processes. *)

val is_remote : t -> bool
(** [true] iff this deployment came from {!create_tcp}. *)

val telemetry : t -> Vuvuzela_telemetry.Telemetry.t option
(** The sink the deployment was created with, if any. *)

val jobs : t -> int
(** The chain's crypto parallelism ([1] for a TCP deployment — the
    daemons configure their own). *)

val shutdown : t -> unit
(** Finalize the observability collector first, if one was configured
    ({!Config.t.obs_dir}) — the daemon scrape must precede the Bye
    cascade — then join the chain's worker domains, if any, and mark
    the chain finished: subsequent rounds fail with the typed
    {!Rpc.chain_shutdown} status (never retried).  Idempotent. *)

val round : t -> int
val dial_round : t -> int
val n_clients : t -> int

val set_invitation_drops : t -> int -> unit
(** Set [m] for subsequent dialing rounds (§5.4 tuning). *)

val invitation_drops : t -> int

val set_auto_tune_drops : t -> bool -> unit
(** Adopt the last server's §5.4 m-recommendation after each dialing
    round. *)

val set_round_deadline_ms : t -> float option -> unit
(** Change the supervisor's per-attempt deadline; [None] disables it. *)

val round_deadline_ms : t -> float option

val set_max_retries : t -> int -> unit
(** Retries after the first attempt of a round (clamped to >= 0). *)

val max_retries : t -> int

val set_admission_ms : t -> float option -> unit
(** Entry-server admission window per attempt: participants whose
    emulated arrival (see {!set_client_latency}) exceeds it are
    excluded from the round — their onions meet the closed collector,
    earn the typed {!Entry.Late} answer, and what they carried is
    requeued for the next round with a [Round_late] event.  [None]
    (the default) admits everyone. *)

val admission_ms : t -> float option

val set_client_latency : t -> (float * float) option -> unit
(** [(base_ms, jitter_ms)] emulated client → entry arrival latency
    feeding the admission check; one seeded draw per participant per
    attempt, in connection order, so admission outcomes replay under a
    deployment seed. *)

val client_latency : t -> (float * float) option

val cdn_stats : t -> Cdn.stats option
(** Present when the deployment was created with [cdn_edges > 0]. *)

val set_entry_streaming : t -> bool -> unit
(** Scale plane: collect each round's requests through a streaming
    {!Entry} collector that feeds the chain in chunks of
    {!entry_chunk} onions (in-process: {!Chain}'s streamed-entry
    rounds; TCP: streamed [*_batch_part] frames with one chunk of
    lookahead), so no tier ever materializes the whole batch.  Results
    and transcripts are bit-identical to the materializing path; the
    report's [peak_buffered] shows the bound.  Defaults to
    [Config.entry_streaming]. *)

val entry_streaming : t -> bool

val entry_chunk : t -> int
(** Onions per streamed entry chunk (= [Config.pipeline_chunk]). *)

val connect :
  ?seed:string ->
  ?window:int ->
  ?rtt:int ->
  ?max_conversations:int ->
  ?certified:Client.certified_config ->
  t ->
  Client.t
(** Add a client; with [seed], its identity and randomness are
    deterministic. *)

val clients : t -> Client.t list
val find_client : t -> bytes -> Client.t option

type round_report = {
  round : int;  (** the round number of the last attempt *)
  dialing : bool;
  events : (Client.t * Client.event list) list;
      (** per participating client, in connection order; for dialing
          rounds, only clients with incoming calls appear.  On a failed
          report these are the per-client [Round_failed] notifications
          instead. *)
  batch_size : int;  (** requests the entry server forwarded *)
  peak_buffered : int;
      (** most onions the entry server held at once: [batch_size] when
          it materialized the batch, at most the configured chunk when
          it streamed (the scale plane's memory bound) *)
  admitted : int;
      (** clients inside the last attempt's admission window (= all
          participants when no window is configured) *)
  late : int;
      (** clients excluded as stragglers on the last attempt; each got
          a [Round_late] event and its payload was requeued *)
  wire_bytes : int;  (** size of the entry → first-server batch frame *)
  elapsed_ms : float;
      (** wall clock for the last attempt's chain round trip, plus any
          injected virtual link delay *)
  confirmed_acks : int;
      (** dialing rounds: acks that unwrapped to the expected fixed
          plaintext; [0] for conversation rounds *)
  attempts : int;  (** total attempts made, [1] when nothing failed *)
  aborts : Rpc.status list;
      (** each failed attempt's status, in order; non-empty with
          [failure = None] means a retry recovered the round *)
  failure : Rpc.status option;
      (** set iff the round ultimately failed, after exhausting retries
          or hitting a non-retryable status (= last element of
          [aborts]) *)
}
(** What one round did — load accounting, the supervisor's attempt
    history, and failure surfacing alongside the per-client events. *)

val events_of : round_report list -> (Client.t * Client.event list) list
(** Flatten reports to their protocol events, in round order.  Failed
    reports are skipped (their events are [Round_failed] notifications,
    not protocol traffic); collect those with {!failures_of}. *)

val failures_of : round_report list -> Rpc.status list
(** The statuses of the rounds that ultimately failed, in round order. *)

val pp_round_report : Format.formatter -> round_report -> unit
(** One stable line per report — same fields, same order, success or
    failure:
    {v
conv round 3: 8 requests, 12345 B wire, 4.2 ms, attempts=1, aborts=0, admitted=8, late=0
dialing round 1: 8 requests, 2345 B wire, 1.3 ms, 8 acks, attempts=2, aborts=1, admitted=8, late=0
conv round 5 FAILED: 8 requests, 12345 B wire, 3.1 ms, attempts=3, aborts=3, admitted=8, late=1 (...)
    v} *)

val run :
  ?blocked:(Client.t -> bool) ->
  ?late:(Client.t -> bool) ->
  kind:Round.kind ->
  t ->
  round_report
(** Run one round of the given kind under the supervisor; [blocked]
    clients send nothing (the §2.1 active attack, or an outage), while
    [late] clients send but are forced past the admission window — the
    entry server excludes them exactly as if their arrival draw had
    missed {!set_admission_ms} (useful for deterministic tests).  A
    failed attempt is aborted on every server and client, then retried
    under a fresh round number with freshly built requests (fresh
    ephemeral keys — a stored onion is never re-submitted) and freshly
    drawn noise, at most [max_retries] times.

    [Conversation]: each client submits [max_conversations] exchange
    requests (one slot each, §9) and decrypts the slot replies.

    [Dialing]: each client submits an invitation or no-op, confirms the
    chain's ack, then downloads and scans every completed dialing round
    it has not seen yet (within the last server's retention window), so
    a client blocked across dialing rounds still receives its
    invitations later.  An aborted attempt requeues each participant's
    invitation for the retry. *)

val run_round : ?blocked:(Client.t -> bool) -> t -> round_report
[@@ocaml.deprecated "use Network.run ~kind:Round.Conversation"]
(** @deprecated Alias for {!run}[ ~kind:Round.Conversation]. *)

val run_dialing_round : ?blocked:(Client.t -> bool) -> t -> round_report
[@@ocaml.deprecated "use Network.run ~kind:Round.Dialing"]
(** @deprecated Alias for {!run}[ ~kind:Round.Dialing]. *)

val run_rounds :
  ?blocked:(Client.t -> bool) ->
  ?late:(Client.t -> bool) ->
  t ->
  int ->
  round_report list

val run_schedule :
  ?blocked:(Client.t -> bool) ->
  ?late:(Client.t -> bool) ->
  ?dial_every:int ->
  t ->
  rounds:int ->
  round_report list
(** Interleave conversation rounds with a dialing round every
    [dial_every] rounds (default 10), as a deployment would (§8.1). *)
