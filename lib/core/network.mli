(** A complete in-process deployment: chain + entry server + clients +
    round clock, with fault injection for the active adversary. *)

type t

val create :
  ?seed:string ->
  ?n_servers:int ->
  ?noise:Vuvuzela_dp.Laplace.params ->
  ?dial_noise:Vuvuzela_dp.Laplace.params ->
  ?noise_mode:Vuvuzela_dp.Noise.mode ->
  ?dial_kind:Dialing.kind ->
  ?jobs:int ->
  ?cdn_edges:int ->
  unit ->
  t
(** Defaults are sized for tests (tiny noise); production parameters come
    from {!Vuvuzela_dp.Composition.noise_for_target}.  [jobs] (default 1)
    sets the chain's crypto parallelism; results are bit-identical at any
    job count. *)

val chain : t -> Chain.t

val jobs : t -> int

val shutdown : t -> unit
(** Join the chain's worker domains, if any.  Idempotent. *)

val round : t -> int
val dial_round : t -> int
val n_clients : t -> int

val set_invitation_drops : t -> int -> unit
(** Set [m] for subsequent dialing rounds (§5.4 tuning). *)

val invitation_drops : t -> int

val set_auto_tune_drops : t -> bool -> unit
(** Adopt the last server's §5.4 m-recommendation after each dialing
    round. *)

val cdn_stats : t -> Cdn.stats option
(** Present when the deployment was created with [cdn_edges > 0]. *)

val connect :
  ?seed:string ->
  ?window:int ->
  ?rtt:int ->
  ?max_conversations:int ->
  ?certified:Client.certified_config ->
  t ->
  Client.t
(** Add a client; with [seed], its identity and randomness are
    deterministic. *)

val clients : t -> Client.t list
val find_client : t -> bytes -> Client.t option

type round_report = {
  round : int;  (** the conversation or dialing round that ran *)
  dialing : bool;
  events : (Client.t * Client.event list) list;
      (** per participating client, in connection order; for dialing
          rounds, only clients with incoming calls appear *)
  batch_size : int;  (** requests the entry server forwarded *)
  wire_bytes : int;  (** size of the entry → first-server batch frame *)
  elapsed_ms : float;  (** wall clock for the chain round trip *)
  confirmed_acks : int;
      (** dialing rounds: acks that unwrapped to the expected fixed
          plaintext; [0] for conversation rounds *)
  failure : Rpc.status option;
      (** a link's typed error frame; when set, [events] is empty *)
}
(** What one round did — load accounting and failure surfacing alongside
    the per-client events. *)

val events_of : round_report list -> (Client.t * Client.event list) list
(** Flatten reports to their events, in round order. *)

val pp_round_report : Format.formatter -> round_report -> unit

val run_round : ?blocked:(Client.t -> bool) -> t -> round_report
(** Run one conversation round; [blocked] clients send nothing (the
    §2.1 active attack, or an outage). *)

val run_dialing_round : ?blocked:(Client.t -> bool) -> t -> round_report
(** Run one dialing round: submissions, ack confirmation, and the
    download/scan phase. *)

val run_rounds :
  ?blocked:(Client.t -> bool) -> t -> int -> round_report list

val run_schedule :
  ?blocked:(Client.t -> bool) ->
  ?dial_every:int ->
  t ->
  rounds:int ->
  round_report list
(** Interleave conversation rounds with a dialing round every
    [dial_every] rounds (default 10), as a deployment would (§8.1). *)
