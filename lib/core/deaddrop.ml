(* Dead-drop stores kept by the last server in the chain.

   Conversation drops (§4): ephemeral per round; each holds at most the
   requests of one honest pair.  The store matches up accesses: the first
   two requests to a drop exchange their sealed messages; a lone request
   gets the empty (all-zero) result; extra adversarial requests to an
   already-paired drop also get the empty result (footnote 6 of the
   paper: honest collisions are negligible, so >2 accesses only arise
   from adversarial duplication, and those learn nothing new).

   Only the first two accesses ever matter to [resolve], so each drop
   stores exactly those plus an access count; the count transitions also
   maintain the (m1, m2, m_more) histogram incrementally, making
   [histogram] O(1) instead of a List.length walk per drop.  The seed
   implementation survives verbatim as {!Deaddrop_ref}, the differential
   oracle for [test/prop/prop_deaddrop.ml].

   Invitation drops (§5): a small fixed number m of large drops, each
   accumulating all invitations (real + noise) for the public keys that
   hash to it. *)

(* One dead drop.  [a2_*] are meaningful only when [count >= 2]. *)
type cell = {
  a1_slot : int;
  a1_sealed : bytes;
  mutable a2_slot : int;
  mutable a2_sealed : bytes;
  mutable count : int;
}

type t = {
  drops : (string, cell) Hashtbl.t;
  mutable total_accesses : int;
  mutable m1 : int;
  mutable m2 : int;
  mutable m_more : int;
}

let create () =
  { drops = Hashtbl.create 1024; total_accesses = 0; m1 = 0; m2 = 0; m_more = 0 }

let clear t =
  Hashtbl.reset t.drops;
  t.total_accesses <- 0;
  t.m1 <- 0;
  t.m2 <- 0;
  t.m_more <- 0

let no_sealed = Bytes.create 0

(* Record one exchange request.  Each batch slot must be put at most
   once per round (the server enforces this upstream). *)
let put t ~slot ~drop_id ~sealed =
  let key = Bytes.to_string drop_id in
  (match Hashtbl.find_opt t.drops key with
  | None ->
      Hashtbl.add t.drops key
        { a1_slot = slot; a1_sealed = sealed; a2_slot = -1;
          a2_sealed = no_sealed; count = 1 };
      t.m1 <- t.m1 + 1
  | Some c ->
      (match c.count with
      | 1 ->
          c.a2_slot <- slot;
          c.a2_sealed <- sealed;
          t.m1 <- t.m1 - 1;
          t.m2 <- t.m2 + 1
      | 2 ->
          t.m2 <- t.m2 - 1;
          t.m_more <- t.m_more + 1
      | _ -> ());
      c.count <- c.count + 1);
  t.total_accesses <- t.total_accesses + 1

let empty_result = Bytes.make Types.exchange_result_len '\000'

(* Swap the first two accesses of every paired drop into [results].
   Slots not written keep whatever [results] was prefilled with. *)
let resolve_into drops results =
  Hashtbl.iter
    (fun _ c ->
      if c.count >= 2 then begin
        (* First two accesses exchange contents; any later (necessarily
           adversarial) duplicates keep the empty result. *)
        results.(c.a1_slot) <- c.a2_sealed;
        results.(c.a2_slot) <- c.a1_sealed
      end)
    drops

(* Every slot the pair-matching left untouched gets its own fresh
   all-zero buffer: [empty_result] itself must never escape, or a caller
   mutating one lone slot's result would corrupt every other's. *)
let copy_lone_slots results =
  Array.iteri
    (fun i r -> if r == empty_result then results.(i) <- Bytes.copy empty_result)
    results;
  results

(* Resolve all drops: returns the per-slot results.  [n_slots] is the
   batch size; every slot receives exactly [Types.exchange_result_len]
   bytes, freshly allocated for lone/unused slots. *)
let resolve t ~n_slots =
  let results = Array.make n_slots empty_result in
  resolve_into t.drops results;
  copy_lone_slots results

(* Observable variables (§4.2): the histogram of access counts.  [m1] is
   the number of drops accessed once, [m2] accessed twice.  These two
   numbers are all an adversary controlling the last server learns
   beyond what its own requests tell it. *)
type histogram = { m1 : int; m2 : int; m_more : int }

let histogram (t : t) = { m1 = t.m1; m2 = t.m2; m_more = t.m_more }

let pp_histogram fmt { m1; m2; m_more } =
  Format.fprintf fmt "{m1=%d; m2=%d; m>2=%d}" m1 m2 m_more

(* ------------------------------------------------------------------ *)
(* Sharded store (scale plane)                                         *)
(* ------------------------------------------------------------------ *)

(* Drop ids are HMAC outputs (uniform), so routing on the id prefix
   balances shards without touching the histogram semantics: a drop's
   accesses all share the id, hence the shard, so pair-matching inside
   each shard sees exactly the accesses the monolithic store would.
   Each batch slot belongs to exactly one drop and therefore exactly one
   shard, which makes the per-shard [resolve] writes into the shared
   results array disjoint — safe to fan over the domain pool and
   bit-identical to the sequential store regardless of shard count. *)
module Sharded = struct
  type monolithic = t

  type t = { shards : monolithic array; n : int }

  let create ?(shards = 1) () =
    let n = max 1 shards in
    { shards = Array.init n (fun _ -> create ()); n }

  let shard_count t = t.n

  (* Big-endian prefix of the drop id mod shard count; ids are at least
     two bytes ({!Types.drop_id_len} = 16). *)
  let shard_of t drop_id =
    ((Char.code (Bytes.get drop_id 0) lsl 8) lor Char.code (Bytes.get drop_id 1))
    mod t.n

  let put t ~slot ~drop_id ~sealed =
    put t.shards.(shard_of t drop_id) ~slot ~drop_id ~sealed

  let clear t = Array.iter clear t.shards

  let total_accesses t =
    Array.fold_left (fun acc s -> acc + s.total_accesses) 0 t.shards

  let histogram t =
    Array.fold_left
      (fun acc (s : monolithic) ->
        { m1 = acc.m1 + s.m1; m2 = acc.m2 + s.m2; m_more = acc.m_more + s.m_more })
      { m1 = 0; m2 = 0; m_more = 0 }
      t.shards

  let resolve ?pool t ~n_slots =
    let results = Array.make n_slots empty_result in
    (match pool with
    | Some p when t.n > 1 ->
        ignore
          (Vuvuzela_parallel.Pool.run p
             (Array.map (fun s () -> resolve_into s.drops results) t.shards))
    | _ -> Array.iter (fun s -> resolve_into s.drops results) t.shards);
    copy_lone_slots results
end

(* ------------------------------------------------------------------ *)
(* Invitation drops (dialing)                                          *)
(* ------------------------------------------------------------------ *)

module Invitation = struct
  type store = {
    mutable drops : bytes list array; (* newest first *)
    counts : int array;  (* per-index size, tracked at put so [size] is O(1) *)
    mutable total_invitations : int;
  }

  let create ~m =
    let m = max 1 m in
    { drops = Array.make m []; counts = Array.make m 0; total_invitations = 0 }

  let drop_count s = Array.length s.drops

  let clear s =
    Array.fill s.drops 0 (Array.length s.drops) [];
    Array.fill s.counts 0 (Array.length s.counts) 0;
    s.total_invitations <- 0

  (* §5.1: invitations for public key pk live in drop H(pk) mod m. *)
  let index_of ~m pk =
    let h = Vuvuzela_crypto.Sha256.digest pk in
    (* Big-endian read of the first 8 digest bytes, reduced mod m. *)
    let v = ref 0 in
    for i = 0 to 7 do
      v := ((!v lsl 8) lor Char.code (Bytes.get h i)) land max_int
    done;
    !v mod m

  let put s ~index invitation =
    if index <> Types.noop_drop then begin
      if index < 0 || index >= Array.length s.drops then
        invalid_arg "Invitation.put: bad drop index";
      s.drops.(index) <- invitation :: s.drops.(index);
      s.counts.(index) <- s.counts.(index) + 1;
      s.total_invitations <- s.total_invitations + 1
    end

  (* Clients download their whole drop and trial-decrypt (§5.1). *)
  let fetch s ~index =
    if index < 0 || index >= Array.length s.drops then
      invalid_arg "Invitation.fetch: bad drop index";
    List.rev s.drops.(index)

  let size s ~index = s.counts.(index)
  let total s = s.total_invitations
end
