(** The inter-server wire protocol: framed messages between clients, the
    entry server, and the chain (§3.1 round coordination, §7
    architecture).  Versioned, fixed-item-size batches. *)

type status = {
  round : int;
  server : int;  (** chain position reporting the failure *)
  stage : string;  (** which link/message failed, e.g. ["conv-batch"] *)
  detail : string;
}
(** A typed error frame: sent in place of the results a server cannot
    produce (framing violation, size mismatch, protocol error), so
    failures cross the wire as first-class messages instead of killing
    the connection. *)

type message =
  | Round_announce of { round : int; deadline_ms : int }
  | Dial_announce of { dial_round : int; m : int }
  | Conv_batch of { round : int; onions : bytes array }
  | Conv_results of { round : int; replies : bytes array }
  | Dial_batch of { round : int; m : int; onions : bytes array }
  | Dial_results of { round : int; replies : bytes array }
  | Fetch_drop of { dial_round : int; index : int }
  | Drop_contents of {
      dial_round : int;
      index : int;
      invitations : bytes list;
    }
  | Status of status
  | Hello of { index : int }
      (** transport handshake, dialer → listener: the dialer's chain
          position ([-1] for the coordinator/entry process) *)
  | Chain_info of { pks : bytes list }
      (** handshake reply: the listener's public key followed by its
          whole downstream suffix, in chain order — key material
          propagates up a multi-process chain one handshake at a time *)
  | Abort of { round : int; dialing : bool }
      (** discard this round's state everywhere; forwarded hop to hop
          ahead of the supervisor's retry *)
  | Bye  (** graceful chain shutdown, forwarded hop to hop *)
  | Conv_batch_part of {
      round : int;
      seq : int;
      last : bool;
      onions : bytes array;
    }
      (** pipelined relay: one contiguous chunk of a [Conv_batch], sent
          as soon as the upstream hop has produced it.  Parts of a round
          arrive in [seq] order on a single ordered link; [last = true]
          closes the batch.  Concatenating a round's parts yields
          exactly the [Conv_batch] the lockstep relay would have sent,
          which is why the pipelined mode is bit-identical. *)
  | Dial_batch_part of {
      round : int;
      m : int;
      seq : int;
      last : bool;
      onions : bytes array;
    }  (** pipelined chunk of a [Dial_batch]; [m] repeats on every part *)
  | Trace_ctx of { ctx : bytes }
      (** observability control frame (tag 16), sent immediately before
          a batch: an opaque {!Vuvuzela_telemetry.Trace.context} blob
          naming the sender's open span, so the receiver's hop span can
          parent into it across the process boundary.  Backward
          compatible by construction — peers that never send it lose
          only the cross-process parent link, and a malformed blob is
          ignored (never aborts a round). *)

val encode : message -> bytes
(** @raise Vuvuzela_mixnet.Wire.Error on ragged batches. *)

val decode : bytes -> (message, string) result
(** Rejects bad magic, unknown versions/tags, absurd counts, and
    truncated or trailing bytes. *)

val equal_message : message -> message -> bool

val split_parts : chunk:int -> bytes array -> bytes array array
(** Split a logical batch into the ≤[chunk]-sized contiguous slices the
    pipelined relay ships as [*_batch_part] frames ([chunk] clamped
    ≥ 1).  An empty batch yields one empty part, so every round is
    closed by a [last = true] frame. *)

val conv_batch_bytes : count:int -> item_len:int -> int
(** Exact wire size of a [Conv_batch], for bandwidth accounting. *)

val dial_batch_bytes : count:int -> item_len:int -> int
(** Exact wire size of a [Dial_batch]. *)

val pp_status : Format.formatter -> status -> unit

(** {2 Coordinator statuses}

    Abort reasons that originate at the round supervisor rather than on
    a link, sharing the [status] type so reports and retry policies are
    uniform. *)

val chain_shutdown : round:int -> status
(** A round was attempted after {!Chain.shutdown} (stage
    ["chain-shutdown"]). *)

val deadline_exceeded : round:int -> deadline_ms:float -> status
(** The round exceeded the supervisor's deadline (stage ["deadline"]). *)

val transport_error : round:int -> server:int -> detail:string -> status
(** A TCP link failed mid-round — connection lost, peer unreachable, a
    reply that never came (stage ["transport"]).  Retryable: the
    transport's reconnect machinery restores the link while the
    supervisor retries the round. *)

val is_chain_shutdown : status -> bool

val retryable : status -> bool
(** Whether a fresh attempt can succeed: true for every status except
    {!chain_shutdown} (a shut-down chain stays down; link faults,
    crashes, and deadline misses are transient under §7's model). *)
