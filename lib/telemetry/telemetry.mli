(** The telemetry sink the round engine is wired through: one metrics
    registry + one span tracer + (optionally) one privacy-budget ledger.

    Every instrumentation point in the core takes a [t option]; [None]
    is the nil sink and costs a single pattern match — no allocation, no
    clock read, no RNG use — so rounds are bit-identical with telemetry
    enabled or disabled at any job count.

    All helpers run on the coordinating domain (the same single-domain
    contract as the engine's RNG draws). *)

type t

val create :
  ?clock:(unit -> float) -> ?trace_id:int -> ?origin:int -> unit -> t
(** [clock] is injected into the tracer (seconds; default
    [Unix.gettimeofday]).  [trace_id] and [origin] identify this
    process's tracer in a merged cross-process trace (see
    {!Trace.create}). *)

val metrics : t -> Metrics.registry
val trace : t -> Trace.t

val set_ledger : t -> Ledger.t -> unit
(** Attach budget accounting (done by the deployment, which knows the
    noise parameters). *)

val ledger : t -> Ledger.t option

(** {2 Instrumentation points} (all no-ops on [None]) *)

val stage :
  t option -> name:string -> round:int -> server:int -> ?dialing:bool ->
  (unit -> 'a) -> 'a
(** Trace a pipeline stage as a span {e and} observe its duration into
    the [vuvuzela_stage_ms{stage=name}] histogram. *)

val span :
  t option -> name:string -> round:int -> ?server:int -> ?dialing:bool ->
  (unit -> 'a) -> 'a
(** Trace a span without feeding the stage histogram (round roots,
    client phases). *)

val mark :
  t option -> name:string -> round:int -> server:int -> ?dialing:bool ->
  unit -> unit
(** Record a zero-duration span for a stage that does not apply to this
    participant, so per-(round, server) stage coverage stays total.
    Does not feed the stage histogram (zeros would distort latency
    quantiles). *)

val annotate : t option -> string -> string -> unit
(** Annotate the innermost open span. *)

val add_counter :
  t option -> ?labels:(string * string) list -> ?by:float -> string -> unit

val set_gauge :
  t option -> ?labels:(string * string) list -> string -> float -> unit

val observe :
  t option -> ?labels:(string * string) list -> ?buckets:float array ->
  string -> float -> unit

val charge :
  t option -> client:bytes -> dialing:bool -> unit
(** Charge the ledger (if attached) for one attempted round,
    incrementing [vuvuzela_budget_warnings_total] when this client
    crosses the warning threshold (at most once per client). *)

val refresh_budget : t option -> unit
(** Recompute the budget gauges from the ledger:
    [vuvuzela_budget_eps_max], [vuvuzela_budget_delta_max],
    [vuvuzela_budget_over_warn_clients].  Called once per round by the
    deployment, after charging its participants. *)

(** {2 Stage names} *)

val server_stages : string list
(** The six per-server pipeline stages, in pipeline order:
    ["peel"; "noise"; "shuffle"; "exchange"; "reseal"; "unpeel"]. *)
