(** Per-client cumulative privacy-budget accounting.

    Each attempted round publishes one draw of the noise mechanism to
    the adversary's view, so the ledger charges every participant one
    composition step per {e attempt} (retried rounds redraw noise and
    therefore spend again — being conservative is the point of a
    ledger).  Conversation and dialing rounds compose separately under
    Theorem 2 ({!Vuvuzela_dp.Composition.compose}) and the two spends
    add (basic sequential composition across the two mechanisms).

    ε′ and δ′ are monotone non-decreasing in the number of charged
    rounds, so a client's reported spend never goes down. *)

type t

val create :
  ?d:float ->
  ?warn_eps:float ->
  conv:Vuvuzela_dp.Mechanism.guarantee ->
  dial:Vuvuzela_dp.Mechanism.guarantee ->
  unit ->
  t
(** [conv]/[dial] are the deployment's per-round guarantees (from
    {!Vuvuzela_dp.Mechanism.conversation}/[dialing] on its noise
    parameters).  [d] is Theorem 2's free parameter (default
    {!Vuvuzela_dp.Composition.default_d}).  [warn_eps], when set, marks
    clients whose cumulative ε′ crosses it. *)

val warn_eps : t -> float option

val charge : t -> client:bytes -> dialing:bool -> bool
(** Record one attempted round for [client] (keyed by public key).
    Returns [true] iff this charge moved the client's cumulative ε′
    across [warn_eps] (each client crosses at most once). *)

val clients : t -> int

val rounds : t -> client:bytes -> int * int
(** (conversation, dialing) rounds charged so far; (0, 0) for a client
    never seen. *)

val spent_of : t -> conv_rounds:int -> dial_rounds:int ->
  Vuvuzela_dp.Mechanism.guarantee
(** The pure composition rule: Theorem 2 over each protocol's charged
    rounds (a protocol with zero rounds contributes exactly (0, 0)),
    then summed.  Exposed so tests can pin the ledger against
    {!Vuvuzela_dp.Composition} directly. *)

val spent : t -> client:bytes -> Vuvuzela_dp.Mechanism.guarantee
(** [spent_of] applied to the client's charged rounds. *)

val worst : t -> Vuvuzela_dp.Mechanism.guarantee
(** The maximum per-client spend (ε′ maximised; rounds are charged
    deployment-wide so this is also the typical client).  (0, 0) when
    no client was ever charged. *)

val over_budget : t -> int
(** Clients whose cumulative ε′ has crossed [warn_eps] (0 when unset). *)

val iter :
  t -> (client:bytes -> conv:int -> dial:int ->
        spent:Vuvuzela_dp.Mechanism.guarantee -> unit) -> unit
(** Visit every charged client, in first-charge order. *)
