(* The sink: registry + tracer + optional ledger, and the option-taking
   helpers the core calls.  The [None] path of every helper is a single
   match — the nil sink must not perturb timing-sensitive code, and must
   never touch an RNG (determinism with telemetry on/off is asserted in
   test_telemetry.ml). *)

type t = {
  metrics : Metrics.registry;
  trace : Trace.t;
  mutable ledger : Ledger.t option;
}

let create ?clock ?trace_id ?origin () =
  {
    metrics = Metrics.create ();
    trace = Trace.create ?clock ?trace_id ?origin ();
    ledger = None;
  }

let metrics t = t.metrics
let trace t = t.trace
let set_ledger t l = t.ledger <- Some l
let ledger t = t.ledger

let server_stages = [ "peel"; "noise"; "shuffle"; "exchange"; "reseal"; "unpeel" ]

let stage tel ~name ~round ~server ?dialing f =
  match tel with
  | None -> f ()
  | Some t ->
      let s = Trace.begin_span t.trace ~name ~round ~server ?dialing () in
      Fun.protect
        ~finally:(fun () ->
          Trace.end_span t.trace s;
          Metrics.observe
            (Metrics.histogram t.metrics
               ~help:"Per-stage latency of the round pipeline"
               ~labels:[ ("stage", name) ] "vuvuzela_stage_ms")
            s.Trace.dur_ms)
        f

let span tel ~name ~round ?server ?dialing f =
  match tel with
  | None -> f ()
  | Some t -> Trace.with_span t.trace ~name ~round ?server ?dialing f

let mark tel ~name ~round ~server ?dialing () =
  match tel with
  | None -> ()
  | Some t -> Trace.instant t.trace ~name ~round ~server ?dialing ()

let annotate tel k v =
  match tel with None -> () | Some t -> Trace.annotate t.trace k v

let add_counter tel ?labels ?by name =
  match tel with
  | None -> ()
  | Some t -> Metrics.inc ?by (Metrics.counter t.metrics ?labels name)

let set_gauge tel ?labels name v =
  match tel with
  | None -> ()
  | Some t -> Metrics.set (Metrics.gauge t.metrics ?labels name) v

let observe tel ?labels ?buckets name v =
  match tel with
  | None -> ()
  | Some t -> Metrics.observe (Metrics.histogram t.metrics ?labels ?buckets name) v

let charge tel ~client ~dialing =
  match tel with
  | None -> ()
  | Some t -> (
      match t.ledger with
      | None -> ()
      | Some ledger ->
          if Ledger.charge ledger ~client ~dialing then
            Metrics.inc
              (Metrics.counter t.metrics
                 ~help:"Clients whose cumulative eps' crossed the warning threshold"
                 "vuvuzela_budget_warnings_total"))

let refresh_budget tel =
  match tel with
  | None -> ()
  | Some t -> (
      match t.ledger with
      | None -> ()
      | Some ledger ->
          let worst = Ledger.worst ledger in
          Metrics.set
            (Metrics.gauge t.metrics
               ~help:"Largest cumulative eps' across clients (Theorem 2)"
               "vuvuzela_budget_eps_max")
            worst.Vuvuzela_dp.Mechanism.eps;
          Metrics.set
            (Metrics.gauge t.metrics
               ~help:"Largest cumulative delta' across clients (Theorem 2)"
               "vuvuzela_budget_delta_max")
            worst.Vuvuzela_dp.Mechanism.delta;
          Metrics.set
            (Metrics.gauge t.metrics
               ~help:"Clients currently over the eps' warning threshold"
               "vuvuzela_budget_over_warn_clients")
            (float_of_int (Ledger.over_budget ledger)))
