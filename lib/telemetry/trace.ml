(* Append-only span recorder.  All mutation happens on the coordinating
   domain (the same contract as the round engine's RNG), so a plain list
   and stack suffice. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  round : int;
  server : int;
  dialing : bool;
  start_ms : float;
  mutable dur_ms : float;
  mutable annotations : (string * string) list;
  mutable closed : bool;
}

type t = {
  clock : unit -> float;
  epoch : float;
  mutable spans : span list;  (* begin order, newest first *)
  mutable next_id : int;
  mutable stack : span list;  (* open spans, innermost first *)
}

let create ?(clock = Unix.gettimeofday) () =
  { clock; epoch = clock (); spans = []; next_id = 0; stack = [] }

let now_ms t = (t.clock () -. t.epoch) *. 1000.

let begin_span t ~name ~round ?(server = -1) ?(dialing = false) () =
  let s =
    {
      id = t.next_id;
      parent = (match t.stack with [] -> None | p :: _ -> Some p.id);
      name;
      round;
      server;
      dialing;
      start_ms = now_ms t;
      dur_ms = 0.;
      annotations = [];
      closed = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.spans <- s :: t.spans;
  t.stack <- s :: t.stack;
  s

let end_span t s =
  if not s.closed then begin
    s.dur_ms <- now_ms t -. s.start_ms;
    s.closed <- true;
    (* Pop s and, defensively, any unclosed children a raising stage
       left behind. *)
    let rec pop = function
      | x :: rest when x == s -> rest
      | x :: rest ->
          if not x.closed then begin
            x.dur_ms <- now_ms t -. x.start_ms;
            x.closed <- true
          end;
          pop rest
      | [] -> []
    in
    t.stack <- pop t.stack
  end

let with_span t ~name ~round ?server ?dialing f =
  let s = begin_span t ~name ~round ?server ?dialing () in
  Fun.protect ~finally:(fun () -> end_span t s) f

let instant t ~name ~round ?server ?dialing () =
  let s = begin_span t ~name ~round ?server ?dialing () in
  (* Zero duration by construction, not by clock coincidence. *)
  s.closed <- true;
  s.dur_ms <- 0.;
  t.stack <- (match t.stack with x :: rest when x == s -> rest | st -> st)

let annotate t k v =
  match t.stack with
  | [] -> ()
  | s :: _ -> s.annotations <- (k, v) :: s.annotations

let spans t = List.rev t.spans
let span_count t = t.next_id

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let span_to_json s =
  Json.Obj
    [
      ("id", Json.Num (float_of_int s.id));
      ("parent", match s.parent with None -> Json.Null | Some p -> Json.Num (float_of_int p));
      ("name", Json.Str s.name);
      ("round", Json.Num (float_of_int s.round));
      ("server", Json.Num (float_of_int s.server));
      ("dialing", Json.Bool s.dialing);
      ("start_ms", Json.Num s.start_ms);
      ("dur_ms", Json.Num s.dur_ms);
      ( "annotations",
        Json.Obj
          (List.rev_map (fun (k, v) -> (k, Json.Str v)) s.annotations) );
    ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (span_to_json s));
      Buffer.add_char buf '\n')
    (spans t);
  Buffer.contents buf

(* Per (round, dialing): stage name -> total duration.  Root spans
   (parent = None) are the enclosing round/coordinator spans; excluding
   them keeps each millisecond attributed exactly once. *)
let flame_summary t =
  let rounds = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.parent <> None then begin
        let key = (s.round, s.dialing) in
        let stages =
          match Hashtbl.find_opt rounds key with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.replace rounds key h;
              h
        in
        let prev = Option.value ~default:0. (Hashtbl.find_opt stages s.name) in
        Hashtbl.replace stages s.name (prev +. s.dur_ms)
      end)
    (spans t);
  Hashtbl.fold
    (fun key stages acc ->
      let entries =
        List.sort compare (Hashtbl.fold (fun n d l -> (n, d) :: l) stages [])
      in
      (key, entries) :: acc)
    rounds []
  |> List.sort compare

let pp_flame ppf t =
  List.iter
    (fun ((round, dialing), stages) ->
      Format.fprintf ppf "%s %d:"
        (if dialing then "dial" else "conv")
        round;
      List.iter
        (fun (name, ms) -> Format.fprintf ppf " %s=%.2fms" name ms)
        stages;
      Format.fprintf ppf "@.")
    (flame_summary t)

(* ------------------------------------------------------------------ *)
(* Schema checking                                                     *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let check_line ~seen_ids line_no line =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line_no m)) fmt in
  match Json.parse line with
  | Error e -> fail "not valid JSON (%s)" e
  | Ok json ->
      let req name extract =
        match Option.bind (Json.member name json) extract with
        | Some v -> Ok v
        | None -> fail "missing or mistyped field %S" name
      in
      let* id = req "id" Json.to_int in
      let* _name =
        match Option.bind (Json.member "name" json) Json.to_str with
        | Some "" -> fail "empty span name"
        | Some n -> Ok n
        | None -> fail "missing or mistyped field \"name\""
      in
      let* _round = req "round" Json.to_int in
      let* _server = req "server" Json.to_int in
      let* _dialing = req "dialing" Json.to_bool in
      let* start_ms = req "start_ms" Json.to_float in
      let* dur_ms = req "dur_ms" Json.to_float in
      let* () =
        match Json.member "parent" json with
        | Some Json.Null -> Ok ()
        | Some (Json.Num _ as p) -> (
            match Json.to_int p with
            | Some parent when Hashtbl.mem seen_ids parent -> Ok ()
            | Some parent -> fail "parent %d not declared on an earlier line" parent
            | None -> fail "non-integral parent id")
        | _ -> fail "missing or mistyped field \"parent\""
      in
      let* () =
        match Json.member "annotations" json with
        | Some (Json.Obj fields) ->
            if List.for_all (fun (_, v) -> match v with Json.Str _ -> true | _ -> false) fields
            then Ok ()
            else fail "non-string annotation value"
        | _ -> fail "missing or mistyped field \"annotations\""
      in
      if start_ms < 0. then fail "negative start_ms"
      else if dur_ms < 0. then fail "negative dur_ms"
      else if Hashtbl.mem seen_ids id then fail "duplicate span id %d" id
      else begin
        Hashtbl.replace seen_ids id ();
        Ok ()
      end

let validate_jsonl text =
  let seen_ids = Hashtbl.create 256 in
  let lines = String.split_on_char '\n' text in
  let rec go n = function
    | [] -> Ok ()
    | [ "" ] -> Ok ()  (* trailing newline *)
    | line :: rest -> (
        match check_line ~seen_ids n line with
        | Ok () -> go (n + 1) rest
        | Error _ as e -> e)
  in
  if text = "" then Error "empty trace" else go 1 lines
