(* Append-only span recorder.  All mutation happens on the coordinating
   domain (the same contract as the round engine's RNG), so a plain list
   and stack suffice. *)

type context = { trace : int; origin : int; span : int }

type span = {
  id : int;
  parent : int option;
  remote : context option;
  name : string;
  round : int;
  server : int;
  dialing : bool;
  start_ms : float;
  mutable dur_ms : float;
  mutable annotations : (string * string) list;
  mutable closed : bool;
}

type t = {
  clock : unit -> float;
  epoch : float;
  trace_id : int;
  origin : int;
  mutable spans : span list;  (* begin order, newest first *)
  mutable next_id : int;
  mutable stack : span list;  (* open spans, innermost first *)
}

(* Distinct-enough across coordinator restarts, and safely below 2^53 so
   it round-trips through [Json.Num]. *)
let fresh_trace_id () =
  (Unix.getpid () lxor int_of_float (Unix.gettimeofday () *. 1e6))
  land 0x3FFFFFFF

let create ?(clock = Unix.gettimeofday) ?trace_id ?(origin = 0) () =
  let trace_id =
    match trace_id with Some id -> id land max_int | None -> fresh_trace_id ()
  in
  { clock; epoch = clock (); trace_id; origin; spans = []; next_id = 0;
    stack = [] }

let trace_id t = t.trace_id
let origin t = t.origin

let now_ms t = (t.clock () -. t.epoch) *. 1000.

let mk_span t ~parent ~remote ~name ~round ~server ~dialing =
  let s =
    {
      id = t.next_id;
      parent;
      remote;
      name;
      round;
      server;
      dialing;
      start_ms = now_ms t;
      dur_ms = 0.;
      annotations = [];
      closed = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.spans <- s :: t.spans;
  t.stack <- s :: t.stack;
  s

let begin_span t ~name ~round ?(server = -1) ?(dialing = false) () =
  let parent = match t.stack with [] -> None | p :: _ -> Some p.id in
  mk_span t ~parent ~remote:None ~name ~round ~server ~dialing

let begin_remote_span t ~name ~round ?(server = -1) ?(dialing = false)
    ?remote () =
  (* A remote-rooted span deliberately ignores the local open stack: its
     parent lives in another process and is resolved at merge time. *)
  mk_span t ~parent:None ~remote ~name ~round ~server ~dialing

(* A span rooted in another process propagates that process's trace id:
   the id the coordinator minted travels hop to hop, so every re-stamped
   context downstream still names the root trace and the merge can link
   the whole chain.  Locally rooted spans export the local trace id. *)
let context_of t s =
  let trace = match s.remote with Some c -> c.trace | None -> t.trace_id in
  { trace; origin = t.origin; span = s.id }

let end_span t s =
  if not s.closed then begin
    s.dur_ms <- now_ms t -. s.start_ms;
    s.closed <- true;
    (* Pop s and, defensively, any unclosed children a raising stage
       left behind. *)
    let rec pop = function
      | x :: rest when x == s -> rest
      | x :: rest ->
          if not x.closed then begin
            x.dur_ms <- now_ms t -. x.start_ms;
            x.closed <- true
          end;
          pop rest
      | [] -> []
    in
    t.stack <- pop t.stack
  end

let with_span t ~name ~round ?server ?dialing f =
  let s = begin_span t ~name ~round ?server ?dialing () in
  Fun.protect ~finally:(fun () -> end_span t s) f

let instant t ~name ~round ?server ?dialing () =
  let s = begin_span t ~name ~round ?server ?dialing () in
  (* Zero duration by construction, not by clock coincidence. *)
  s.closed <- true;
  s.dur_ms <- 0.;
  t.stack <- (match t.stack with x :: rest when x == s -> rest | st -> st)

let annotate t k v =
  match t.stack with
  | [] -> ()
  | s :: _ -> s.annotations <- (k, v) :: s.annotations

let spans t = List.rev t.spans
let span_count t = t.next_id

(* ------------------------------------------------------------------ *)
(* Wire context                                                        *)
(* ------------------------------------------------------------------ *)

(* 20 bytes, little-endian: u64 trace id, u32 origin, u64 span id.  The
   blob rides an [Rpc] control frame, so decoding must reject rather
   than raise on anything malformed — a poisoned context degrades to "no
   context", never to a round abort. *)
let context_len = 20

let encode_context c =
  let b = Bytes.create context_len in
  Bytes.set_int64_le b 0 (Int64.of_int c.trace);
  Bytes.set_int32_le b 8 (Int32.of_int c.origin);
  Bytes.set_int64_le b 12 (Int64.of_int c.span);
  b

let decode_context b =
  if Bytes.length b <> context_len then None
  else
    let trace = Int64.to_int (Bytes.get_int64_le b 0) in
    let origin = Int32.to_int (Bytes.get_int32_le b 8) in
    let span = Int64.to_int (Bytes.get_int64_le b 12) in
    if trace < 0 || span < 0 || origin < 0 || origin > 0xffff then None
    else Some { trace; origin; span }

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let context_to_json c =
  Json.Obj
    [
      ("trace", Json.Num (float_of_int c.trace));
      ("origin", Json.Num (float_of_int c.origin));
      ("span", Json.Num (float_of_int c.span));
    ]

let span_to_json ?origin ?trace s =
  let tail =
    List.concat
      [
        (match origin with
        | None -> []
        | Some o -> [ ("origin", Json.Num (float_of_int o)) ]);
        (match trace with
        | None -> []
        | Some id -> [ ("trace", Json.Num (float_of_int id)) ]);
        (match s.remote with
        | None -> []
        | Some c -> [ ("ctx", context_to_json c) ]);
      ]
  in
  Json.Obj
    ([
       ("id", Json.Num (float_of_int s.id));
       ("parent", match s.parent with None -> Json.Null | Some p -> Json.Num (float_of_int p));
       ("name", Json.Str s.name);
       ("round", Json.Num (float_of_int s.round));
       ("server", Json.Num (float_of_int s.server));
       ("dialing", Json.Bool s.dialing);
       ("start_ms", Json.Num s.start_ms);
       ("dur_ms", Json.Num s.dur_ms);
       ( "annotations",
         Json.Obj
           (List.rev_map (fun (k, v) -> (k, Json.Str v)) s.annotations) );
     ]
    @ tail)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Json.to_string (span_to_json ~origin:t.origin ~trace:t.trace_id s));
      Buffer.add_char buf '\n')
    (spans t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Cross-process merge                                                 *)
(* ------------------------------------------------------------------ *)

(* Merge per-process JSONL exports into one causally linked trace.  The
   coordinator's export must come first: its trace id anchors the merge,
   and emitting processes in the given order guarantees every resolved
   parent appears on an earlier line (the [validate_jsonl] contract).
   Span ids are renumbered via an (origin, local id) map; each span's
   [ctx] back-reference — stamped by [begin_remote_span] — is resolved
   into an ordinary [parent] link when its trace id matches the root's,
   and dropped otherwise. *)
let merge_jsonl processes =
  let int_member name j = Option.bind (Json.member name j) Json.to_int in
  let parse_all () =
    let entries = ref [] in
    let err = ref None in
    List.iter
      (fun (label, text) ->
        let n = ref 0 in
        List.iter
          (fun line ->
            incr n;
            if line <> "" && !err = None then
              match Json.parse line with
              | Error e ->
                  err := Some (Printf.sprintf "%s line %d: %s" label !n e)
              | Ok j -> entries := (label, j) :: !entries)
          (String.split_on_char '\n' text))
      processes;
    match !err with Some e -> Error e | None -> Ok (List.rev !entries)
  in
  match parse_all () with
  | Error _ as e -> e
  | Ok entries ->
      let root_trace =
        match entries with
        | (_, j) :: _ -> int_member "trace" j
        | [] -> None
      in
      let ids = Hashtbl.create 256 in
      let next = ref 0 in
      List.iter
        (fun (_, j) ->
          match int_member "id" j with
          | None -> ()
          | Some id ->
              let origin = Option.value ~default:0 (int_member "origin" j) in
              if not (Hashtbl.mem ids (origin, id)) then begin
                Hashtbl.replace ids (origin, id) !next;
                incr next
              end)
        entries;
      let buf = Buffer.create 4096 in
      let err = ref None in
      List.iter
        (fun (label, j) ->
          if !err = None then
            match int_member "id" j with
            | None -> err := Some (Printf.sprintf "%s: span without id" label)
            | Some id ->
                let origin = Option.value ~default:0 (int_member "origin" j) in
                let gid = Hashtbl.find ids (origin, id) in
                let parent =
                  match int_member "parent" j with
                  | Some p -> Hashtbl.find_opt ids (origin, p)
                  | None -> (
                      match Json.member "ctx" j with
                      | None -> None
                      | Some ctx -> (
                          match
                            ( int_member "trace" ctx,
                              int_member "origin" ctx,
                              int_member "span" ctx )
                          with
                          | Some tr, Some o, Some sp
                            when root_trace = None || root_trace = Some tr ->
                              Hashtbl.find_opt ids (o, sp)
                          | _ -> None))
                in
                let fields = match j with Json.Obj f -> f | _ -> [] in
                let fields =
                  List.filter
                    (fun (k, _) ->
                      k <> "id" && k <> "parent" && k <> "ctx"
                      && k <> "process")
                    fields
                in
                let line =
                  Json.Obj
                    (("id", Json.Num (float_of_int gid))
                    :: ( "parent",
                         match parent with
                         | None -> Json.Null
                         | Some p -> Json.Num (float_of_int p) )
                    :: (fields @ [ ("process", Json.Str label) ]))
                in
                Buffer.add_string buf (Json.to_string line);
                Buffer.add_char buf '\n')
        entries;
      (match !err with Some e -> Error e | None -> Ok (Buffer.contents buf))

(* Per (round, dialing): stage name -> total duration.  Root spans
   (parent = None) are the enclosing round/coordinator spans; excluding
   them keeps each millisecond attributed exactly once. *)
let flame_summary t =
  let rounds = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.parent <> None then begin
        let key = (s.round, s.dialing) in
        let stages =
          match Hashtbl.find_opt rounds key with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.replace rounds key h;
              h
        in
        let prev = Option.value ~default:0. (Hashtbl.find_opt stages s.name) in
        Hashtbl.replace stages s.name (prev +. s.dur_ms)
      end)
    (spans t);
  Hashtbl.fold
    (fun key stages acc ->
      let entries =
        List.sort compare (Hashtbl.fold (fun n d l -> (n, d) :: l) stages [])
      in
      (key, entries) :: acc)
    rounds []
  |> List.sort compare

let pp_flame ppf t =
  List.iter
    (fun ((round, dialing), stages) ->
      Format.fprintf ppf "%s %d:"
        (if dialing then "dial" else "conv")
        round;
      List.iter
        (fun (name, ms) -> Format.fprintf ppf " %s=%.2fms" name ms)
        stages;
      Format.fprintf ppf "@.")
    (flame_summary t)

(* ------------------------------------------------------------------ *)
(* Schema checking                                                     *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let check_line ~seen_ids line_no line =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line_no m)) fmt in
  match Json.parse line with
  | Error e -> fail "not valid JSON (%s)" e
  | Ok json ->
      let req name extract =
        match Option.bind (Json.member name json) extract with
        | Some v -> Ok v
        | None -> fail "missing or mistyped field %S" name
      in
      let* id = req "id" Json.to_int in
      let* _name =
        match Option.bind (Json.member "name" json) Json.to_str with
        | Some "" -> fail "empty span name"
        | Some n -> Ok n
        | None -> fail "missing or mistyped field \"name\""
      in
      let* _round = req "round" Json.to_int in
      let* _server = req "server" Json.to_int in
      let* _dialing = req "dialing" Json.to_bool in
      let* start_ms = req "start_ms" Json.to_float in
      let* dur_ms = req "dur_ms" Json.to_float in
      let* () =
        match Json.member "parent" json with
        | Some Json.Null -> Ok ()
        | Some (Json.Num _ as p) -> (
            match Json.to_int p with
            | Some parent when Hashtbl.mem seen_ids parent -> Ok ()
            | Some parent -> fail "parent %d not declared on an earlier line" parent
            | None -> fail "non-integral parent id")
        | _ -> fail "missing or mistyped field \"parent\""
      in
      let* () =
        match Json.member "annotations" json with
        | Some (Json.Obj fields) ->
            if List.for_all (fun (_, v) -> match v with Json.Str _ -> true | _ -> false) fields
            then Ok ()
            else fail "non-string annotation value"
        | _ -> fail "missing or mistyped field \"annotations\""
      in
      if start_ms < 0. then fail "negative start_ms"
      else if dur_ms < 0. then fail "negative dur_ms"
      else if Hashtbl.mem seen_ids id then fail "duplicate span id %d" id
      else begin
        Hashtbl.replace seen_ids id ();
        Ok ()
      end

let validate_jsonl text =
  let seen_ids = Hashtbl.create 256 in
  let lines = String.split_on_char '\n' text in
  let rec go n = function
    | [] -> Ok ()
    | [ "" ] -> Ok ()  (* trailing newline *)
    | line :: rest -> (
        match check_line ~seen_ids n line with
        | Ok () -> go (n + 1) rest
        | Error _ as e -> e)
  in
  if text = "" then Error "empty trace" else go 1 lines
