(** Lightweight span tracing for the round pipeline.

    A span is one timed stage of one round on one participant: servers
    record [peel]/[noise]/[shuffle]/[exchange]/[reseal]/[unpeel], the
    coordinator records the enclosing round span, clients record
    build/decrypt.  Spans nest: beginning a span while another is open
    links the child to it, so a round's stage spans all hang off that
    round's root span.

    The tracer is append-only and single-domain (the round engine keeps
    instrumentation on the coordinating domain).  Timestamps come from
    the injected [clock] — wall time by default, a counter in tests —
    and are relative to the tracer's creation, so exports are stable
    under a fake clock. *)

type t

type span = {
  id : int;
  parent : int option;
  name : string;
  round : int;
  server : int;  (** chain position; [-1] for coordinator/client spans *)
  dialing : bool;
  start_ms : float;  (** relative to the tracer's epoch *)
  mutable dur_ms : float;
  mutable annotations : (string * string) list;  (** newest first *)
  mutable closed : bool;
}

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] returns seconds (monotonic enough for durations); defaults
    to [Unix.gettimeofday]. *)

val begin_span :
  t -> name:string -> round:int -> ?server:int -> ?dialing:bool -> unit ->
  span
(** Opens a span as a child of the innermost open span (if any) and
    makes it the innermost. *)

val end_span : t -> span -> unit
(** Closes the span (idempotent), recording its duration and popping it
    — and any unclosed children, defensively — off the open stack. *)

val with_span :
  t -> name:string -> round:int -> ?server:int -> ?dialing:bool ->
  (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around a thunk, exception-safe. *)

val instant :
  t -> name:string -> round:int -> ?server:int -> ?dialing:bool -> unit ->
  unit
(** A zero-duration marker span — a stage that does not apply to this
    participant but must still appear in the trace for coverage. *)

val annotate : t -> string -> string -> unit
(** Attach a key/value to the innermost open span; dropped when no span
    is open. *)

val spans : t -> span list
(** All spans, in begin order. *)

val span_count : t -> int

(** {2 Export} *)

val span_to_json : span -> Json.t

val to_jsonl : t -> string
(** One span per line, in begin order:
    [{"id":…,"parent":…,"name":…,"round":…,"server":…,"dialing":…,
      "start_ms":…,"dur_ms":…,"annotations":{…}}]. *)

val flame_summary : t -> ((int * bool) * (string * float) list) list
(** Per (round, dialing): total duration by stage name (coordinator
    root spans excluded so stages are not double-counted), rounds in
    ascending order, stages sorted by name. *)

val pp_flame : Format.formatter -> t -> unit
(** The flame summary as one aligned line per round. *)

val validate_jsonl : string -> (unit, string) result
(** The smoke test's schema checker: every line must parse as a span
    object with the right field types, ids must be unique and parents
    must reference an earlier id, durations must be non-negative. *)
