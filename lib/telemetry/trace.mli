(** Lightweight span tracing for the round pipeline.

    A span is one timed stage of one round on one participant: servers
    record [peel]/[noise]/[shuffle]/[exchange]/[reseal]/[unpeel], the
    coordinator records the enclosing round span, clients record
    build/decrypt.  Spans nest: beginning a span while another is open
    links the child to it, so a round's stage spans all hang off that
    round's root span.

    The tracer is append-only and single-domain (the round engine keeps
    instrumentation on the coordinating domain).  Timestamps come from
    the injected [clock] — wall time by default, a counter in tests —
    and are relative to the tracer's creation, so exports are stable
    under a fake clock. *)

type t

type context = { trace : int; origin : int; span : int }
(** A compact cross-process parent reference: the emitting tracer's
    trace id and origin, plus the local id of the span to parent into.
    Carried on the wire ([Rpc.Trace_ctx]) so daemon-side spans can link
    into the coordinator's round root at merge time. *)

type span = {
  id : int;
  parent : int option;
  remote : context option;
      (** parent span in another process, resolved by {!merge_jsonl} *)
  name : string;
  round : int;
  server : int;  (** chain position; [-1] for coordinator/client spans *)
  dialing : bool;
  start_ms : float;  (** relative to the tracer's epoch *)
  mutable dur_ms : float;
  mutable annotations : (string * string) list;  (** newest first *)
  mutable closed : bool;
}

val create : ?clock:(unit -> float) -> ?trace_id:int -> ?origin:int -> unit -> t
(** [clock] returns seconds (monotonic enough for durations); defaults
    to [Unix.gettimeofday].  [trace_id] defaults to a fresh pid/time
    derived value; [origin] identifies the process in a merged trace
    (convention: 0 = coordinator, [i + 1] = chain server [i]). *)

val trace_id : t -> int
val origin : t -> int

val begin_span :
  t -> name:string -> round:int -> ?server:int -> ?dialing:bool -> unit ->
  span
(** Opens a span as a child of the innermost open span (if any) and
    makes it the innermost. *)

val begin_remote_span :
  t -> name:string -> round:int -> ?server:int -> ?dialing:bool ->
  ?remote:context -> unit -> span
(** Opens a span whose parent lives in another process: the local open
    stack is ignored ([parent = None]) and [remote] — the context that
    arrived on the wire, if any — is recorded for {!merge_jsonl} to
    resolve.  The span still becomes the innermost open span, so local
    stage spans nest under it as usual. *)

val context_of : t -> span -> context
(** The wire context that makes [span] the remote parent of spans opened
    in another process.  If [span] was itself opened with
    {!begin_remote_span} and a remote context, the context propagates
    {e that} trace id — the one the coordinator minted — so re-stamped
    contexts along a chain all name the root trace. *)

(** {2 Wire codec} *)

val context_len : int
(** Encoded size in bytes (20). *)

val encode_context : context -> bytes

val decode_context : bytes -> context option
(** Total: wrong length, negative ids, or an out-of-range origin decode
    to [None] — a poisoned context never raises. *)

val end_span : t -> span -> unit
(** Closes the span (idempotent), recording its duration and popping it
    — and any unclosed children, defensively — off the open stack. *)

val with_span :
  t -> name:string -> round:int -> ?server:int -> ?dialing:bool ->
  (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around a thunk, exception-safe. *)

val instant :
  t -> name:string -> round:int -> ?server:int -> ?dialing:bool -> unit ->
  unit
(** A zero-duration marker span — a stage that does not apply to this
    participant but must still appear in the trace for coverage. *)

val annotate : t -> string -> string -> unit
(** Attach a key/value to the innermost open span; dropped when no span
    is open. *)

val spans : t -> span list
(** All spans, in begin order. *)

val span_count : t -> int

(** {2 Export} *)

val span_to_json : ?origin:int -> ?trace:int -> span -> Json.t
(** [origin]/[trace] stamp the process identity onto the line; when
    present, a remote parent is emitted as a ["ctx"] sub-object. *)

val to_jsonl : t -> string
(** One span per line, in begin order:
    [{"id":…,"parent":…,"name":…,"round":…,"server":…,"dialing":…,
      "start_ms":…,"dur_ms":…,"annotations":{…},"origin":…,"trace":…}]
    plus ["ctx":{"trace","origin","span"}] on remote-rooted spans. *)

val merge_jsonl : (string * string) list -> (string, string) result
(** [merge_jsonl [(label, jsonl); …]] merges per-process exports into
    one trace.  The coordinator's export must come first (its trace id
    anchors the merge).  Span ids are renumbered via an
    [(origin, local id)] map, each ["ctx"] back-reference whose trace id
    matches the root's becomes an ordinary ["parent"] link, and every
    line gains a ["process"] label.  The result passes
    {!validate_jsonl}: processes are emitted in the given order, so
    resolved parents always precede their children. *)

val flame_summary : t -> ((int * bool) * (string * float) list) list
(** Per (round, dialing): total duration by stage name (coordinator
    root spans excluded so stages are not double-counted), rounds in
    ascending order, stages sorted by name. *)

val pp_flame : Format.formatter -> t -> unit
(** The flame summary as one aligned line per round. *)

val validate_jsonl : string -> (unit, string) result
(** The smoke test's schema checker: every line must parse as a span
    object with the right field types, ids must be unique and parents
    must reference an earlier id, durations must be non-negative. *)
