(** A minimal JSON value: just enough for the telemetry exporters (metrics
    JSON, trace JSONL) and the smoke test's schema checker.  No external
    dependencies; numbers are floats, objects preserve insertion order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Strings are escaped per RFC 8259;
    floats print as integers when they are whole (so counts round-trip
    readably) and with ["%.6g"] otherwise.  Non-finite numbers render as
    [null]. *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  Intended
    for validating our own exports, not arbitrary input: numbers are
    parsed with [float_of_string], and unicode escapes [\uXXXX] are
    decoded only for the BMP. *)

(** {2 Accessors} (for schema checking) *)

val member : string -> t -> t option
(** Field of an object; [None] for missing fields or non-objects. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] whose value is integral. *)

val to_str : t -> string option
val to_bool : t -> bool option
