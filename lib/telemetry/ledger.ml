(* The budget ledger: counts of charged rounds per client, composed
   through Theorem 2 on demand.  Storing counts (not running guarantees)
   keeps the ledger exact: the reported spend is always the closed-form
   composition of the per-round guarantee, never an accumulation of
   floating-point increments. *)

open Vuvuzela_dp

type entry = {
  client : bytes;
  mutable conv_rounds : int;
  mutable dial_rounds : int;
  mutable warned : bool;
}

type t = {
  conv : Mechanism.guarantee;  (* per conversation round *)
  dial : Mechanism.guarantee;  (* per dialing round *)
  d : float;
  warn_eps : float option;
  entries : (string, entry) Hashtbl.t;  (* keyed by the raw pk bytes *)
  mutable order : entry list;  (* first-charge order, newest first *)
}

let create ?(d = Composition.default_d) ?warn_eps ~conv ~dial () =
  if d <= 0. then invalid_arg "Ledger.create: d must be positive";
  { conv; dial; d; warn_eps; entries = Hashtbl.create 64; order = [] }

let warn_eps t = t.warn_eps

let zero = { Mechanism.eps = 0.; delta = 0. }

let compose_rounds t per_round k =
  if k = 0 then zero else Composition.compose ~k ~d:t.d per_round

let spent_of t ~conv_rounds ~dial_rounds =
  let c = compose_rounds t t.conv conv_rounds in
  let g = compose_rounds t t.dial dial_rounds in
  { Mechanism.eps = c.Mechanism.eps +. g.Mechanism.eps;
    delta = c.Mechanism.delta +. g.Mechanism.delta }

let entry t client =
  let key = Bytes.to_string client in
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e =
        { client = Bytes.copy client; conv_rounds = 0; dial_rounds = 0;
          warned = false }
      in
      Hashtbl.replace t.entries key e;
      t.order <- e :: t.order;
      e

let charge t ~client ~dialing =
  let e = entry t client in
  if dialing then e.dial_rounds <- e.dial_rounds + 1
  else e.conv_rounds <- e.conv_rounds + 1;
  match t.warn_eps with
  | Some limit when not e.warned ->
      let g = spent_of t ~conv_rounds:e.conv_rounds ~dial_rounds:e.dial_rounds in
      if g.Mechanism.eps > limit then begin
        e.warned <- true;
        true
      end
      else false
  | _ -> false

let clients t = Hashtbl.length t.entries

let rounds t ~client =
  match Hashtbl.find_opt t.entries (Bytes.to_string client) with
  | Some e -> (e.conv_rounds, e.dial_rounds)
  | None -> (0, 0)

let spent t ~client =
  let conv_rounds, dial_rounds = rounds t ~client in
  spent_of t ~conv_rounds ~dial_rounds

let worst t =
  List.fold_left
    (fun acc e ->
      let g = spent_of t ~conv_rounds:e.conv_rounds ~dial_rounds:e.dial_rounds in
      if g.Mechanism.eps > acc.Mechanism.eps then g else acc)
    zero t.order

let over_budget t =
  List.fold_left (fun n e -> if e.warned then n + 1 else n) 0 t.order

let iter t f =
  List.iter
    (fun e ->
      f ~client:e.client ~conv:e.conv_rounds ~dial:e.dial_rounds
        ~spent:(spent_of t ~conv_rounds:e.conv_rounds ~dial_rounds:e.dial_rounds))
    (List.rev t.order)
