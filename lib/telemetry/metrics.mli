(** A deterministic metrics registry: counters, gauges, and fixed-bucket
    histograms, with Prometheus text exposition and JSON export.

    The registry never reads a clock or an RNG — every number in it was
    put there by a caller — so aggregation and export are deterministic
    functions of the observation sequence.  Instruments are identified by
    (name, labels); looking one up a second time returns the same handle.

    Not thread-safe: the round engine keeps all instrumentation on the
    coordinating domain (the same contract as its RNG draws). *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

(** {2 Instruments} *)

val counter :
  registry -> ?help:string -> ?labels:(string * string) list -> string ->
  counter
(** Find-or-create.  Counters are monotone; {!inc} with a negative
    amount raises [Invalid_argument]. *)

val inc : ?by:float -> counter -> unit
val counter_value : counter -> float

val gauge :
  registry -> ?help:string -> ?labels:(string * string) list -> string ->
  gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  registry -> ?help:string -> ?labels:(string * string) list ->
  ?buckets:float array -> string -> histogram
(** [buckets] are increasing finite upper bounds; an implicit [+inf]
    bucket is always appended.  Defaults to {!default_ms_buckets}.
    Re-registering the same (name, labels) with different buckets raises
    [Invalid_argument]. *)

val default_ms_buckets : float array
(** Log-spaced from 0.05 ms to 10 s — sized for round/stage latencies. *)

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

val quantile : histogram -> float -> float
(** Prometheus-style estimate of quantile [q] ∈ \[0, 1\] by linear
    interpolation inside the bucket holding rank [q·count] (the first
    bucket interpolates from 0; ranks landing in the [+inf] bucket
    return the largest finite bound).  An empty histogram returns 0. *)

(** {2 Export} *)

val to_prometheus : registry -> string
(** Text exposition format: families sorted by name, [# HELP]/[# TYPE]
    headers, histogram [_bucket]/[_sum]/[_count] series with cumulative
    [le] labels. *)

val to_json : registry -> Json.t
(** [{"counters": [...], "gauges": [...], "histograms": [...]}], sorted
    like the Prometheus exposition.  Histograms carry their buckets and
    pre-computed p50/p90/p95/p99 estimates. *)
