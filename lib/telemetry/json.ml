(* A minimal JSON implementation for the telemetry exporters and the
   smoke test's schema checker.  Kept deliberately small: one value type,
   a compact printer, a recursive-descent parser. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (number_to_string f)
  | Str s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %c" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

(* UTF-8 encode a BMP code point (enough for our own escapes). *)
let add_code_point buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; loop ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; loop ()
        | Some 'u' ->
            if st.pos + 5 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> add_code_point buf cp
            | None -> fail st "bad \\u escape");
            st.pos <- st.pos + 5;
            loop ()
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; fields_loop ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected , or }"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; items_loop ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected , or ]"
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing bytes after document"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
