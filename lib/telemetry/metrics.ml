(* Counters, gauges, fixed-bucket histograms.  Deterministic: the
   registry only aggregates numbers handed to it — no clock, no RNG —
   and exports sort by (name, labels), so two runs that observe the same
   sequence produce byte-identical expositions. *)

type counter = { mutable c : float }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (* increasing finite upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1; last = +inf *)
  mutable sum : float;
  mutable count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type metric = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
  instrument : instrument;
}

type registry = {
  tbl : (string, metric) Hashtbl.t;  (* keyed by name + rendered labels *)
  mutable order : metric list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let render_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let key name labels = name ^ render_labels labels

let find_or_create reg ~help ~labels name make check =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let labels = List.sort compare labels in
  let k = key name labels in
  match Hashtbl.find_opt reg.tbl k with
  | Some m -> check m.instrument
  | None ->
      let instrument = make () in
      let m = { name; labels; help; instrument } in
      Hashtbl.replace reg.tbl k m;
      reg.order <- m :: reg.order;
      instrument

let counter reg ?(help = "") ?(labels = []) name =
  match
    find_or_create reg ~help ~labels name
      (fun () -> Counter { c = 0. })
      (function
        | Counter _ as i -> i
        | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter"))
  with
  | Counter c -> c
  | _ -> assert false

let inc ?(by = 1.) c =
  if by < 0. then invalid_arg "Metrics.inc: counters are monotone";
  c.c <- c.c +. by

let counter_value c = c.c

let gauge reg ?(help = "") ?(labels = []) name =
  match
    find_or_create reg ~help ~labels name
      (fun () -> Gauge { g = 0. })
      (function
        | Gauge _ as i -> i
        | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge"))
  with
  | Gauge g -> g
  | _ -> assert false

let set g v = g.g <- v
let gauge_value g = g.g

(* 0.05 ms .. 10 s, roughly 1-2-5 per decade: covers a single AEAD seal
   up to a multi-second, million-onion round. *)
let default_ms_buckets =
  [|
    0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
    1000.; 2500.; 5000.; 10_000.;
  |]

let histogram reg ?(help = "") ?(labels = []) ?(buckets = default_ms_buckets)
    name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: need at least one bucket";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then
        invalid_arg "Metrics.histogram: bucket bounds must be finite";
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bucket bounds must increase")
    buckets;
  match
    find_or_create reg ~help ~labels name
      (fun () ->
        Histogram
          {
            bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0.;
            count = 0;
          })
      (function
        | Histogram h as i ->
            if h.bounds <> buckets then
              invalid_arg
                ("Metrics: " ^ name ^ " re-registered with different buckets");
            i
        | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram"))
  with
  | Histogram h -> h
  | _ -> assert false

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i = n then n else if v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let hist_count h = h.count
let hist_sum h = h.sum

(* Prometheus's histogram_quantile: find the bucket holding rank q·count
   and interpolate linearly inside it.  The first bucket interpolates
   from 0; a rank in the +inf bucket degrades to the largest finite
   bound. *)
let quantile h q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if h.count = 0 then 0.
  else begin
    let rank = q *. float_of_int h.count in
    let n = Array.length h.bounds in
    let rec go i cum =
      if i >= n then h.bounds.(n - 1)
      else begin
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank then begin
          let lo = if i = 0 then 0. else h.bounds.(i - 1) in
          let hi = h.bounds.(i) in
          if h.counts.(i) = 0 then hi
          else
            lo
            +. (hi -. lo)
               *. ((rank -. float_of_int cum) /. float_of_int h.counts.(i))
        end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let sorted_metrics reg =
  List.sort
    (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    reg.order

let fmt_value f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Prometheus exposition-format escaping for label values: backslash,
   double quote, and newline only — OCaml's [%S] would also escape bytes
   outside the printable range, which scrapers reject. *)
let prom_escape v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
    ^ "}"

let to_prometheus reg =
  let buf = Buffer.create 1024 in
  let seen_family = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem seen_family m.name) then begin
        Hashtbl.replace seen_family m.name ();
        if m.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        let ty =
          match m.instrument with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m.name ty)
      end;
      match m.instrument with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (prom_labels m.labels)
               (fmt_value c.c))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.name (prom_labels m.labels)
               (fmt_value g.g))
      | Histogram h ->
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name
                   (prom_labels (m.labels @ [ ("le", fmt_value bound) ]))
                   !cum))
            h.bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" m.name
               (prom_labels (m.labels @ [ ("le", "+Inf") ]))
               h.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name (prom_labels m.labels)
               (fmt_value h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (prom_labels m.labels)
               h.count))
    (sorted_metrics reg);
  Buffer.contents buf

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json reg =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun m ->
      let base = [ ("name", Json.Str m.name); ("labels", labels_json m.labels) ] in
      match m.instrument with
      | Counter c -> counters := Json.Obj (base @ [ ("value", Json.Num c.c) ]) :: !counters
      | Gauge g -> gauges := Json.Obj (base @ [ ("value", Json.Num g.g) ]) :: !gauges
      | Histogram h ->
          let buckets =
            Json.List
              (Array.to_list
                 (Array.mapi
                    (fun i bound ->
                      Json.Obj
                        [
                          ("le", Json.Num bound);
                          ("count", Json.Num (float_of_int h.counts.(i)));
                        ])
                    h.bounds)
              @ [
                  Json.Obj
                    [
                      ("le", Json.Null);
                      ( "count",
                        Json.Num
                          (float_of_int h.counts.(Array.length h.bounds)) );
                    ];
                ])
          in
          histograms :=
            Json.Obj
              (base
              @ [
                  ("count", Json.Num (float_of_int h.count));
                  ("sum", Json.Num h.sum);
                  ("p50", Json.Num (quantile h 0.50));
                  ("p90", Json.Num (quantile h 0.90));
                  ("p95", Json.Num (quantile h 0.95));
                  ("p99", Json.Num (quantile h 0.99));
                  ("buckets", buckets);
                ])
            :: !histograms)
    (sorted_metrics reg);
  Json.Obj
    [
      ("counters", Json.List (List.rev !counters));
      ("gauges", Json.List (List.rev !gauges));
      ("histograms", Json.List (List.rev !histograms));
    ]
