(* Onion encryption (Algorithm 1, step 2; Algorithm 2, steps 1 and 4).

   A request for a chain of n servers is encrypted in n layers, innermost
   first.  Layer i carries a fresh ephemeral public key pk_i and the AEAD
   sealing of layer i+1 under s_i = DH(sk_i, server_i's key):

       e_i = pk_i || Seal(s_i, nonce_req(round), e_{i+1})

   Every layer uses a fresh ephemeral keypair — reusing a key across
   rounds would itself be an observable variable (§7).  Servers remember
   s_i per request slot and seal results on the way back:

       e'_i = Seal(s_i, nonce_rep(round), e'_{i+1})

   Request layers add [layer_overhead] = 48 bytes each (32-byte key +
   16-byte tag); reply layers add [reply_overhead] = 16 bytes each.  All
   onions for the same chain length and payload size are therefore the
   same length — a precondition for indistinguishability. *)

open Vuvuzela_crypto

let layer_overhead = Curve25519.key_len + Aead.tag_len
let reply_overhead = Aead.tag_len

(* Nonce domains: request and reply layers must not collide under the
   same layer secret. *)
let request_nonce ~round = Aead.nonce_of ~domain:0x5571 ~counter:round
let reply_nonce ~round = Aead.nonce_of ~domain:0x5572 ~counter:round

type wrapped = {
  onion : bytes;  (** what the client sends to the first server *)
  secrets : bytes array;
      (** per-layer symmetric secrets, index 0 = first server; needed to
          unwrap the reply *)
}

(* Wrap [payload] under pre-drawn ephemeral secrets, [eph_sks.(i)] for
   layer i (raw 32-byte strings; clamped here).  Pure — no RNG — so
   batches of wraps can fan out across domains while the coordinating
   domain keeps the single RNG stream. *)
let wrap_with ~eph_sks ~server_pks ~round payload =
  let n = List.length server_pks in
  if n = 0 then invalid_arg "Onion.wrap: empty chain";
  if Array.length eph_sks <> n then
    invalid_arg "Onion.wrap_with: one ephemeral secret per layer";
  let secrets = Array.make n Bytes.empty in
  let nonce = request_nonce ~round in
  let rec go i pks acc =
    match pks with
    | [] -> acc
    | spk :: rest ->
        (* Innermost layer corresponds to the last server, so recurse
           first, then seal for this (earlier) server. *)
        let inner = go (i + 1) rest acc in
        let esk = Curve25519.clamp eph_sks.(i) in
        let epk = Curve25519.scalarmult_base esk in
        let s = Box.precompute ~secret:esk ~public:spk in
        secrets.(i) <- s;
        let ilen = Bytes.length inner in
        let out = Bytes.create (Curve25519.key_len + ilen + Aead.tag_len) in
        Bytes.blit epk 0 out 0 Curve25519.key_len;
        Aead.seal_into ~key:s ~nonce ~src:inner ~src_off:0 ~len:ilen ~dst:out
          ~dst_off:Curve25519.key_len ();
        out
  in
  let onion = go 0 server_pks payload in
  { onion; secrets }

(* Draw the per-layer ephemeral secrets for one onion.  Innermost layer
   first: that is the order the original recursive wrap consumed the
   DRBG in, so seeded runs stay byte-for-byte reproducible. *)
let draw_eph_sks ?rng ~chain_len () =
  let eph_sks = Array.make chain_len Bytes.empty in
  for i = chain_len - 1 downto 0 do
    eph_sks.(i) <- Drbg.bytes ?rng Curve25519.scalar_len
  done;
  eph_sks

(* Wrap [payload] for the servers whose public keys are [server_pks]
   (first server first).  Encryption happens in reverse order. *)
let wrap ?rng ~server_pks ~round payload =
  let n = List.length server_pks in
  if n = 0 then invalid_arg "Onion.wrap: empty chain";
  wrap_with ~eph_sks:(draw_eph_sks ?rng ~chain_len:n ()) ~server_pks ~round
    payload

(* Server side: strip one layer.  Returns the inner onion and the layer
   secret to seal the reply with. *)
let peel ~server_sk ~round onion =
  let n = Bytes.length onion in
  if n < layer_overhead then None
  else begin
    let epk = Bytes.sub onion 0 Curve25519.key_len in
    let s = Box.precompute ~secret:server_sk ~public:epk in
    let inner = Bytes.create (n - layer_overhead) in
    if
      Aead.open_into ~key:s
        ~nonce:(request_nonce ~round)
        ~src:onion ~src_off:Curve25519.key_len
        ~len:(n - Curve25519.key_len)
        ~dst:inner ~dst_off:0 ()
    then Some (inner, s)
    else None
  end

let seal_reply ~secret ~round reply =
  let len = Bytes.length reply in
  let out = Bytes.create (len + reply_overhead) in
  Aead.seal_into ~key:secret
    ~nonce:(reply_nonce ~round)
    ~src:reply ~src_off:0 ~len ~dst:out ~dst_off:0 ();
  out

(* Client side: remove all reply layers (first server's layer is
   outermost). *)
let unwrap_reply ~secrets ~round reply =
  let nonce = reply_nonce ~round in
  let rec go i acc =
    if i >= Array.length secrets then Some acc
    else
      match Aead.open_ ~key:secrets.(i) ~nonce acc with
      | Some inner -> go (i + 1) inner
      | None -> None
  in
  go 0 reply

let request_size ~chain_len ~payload_len =
  payload_len + (chain_len * layer_overhead)

let reply_size ~chain_len ~payload_len =
  payload_len + (chain_len * reply_overhead)
