(** Onion encryption for Vuvuzela's server chain (Algorithm 1 step 2,
    Algorithm 2 steps 1 and 4).

    Requests gain {!layer_overhead} = 48 bytes per server (ephemeral key +
    AEAD tag); replies gain {!reply_overhead} = 16 bytes per server.  All
    onions of a given chain length and payload size have identical length,
    as indistinguishability requires. *)

val layer_overhead : int
val reply_overhead : int

type wrapped = {
  onion : bytes;  (** send this to the first server *)
  secrets : bytes array;  (** per-layer secrets for unwrapping the reply *)
}

val wrap :
  ?rng:Vuvuzela_crypto.Drbg.t ->
  server_pks:bytes list ->
  round:int ->
  bytes ->
  wrapped
(** Wrap a payload for the chain; [server_pks] lists the first server
    first.  Fresh ephemeral keys per layer per call. *)

val draw_eph_sks :
  ?rng:Vuvuzela_crypto.Drbg.t -> chain_len:int -> unit -> bytes array
(** Draw one raw (unclamped) ephemeral secret per layer, in the same
    DRBG order {!wrap} consumes them (innermost layer first). *)

val wrap_with :
  eph_sks:bytes array -> server_pks:bytes list -> round:int -> bytes -> wrapped
(** [wrap] with the per-layer ephemeral secrets supplied by the caller
    (see {!draw_eph_sks}).  Pure — safe to fan out across domains.
    [wrap ?rng ... p] ≡
    [wrap_with ~eph_sks:(draw_eph_sks ?rng ~chain_len ()) ... p]. *)

val peel : server_sk:bytes -> round:int -> bytes -> (bytes * bytes) option
(** Server side: strip one layer, returning [(inner, layer_secret)], or
    [None] if the layer fails to authenticate. *)

val seal_reply : secret:bytes -> round:int -> bytes -> bytes
(** Server side: add one reply layer under the stored layer secret. *)

val unwrap_reply : secrets:bytes array -> round:int -> bytes -> bytes option
(** Client side: strip all reply layers. *)

val request_size : chain_len:int -> payload_len:int -> int
val reply_size : chain_len:int -> payload_len:int -> int
