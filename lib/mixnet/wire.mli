(** Binary wire format.  Little-endian integers; explicit fixed-size
    fields because message sizes must not depend on user activity
    (§3.2 of the paper). *)

exception Error of string

val max_frame_len : int
(** Hard ceiling (64 MiB) on any length this codec honours: length
    prefixes, fixed fields, and whole frames.  Shared with the TCP
    transport's frame codec, so a hostile length prefix is rejected with
    a typed error instead of an unbounded [Bytes.create] — whether it
    arrives in-process or over a socket. *)

module Writer : sig
  type t

  val create : ?size:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit

  val bytes_fixed : t -> len:int -> bytes -> unit
  (** @raise Error if the buffer is not exactly [len] bytes. *)

  val bytes_var : t -> bytes -> unit
  (** u32 length prefix followed by the bytes. *)

  val raw : t -> bytes -> unit
  val contents : t -> bytes
  val length : t -> int
end

module Reader : sig
  type t

  val of_bytes : bytes -> t
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val bytes_fixed : t -> int -> bytes
  val bytes_var : t -> bytes
  val rest : t -> bytes
  val expect_end : t -> unit
end

val encode : (Writer.t -> unit) -> bytes

val decode : (Reader.t -> 'a) -> bytes -> ('a, string) result
(** Runs the decoder and checks all input was consumed. *)

val decode_exn : (Reader.t -> 'a) -> bytes -> 'a
