(* Binary wire format used for every message that crosses a link.
   Fixed-size framing matters for privacy: request and response sizes must
   be independent of user activity (§3.2), so encoders here are
   deliberately explicit about sizes. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Hard ceiling on any length this codec will honour — a single frame,
   a variable-length field, or a batch's total payload.  Shared with the
   TCP transport's [Frame] codec so a hostile length prefix is rejected
   the same way whether it arrives in-process or over a socket: with a
   typed error, never an attempted multi-gigabyte [Bytes.create].  64
   MiB comfortably holds the largest batch the paper's deployment ships
   (1M onions x ~few hundred bytes crosses links in per-server batches,
   not one frame) while staying far below anything allocable by
   accident. *)
let max_frame_len = 1 lsl 26

module Writer = struct
  type t = Buffer.t

  let create ?(size = 256) () = Buffer.create size
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let u64 t v =
    u32 t (v land 0xffffffff);
    u32 t ((v lsr 32) land 0xffffffff)

  let bytes_fixed t ~len b =
    if Bytes.length b <> len then
      error "Writer.bytes_fixed: expected %d bytes, got %d" len
        (Bytes.length b);
    Buffer.add_bytes t b

  let bytes_var t b =
    u32 t (Bytes.length b);
    Buffer.add_bytes t b

  let raw t b = Buffer.add_bytes t b
  let contents t = Buffer.to_bytes t
  let length = Buffer.length
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  let of_bytes data = { data; pos = 0 }
  let remaining t = Bytes.length t.data - t.pos

  let need t n =
    if remaining t < n then
      error "Reader: need %d bytes, have %d" n (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    lo lor (u8 t lsl 8)

  let u32 t =
    let lo = u16 t in
    lo lor (u16 t lsl 16)

  let u64 t =
    let lo = u32 t in
    lo lor (u32 t lsl 32)

  let bytes_fixed t len =
    if len > max_frame_len then
      error "Reader: length %d exceeds max frame (%d)" len max_frame_len;
    need t len;
    let b = Bytes.sub t.data t.pos len in
    t.pos <- t.pos + len;
    b

  let bytes_var t =
    let len = u32 t in
    if len > max_frame_len then
      error "Reader: length prefix %d exceeds max frame (%d)" len
        max_frame_len;
    bytes_fixed t len

  let rest t = bytes_fixed t (remaining t)

  let expect_end t =
    if remaining t <> 0 then error "Reader: %d trailing bytes" (remaining t)
end

(* Encode/decode wrappers that confine the exception. *)
let encode f =
  let w = Writer.create () in
  f w;
  Writer.contents w

let decode f b =
  try
    let r = Reader.of_bytes b in
    let v = f r in
    Reader.expect_end r;
    Ok v
  with Error msg -> Result.Error msg

let decode_exn f b =
  match decode f b with Ok v -> v | Result.Error msg -> raise (Error msg)
