(* Streaming length-prefixed frame reassembly.

   The accumulation buffer is a flat byte region with a consumed prefix;
   it compacts on growth, so steady-state traffic (one frame at a time,
   as the lockstep round protocol produces) never copies more than each
   frame once. *)

let header_len = 4
let max_payload = Vuvuzela_mixnet.Wire.max_frame_len

let encode payload =
  let n = Bytes.length payload in
  if n > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.encode: %d B payload exceeds max %d" n
         max_payload);
  let frame = Bytes.create (header_len + n) in
  Bytes.set_uint16_le frame 0 (n land 0xffff);
  Bytes.set_uint16_le frame 2 (n lsr 16);
  Bytes.blit payload 0 frame header_len n;
  frame

type decoder = {
  mutable buf : bytes;
  mutable start : int;  (** first unconsumed byte *)
  mutable len : int;  (** unconsumed byte count *)
  mutable poisoned : string option;
}

let decoder () =
  { buf = Bytes.create 4096; start = 0; len = 0; poisoned = None }

let buffered d = d.len

let feed d src ~off ~len =
  if d.poisoned = None && len > 0 then begin
    if d.start + d.len + len > Bytes.length d.buf then begin
      (* Compact, then grow only if the data genuinely doesn't fit. *)
      let cap = ref (Bytes.length d.buf) in
      while d.len + len > !cap do
        cap := !cap * 2
      done;
      let fresh = if !cap > Bytes.length d.buf then Bytes.create !cap else d.buf in
      Bytes.blit d.buf d.start fresh 0 d.len;
      d.buf <- fresh;
      d.start <- 0
    end;
    Bytes.blit src off d.buf (d.start + d.len) len;
    d.len <- d.len + len
  end

let peek_len d =
  let b i = Char.code (Bytes.get d.buf (d.start + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let next d =
  match d.poisoned with
  | Some e -> Error e
  | None ->
      if d.len < header_len then Ok None
      else
        let n = peek_len d in
        if n > max_payload then begin
          let e =
            Printf.sprintf
              "Frame: length prefix %d exceeds max payload %d" n max_payload
          in
          d.poisoned <- Some e;
          d.len <- 0;
          Error e
        end
        else if d.len < header_len + n then Ok None
        else begin
          let payload = Bytes.sub d.buf (d.start + header_len) n in
          d.start <- d.start + header_len + n;
          d.len <- d.len - header_len - n;
          if d.len = 0 then d.start <- 0;
          Ok (Some payload)
        end
