(** A non-blocking, [select]-based event loop.

    Single-threaded and deliberately small: the chain's round protocol
    is lockstep (one batch in flight per link), so a daemon needs
    exactly "wake me when a socket is readable, writable, or a timer is
    due".  Handlers may register and unregister fds and timers freely
    from inside callbacks; changes take effect for the next dispatch. *)

type t

val create : unit -> t

val add_fd :
  t ->
  Unix.file_descr ->
  on_readable:(unit -> unit) ->
  on_writable:(unit -> unit) ->
  unit
(** Register a (non-blocking) fd.  Read interest is permanent until
    {!remove_fd}; write interest starts off and is toggled with
    {!want_write} as output queues fill and drain. *)

val want_write : t -> Unix.file_descr -> bool -> unit
val remove_fd : t -> Unix.file_descr -> unit

val after : t -> ms:float -> (unit -> unit) -> int
(** One-shot timer on {!Clock}'s timeline; returns an id. *)

val cancel : t -> int -> unit
(** Cancel a pending timer; unknown ids are ignored. *)

val run_once : ?max_wait_ms:float -> t -> unit
(** One [select] round: wait (at most [max_wait_ms], default until the
    next timer or 100 ms), dispatch ready fds, fire due timers. *)

val run_until : ?deadline_ms:float -> t -> (unit -> bool) -> bool
(** Pump {!run_once} until the predicate holds — [true] — or
    [deadline_ms] elapses — [false].  Without a deadline, pumps
    forever. *)
