(** Length-prefixed framing for the TCP links.

    A frame is a u32 little-endian payload length followed by the
    payload — the payload being one {!Vuvuzela.Rpc}-encoded message
    (magic, version, tag), so the transport never inspects protocol
    bytes.  The decoder is a streaming reassembler: feed it whatever the
    socket produced (1-byte drips, a split length prefix, several
    coalesced frames) and pull complete payloads out.

    The length prefix is hostile input: anything above
    {!max_payload} ([= Vuvuzela_mixnet.Wire.max_frame_len]) poisons the
    stream with a typed error before any allocation — the connection
    must be dropped, since the byte stream can no longer be trusted to
    refind a frame boundary. *)

val header_len : int
(** 4: the u32 length prefix. *)

val max_payload : int
(** Largest payload [encode] produces and [feed]/[next] accept;
    equal to {!Vuvuzela_mixnet.Wire.max_frame_len}. *)

val encode : bytes -> bytes
(** Prefix a payload with its length.
    @raise Invalid_argument if the payload exceeds {!max_payload}. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> off:int -> len:int -> unit
(** Append raw socket bytes.  Accepts any chunking; bytes fed after the
    stream is poisoned are discarded. *)

val next : decoder -> (bytes option, string) result
(** The next complete payload: [Ok None] means more bytes are needed,
    [Error] means the stream is poisoned (oversized length prefix) and
    every subsequent call returns the same error. *)

val buffered : decoder -> int
(** Bytes held waiting for a frame boundary (diagnostics: a nonzero
    value at EOF is a truncated tail). *)
