(** The deployment's single time source.

    Every timeout in the system — the round supervisor's per-attempt
    deadline, the event loop's select timeout, connection backoff and
    handshake deadlines — reads this clock, so "how long did that take"
    means the same thing at every layer and a test can reason about one
    notion of elapsed time. *)

val now_ms : unit -> float
(** Wall-clock milliseconds since the Unix epoch.  Only differences are
    meaningful; callers never interpret the absolute value. *)

val elapsed_ms : since:float -> float
(** [now_ms () -. since], clamped to [>= 0] against clock steps. *)

val timed : (unit -> 'a) -> 'a * float
(** Run the thunk and also return its wall-clock duration in ms. *)
