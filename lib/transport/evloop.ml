(* select(2) loop with one-shot timers on Clock's timeline.

   Dispatch safety: callbacks add and remove fds (a Conn tearing itself
   down removes its fd; an accept callback adds one), so each round
   snapshots the ready sets and re-checks registration before invoking a
   handler. *)

type handler = {
  on_readable : unit -> unit;
  on_writable : unit -> unit;
  mutable want_write : bool;
}

type timer = { id : int; fire_at : float; fn : unit -> unit }

type t = {
  fds : (Unix.file_descr, handler) Hashtbl.t;
  mutable timers : timer list;  (** sorted by [fire_at] *)
  mutable next_id : int;
}

let create () = { fds = Hashtbl.create 16; timers = []; next_id = 0 }

let add_fd t fd ~on_readable ~on_writable =
  Hashtbl.replace t.fds fd { on_readable; on_writable; want_write = false }

let want_write t fd flag =
  match Hashtbl.find_opt t.fds fd with
  | Some h -> h.want_write <- flag
  | None -> ()

let remove_fd t fd = Hashtbl.remove t.fds fd

let after t ~ms fn =
  let id = t.next_id in
  t.next_id <- id + 1;
  let tm = { id; fire_at = Clock.now_ms () +. Float.max 0. ms; fn } in
  let rec insert = function
    | [] -> [ tm ]
    | x :: _ as rest when tm.fire_at < x.fire_at -> tm :: rest
    | x :: rest -> x :: insert rest
  in
  t.timers <- insert t.timers;
  id

let cancel t id = t.timers <- List.filter (fun tm -> tm.id <> id) t.timers

let fire_due t =
  let now = Clock.now_ms () in
  let due, later = List.partition (fun tm -> tm.fire_at <= now) t.timers in
  t.timers <- later;
  List.iter (fun tm -> tm.fn ()) due

let run_once ?max_wait_ms t =
  let until_timer =
    match t.timers with
    | [] -> None
    | tm :: _ -> Some (Float.max 0. (tm.fire_at -. Clock.now_ms ()))
  in
  let wait_ms =
    match (max_wait_ms, until_timer) with
    | Some m, Some tmr -> Float.min m tmr
    | Some m, None -> m
    | None, Some tmr -> Float.min tmr 100.
    | None, None -> 100.
  in
  let reads = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.fds [] in
  let writes =
    Hashtbl.fold (fun fd h acc -> if h.want_write then fd :: acc else acc)
      t.fds []
  in
  (match Unix.select reads writes [] (wait_ms /. 1000.) with
  | readable, writable, _ ->
      List.iter
        (fun fd ->
          match Hashtbl.find_opt t.fds fd with
          | Some h -> h.on_readable ()
          | None -> ())
        readable;
      List.iter
        (fun fd ->
          match Hashtbl.find_opt t.fds fd with
          | Some h when h.want_write -> h.on_writable ()
          | Some _ | None -> ())
        writable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  fire_due t

let run_until ?deadline_ms t pred =
  let t0 = Clock.now_ms () in
  let rec go () =
    if pred () then true
    else
      match deadline_ms with
      | Some d when Clock.elapsed_ms ~since:t0 >= d -> false
      | Some d ->
          run_once ~max_wait_ms:(d -. Clock.elapsed_ms ~since:t0) t;
          go ()
      | None ->
          run_once t;
          go ()
  in
  go ()
