(* A deliberately tiny HTTP/1.0 responder for the daemon scrape
   endpoints (/metrics, /healthz, /trace).  It shares the daemon's
   select loop — no threads, no buffering library — and speaks just
   enough HTTP for curl and a Prometheus scraper: GET, Connection:
   close, one response per connection.  Anything fancier (keep-alive,
   chunking, POST) is out of scope by design; observability must not
   grow an attack surface comparable to the protocol itself. *)

let max_request = 8192

type t = {
  loop : Evloop.t;
  lfd : Unix.file_descr;
  port : int;
  mutable conns : Unix.file_descr list;
}

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : bytes;
  mutable off : int;
  mutable responding : bool;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status content_type (String.length body) body

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let header_complete s = contains_sub s "\r\n\r\n" || contains_sub s "\n\n"

(* The request line is all we interpret: "GET <path> HTTP/1.x". *)
let handle routes raw =
  let line =
    match String.index_opt raw '\n' with
    | Some i -> String.trim (String.sub raw 0 i)
    | None -> String.trim raw
  in
  match String.split_on_char ' ' line with
  | "GET" :: path :: _ -> (
      match routes path with
      | Some (content_type, body) ->
          http_response ~status:"200 OK" ~content_type body
      | None ->
          http_response ~status:"404 Not Found" ~content_type:"text/plain"
            "not found\n")
  | _ :: _ :: _ ->
      http_response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "method not allowed\n"
  | _ ->
      http_response ~status:"400 Bad Request" ~content_type:"text/plain"
        "bad request\n"

let teardown t c =
  Evloop.remove_fd t.loop c.fd;
  t.conns <- List.filter (fun fd -> fd <> c.fd) t.conns;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let register t ~routes fd =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let c = { fd; inbuf = Buffer.create 256; out = Bytes.empty; off = 0;
            responding = false }
  in
  t.conns <- fd :: t.conns;
  let on_readable () =
    let b = Bytes.create 4096 in
    match Unix.read c.fd b 0 4096 with
    | 0 -> teardown t c
    | n ->
        Buffer.add_subbytes c.inbuf b 0 n;
        if Buffer.length c.inbuf > max_request then teardown t c
        else if (not c.responding) && header_complete (Buffer.contents c.inbuf)
        then begin
          c.responding <- true;
          c.out <- Bytes.of_string (handle routes (Buffer.contents c.inbuf));
          Evloop.want_write t.loop c.fd true
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> teardown t c
  in
  let on_writable () =
    if c.responding then
      let len = Bytes.length c.out in
      match Unix.write c.fd c.out c.off (len - c.off) with
      | n ->
          c.off <- c.off + n;
          if c.off >= len then teardown t c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> teardown t c
  in
  Evloop.add_fd t.loop fd ~on_readable ~on_writable

let serve loop ~addr ~routes =
  match
    let lfd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt lfd Unix.SO_REUSEADDR true;
       Unix.bind lfd addr;
       Unix.listen lfd 8;
       Unix.set_nonblock lfd
     with e ->
       (try Unix.close lfd with Unix.Unix_error _ -> ());
       raise e);
    let port =
      match Unix.getsockname lfd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> 0
    in
    let t = { loop; lfd; port; conns = [] } in
    Evloop.add_fd loop lfd
      ~on_readable:(fun () ->
        match Unix.accept lfd with
        | fd, _peer -> register t ~routes fd
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error _ -> ())
      ~on_writable:(fun () -> ());
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (err, fn, _) ->
      Error
        (Printf.sprintf "httpd %s: %s in %s" (Addr.to_string addr)
           (Unix.error_message err) fn)

let port t = t.port

let close t =
  Evloop.remove_fd t.loop t.lfd;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  List.iter
    (fun fd ->
      Evloop.remove_fd t.loop fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- []

(* ------------------------------------------------------------------ *)
(* Blocking client                                                     *)
(* ------------------------------------------------------------------ *)

(* Used by the coordinator's observability collector and the tests; a
   scrape is a synchronous one-shot GET with a socket-level timeout, so
   a wedged daemon costs [timeout_ms], never a hang. *)
let get ?(timeout_ms = 2000.) addr path =
  match
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let secs = Float.max 0.01 (timeout_ms /. 1000.) in
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs;
        Unix.connect fd addr;
        let req =
          Printf.sprintf "GET %s HTTP/1.0\r\nHost: vuvuzela\r\n\r\n" path
        in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 1024 in
        let b = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd b 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf b 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | raw -> (
      let split_at sep =
        let rec go i =
          if i + String.length sep > String.length raw then None
          else if String.sub raw i (String.length sep) = sep then
            Some
              ( String.sub raw 0 i,
                String.sub raw
                  (i + String.length sep)
                  (String.length raw - i - String.length sep) )
          else go (i + 1)
        in
        go 0
      in
      match
        match split_at "\r\n\r\n" with Some _ as r -> r | None -> split_at "\n\n"
      with
      | None -> Error "malformed HTTP response (no header terminator)"
      | Some (headers, body) -> (
          let status_line =
            match String.index_opt headers '\n' with
            | Some i -> String.trim (String.sub headers 0 i)
            | None -> String.trim headers
          in
          match String.split_on_char ' ' status_line with
          | _http :: code :: _ -> (
              match int_of_string_opt code with
              | Some code -> Ok (code, body)
              | None -> Error ("malformed status line: " ^ status_line))
          | _ -> Error ("malformed status line: " ^ status_line)))
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "GET %s: %s in %s" path (Unix.error_message err) fn)
