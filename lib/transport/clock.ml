(* One clock for every timeout in the deployment: supervisor deadlines,
   event-loop select timeouts, reconnect backoff.  [Unix.gettimeofday]
   is the only primitive the toolchain offers without extra libraries;
   confining it here means a future monotonic source is a one-line
   change. *)

let now_ms () = Unix.gettimeofday () *. 1000.
let elapsed_ms ~since = Float.max 0. (now_ms () -. since)

let timed f =
  let t0 = now_ms () in
  let v = f () in
  (v, elapsed_ms ~since:t0)
