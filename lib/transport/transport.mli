(** The transport endpoint: one event loop, its listeners and
    connections, aggregated wire counters, and the telemetry bridge.

    Two usage styles, matching the two kinds of process:

    - {e daemon style} (a chain server): [listen] for the upstream hop,
      [dial] the downstream hop, react to frames from loop callbacks and
      drive everything with [run_once]/[run_until].
    - {e client style} (the coordinator): [connect] to the first hop and
      use the synchronous [send_batch]/[recv_batch] pair — the round
      protocol is lockstep, so the coordinator's natural shape is
      "send the batch, pump the loop until the results frame (or a
      deadline) arrives". *)

type t

val create : ?telemetry:Vuvuzela_telemetry.Telemetry.t -> unit -> t
(** Also ignores [SIGPIPE] process-wide: a peer death must surface as a
    write error on that connection, not kill the process. *)

val loop : t -> Evloop.t
val stats : t -> Conn.stats
(** Aggregated over every connection this endpoint created. *)

val run_once : ?max_wait_ms:float -> t -> unit
val run_until : ?deadline_ms:float -> t -> (unit -> bool) -> bool

val publish : t -> unit
(** Push the counters into the telemetry registry as gauges
    ([vuvuzela_net_bytes_in], [..._bytes_out], [..._frames_in],
    [..._frames_out], [..._reconnects], [..._outages],
    [..._reconnect_storm_ms] — duration of the most recent completed
    outage —, [..._link_stalls] and [..._shaped_delay_ms] — frames held
    back by the link shaper and the total emulated delay).  No-op
    without a sink. *)

(** {2 Daemon style} *)

type listener

val listen :
  t ->
  Unix.sockaddr ->
  ?backlog:int ->
  on_accept:(Unix.file_descr -> Unix.sockaddr -> unit) ->
  unit ->
  (listener, string) result
(** Bind ([SO_REUSEADDR]) + listen, non-blocking.  [on_accept] receives
    each raw accepted socket — wrap it with {!Conn.of_fd} to join the
    framed world.  [Error] carries the bind/listen failure (the caller
    decides whether a sandbox without sockets is fatal). *)

val listener_port : listener -> int
(** The bound port (useful after binding port 0). *)

val close_listener : t -> listener -> unit

val dial :
  t ->
  addr:Unix.sockaddr ->
  hello:bytes ->
  ?base_backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?handshake_timeout_ms:float ->
  ?backoff_seed:string ->
  ?shaper:Shaper.config ->
  on_established:(Conn.t -> bytes -> unit) ->
  on_frame:(Conn.t -> bytes -> unit) ->
  on_drop:(Conn.t -> unit) ->
  unit ->
  Conn.t
(** {!Conn.dial} wired to this endpoint's loop and counters.
    [backoff_seed] enables seeded full-jitter reconnect backoff;
    [shaper] emulates the link's WAN characteristics (ignored when
    {!Shaper.is_transparent}). *)

(** {2 Client style} *)

type client

val connect :
  t ->
  addr:Unix.sockaddr ->
  hello:bytes ->
  ?max_backoff_ms:float ->
  ?backoff_seed:string ->
  ?shaper:Shaper.config ->
  unit ->
  client
(** Start dialing (the connection maintains itself); returns
    immediately.  [backoff_seed]/[shaper] as in {!dial}. *)

val handshake : ?deadline_ms:float -> t -> client -> (bytes, [ `Timeout ]) result
(** Pump until the connection is established; returns the peer's
    handshake reply payload (the most recent one, if it re-established
    meanwhile). *)

val send_batch : client -> bytes -> unit
(** Queue one payload toward the peer (sent once established). *)

val recv_batch :
  ?deadline_ms:float ->
  ?grace_ms:float ->
  t ->
  client ->
  (bytes, [ `Timeout | `Dropped ]) result
(** The next incoming payload, pumping the loop as needed.  [`Dropped]
    means the connection was lost while waiting — with a lockstep
    protocol, whatever reply was owed is gone and the round must be
    retried (the connection itself keeps redialing).  [grace_ms] adds
    flap tolerance: on a drop, keep pumping for up to that long (capped
    by [deadline_ms]) before giving up — a peer that held our reply in
    an outbox re-delivers it over the healed link, and the round
    survives the flap. *)

val client_conn : client -> Conn.t

val close_client : t -> client -> unit
