(* Endpoint facade over Evloop/Conn/Frame; see the interface. *)

module Telemetry = Vuvuzela_telemetry.Telemetry

type t = {
  loop : Evloop.t;
  stats : Conn.stats;
  tel : Telemetry.t option;
}

let create ?telemetry () =
  (* A dying peer must be an EPIPE on its connection, not a fatal
     signal.  Idempotent; Windows has no SIGPIPE, hence the try. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  { loop = Evloop.create (); stats = Conn.fresh_stats (); tel = telemetry }

let loop t = t.loop
let stats t = t.stats
let run_once ?max_wait_ms t = Evloop.run_once ?max_wait_ms t.loop
let run_until ?deadline_ms t pred = Evloop.run_until ?deadline_ms t.loop pred

let publish t =
  match t.tel with
  | None -> ()
  | Some _ ->
      let s = t.stats in
      let g name v = Telemetry.set_gauge t.tel name (float_of_int v) in
      let gf name v = Telemetry.set_gauge t.tel name v in
      g "vuvuzela_net_bytes_in" s.Conn.bytes_in;
      g "vuvuzela_net_bytes_out" s.Conn.bytes_out;
      g "vuvuzela_net_frames_in" s.Conn.frames_in;
      g "vuvuzela_net_frames_out" s.Conn.frames_out;
      g "vuvuzela_net_reconnects" s.Conn.reconnects;
      g "vuvuzela_net_outages" s.Conn.outages;
      gf "vuvuzela_net_reconnect_storm_ms" s.Conn.last_outage_ms;
      g "vuvuzela_net_link_stalls" s.Conn.shaped_frames;
      gf "vuvuzela_net_shaped_delay_ms" s.Conn.shaped_delay_ms

(* ------------------------------------------------------------------ *)
(* Listening                                                           *)
(* ------------------------------------------------------------------ *)

type listener = { lfd : Unix.file_descr; port : int }

let listen t addr ?(backlog = 8) ~on_accept () =
  match
    let lfd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt lfd Unix.SO_REUSEADDR true;
       Unix.bind lfd addr;
       Unix.listen lfd backlog;
       Unix.set_nonblock lfd
     with e ->
       (try Unix.close lfd with Unix.Unix_error _ -> ());
       raise e);
    let port =
      match Unix.getsockname lfd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> 0
    in
    Evloop.add_fd t.loop lfd
      ~on_readable:(fun () ->
        match Unix.accept lfd with
        | fd, peer -> on_accept fd peer
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> ())
      ~on_writable:(fun () -> ());
    { lfd; port }
  with
  | l -> Ok l
  | exception Unix.Unix_error (err, fn, _) ->
      Error
        (Printf.sprintf "listen %s: %s in %s" (Addr.to_string addr)
           (Unix.error_message err) fn)

let listener_port l = l.port

let close_listener t l =
  Evloop.remove_fd t.loop l.lfd;
  try Unix.close l.lfd with Unix.Unix_error _ -> ()

let dial t ~addr ~hello ?base_backoff_ms ?max_backoff_ms
    ?handshake_timeout_ms ?backoff_seed ?shaper ~on_established ~on_frame
    ~on_drop () =
  let shaper =
    match shaper with
    | Some cfg when not (Shaper.is_transparent cfg) ->
        Some (Shaper.create cfg)
    | Some _ | None -> None
  in
  Conn.dial ~loop:t.loop ~addr ~hello ~stats:t.stats ?base_backoff_ms
    ?max_backoff_ms ?handshake_timeout_ms ?backoff_seed ?shaper
    ~on_established ~on_frame ~on_drop ()

(* ------------------------------------------------------------------ *)
(* Client style: synchronous lockstep exchange                         *)
(* ------------------------------------------------------------------ *)

type client = {
  conn : Conn.t;
  inbox : bytes Queue.t;
  mutable last_handshake : bytes option;
  mutable dropped : bool;  (** set on drop, cleared by the next recv *)
}

let connect t ~addr ~hello ?max_backoff_ms ?backoff_seed ?shaper () =
  let inbox = Queue.create () in
  let shaper =
    match shaper with
    | Some cfg when not (Shaper.is_transparent cfg) ->
        Some (Shaper.create cfg)
    | Some _ | None -> None
  in
  let rec client =
    lazy
      {
        conn =
          Conn.dial ~loop:t.loop ~addr ~hello ~stats:t.stats ?max_backoff_ms
            ?backoff_seed ?shaper
            ~on_established:(fun _ payload ->
              let c = Lazy.force client in
              c.last_handshake <- Some payload)
            ~on_frame:(fun _ payload ->
              Queue.push payload (Lazy.force client).inbox)
            ~on_drop:(fun _ -> (Lazy.force client).dropped <- true)
            ();
        inbox;
        last_handshake = None;
        dropped = false;
      }
  in
  Lazy.force client

let client_conn c = c.conn

let handshake ?deadline_ms t c =
  if
    run_until ?deadline_ms t (fun () ->
        Conn.established c.conn && c.last_handshake <> None)
  then Ok (Option.get c.last_handshake)
  else Error `Timeout

let send_batch c payload =
  (* [dropped] means "dropped since the last send": a drop racing ahead
     of the matching recv must not be erased by it. *)
  c.dropped <- false;
  Conn.send c.conn payload

let recv_batch ?deadline_ms ?grace_ms t c =
  (* [grace_ms] is flap tolerance: a drop while waiting does not fail
     the round immediately — the connection keeps redialing, and a peer
     that queued our reply in its outbox re-delivers it once the link
     heals.  Only when the grace (or the overall deadline) runs out with
     no frame do we report the drop. *)
  let started = Clock.now_ms () in
  let remaining () =
    Option.map
      (fun d -> Float.max 0. (d -. Clock.elapsed_ms ~since:started))
      deadline_ms
  in
  let wait () =
    if
      run_until ?deadline_ms:(remaining ()) t (fun () ->
          (not (Queue.is_empty c.inbox)) || c.dropped)
    then
      if not (Queue.is_empty c.inbox) then Ok (Queue.pop c.inbox)
      else
        match grace_ms with
        | None -> Error `Dropped
        | Some g ->
            c.dropped <- false;
            let g =
              match remaining () with Some r -> Float.min g r | None -> g
            in
            if g <= 0. then Error `Dropped
            else if
              run_until ~deadline_ms:g t (fun () ->
                  not (Queue.is_empty c.inbox))
            then Ok (Queue.pop c.inbox)
            else Error `Dropped
    else Error `Timeout
  in
  wait ()

let close_client _t c = Conn.close c.conn
