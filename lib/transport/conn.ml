(* Framed connection state machine; see the interface for the contract.

   Invariants:
   - [fd = None] exactly in states Connecting (between retries) and
     Closed.
   - [wbuf] holds the partially-written write buffer — one frame, or
     several queued frames coalesced into a single buffer so a burst of
     small frames (pipelined batch parts) costs one [write] instead of
     one syscall each; complete frames wait in [outq].  On disconnect
     [wbuf] is dropped (the peer's view of a half-sent buffer is
     unknowable), [outq] is kept.
   - the decoder is replaced on every new socket: frame boundaries do
     not survive a reconnect. *)

module Drbg = Vuvuzela_crypto.Drbg

type state = Connecting | Handshaking | Established | Closed

type stats = {
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable reconnects : int;
  mutable outages : int;
  mutable last_outage_ms : float;
  mutable shaped_frames : int;
  mutable shaped_delay_ms : float;
}

let fresh_stats () =
  {
    bytes_in = 0;
    bytes_out = 0;
    frames_in = 0;
    frames_out = 0;
    reconnects = 0;
    outages = 0;
    last_outage_ms = 0.;
    shaped_frames = 0;
    shaped_delay_ms = 0.;
  }

type t = {
  loop : Evloop.t;
  addr : Unix.sockaddr option;  (** [None] for accepted connections *)
  hello : bytes option;
  stats : stats;
  on_established : (t -> bytes -> unit) option;
  on_frame : t -> bytes -> unit;
  on_drop : t -> unit;
  base_backoff_ms : float;
  max_backoff_ms : float;
  handshake_timeout_ms : float;
  backoff_rng : Drbg.t option;  (** full-jitter draws; [None] = lockstep *)
  shaper : Shaper.t option;
  rbuf : bytes;  (** read scratch *)
  outq : bytes Queue.t;  (** complete encoded frames *)
  mutable fd : Unix.file_descr option;
  mutable st : state;
  mutable dec : Frame.decoder;
  mutable wbuf : bytes;  (** frame being written ([woff] consumed) *)
  mutable woff : int;
  mutable backoff_ms : float;
  mutable timer : int option;  (** pending retry / handshake deadline *)
  mutable reconnects : int;
  mutable outage_since : float option;
      (** when an established stream was lost, until re-established *)
}

let state t = t.st
let established t = t.st = Established
let reconnects t = t.reconnects

let queued t =
  Queue.length t.outq + if Bytes.length t.wbuf > t.woff then 1 else 0

let cancel_timer t =
  Option.iter (Evloop.cancel t.loop) t.timer;
  t.timer <- None

let close_socket t =
  match t.fd with
  | None -> ()
  | Some fd ->
      Evloop.remove_fd t.loop fd;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.fd <- None

(* Pull the next write buffer off the queue, folding as many queued
   frames as fit under the budget into one buffer.  Capped so a slow
   peer cannot make us commit unbounded bytes to an unrecoverable
   half-sent buffer. *)
let coalesce_budget = 256 * 1024

let next_write_buffer t =
  let first = Queue.pop t.outq in
  if Queue.is_empty t.outq || Bytes.length first >= coalesce_budget then first
  else begin
    let total = ref (Bytes.length first) in
    let rev_parts = ref [ first ] in
    let fits () =
      (not (Queue.is_empty t.outq))
      && !total + Bytes.length (Queue.peek t.outq) <= coalesce_budget
    in
    while fits () do
      let part = Queue.pop t.outq in
      rev_parts := part :: !rev_parts;
      total := !total + Bytes.length part
    done;
    match !rev_parts with
    | [ single ] -> single
    | rev_parts ->
        let buf = Bytes.create !total in
        let (_ : int) =
          List.fold_left
            (fun tail part ->
              let len = Bytes.length part in
              let off = tail - len in
              Bytes.blit part 0 buf off len;
              off)
            !total rev_parts
        in
        buf
  end

(* Write as much pending output as the socket accepts; toggle write
   interest accordingly.  Raises Unix_error on a dead peer — callers
   route that through their disconnect path. *)
let rec flush_output t fd =
  if Bytes.length t.wbuf = t.woff then
    if
      (* Only an established (or still-handshaking hello) stream may pull
         queued frames; queued data otherwise waits for the handshake. *)
      t.st = Established && not (Queue.is_empty t.outq)
    then begin
      t.wbuf <- next_write_buffer t;
      t.woff <- 0;
      flush_output t fd
    end
    else Evloop.want_write t.loop fd false
  else
    let n = Bytes.length t.wbuf - t.woff in
    match Unix.write fd t.wbuf t.woff n with
    | written ->
        t.stats.bytes_out <- t.stats.bytes_out + written;
        t.woff <- t.woff + written;
        if written = n then flush_output t fd
        else Evloop.want_write t.loop fd true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Evloop.want_write t.loop fd true

let enqueue_frame t frame =
  Queue.push frame t.outq;
  match t.fd with
  | Some fd when t.st = Established -> (
      try flush_output t fd with Unix.Unix_error _ -> ())
      (* a write error here also surfaces via on_readable EOF *)
  | _ -> ()

let send t payload =
  match t.st with
  | Closed -> ()
  | _ -> (
      let frame = Frame.encode payload in
      t.stats.frames_out <- t.stats.frames_out + 1;
      match t.shaper with
      | None -> enqueue_frame t frame
      | Some sh ->
          (* Link emulation: hold the frame off the wire until its
             release instant.  Release times are monotonic per shaper,
             and the loop fires equal-deadline timers in registration
             order, so shaped frames keep their FIFO order. *)
          let delay =
            Shaper.delay_ms sh ~now_ms:(Clock.now_ms ())
              ~bytes:(Bytes.length frame)
          in
          if delay <= 0. then enqueue_frame t frame
          else begin
            t.stats.shaped_frames <- t.stats.shaped_frames + 1;
            t.stats.shaped_delay_ms <- t.stats.shaped_delay_ms +. delay;
            ignore
              (Evloop.after t.loop ~ms:delay (fun () ->
                   if t.st <> Closed then enqueue_frame t frame))
          end)

(* ------------------------------------------------------------------ *)
(* Dialer lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let rec start_connect t =
  cancel_timer t;
  if t.st <> Closed then begin
    let addr = Option.get t.addr in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    t.fd <- Some fd;
    t.st <- Connecting;
    t.dec <- Frame.decoder ();
    t.wbuf <- Bytes.empty;
    t.woff <- 0;
    Evloop.add_fd t.loop fd
      ~on_readable:(fun () -> on_readable t fd)
      ~on_writable:(fun () -> on_writable t fd);
    (* The whole connect + handshake must finish inside the deadline. *)
    t.timer <-
      Some
        (Evloop.after t.loop ~ms:t.handshake_timeout_ms (fun () ->
             t.timer <- None;
             if t.st = Connecting || t.st = Handshaking then retry t));
    match Unix.connect fd addr with
    | () -> on_connected t fd
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
      ->
        Evloop.want_write t.loop fd true
    | exception Unix.Unix_error _ -> retry t
  end

and retry t =
  close_socket t;
  cancel_timer t;
  if t.st <> Closed then begin
    t.st <- Connecting;
    t.reconnects <- t.reconnects + 1;
    t.stats.reconnects <- t.stats.reconnects + 1;
    (* Full jitter: draw uniformly in [base, cap) so a fleet of clients
       redialing a restarted server spreads out instead of storming it
       in lockstep.  The draw comes from a per-connection DRBG, so a
       seeded run replays the same delays. *)
    let cap = t.backoff_ms in
    let delay =
      match t.backoff_rng with
      | None -> cap
      | Some rng ->
          t.base_backoff_ms
          +. (Drbg.float_unit ~rng () *. Float.max 0. (cap -. t.base_backoff_ms))
    in
    t.backoff_ms <- Float.min t.max_backoff_ms (cap *. 2.);
    t.timer <-
      Some
        (Evloop.after t.loop ~ms:delay (fun () ->
             t.timer <- None;
             start_connect t))
  end

(* An established stream died (EOF, reset, poisoned framing): notify,
   then redial.  Queued frames survive; the half-written one does not. *)
and drop_established t =
  close_socket t;
  t.wbuf <- Bytes.empty;
  t.woff <- 0;
  t.st <- Connecting;
  if t.outage_since = None then t.outage_since <- Some (Clock.now_ms ());
  t.on_drop t;
  retry t

and on_connected t fd =
  t.st <- Handshaking;
  (match t.hello with
  | Some hello ->
      t.wbuf <- Frame.encode hello;
      t.woff <- 0;
      t.stats.frames_out <- t.stats.frames_out + 1
  | None -> ());
  (try flush_output t fd with Unix.Unix_error _ -> retry t)

and on_writable t fd =
  match t.st with
  | Connecting -> (
      match Unix.getsockopt_error fd with
      | None -> on_connected t fd
      | Some _ -> retry t)
  | Handshaking | Established -> (
      try flush_output t fd
      with Unix.Unix_error _ ->
        if t.st = Established then drop_established t else retry t)
  | Closed -> ()

and on_readable t fd =
  let disconnected () =
    if t.st = Established then drop_established t
    else if t.st <> Closed then retry t
  in
  match Unix.read fd t.rbuf 0 (Bytes.length t.rbuf) with
  | 0 -> disconnected ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> disconnected ()
  | n ->
      t.stats.bytes_in <- t.stats.bytes_in + n;
      Frame.feed t.dec t.rbuf ~off:0 ~len:n;
      drain_frames t fd

and drain_frames t fd =
  match Frame.next t.dec with
  | Error _ ->
      (* Oversized length prefix: the stream cannot be resynchronized. *)
      if t.st = Established then drop_established t
      else if t.st <> Closed then retry t
  | Ok None -> ()
  | Ok (Some payload) ->
      t.stats.frames_in <- t.stats.frames_in + 1;
      (match t.st with
      | Handshaking ->
          cancel_timer t;
          t.st <- Established;
          t.backoff_ms <- t.base_backoff_ms;
          (match t.outage_since with
          | Some since ->
              t.outage_since <- None;
              t.stats.outages <- t.stats.outages + 1;
              t.stats.last_outage_ms <- Clock.elapsed_ms ~since
          | None -> ());
          Option.iter (fun f -> f t payload) t.on_established;
          (* Frames queued while disconnected flush now, in order. *)
          if t.st = Established then (
            try flush_output t fd with Unix.Unix_error _ -> ())
      | Established | Connecting | Closed -> t.on_frame t payload);
      if t.st <> Closed && t.fd = Some fd then drain_frames t fd

let dial ~loop ~addr ~hello ?(stats = fresh_stats ())
    ?(base_backoff_ms = 25.) ?(max_backoff_ms = 1000.)
    ?(handshake_timeout_ms = 5000.) ?backoff_seed ?shaper ~on_established
    ~on_frame ~on_drop () =
  let t =
    {
      loop;
      addr = Some addr;
      hello = Some hello;
      stats;
      on_established = Some on_established;
      on_frame;
      on_drop;
      base_backoff_ms;
      max_backoff_ms;
      handshake_timeout_ms;
      backoff_rng = Option.map Drbg.of_string backoff_seed;
      shaper;
      rbuf = Bytes.create 65536;
      outq = Queue.create ();
      fd = None;
      st = Connecting;
      dec = Frame.decoder ();
      wbuf = Bytes.empty;
      woff = 0;
      backoff_ms = base_backoff_ms;
      timer = None;
      reconnects = 0;
      outage_since = None;
    }
  in
  start_connect t;
  t

(* ------------------------------------------------------------------ *)
(* Accepted connections                                                *)
(* ------------------------------------------------------------------ *)

let of_fd ~loop ~fd ?(stats = fresh_stats ()) ?shaper ~on_frame ~on_drop () =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let t =
    {
      loop;
      addr = None;
      hello = None;
      stats;
      on_established = None;
      on_frame;
      on_drop;
      base_backoff_ms = 0.;
      max_backoff_ms = 0.;
      handshake_timeout_ms = 0.;
      backoff_rng = None;
      shaper;
      rbuf = Bytes.create 65536;
      outq = Queue.create ();
      fd = Some fd;
      st = Established;
      dec = Frame.decoder ();
      wbuf = Bytes.empty;
      woff = 0;
      backoff_ms = 0.;
      timer = None;
      reconnects = 0;
      outage_since = None;
    }
  in
  let teardown () =
    if t.st <> Closed then begin
      t.st <- Closed;
      close_socket t;
      t.on_drop t
    end
  in
  Evloop.add_fd loop fd
    ~on_readable:(fun () ->
      match Unix.read fd t.rbuf 0 (Bytes.length t.rbuf) with
      | 0 -> teardown ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error _ -> teardown ()
      | n -> (
          t.stats.bytes_in <- t.stats.bytes_in + n;
          Frame.feed t.dec t.rbuf ~off:0 ~len:n;
          let rec drain () =
            match Frame.next t.dec with
            | Error _ -> teardown ()
            | Ok None -> ()
            | Ok (Some payload) ->
                t.stats.frames_in <- t.stats.frames_in + 1;
                t.on_frame t payload;
                if t.st <> Closed then drain ()
          in
          drain ()))
    ~on_writable:(fun () ->
      try flush_output t fd with Unix.Unix_error _ -> teardown ());
  t

let close t =
  if t.st <> Closed then begin
    cancel_timer t;
    (* Give a final best-effort push to anything already queued (Bye
       frames at shutdown); a blocked socket just loses it. *)
    (match t.fd with
    | Some fd when t.st = Established -> (
        try flush_output t fd with Unix.Unix_error _ -> ())
    | _ -> ());
    t.st <- Closed;
    close_socket t;
    Queue.clear t.outq;
    t.wbuf <- Bytes.empty;
    t.woff <- 0
  end
