(* Link emulation; see the interface.

   The virtual transmission clock [tx_free_ms] is the instant the
   emulated link finishes serializing everything queued so far.  A frame
   queued at [now] starts transmitting at [max now tx_free_ms], takes
   [bytes / bandwidth] to serialize, then propagates for
   [latency + jitter].  Clamping release times monotonic keeps the link
   FIFO even when a small jitter draw follows a large one. *)

module Drbg = Vuvuzela_crypto.Drbg

type config = {
  latency_ms : float;
  jitter_ms : float;
  bandwidth_bytes_per_sec : float option;
  seed : string;
}

let config ?(latency_ms = 0.) ?(jitter_ms = 0.) ?bandwidth_bytes_per_sec
    ?(seed = "link") () =
  {
    latency_ms = Float.max 0. latency_ms;
    jitter_ms = Float.max 0. jitter_ms;
    bandwidth_bytes_per_sec;
    seed;
  }

let is_transparent c =
  c.latency_ms = 0. && c.jitter_ms = 0. && c.bandwidth_bytes_per_sec = None

let with_seed seed c = { c with seed }

type t = {
  cfg : config;
  rng : Drbg.t;
  mutable tx_free_ms : float;  (** virtual clock: link busy until then *)
  mutable last_release_ms : float;  (** FIFO clamp *)
}

let create cfg = { cfg; rng = Drbg.of_string cfg.seed; tx_free_ms = 0.; last_release_ms = 0. }

let delay_ms t ~now_ms ~bytes =
  let serialize_ms =
    match t.cfg.bandwidth_bytes_per_sec with
    | None -> 0.
    | Some bw when bw <= 0. -> 0.
    | Some bw -> 1000. *. float_of_int bytes /. bw
  in
  let tx_start = Float.max now_ms t.tx_free_ms in
  t.tx_free_ms <- tx_start +. serialize_ms;
  let jitter =
    if t.cfg.jitter_ms > 0. then Drbg.float_unit ~rng:t.rng () *. t.cfg.jitter_ms
    else 0.
  in
  let release = t.tx_free_ms +. t.cfg.latency_ms +. jitter in
  let release = Float.max release t.last_release_ms in
  t.last_release_ms <- release;
  Float.max 0. (release -. now_ms)

let rtt_budget_ms cfg ~hops =
  2. *. float_of_int (max 0 hops) *. (cfg.latency_ms +. cfg.jitter_ms)

let to_string c =
  let bw =
    match c.bandwidth_bytes_per_sec with
    | None -> ""
    | Some bw -> Printf.sprintf "@%.0f" bw
  in
  if c.jitter_ms > 0. then
    Printf.sprintf "%.0f±%.0f%s" c.latency_ms c.jitter_ms bw
  else Printf.sprintf "%.0f%s" c.latency_ms bw

(* LAT[±JIT][@BW]; ± may also be spelled '+-' for shells without the
   glyph. *)
let parse s =
  let s = String.trim s in
  let float_of ~what v =
    match float_of_string_opt (String.trim v) with
    | Some f when f >= 0. -> Ok f
    | Some _ -> Error (Printf.sprintf "%s must be >= 0 in %S" what s)
    | None -> Error (Printf.sprintf "bad %s %S" what v)
  in
  let bandwidth_of v =
    let v = String.trim v in
    let scale, v =
      let n = String.length v in
      if n = 0 then (1., v)
      else
        match Char.lowercase_ascii v.[n - 1] with
        | 'k' -> (1e3, String.sub v 0 (n - 1))
        | 'm' -> (1e6, String.sub v 0 (n - 1))
        | _ -> (1., v)
    in
    Result.map (fun f -> f *. scale) (float_of ~what:"bandwidth" v)
  in
  let ( let* ) = Result.bind in
  let lat_jit, bw_s =
    match String.index_opt s '@' with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  (* split on the jitter separator: UTF-8 "±" or ASCII "+-" *)
  let split_jitter str =
    let find_sub needle =
      let nl = String.length needle and l = String.length str in
      let rec go i =
        if i + nl > l then None
        else if String.sub str i nl = needle then Some i
        else go (i + 1)
      in
      go 0
    in
    match find_sub "\xc2\xb1" with
    | Some i ->
        (String.sub str 0 i, Some (String.sub str (i + 2) (String.length str - i - 2)))
    | None -> (
        match find_sub "+-" with
        | Some i ->
            ( String.sub str 0 i,
              Some (String.sub str (i + 2) (String.length str - i - 2)) )
        | None -> (str, None))
  in
  let lat_s, jit_s = split_jitter lat_jit in
  let* latency_ms = float_of ~what:"latency" lat_s in
  let* jitter_ms =
    match jit_s with None -> Ok 0. | Some j -> float_of ~what:"jitter" j
  in
  let* bandwidth_bytes_per_sec =
    match bw_s with
    | None -> Ok None
    | Some b -> Result.map Option.some (bandwidth_of b)
  in
  Ok { latency_ms; jitter_ms; bandwidth_bytes_per_sec; seed = "link" }
