(* "HOST:PORT" <-> Unix.sockaddr, the daemons' address syntax. *)

let loopback ~port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let parse s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected HOST:PORT" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_s with
      | None | Some 0 ->
          Error (Printf.sprintf "address %S: bad port %S" s port_s)
      | Some port when port < 0 || port > 0xffff ->
          Error (Printf.sprintf "address %S: bad port %S" s port_s)
      | Some port -> (
          if host = "" then Ok (loopback ~port)
          else
            match Unix.inet_addr_of_string host with
            | ip -> Ok (Unix.ADDR_INET (ip, port))
            | exception Failure _ -> (
                match Unix.gethostbyname host with
                | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                    Error (Printf.sprintf "address %S: unknown host %S" s host)
                | { Unix.h_addr_list; _ } ->
                    Ok (Unix.ADDR_INET (h_addr_list.(0), port)))))

let to_string = function
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX path -> path

let port_of = function
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Addr.port_of: not an IP address"
