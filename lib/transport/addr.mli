(** Socket addresses as the daemons' CLI spells them: ["HOST:PORT"]. *)

val parse : string -> (Unix.sockaddr, string) result
(** ["127.0.0.1:7000"], ["localhost:7000"], or [":7000"] (loopback).
    Hostnames are resolved once, at parse time. *)

val loopback : port:int -> Unix.sockaddr

val to_string : Unix.sockaddr -> string

val port_of : Unix.sockaddr -> int
(** @raise Invalid_argument on a non-IP address. *)
