(** One framed TCP connection, as a state machine on the {!Evloop}.

    Two flavours share the type:

    - a {e dialed} connection ([dial]) owns its remote address and keeps
      itself alive: non-blocking connect, a handshake (send the given
      hello frame, wait for the peer's reply frame), then established.
      Any failure — refused, reset, EOF, handshake timeout, a poisoned
      frame stream — tears the socket down and redials under bounded
      exponential backoff.  Frames sent while not established queue and
      flush, in order, once the handshake completes, so a caller can
      treat [send] as fire-and-forget across a peer restart.
    - an {e accepted} connection ([of_fd]) wraps a socket from
      [Unix.accept]: established immediately, never reconnects; the
      acceptor interprets the peer's hello itself as the first frame.

    All sockets get [TCP_NODELAY] (a round is latency-bound on small
    frames) and are non-blocking; all I/O happens inside loop
    callbacks. *)

type t

type state = Connecting | Handshaking | Established | Closed

type stats = {
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable reconnects : int;  (** redial attempts after the first *)
  mutable outages : int;
      (** established → lost → re-established cycles completed *)
  mutable last_outage_ms : float;
      (** wall time the most recent completed outage lasted — the
          recovery latency of a reconnect storm *)
  mutable shaped_frames : int;  (** frames the link shaper delayed *)
  mutable shaped_delay_ms : float;  (** total emulated delay injected *)
}
(** Shared wire counters (a {!Transport} endpoint aggregates these
    across its connections). *)

val fresh_stats : unit -> stats

val dial :
  loop:Evloop.t ->
  addr:Unix.sockaddr ->
  hello:bytes ->
  ?stats:stats ->
  ?base_backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?handshake_timeout_ms:float ->
  ?backoff_seed:string ->
  ?shaper:Shaper.t ->
  on_established:(t -> bytes -> unit) ->
  on_frame:(t -> bytes -> unit) ->
  on_drop:(t -> unit) ->
  unit ->
  t
(** [on_established] receives the peer's handshake reply payload (each
    time the connection (re-)establishes); [on_frame] every later
    payload; [on_drop] fires when an {e established} connection is lost
    (the redial loop continues on its own).  The backoff cap doubles
    from [base_backoff_ms] (default 25) to [max_backoff_ms] (default
    1000); a completed handshake resets it.  With [backoff_seed] each
    retry sleeps a {e full-jitter} draw, uniform in [\[base, cap)] from
    a DRBG seeded with it — reproducible, but a fleet of seeded dialers
    no longer redials a restarted server in lockstep.  Without a seed
    the delay is exactly the cap (the legacy deterministic schedule).
    [handshake_timeout_ms] (default 5000) bounds connect + hello/reply.
    [shaper] emulates this link's WAN characteristics: each outgoing
    frame (the hello excepted) is held back by {!Shaper.delay_ms} before
    it may reach the wire. *)

val of_fd :
  loop:Evloop.t ->
  fd:Unix.file_descr ->
  ?stats:stats ->
  ?shaper:Shaper.t ->
  on_frame:(t -> bytes -> unit) ->
  on_drop:(t -> unit) ->
  unit ->
  t

val send : t -> bytes -> unit
(** Queue one payload (framed internally).  On a dialed connection the
    queue survives reconnects — only a frame already partially on the
    wire when the socket died is dropped (the peer's view of it is
    unknowable; recovery is the round supervisor's retry).  On a closed
    connection this is a no-op.
    @raise Invalid_argument if the payload exceeds {!Frame.max_payload}. *)

val state : t -> state
val established : t -> bool

val queued : t -> int
(** Buffers waiting to reach the wire (including any partial one).  A
    lower bound on frames: the write path coalesces bursts of queued
    frames into single buffers. *)

val reconnects : t -> int

val close : t -> unit
(** Final: close the socket, cancel timers, stop redialing. *)
