(** Deterministic link emulation: per-link latency distributions and
    token-bucket bandwidth limits, so a geo-distributed chain can be
    emulated on loopback.

    A shaper sits on the {e sending} side of one connection and answers
    one question per outgoing frame: how long after "now" may these
    bytes reach the wire?  The answer combines three terms:

    - {b serialization}: bytes / bandwidth, accumulated in virtual time
      (a second frame queued behind a first waits for the first's
      transmission to finish — the classic token-bucket/virtual-clock
      link model);
    - {b propagation}: a fixed one-way [latency_ms];
    - {b jitter}: a uniform draw in [\[0, jitter_ms)] from a
      ChaCha20-DRBG seeded at creation, so the i-th frame of a seeded
      run always draws the same jitter (the queueing term still depends
      on real arrival times, but the random sequence is reproducible —
      the same discipline as [vuvuzela_faults]).

    Frames on one link never reorder: release times are clamped
    monotonic. *)

type config = {
  latency_ms : float;  (** fixed one-way propagation delay per frame *)
  jitter_ms : float;  (** uniform extra in [\[0, jitter_ms)], seeded *)
  bandwidth_bytes_per_sec : float option;
      (** token-bucket rate; [None] = infinite (latency only) *)
  seed : string;  (** jitter DRBG seed *)
}

val config :
  ?latency_ms:float ->
  ?jitter_ms:float ->
  ?bandwidth_bytes_per_sec:float ->
  ?seed:string ->
  unit ->
  config
(** Defaults: 0 ms latency, 0 ms jitter, unlimited bandwidth, seed
    ["link"]. *)

val is_transparent : config -> bool
(** [true] when the config shapes nothing (no latency, no jitter, no
    bandwidth cap) — callers skip the shaper entirely. *)

type t

val create : config -> t

val delay_ms : t -> now_ms:float -> bytes:int -> float
(** Delay (>= 0) before a frame of [bytes] queued at [now_ms] may be
    released to the socket.  Mutates the virtual transmission clock and
    the jitter DRBG. *)

val rtt_budget_ms : config -> hops:int -> float
(** The extra round-trip budget a supervisor should grant a chain of
    [hops] shaped links: [2 * hops * (latency + jitter)].  Serialization
    time is workload-dependent and intentionally excluded — size the
    deadline for it separately. *)

val to_string : config -> string
(** Render in the [parse] syntax. *)

val parse : string -> (config, string) result
(** Parse the CLI link syntax [LAT\[±JIT\]\[@BW\]]: latency in ms, an
    optional [±] jitter in ms, an optional [@] bandwidth in bytes/sec
    (suffixes [k]/[m] = 1e3/1e6).  Examples: ["25"], ["25±5"],
    ["50±10@1m"].  The seed defaults to ["link"] — derive a per-link
    seed with {!with_seed} for independent jitter streams. *)

val with_seed : string -> config -> config
