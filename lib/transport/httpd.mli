(** A minimal HTTP/1.0 responder mounted on an existing {!Evloop} —
    the daemon scrape endpoints ([/metrics], [/healthz], [/trace]).

    GET-only, one response per connection ([Connection: close]), request
    size capped at 8 KiB; everything else is answered with 4xx.  All I/O
    is non-blocking and shares the daemon's select loop, so serving a
    scrape never stalls the round pipeline, and a scraper can observe a
    daemon mid-round. *)

type t

val serve :
  Evloop.t ->
  addr:Unix.sockaddr ->
  routes:(string -> (string * string) option) ->
  (t, string) result
(** [serve loop ~addr ~routes] binds and listens on [addr] (port 0 picks
    an ephemeral port — read it back with {!port}).  [routes path]
    returns [Some (content_type, body)] or [None] for 404; it is called
    per request, so bodies always reflect live state. *)

val port : t -> int

val close : t -> unit
(** Stop listening and drop any in-flight connections. *)

val get :
  ?timeout_ms:float ->
  Unix.sockaddr ->
  string ->
  (int * string, string) result
(** Blocking one-shot client: [get addr "/metrics"] returns
    [(status code, body)].  Socket-level send/receive timeouts (default
    2 s) bound the cost of scraping a wedged peer.  Used by the
    coordinator's observability collector and the tests. *)
