(* Declarative fault plans for the chain's link boundaries.

   A plan is pure data so that a failure schedule can come from a CLI
   flag, a test literal, or a seeded generator, and so that the same
   plan plus the same deployment seed reproduces the same run bit for
   bit.  The injector consumes each fault the first time its (round,
   server) site is crossed: transient failures that a bounded retry
   policy can outlast, which is exactly the availability model of the
   paper (a crashed server restarts, a lossy link recovers). *)

open Vuvuzela_crypto

type kind =
  | Crash
  | Drop_link
  | Corrupt_frame of int
  | Truncate_frame of int
  | Extend_frame of int
  | Delay_ms of int
  | Tamper_slot of int
  | Slow_link of int
  | Flap of int
  | Partition of int

type fault = { round : int; server : int; kind : kind }
type plan = fault list

let pp_kind ppf = function
  | Crash -> Format.pp_print_string ppf "crash"
  | Drop_link -> Format.pp_print_string ppf "drop"
  | Corrupt_frame pos -> Format.fprintf ppf "corrupt(%d)" pos
  | Truncate_frame n -> Format.fprintf ppf "truncate(%d)" n
  | Extend_frame n -> Format.fprintf ppf "pad(%d)" n
  | Delay_ms ms -> Format.fprintf ppf "delay(%d)" ms
  | Tamper_slot slot -> Format.fprintf ppf "tamper(%d)" slot
  | Slow_link ms -> Format.fprintf ppf "slow(%d)" ms
  | Flap ms -> Format.fprintf ppf "flap(%d)" ms
  | Partition ms -> Format.fprintf ppf "partition(%d)" ms

let pp_fault ppf { round; server; kind } =
  Format.fprintf ppf "%a@@%d:%d" pp_kind kind round server

let to_string plan =
  String.concat ";" (List.map (Format.asprintf "%a" pp_fault) plan)

(* Frame-level fault semantics, shared by every link implementation (the
   in-process chain and the TCP daemons): given the encoded frame a
   sender emitted, what does the faulty wire deliver?  Control faults
   (crash/drop/delay/tamper) act elsewhere and leave the frame alone. *)
let apply_frame frame = function
  | Corrupt_frame pos ->
      let frame = Bytes.copy frame in
      let len = Bytes.length frame in
      if len > 0 then begin
        let pos = pos mod len in
        Bytes.set frame pos
          (Char.chr (Char.code (Bytes.get frame pos) lxor 0xff))
      end;
      frame
  | Truncate_frame n -> Bytes.sub frame 0 (min n (Bytes.length frame))
  | Extend_frame n -> Bytes.cat frame (Bytes.make n '\xaa')
  | Crash | Drop_link | Delay_ms _ | Tamper_slot _ | Slow_link _ | Flap _
  | Partition _ ->
      frame

(* Likewise the batch-level semantics of the §2.1 active adversary:
   flip one byte of one onion so framing survives but authentication at
   the receiving server does not. *)
let apply_tamper batch slot =
  let batch = Array.map Bytes.copy batch in
  if Array.length batch > 0 then begin
    let item = batch.(slot mod Array.length batch) in
    if Bytes.length item > 0 then
      Bytes.set item 0 (Char.chr (Char.code (Bytes.get item 0) lxor 0xff))
  end;
  batch

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let int_of ~what s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Ok n
  | Some _ -> Error (Printf.sprintf "%s must be >= 0, got %s" what s)
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let kind_of spec =
  let spec = String.trim spec in
  match String.index_opt spec '(' with
  | None -> (
      match spec with
      | "crash" -> Ok Crash
      | "drop" -> Ok Drop_link
      | "flap" -> Ok (Flap 0)
      | _ -> Error (Printf.sprintf "unknown fault kind %S" spec))
  | Some lp ->
      if spec.[String.length spec - 1] <> ')' then
        Error (Printf.sprintf "missing ')' in %S" spec)
      else
        let name = String.sub spec 0 lp in
        let arg = String.sub spec (lp + 1) (String.length spec - lp - 2) in
        let* n = int_of ~what:(name ^ " argument") arg in
        (match String.trim name with
        | "corrupt" -> Ok (Corrupt_frame n)
        | "truncate" -> Ok (Truncate_frame n)
        | "pad" -> Ok (Extend_frame n)
        | "delay" -> Ok (Delay_ms n)
        | "tamper" -> Ok (Tamper_slot n)
        | "slow" -> Ok (Slow_link n)
        | "flap" -> Ok (Flap n)
        | "partition" -> Ok (Partition n)
        | other -> Error (Printf.sprintf "unknown fault kind %S" other))

let split_on char s =
  match String.index_opt s char with
  | None -> (s, None)
  | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )

let fault_of spec =
  let spec = String.trim spec in
  match split_on '@' spec with
  | _, None -> Error (Printf.sprintf "missing '@round' in %S" spec)
  | kind_s, Some site -> (
      let* kind = kind_of kind_s in
      (* site := round [':' server] ['x' count] *)
      let site, count_s = split_on 'x' site in
      let round_s, server_s = split_on ':' site in
      let* round = int_of ~what:"round" round_s in
      let* server =
        match server_s with None -> Ok 0 | Some s -> int_of ~what:"server" s
      in
      let* count =
        match count_s with None -> Ok 1 | Some s -> int_of ~what:"count" s
      in
      if round < 1 then Error (Printf.sprintf "round must be >= 1 in %S" spec)
      else if count < 1 then
        Error (Printf.sprintf "count must be >= 1 in %S" spec)
      else Ok (List.init count (fun i -> { round = round + i; server; kind })))

let parse s =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | piece :: rest ->
        let* faults = fault_of piece in
        go (faults :: acc) rest
  in
  String.split_on_char ';' s
  |> List.filter (fun p -> String.trim p <> "")
  |> go []

(* ------------------------------------------------------------------ *)
(* Chaos schedules                                                     *)
(* ------------------------------------------------------------------ *)

(* Parameters are chosen so each drawn fault misbehaves decisively:
   corruption hits the 6-byte magic/version/tag header (decode always
   fails, never a silent payload flip), delays are an hour (past any
   deadline a test would set). *)
let random_plan ~rng ~rounds ~n_servers ?(faults = 4) () =
  List.init faults (fun _ ->
      let round = 1 + Drbg.uniform ~rng rounds in
      let server = Drbg.uniform ~rng n_servers in
      let kind =
        match Drbg.uniform ~rng 5 with
        | 0 -> Crash
        | 1 -> Drop_link
        | 2 -> Corrupt_frame (Drbg.uniform ~rng 6)
        | 3 -> Delay_ms 3_600_000
        | _ -> Tamper_slot (Drbg.uniform ~rng 8)
      in
      { round; server; kind })

(* Churn-only schedule: the link misbehaves but always heals — flaps
   (connection resets that lose no processed batch), bounded slowdowns,
   short partitions.  Distinct from [random_plan] on purpose: existing
   chaos seeds pin that generator's draw sequence, and churn scenarios
   need every fault to be survivable inside a sane round deadline. *)
let random_churn_plan ~rng ~rounds ~n_servers ?(faults = 6) () =
  List.init faults (fun _ ->
      let round = 1 + Drbg.uniform ~rng rounds in
      let server = Drbg.uniform ~rng n_servers in
      let kind =
        match Drbg.uniform ~rng 3 with
        | 0 -> Flap (Drbg.uniform ~rng 30)
        | 1 -> Slow_link (10 + Drbg.uniform ~rng 40)
        | _ -> Partition (50 + Drbg.uniform ~rng 100)
      in
      { round; server; kind })

(* ------------------------------------------------------------------ *)
(* Injection                                                           *)
(* ------------------------------------------------------------------ *)

type injector = { mutable pending_faults : fault list }

let injector plan = { pending_faults = plan }

let fire inj ~round ~server =
  let hit, rest =
    List.partition
      (fun f -> f.round = round && f.server = server)
      inj.pending_faults
  in
  inj.pending_faults <- rest;
  List.map (fun f -> f.kind) hit

let pending inj = List.length inj.pending_faults
let exhausted inj = inj.pending_faults = []
