(** Declarative, deterministic fault injection for the server chain.

    Vuvuzela's availability story (§4.2, §7 of the paper) is that a
    failed round is indistinguishable from "the partner didn't reply":
    servers abort the round and redraw noise, clients retry with fresh
    onions.  Exercising that machinery needs reproducible failures, so a
    fault plan is pure data: a list of (round, link, kind) triples that
    the chain consumes as rounds run.  Under a fixed deployment seed a
    plan makes the whole failure schedule — and everything downstream of
    it — bit-deterministic.

    Faults fire at the chain's forward link boundaries: a fault at
    [server = i] affects the batch crossing the link {i} (entry → server
    0, or server i-1 → server i) in round [round].  Each fault fires at
    most once (a crashed server restarts for the retry; a lossy link
    recovers), which is what lets a bounded retry policy make progress. *)

type kind =
  | Crash  (** the receiving server aborts the round *)
  | Drop_link  (** the batch never arrives *)
  | Corrupt_frame of int
      (** XOR byte [pos mod frame length] of the encoded frame with 0xff;
          positions 0-5 hit the magic/version/tag header and are
          guaranteed to fail decoding *)
  | Truncate_frame of int  (** cut the frame to its first [n] bytes *)
  | Extend_frame of int  (** append [n] garbage bytes to the frame *)
  | Delay_ms of int
      (** the link stalls: virtual delay added to the round's elapsed
          time, for exercising deadlines deterministically *)
  | Tamper_slot of int
      (** the §2.1 active adversary: flip a byte of onion
          [slot mod batch size]; framing survives but that request fails
          authentication at the receiving server *)
  | Slow_link of int
      (** the link is congested for [ms]: the batch arrives intact but
          late (virtual stall in-process, a real stall on daemons) —
          survivable when the round deadline has slack *)
  | Flap of int
      (** the connection resets and heals after [ms]: no processed data
          is lost — daemons reset the socket but keep the round's reply
          in their outbox for the healed link; the in-process relay just
          accounts the outage as stall time *)
  | Partition of int
      (** the link is cut for [ms]: the in-flight batch is lost {e and}
          the round stalls for the outage — a drop plus a slow heal *)

type fault = { round : int; server : int; kind : kind }
(** [server] is the 0-based chain position whose incoming link the fault
    hits; [round] is the conversation- or dialing-round number running
    when it fires. *)

type plan = fault list

val pp_kind : Format.formatter -> kind -> unit
val pp_fault : Format.formatter -> fault -> unit

val to_string : plan -> string
(** Render a plan in the grammar [parse] accepts. *)

val parse : string -> (plan, string) result
(** Parse the fault-plan grammar (also the CLI [--fault-plan] syntax):

    {v
    plan   := fault (';' fault)* | ''
    fault  := kind '@' round [':' server] ['x' count]
    kind   := 'crash' | 'drop' | 'corrupt(' byte ')' | 'truncate(' n ')'
            | 'pad(' n ')' | 'delay(' ms ')' | 'tamper(' slot ')'
            | 'slow(' ms ')' | 'flap' | 'flap(' ms ')' | 'partition(' ms ')'
    v}

    [server] defaults to 0 (the entry link); ['x' count] repeats the
    fault at [count] consecutive rounds starting at [round] (so
    [crash@2:1x3] crashes server 1's link in rounds 2, 3 and 4 — one
    firing per round).  Whitespace around tokens is ignored. *)

val apply_frame : bytes -> kind -> bytes
(** What the faulty wire delivers for the frame a sender emitted —
    frame-level kinds mutate a copy ([Corrupt_frame] XORs one byte,
    [Truncate_frame]/[Extend_frame] resize); control kinds return the
    frame unchanged.  Shared by the in-process chain and the TCP
    daemons so both deployments fail identically. *)

val apply_tamper : bytes array -> int -> bytes array
(** The §2.1 active adversary on a batch: flip byte 0 of onion
    [slot mod batch size] (in a copy).  Framing survives;
    authentication at the receiving server does not. *)

val random_plan :
  rng:Vuvuzela_crypto.Drbg.t ->
  rounds:int ->
  n_servers:int ->
  ?faults:int ->
  unit ->
  plan
(** A chaos schedule: [faults] (default 4) faults drawn from the seeded
    [rng], with rounds in [1, rounds], servers in [0, n_servers), and
    parameters chosen so every kind misbehaves decisively (header-byte
    corruption that always breaks decoding, delays far past any sane
    deadline).  Same [rng] state, same plan. *)

val random_churn_plan :
  rng:Vuvuzela_crypto.Drbg.t ->
  rounds:int ->
  n_servers:int ->
  ?faults:int ->
  unit ->
  plan
(** A churn schedule: [faults] (default 6) faults drawn only from the
    healing kinds — [Flap] (0–30 ms), [Slow_link] (10–50 ms),
    [Partition] (50–150 ms) — so every failure is survivable inside a
    sane round deadline.  A separate generator from {!random_plan}: its
    draw sequence is pinned by existing chaos seeds. *)

(** {2 Injection} *)

type injector
(** The mutable consumption state of one plan.  A chain owns one. *)

val injector : plan -> injector

val fire : injector -> round:int -> server:int -> kind list
(** The faults scheduled for this link crossing, in plan order; each is
    consumed (removed from the pending set) as it is returned. *)

val pending : injector -> int
(** Faults not yet fired. *)

val exhausted : injector -> bool
