(* Statistical disclosure attacks against the noised observables.

   The strongest §4.2 adversary controls every user except Alice and Bob
   and every server except one.  Each round it therefore knows the base
   dead-drop counts exactly and sees

       m2_observed = (1 if Alice and Bob exchanged else 0) + N

   where N is the honest server's noise (⌈max(0, Laplace(µ/2, b/2))⌉ on
   m2, Theorem 1).  The optimal attack is the likelihood-ratio test; this
   module implements it both against a closed-form model and against the
   live implementation, and checks the realized adversary confidence
   against the differential-privacy bound. *)

open Vuvuzela_dp

(* Probability mass function of ⌈max(0, Laplace(µ, b))⌉ up to [max_k].
   P(0) = CDF(0); P(k) = CDF(k) − CDF(k−1) for k ≥ 1. *)
let pmf (p : Laplace.params) ~max_k =
  Array.init (max_k + 1) (fun k ->
      if k = 0 then Laplace.cdf p 0.
      else Laplace.cdf p (float_of_int k) -. Laplace.cdf p (float_of_int (k - 1)))

(* PMF of the sum of independent noise draws (one per honest-or-unknown
   server). *)
let convolve a b =
  let n = Array.length a + Array.length b - 1 in
  let out = Array.make n 0. in
  Array.iteri
    (fun i ai -> Array.iteri (fun j bj -> out.(i + j) <- out.(i + j) +. (ai *. bj)) b)
    a;
  out

let rec self_convolve a = function
  | 1 -> a
  | n when n > 1 -> convolve a (self_convolve a (n - 1))
  | _ -> invalid_arg "Disclosure.self_convolve: need at least one copy"

type verdict = {
  rounds : int;
  log_lr : float;  (** accumulated log likelihood ratio (talking : not) *)
  posterior : float;  (** adversary's belief that the pair is talking *)
  truth : bool;
}

let pp_verdict fmt v =
  Format.fprintf fmt "{rounds=%d; logLR=%+.4f; posterior=%.4f; truth=%b}"
    v.rounds v.log_lr v.posterior v.truth

(* Accumulate the likelihood-ratio test over a series of observed m2
   values.  [noise_pmf] is the distribution of the unknown noise;
   [base] the adversary-known contribution. *)
let likelihood_verdict ~noise_pmf ~base ~prior ~truth observations =
  let n = Array.length noise_pmf in
  let p k = if k < 0 || k >= n then 1e-300 else Float.max 1e-300 noise_pmf.(k) in
  let log_lr =
    List.fold_left
      (fun acc m2 ->
        let if_talking = p (m2 - base - 1) in
        let if_not = p (m2 - base) in
        acc +. log (if_talking /. if_not))
      0. observations
  in
  let posterior = Bayes.update ~prior ~likelihood_ratio:(exp log_lr) in
  { rounds = List.length observations; log_lr; posterior; truth }

(* ------------------------------------------------------------------ *)
(* Model-level attack (fast; arbitrary round counts)                   *)
(* ------------------------------------------------------------------ *)

(* Simulate [rounds] rounds in which Alice and Bob either exchange every
   round ([talking]) or never do, with one honest server adding m2 noise
   Laplace(µ/2, b/2); run the optimal test. *)
let model_attack ?rng ~noise ~talking ~rounds ~prior () =
  let m2_noise = Mechanism.m2_noise noise in
  let observations =
    List.init rounds (fun _ ->
        (if talking then 1 else 0) + Laplace.truncated_sample ?rng m2_noise)
  in
  let max_k =
    5 + List.fold_left max 0 observations
    + int_of_float (m2_noise.Laplace.mu +. (20. *. m2_noise.Laplace.b))
  in
  likelihood_verdict ~noise_pmf:(pmf m2_noise ~max_k) ~base:0 ~prior
    ~truth:talking observations

(* The per-round log-likelihood-ratio is bounded by the per-round ε; the
   expected total is bounded by k·ε (and concentrates around the KL
   divergence, which is much smaller).  Exposed for tests. *)
let per_round_eps_bound (noise : Laplace.params) =
  (Mechanism.conversation noise).Mechanism.eps

(* ------------------------------------------------------------------ *)
(* Attack against the live implementation                              *)
(* ------------------------------------------------------------------ *)

(* Run the real chain with Alice, Bob and [idle_users] bystanders, all
   visible to the adversary.  The adversary reads the last server's
   histogram each round and runs the same test, knowing that the unknown
   noise is the sum over the mixing servers' contributions. *)
let network_attack ?(idle_users = 3) ?(n_servers = 3) ~noise ~talking ~rounds
    ~prior ~seed () =
  let open Vuvuzela in
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed seed |> with_n_servers n_servers
        |> with_noise noise
        |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
        |> with_noise_mode Vuvuzela_dp.Noise.Sampled)
  in
  let alice = Network.connect ~seed:"attack-alice" net in
  let bob = Network.connect ~seed:"attack-bob" net in
  for i = 1 to idle_users do
    ignore (Network.connect ~seed:(Printf.sprintf "attack-idle%d" i) net)
  done;
  if talking then begin
    Client.start_conversation alice ~peer_pk:(Client.public_key bob);
    Client.start_conversation bob ~peer_pk:(Client.public_key alice)
  end;
  let observations = ref [] in
  for _ = 1 to rounds do
    ignore (Network.run ~kind:Round.Conversation net);
    match Observation.observe_chain (Network.chain net) with
    | Some v -> observations := v.Observation.m2 :: !observations
    | None -> ()
  done;
  (* m2 noise per mixing server is Laplace(µ/2, b/2) realized as ⌈n2/2⌉
     pairs with n2 ~ Laplace(µ, b); (n_servers − 1) independent copies. *)
  let m2_noise = Mechanism.m2_noise noise in
  let per_server_max =
    5 + int_of_float (m2_noise.Laplace.mu +. (20. *. m2_noise.Laplace.b))
  in
  let noise_pmf =
    self_convolve (pmf m2_noise ~max_k:per_server_max) (n_servers - 1)
  in
  likelihood_verdict ~noise_pmf ~base:0 ~prior ~truth:talking
    (List.rev !observations)

(* ------------------------------------------------------------------ *)
(* Intersection attack (§4.2's passive variant)                        *)
(* ------------------------------------------------------------------ *)

(* Compare the mean m2 between rounds where Alice is online and rounds
   where the adversary knocked her offline.  Returns the estimated
   difference and its z-score; without noise the difference is exactly 1
   with zero variance, with Vuvuzela's noise the z-score shrinks like
   1/(b·√2/√k). *)
type intersection = { delta_estimate : float; z_score : float }

let intersection_attack ?rng ~noise ~talking ~rounds_each () =
  let m2_noise = Mechanism.m2_noise noise in
  let sample ~online =
    (if talking && online then 1. else 0.)
    +. float_of_int (Laplace.truncated_sample ?rng m2_noise)
  in
  let series online = List.init rounds_each (fun _ -> sample ~online) in
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let var l =
    let m = mean l in
    List.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. l
    /. float_of_int (List.length l - 1)
  in
  let on = series true and off = series false in
  let delta = mean on -. mean off in
  let se =
    sqrt ((var on +. var off) /. float_of_int rounds_each) +. 1e-12
  in
  { delta_estimate = delta; z_score = delta /. se }
