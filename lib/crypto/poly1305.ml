(* Poly1305 one-time authenticator (RFC 8439), following the 26-bit limb
   schedule of poly1305-donna-32.  Every intermediate fits a 63-bit native
   int: h limbs stay below 2^27 and the five-term products below 2^58. *)

let key_len = 32
let tag_len = 16
let limb_mask = 0x3ffffff

type t = {
  r : int array; (* 5 clamped 26-bit limbs of r *)
  pad : int array; (* 4 32-bit words of s *)
  h : int array; (* 5 accumulator limbs *)
  buf : bytes; (* partial block *)
  mutable buf_len : int;
}

let init key =
  if Bytes.length key <> key_len then invalid_arg "Poly1305: bad key length";
  let le32 = Bytes_util.le32 in
  {
    r =
      [|
        le32 key 0 land 0x3ffffff;
        (le32 key 3 lsr 2) land 0x3ffff03;
        (le32 key 6 lsr 4) land 0x3ffc0ff;
        (le32 key 9 lsr 6) land 0x3f03fff;
        (le32 key 12 lsr 8) land 0x00fffff;
      |];
    pad = [| le32 key 16; le32 key 20; le32 key 24; le32 key 28 |];
    h = Array.make 5 0;
    buf = Bytes.create 16;
    buf_len = 0;
  }

(* Initialize straight from the eight little-endian 32-bit words of the
   key, ignoring bits above 31 (the AEAD derives its one-time key as
   ChaCha20 block-0 keystream words, whose high bits are dirty by
   design — see Chacha20.block_words).  Equivalent to [init] on the
   serialized 32 bytes; the word-sliced clamping below is the byte-offset
   le32 reads of [init] rewritten on 32-bit word boundaries. *)
let init_from_words ~w0 ~w1 ~w2 ~w3 ~w4 ~w5 ~w6 ~w7 =
  let m = 0xffffffff in
  let w0 = w0 land m
  and w1 = w1 land m
  and w2 = w2 land m
  and w3 = w3 land m in
  {
    r =
      [|
        w0 land 0x3ffffff;
        ((w0 lsr 26) lor (w1 lsl 6)) land 0x3ffff03;
        ((w1 lsr 20) lor (w2 lsl 12)) land 0x3ffc0ff;
        ((w2 lsr 14) lor (w3 lsl 18)) land 0x3f03fff;
        (w3 lsr 8) land 0x00fffff;
      |];
    pad = [| w4 land m; w5 land m; w6 land m; w7 land m |];
    h = Array.make 5 0;
    buf = Bytes.create 16;
    buf_len = 0;
  }

(* Absorb one block given its five 26-bit limb increments (the message
   block plus the high bit, already sliced). *)
let absorb_limbs t m0 m1 m2 m3 m4 =
  let r0 = t.r.(0)
  and r1 = t.r.(1)
  and r2 = t.r.(2)
  and r3 = t.r.(3)
  and r4 = t.r.(4) in
  let s1 = r1 * 5
  and s2 = r2 * 5
  and s3 = r3 * 5
  and s4 = r4 * 5 in
  let h0 = t.h.(0) + m0 in
  let h1 = t.h.(1) + m1 in
  let h2 = t.h.(2) + m2 in
  let h3 = t.h.(3) + m3 in
  let h4 = t.h.(4) + m4 in
  let d0 = (h0 * r0) + (h1 * s4) + (h2 * s3) + (h3 * s2) + (h4 * s1) in
  let d1 = (h0 * r1) + (h1 * r0) + (h2 * s4) + (h3 * s3) + (h4 * s2) in
  let d2 = (h0 * r2) + (h1 * r1) + (h2 * r0) + (h3 * s4) + (h4 * s3) in
  let d3 = (h0 * r3) + (h1 * r2) + (h2 * r1) + (h3 * r0) + (h4 * s4) in
  let d4 = (h0 * r4) + (h1 * r3) + (h2 * r2) + (h3 * r1) + (h4 * r0) in
  let c = d0 lsr 26 in
  let h0 = d0 land limb_mask in
  let d1 = d1 + c in
  let c = d1 lsr 26 in
  let h1 = d1 land limb_mask in
  let d2 = d2 + c in
  let c = d2 lsr 26 in
  let h2 = d2 land limb_mask in
  let d3 = d3 + c in
  let c = d3 lsr 26 in
  let h3 = d3 land limb_mask in
  let d4 = d4 + c in
  let c = d4 lsr 26 in
  let h4 = d4 land limb_mask in
  let h0 = h0 + (c * 5) in
  let c = h0 lsr 26 in
  let h0 = h0 land limb_mask in
  let h1 = h1 + c in
  t.h.(0) <- h0;
  t.h.(1) <- h1;
  t.h.(2) <- h2;
  t.h.(3) <- h3;
  t.h.(4) <- h4

(* Absorb one 16-byte block at [off]; [hibit] is [1 lsl 24] for full
   blocks and [0] for the padded final partial block.  Unsafe loads:
   every caller ([feed_sub] and the buffered paths) range-checks before
   absorbing. *)
let absorb_block t m off hibit =
  let le32 = Bytes_util.unsafe_le32 in
  absorb_limbs t
    (le32 m off land limb_mask)
    ((le32 m (off + 3) lsr 2) land limb_mask)
    ((le32 m (off + 6) lsr 4) land limb_mask)
    ((le32 m (off + 9) lsr 6) land limb_mask)
    ((le32 m (off + 12) lsr 8) lor hibit)

(* The bulk path: [nblocks] full blocks at [off], with r, s and the h
   accumulator in locals for the whole run — the per-block cost is the
   25 multiplies, not t.r/t.h traffic.  Caller range-checks. *)
let absorb_blocks t m ~off ~nblocks =
  let r0 = t.r.(0)
  and r1 = t.r.(1)
  and r2 = t.r.(2)
  and r3 = t.r.(3)
  and r4 = t.r.(4) in
  let s1 = r1 * 5
  and s2 = r2 * 5
  and s3 = r3 * 5
  and s4 = r4 * 5 in
  let le32 = Bytes_util.unsafe_le32 in
  let rec go h0 h1 h2 h3 h4 off n =
    if n = 0 then begin
      t.h.(0) <- h0;
      t.h.(1) <- h1;
      t.h.(2) <- h2;
      t.h.(3) <- h3;
      t.h.(4) <- h4
    end
    else begin
      let h0 = h0 + (le32 m off land limb_mask) in
      let h1 = h1 + ((le32 m (off + 3) lsr 2) land limb_mask) in
      let h2 = h2 + ((le32 m (off + 6) lsr 4) land limb_mask) in
      let h3 = h3 + ((le32 m (off + 9) lsr 6) land limb_mask) in
      let h4 = h4 + ((le32 m (off + 12) lsr 8) lor (1 lsl 24)) in
      let d0 = (h0 * r0) + (h1 * s4) + (h2 * s3) + (h3 * s2) + (h4 * s1) in
      let d1 = (h0 * r1) + (h1 * r0) + (h2 * s4) + (h3 * s3) + (h4 * s2) in
      let d2 = (h0 * r2) + (h1 * r1) + (h2 * r0) + (h3 * s4) + (h4 * s3) in
      let d3 = (h0 * r3) + (h1 * r2) + (h2 * r1) + (h3 * r0) + (h4 * s4) in
      let d4 = (h0 * r4) + (h1 * r3) + (h2 * r2) + (h3 * r1) + (h4 * r0) in
      let c = d0 lsr 26 in
      let h0 = d0 land limb_mask in
      let d1 = d1 + c in
      let c = d1 lsr 26 in
      let h1 = d1 land limb_mask in
      let d2 = d2 + c in
      let c = d2 lsr 26 in
      let h2 = d2 land limb_mask in
      let d3 = d3 + c in
      let c = d3 lsr 26 in
      let h3 = d3 land limb_mask in
      let d4 = d4 + c in
      let c = d4 lsr 26 in
      let h4 = d4 land limb_mask in
      let h0 = h0 + (c * 5) in
      let c = h0 lsr 26 in
      let h0 = h0 land limb_mask in
      let h1 = h1 + c in
      go h0 h1 h2 h3 h4 (off + 16) (n - 1)
    end
  in
  go t.h.(0) t.h.(1) t.h.(2) t.h.(3) t.h.(4) off nblocks

let feed_sub t data ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Poly1305.feed_sub: range out of bounds";
  let pos = ref off in
  let fin = off + len in
  if t.buf_len > 0 then begin
    let want = min (16 - t.buf_len) len in
    Bytes.blit data off t.buf t.buf_len want;
    t.buf_len <- t.buf_len + want;
    pos := off + want;
    if t.buf_len = 16 then begin
      absorb_block t t.buf 0 (1 lsl 24);
      t.buf_len <- 0
    end
  end;
  let nblocks = (fin - !pos) lsr 4 in
  if nblocks > 0 then begin
    absorb_blocks t data ~off:!pos ~nblocks;
    pos := !pos + (nblocks lsl 4)
  end;
  if !pos < fin then begin
    Bytes.blit data !pos t.buf 0 (fin - !pos);
    t.buf_len <- fin - !pos
  end

let feed t data = feed_sub t data ~off:0 ~len:(Bytes.length data)

(* Absorb the AEAD length block — le64(aad_len) ‖ le64(ct_len) — without
   materializing its 16 bytes.  Callers (Aead) are block-aligned here (it
   follows a pad16), so the buffered path is only a cold fallback. *)
let absorb_lens t ~aad_len ~ct_len =
  if t.buf_len <> 0 then begin
    let lens = Bytes.create 16 in
    Bytes_util.store_le64 lens 0 aad_len;
    Bytes_util.store_le64 lens 8 ct_len;
    feed t lens
  end
  else begin
    let m = 0xffffffff in
    let w0 = aad_len land m
    and w1 = (aad_len lsr 32) land m
    and w2 = ct_len land m
    and w3 = (ct_len lsr 32) land m in
    absorb_limbs t (w0 land limb_mask)
      (((w0 lsr 26) lor (w1 lsl 6)) land limb_mask)
      (((w1 lsr 20) lor (w2 lsl 12)) land limb_mask)
      (((w2 lsr 14) lor (w3 lsl 18)) land limb_mask)
      ((w3 lsr 8) lor (1 lsl 24))
  end

let finish_into t dst ~off =
  if t.buf_len > 0 then begin
    (* Pad the final partial block with 0x01 then zeros; hibit = 0. *)
    let block = Bytes.make 16 '\000' in
    Bytes.blit t.buf 0 block 0 t.buf_len;
    Bytes.set block t.buf_len '\x01';
    absorb_block t block 0 0
  end;
  (* Fully carry h. *)
  let h0 = ref t.h.(0)
  and h1 = ref t.h.(1)
  and h2 = ref t.h.(2)
  and h3 = ref t.h.(3)
  and h4 = ref t.h.(4) in
  let c = ref (!h1 lsr 26) in
  h1 := !h1 land limb_mask;
  h2 := !h2 + !c;
  c := !h2 lsr 26;
  h2 := !h2 land limb_mask;
  h3 := !h3 + !c;
  c := !h3 lsr 26;
  h3 := !h3 land limb_mask;
  h4 := !h4 + !c;
  c := !h4 lsr 26;
  h4 := !h4 land limb_mask;
  h0 := !h0 + (!c * 5);
  c := !h0 lsr 26;
  h0 := !h0 land limb_mask;
  h1 := !h1 + !c;
  (* Compute h + (-p) = h - (2^130 - 5). *)
  let g0 = !h0 + 5 in
  let c = g0 lsr 26 in
  let g0 = g0 land limb_mask in
  let g1 = !h1 + c in
  let c = g1 lsr 26 in
  let g1 = g1 land limb_mask in
  let g2 = !h2 + c in
  let c = g2 lsr 26 in
  let g2 = g2 land limb_mask in
  let g3 = !h3 + c in
  let c = g3 lsr 26 in
  let g3 = g3 land limb_mask in
  let g4 = !h4 + c - (1 lsl 26) in
  (* Branchless select: g if h >= p (g4 non-negative), else h. *)
  let mask = lnot (g4 asr 62) in
  let nmask = lnot mask in
  let h0 = !h0 land nmask lor (g0 land mask) in
  let h1 = !h1 land nmask lor (g1 land mask) in
  let h2 = !h2 land nmask lor (g2 land mask) in
  let h3 = !h3 land nmask lor (g3 land mask) in
  let h4 = !h4 land nmask lor (g4 land mask) in
  (* Repack into 32-bit words and add the pad with carry. *)
  let w0 = (h0 lor (h1 lsl 26)) land 0xffffffff in
  let w1 = ((h1 lsr 6) lor (h2 lsl 20)) land 0xffffffff in
  let w2 = ((h2 lsr 12) lor (h3 lsl 14)) land 0xffffffff in
  let w3 = ((h3 lsr 18) lor (h4 lsl 8)) land 0xffffffff in
  let f = w0 + t.pad.(0) in
  let o0 = f land 0xffffffff in
  let f = w1 + t.pad.(1) + (f lsr 32) in
  let o1 = f land 0xffffffff in
  let f = w2 + t.pad.(2) + (f lsr 32) in
  let o2 = f land 0xffffffff in
  let f = w3 + t.pad.(3) + (f lsr 32) in
  let o3 = f land 0xffffffff in
  Bytes_util.store_le32 dst off o0;
  Bytes_util.store_le32 dst (off + 4) o1;
  Bytes_util.store_le32 dst (off + 8) o2;
  Bytes_util.store_le32 dst (off + 12) o3

let finish t =
  let out = Bytes.create 16 in
  finish_into t out ~off:0;
  out

let mac ~key data =
  let t = init key in
  feed t data;
  finish t

let verify ~key ~tag data = Bytes_util.ct_equal tag (mac ~key data)
