(* Reference ChaCha20 (RFC 8439): the seed implementation, retained
   verbatim as the differential oracle for the optimized {!Chacha20}.
   Do not optimize this module — its value is that it stays simple and
   obviously correct so test/prop/prop_chacha.ml can compare the fast
   path against it.  32-bit words are native ints masked to 32 bits. *)

let mask32 = 0xffffffff
let key_len = 32
let nonce_len = 12

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* The "expand 32-byte k" sigma constants. *)
let c0 = 0x61707865
let c1 = 0x3320646e
let c2 = 0x79622d32
let c3 = 0x6b206574

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let init_state ~key ~nonce ~counter =
  if Bytes.length key <> key_len then invalid_arg "Chacha20: bad key length";
  if Bytes.length nonce <> nonce_len then
    invalid_arg "Chacha20: bad nonce length";
  let st = Array.make 16 0 in
  st.(0) <- c0;
  st.(1) <- c1;
  st.(2) <- c2;
  st.(3) <- c3;
  for i = 0 to 7 do
    st.(4 + i) <- Bytes_util.le32 key (4 * i)
  done;
  st.(12) <- counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- Bytes_util.le32 nonce (4 * i)
  done;
  st

(* One 64-byte keystream block into [out] at offset [off]. *)
let block_into st out off =
  let w = Array.copy st in
  for _ = 1 to 10 do
    quarter_round w 0 4 8 12;
    quarter_round w 1 5 9 13;
    quarter_round w 2 6 10 14;
    quarter_round w 3 7 11 15;
    quarter_round w 0 5 10 15;
    quarter_round w 1 6 11 12;
    quarter_round w 2 7 8 13;
    quarter_round w 3 4 9 14
  done;
  for i = 0 to 15 do
    Bytes_util.store_le32 out (off + (4 * i)) ((w.(i) + st.(i)) land mask32)
  done

let block ~key ~nonce ~counter =
  let st = init_state ~key ~nonce ~counter in
  let out = Bytes.create 64 in
  block_into st out 0;
  out

let encrypt_into ~key ~nonce ~counter ~src ~dst =
  let len = Bytes.length src in
  if Bytes.length dst < len then invalid_arg "Chacha20: dst too short";
  let st = init_state ~key ~nonce ~counter in
  let ks = Bytes.create 64 in
  let pos = ref 0 in
  while !pos < len do
    block_into st ks 0;
    st.(12) <- (st.(12) + 1) land mask32;
    let n = min 64 (len - !pos) in
    for i = 0 to n - 1 do
      Bytes_util.set_u8 dst (!pos + i)
        (Bytes_util.get_u8 src (!pos + i) lxor Bytes_util.get_u8 ks i)
    done;
    pos := !pos + n
  done

let encrypt ?(counter = 1) ~key ~nonce src =
  let dst = Bytes.create (Bytes.length src) in
  encrypt_into ~key ~nonce ~counter ~src ~dst;
  dst

let decrypt = encrypt

(* Raw keystream, used by the DRBG. *)
let keystream ~key ~nonce ~counter len =
  let zero = Bytes.make len '\000' in
  let dst = Bytes.create len in
  encrypt_into ~key ~nonce ~counter ~src:zero ~dst;
  dst
