(* Ed25519 signatures (RFC 8032), following TweetNaCl's structure over
   the shared Fe25519 field arithmetic.

   Vuvuzela's core protocols need no signatures, but its PKI story does
   (§2.3 assumes signature schemes; §9 "the caller can supply a
   certificate along with the invitation") — see {!Vuvuzela.Certificate}.

   Points are held in extended coordinates (X, Y, Z, T) with
   x = X/Z, y = Y/Z, xy = T/Z. *)

let public_key_len = 32
let secret_key_len = 32
let signature_len = 64

type point = Fe25519.t array (* 4 coordinates *)

(* Curve constants, given as their canonical little-endian encodings so
   they are independent of Fe25519's limb representation: d, 2d, the base
   point (X, Y), and I = sqrt(-1).  These bytes are exactly the packed
   form of TweetNaCl's limb tables (the seed implementation's constants);
   the property harness re-checks d and I algebraically. *)
let fe_of_hex h = Fe25519.unpack (Bytes_util.of_hex h)

let const_d =
  fe_of_hex "a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352"

let const_d2 =
  fe_of_hex "59f1b226949bd6eb56b183829a14e00030d1f3eef2808e19e7fcdf56dcd90624"

let const_x =
  fe_of_hex "1ad5258f602d56c9b2a7259560c72c695cdcd6fd31e2a4c0fe536ecdd3366921"

let const_y =
  fe_of_hex "5866666666666666666666666666666666666666666666666666666666666666"

let const_i =
  fe_of_hex "b0a00e4a271beec478e42fad0618432fa7d7fb3d99004d2b0bdfc14f8024832b"

(* The group order L = 2^252 + 27742317777372353535851937790883648493,
   as 32 little-endian bytes. *)
let order_l =
  [|
    0xed; 0xd3; 0xf5; 0x5c; 0x1a; 0x63; 0x12; 0x58; 0xd6; 0x9c; 0xf7;
    0xa2; 0xde; 0xf9; 0xde; 0x14; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0;
    0; 0; 0x10;
  |]

(* Extended-coordinate point addition: p <- p + q. *)
let point_add (p : point) (q : point) =
  let open Fe25519 in
  let a = create ()
  and b = create ()
  and c = create ()
  and d = create ()
  and t = create ()
  and e = create ()
  and f = create ()
  and g = create ()
  and h = create () in
  sub a p.(1) p.(0);
  sub t q.(1) q.(0);
  mul a a t;
  add b p.(0) p.(1);
  add t q.(0) q.(1);
  mul b b t;
  mul c p.(3) q.(3);
  mul c c const_d2;
  mul d p.(2) q.(2);
  add d d d;
  sub e b a;
  sub f d c;
  add g d c;
  add h b a;
  mul p.(0) e f;
  mul p.(1) h g;
  mul p.(2) g f;
  mul p.(3) e h

let point_cswap (p : point) (q : point) b =
  for i = 0 to 3 do
    Fe25519.cswap p.(i) q.(i) b
  done

(* Compress: 32-byte y with the sign of x in the top bit. *)
let point_pack (p : point) =
  let open Fe25519 in
  let zi = create () and tx = create () and ty = create () in
  invert zi p.(2);
  mul tx p.(0) zi;
  mul ty p.(1) zi;
  let r = pack ty in
  Bytes_util.set_u8 r 31 (Bytes_util.get_u8 r 31 lxor (parity tx lsl 7));
  r

let identity_point () =
  [| Fe25519.zero (); Fe25519.one (); Fe25519.one (); Fe25519.zero () |]

(* Constant-time double-and-add ladder over the 256-bit scalar encoding
   (TweetNaCl's cswap ladder). *)
let point_scalarmult (q : point) (s : bytes) : point =
  let p = identity_point () in
  let q = Array.map Fe25519.copy q in
  for i = 255 downto 0 do
    let b = (Bytes_util.get_u8 s (i lsr 3) lsr (i land 7)) land 1 in
    point_cswap p q b;
    point_add q p;
    point_add p p;
    point_cswap p q b
  done;
  p

let base_point () =
  let t = Fe25519.create () in
  Fe25519.mul t const_x const_y;
  [| Fe25519.copy const_x; Fe25519.copy const_y; Fe25519.one (); t |]

let point_scalarmult_base s = point_scalarmult (base_point ()) s

(* Decompress a public key / R value; fails on non-curve points.
   Returns the point with x NEGATED (TweetNaCl's unpackneg), which is
   what verification wants: it computes R' = sB + h·(-A). *)
let point_unpack_neg (p : bytes) : point option =
  let open Fe25519 in
  let r = [| create (); unpack p; one (); create () |] in
  let num = create ()
  and den = create ()
  and t = create ()
  and chk = create ()
  and den2 = create ()
  and den4 = create ()
  and den6 = create () in
  square num r.(1);
  mul den num const_d;
  sub num num r.(2);
  add den r.(2) den;
  square den2 den;
  square den4 den2;
  mul den6 den4 den2;
  mul t den6 num;
  mul t t den;
  pow2523 t t;
  mul t t num;
  mul t t den;
  mul t t den;
  mul r.(0) t den;
  square chk r.(0);
  mul chk chk den;
  if not (equal chk num) then mul r.(0) r.(0) const_i;
  square chk r.(0);
  mul chk chk den;
  if not (equal chk num) then None
  else begin
    if parity r.(0) = Bytes_util.get_u8 p 31 lsr 7 then
      sub r.(0) (zero ()) r.(0);
    mul r.(3) r.(0) r.(1);
    Some r
  end

(* Reduce a 64-byte (or zero-padded) little-endian value modulo L
   (TweetNaCl's modL). *)
let mod_l (x : int array) =
  (* x has 64 entries; result written into the first 32 and returned as
     bytes. *)
  let carry = ref 0 in
  for i = 63 downto 32 do
    carry := 0;
    for j = i - 32 to i - 13 do
      x.(j) <- x.(j) + !carry - (16 * x.(i) * order_l.(j - (i - 32)));
      carry := (x.(j) + 128) asr 8;
      x.(j) <- x.(j) - (!carry lsl 8)
    done;
    x.(i - 12) <- x.(i - 12) + !carry;
    x.(i) <- 0
  done;
  carry := 0;
  for j = 0 to 31 do
    x.(j) <- x.(j) + !carry - ((x.(31) asr 4) * order_l.(j));
    carry := x.(j) asr 8;
    x.(j) <- x.(j) land 255
  done;
  for j = 0 to 31 do
    x.(j) <- x.(j) - (!carry * order_l.(j))
  done;
  let r = Bytes.create 32 in
  for i = 0 to 31 do
    if i < 31 then x.(i + 1) <- x.(i + 1) + (x.(i) asr 8);
    Bytes_util.set_u8 r i (x.(i) land 255)
  done;
  r

let reduce_64 (h : bytes) =
  let x = Array.init 64 (fun i -> Bytes_util.get_u8 h i) in
  mod_l x

(* Expand a 32-byte seed per RFC 8032: the clamped scalar and the prefix
   used to derive deterministic nonces. *)
let expand_secret seed =
  let d = Sha512.digest seed in
  let scalar = Bytes.sub d 0 32 in
  Bytes_util.set_u8 scalar 0 (Bytes_util.get_u8 scalar 0 land 248);
  Bytes_util.set_u8 scalar 31
    ((Bytes_util.get_u8 scalar 31 land 127) lor 64);
  (scalar, Bytes.sub d 32 32)

let public_key seed =
  if Bytes.length seed <> secret_key_len then
    invalid_arg "Ed25519.public_key: bad seed length";
  let scalar, _ = expand_secret seed in
  point_pack (point_scalarmult_base scalar)

let keypair ?rng () =
  let seed = Drbg.bytes ?rng 32 in
  (seed, public_key seed)

let sign ~secret:seed message =
  if Bytes.length seed <> secret_key_len then
    invalid_arg "Ed25519.sign: bad seed length";
  let scalar, prefix = expand_secret seed in
  let pk = point_pack (point_scalarmult_base scalar) in
  (* r = H(prefix || M) mod L;  R = rB. *)
  let r = reduce_64 (Sha512.digest_list [ prefix; message ]) in
  let r_enc = point_pack (point_scalarmult_base r) in
  (* h = H(R || A || M) mod L;  S = (r + h·a) mod L. *)
  let h = reduce_64 (Sha512.digest_list [ r_enc; pk; message ]) in
  let x = Array.make 64 0 in
  for i = 0 to 31 do
    x.(i) <- Bytes_util.get_u8 r i
  done;
  for i = 0 to 31 do
    for j = 0 to 31 do
      x.(i + j) <-
        x.(i + j) + (Bytes_util.get_u8 h i * Bytes_util.get_u8 scalar j)
    done
  done;
  let s = mod_l x in
  Bytes.cat r_enc s

let verify ~public:pk ~signature message =
  if
    Bytes.length pk <> public_key_len
    || Bytes.length signature <> signature_len
  then false
  else begin
    match point_unpack_neg pk with
    | None -> false
    | Some neg_a ->
        let r_enc = Bytes.sub signature 0 32 in
        let s = Bytes.sub signature 32 32 in
        (* Reject non-canonical s (s >= L): required by RFC 8032 and
           prevents signature malleability. *)
        let rec ge i =
          if i < 0 then true
          else begin
            let sb = Bytes_util.get_u8 s i and lb = order_l.(i) in
            if sb > lb then true else if sb < lb then false else ge (i - 1)
          end
        in
        if ge 31 then false
        else begin
          let h = reduce_64 (Sha512.digest_list [ r_enc; pk; message ]) in
          (* R' = sB + h·(-A); valid iff R' = R. *)
          let p = point_scalarmult neg_a h in
          let q = point_scalarmult_base s in
          point_add p q;
          Bytes_util.ct_equal (point_pack p) r_enc
        end
  end
