(* ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).  This is Vuvuzela's
   indistinguishable symmetric encryption: every onion layer and message
   payload is sealed with it, so all ciphertexts of equal plaintext length
   are equal length and uniformly distributed.

   The hot path is allocation-lean: [seal_into]/[open_into] encrypt
   between caller buffers and feed Poly1305 incrementally over
   aad / ciphertext / zero padding / lengths, so no [mac_data] buffer,
   tag, or ciphertext copy is materialized.  [seal]/[open_] are thin
   wrappers and produce bit-identical wire bytes to the seed
   implementation. *)

let key_len = 32
let nonce_len = 12
let tag_len = 16

(* Shared all-zero block for the two pad16 gaps in the MAC stream. *)
let zeros16 = Bytes.make 16 '\000'

(* Poly1305 key: the first 32 bytes of the counter-0 keystream block,
   drawn directly — no 64-byte block to allocate and slice.  (The hot
   paths below never materialize even these 32 bytes; this stays for the
   RFC §2.6 vector tables and external callers.) *)
let poly_key ~key ~nonce =
  let pk = Bytes.create 32 in
  Chacha20.keystream_into ~key ~nonce ~counter:0 pk ~off:0 ~len:32;
  pk

(* One state setup for both halves of the AEAD: the ChaCha20 state is
   initialized once, block 0's keystream words seed Poly1305 directly
   (word-level, no 32-byte key round-trip), and the same state array is
   handed back for the cipher stream at counter 1. *)
let cipher_and_mac ~key ~nonce =
  let st = Chacha20.init_state ~key ~nonce ~counter:0 in
  let ws = Array.make 16 0 in
  Chacha20.block_words st 0 ws;
  let poly =
    Poly1305.init_from_words ~w0:ws.(0) ~w1:ws.(1) ~w2:ws.(2) ~w3:ws.(3)
      ~w4:ws.(4) ~w5:ws.(5) ~w6:ws.(6) ~w7:ws.(7)
  in
  (st, poly)

(* Tag over aad ‖ pad16 ‖ ct ‖ pad16 ‖ le64 lens, fed incrementally,
   written at [tag]/[tag_off]. *)
let mac_into poly ~aad ~ct ~ct_off ~ct_len ~tag ~tag_off =
  let aad_len = Bytes.length aad in
  Poly1305.feed poly aad;
  (match aad_len land 15 with
  | 0 -> ()
  | r -> Poly1305.feed_sub poly zeros16 ~off:0 ~len:(16 - r));
  Poly1305.feed_sub poly ct ~off:ct_off ~len:ct_len;
  (match ct_len land 15 with
  | 0 -> ()
  | r -> Poly1305.feed_sub poly zeros16 ~off:0 ~len:(16 - r));
  Poly1305.absorb_lens poly ~aad_len ~ct_len;
  Poly1305.finish_into poly tag ~off:tag_off

let check_range what b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg ("Aead: " ^ what ^ " range out of bounds")

(* In-place operation (same buffer, same offset) is supported; the same
   buffer with distinct overlapping ranges is not — the 64-byte-block XOR
   would read bytes it already wrote. *)
let reject_overlap ~fn src src_off src_len dst dst_off dst_len =
  if
    src == dst && src_off <> dst_off
    && src_off < dst_off + dst_len
    && dst_off < src_off + src_len
  then invalid_arg ("Aead." ^ fn ^ ": overlapping src/dst ranges")

let seal_into ~key ~nonce ?(aad = Bytes.empty) ~src ~src_off ~len ~dst
    ~dst_off () =
  check_range "src" src src_off len;
  check_range "dst" dst dst_off (len + tag_len);
  reject_overlap ~fn:"seal_into" src src_off len dst dst_off (len + tag_len);
  let st, poly = cipher_and_mac ~key ~nonce in
  Chacha20.xor_with_state st ~counter:1 ~src ~src_off ~dst ~dst_off ~len;
  mac_into poly ~aad ~ct:dst ~ct_off:dst_off ~ct_len:len ~tag:dst
    ~tag_off:(dst_off + len)

(* Verify-then-decrypt: the tag is checked over the ciphertext before a
   single byte is decrypted, so [dst] is untouched on failure. *)
let open_into ~key ~nonce ?(aad = Bytes.empty) ~src ~src_off ~len ~dst
    ~dst_off () =
  check_range "src" src src_off len;
  if len < tag_len then false
  else begin
    let ct_len = len - tag_len in
    check_range "dst" dst dst_off ct_len;
    reject_overlap ~fn:"open_into" src src_off len dst dst_off ct_len;
    let st, poly = cipher_and_mac ~key ~nonce in
    let tag = Bytes.create tag_len in
    mac_into poly ~aad ~ct:src ~ct_off:src_off ~ct_len ~tag ~tag_off:0;
    if
      Bytes_util.ct_equal_sub tag ~a_off:0 src
        ~b_off:(src_off + ct_len) ~len:tag_len
    then begin
      Chacha20.xor_with_state st ~counter:1 ~src ~src_off ~dst ~dst_off
        ~len:ct_len;
      true
    end
    else false
  end

let seal ~key ~nonce ?(aad = Bytes.empty) plaintext =
  let len = Bytes.length plaintext in
  let out = Bytes.create (len + tag_len) in
  seal_into ~key ~nonce ~aad ~src:plaintext ~src_off:0 ~len ~dst:out
    ~dst_off:0 ();
  out

let open_ ~key ~nonce ?(aad = Bytes.empty) sealed =
  let n = Bytes.length sealed in
  if n < tag_len then None
  else begin
    let pt = Bytes.create (n - tag_len) in
    if
      open_into ~key ~nonce ~aad ~src:sealed ~src_off:0 ~len:n ~dst:pt
        ~dst_off:0 ()
    then Some pt
    else None
  end

(* Vuvuzela nonces: each round and onion layer needs a distinct nonce under
   the same derived key.  We build a 12-byte nonce from a 32-bit domain tag
   and a 64-bit counter (the round number). *)
let nonce_of ~domain ~counter =
  let n = Bytes.create nonce_len in
  Bytes_util.store_le32 n 0 domain;
  Bytes_util.store_le64 n 4 counter;
  n
