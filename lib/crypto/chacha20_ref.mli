(** Reference ChaCha20 (RFC 8439): the seed implementation kept verbatim
    as the differential oracle for the optimized {!Chacha20}. *)

val key_len : int
(** 32. *)

val nonce_len : int
(** 12. *)

val block : key:bytes -> nonce:bytes -> counter:int -> bytes
(** One 64-byte keystream block (exposed for test vectors). *)

val encrypt : ?counter:int -> key:bytes -> nonce:bytes -> bytes -> bytes
(** Encrypt (= decrypt) with initial block counter [counter]
    (default 1, per the RFC's AEAD usage). *)

val decrypt : ?counter:int -> key:bytes -> nonce:bytes -> bytes -> bytes

val keystream : key:bytes -> nonce:bytes -> counter:int -> int -> bytes
(** [keystream ~key ~nonce ~counter len] is [len] raw keystream bytes. *)
