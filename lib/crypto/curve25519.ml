(* X25519 scalar multiplication (RFC 7748) over the shared Fe25519 field
   arithmetic (Montgomery ladder, constant sequence of field operations
   per scalar bit).

   This is the paper's dominant cost: every onion layer wrap/unwrap is one
   scalar multiplication (§8.2, "each 36-core machine can perform about
   340,000 Curve25519 Diffie-Hellman operations per second").  The field
   is the 51-bit-limb Fe25519; the seed ladder is retained verbatim in
   Curve25519_ref as the differential-testing oracle.

   Two multiplications per ladder step involve a constant: x1 (the input
   u-coordinate) and (A-2)/4 = 121665.  The 121665 step always uses the
   small-constant path; scalarmult_base additionally specialises the x1
   step, since the base point's u-coordinate is just 9 — the fixed-base
   path every client hits once per round for its ephemeral keys. *)

let key_len = 32
let scalar_len = 32

let clamp scalar =
  let z = Bytes.copy scalar in
  Bytes_util.set_u8 z 0 (Bytes_util.get_u8 z 0 land 248);
  Bytes_util.set_u8 z 31 ((Bytes_util.get_u8 z 31 land 127) lor 64);
  z

(* The ladder proper.  [x] seeds the second ladder point; [mul_x1]
   multiplies by the input u-coordinate ([mul] by the unpacked point in
   general, [mul_small] by 9 on the fixed-base path). *)
let ladder z (x : Fe25519.t) (mul_x1 : Fe25519.t -> Fe25519.t -> unit) =
  let open Fe25519 in
  let a = create ()
  and b = copy x
  and c = create ()
  and d = create ()
  and e = create ()
  and f = create () in
  a.(0) <- 1;
  d.(0) <- 1;
  for i = 254 downto 0 do
    let r = (Bytes_util.get_u8 z (i lsr 3) lsr (i land 7)) land 1 in
    cswap a b r;
    cswap c d r;
    add e a c;
    sub a a c;
    add c b d;
    sub b b d;
    square d e;
    square f a;
    mul a c a;
    mul c b e;
    add e a c;
    sub a a c;
    square b a;
    sub c d f;
    mul_small a c 121665;
    add a a d;
    mul c c a;
    mul a d f;
    mul_x1 d b;
    square b e;
    cswap a b r;
    cswap c d r
  done;
  let inv_c = create () in
  invert inv_c c;
  let out = create () in
  mul out a inv_c;
  pack out

let scalarmult ~scalar ~point =
  if Bytes.length scalar <> scalar_len then
    invalid_arg "Curve25519: bad scalar length";
  if Bytes.length point <> key_len then
    invalid_arg "Curve25519: bad point length";
  let z = clamp scalar in
  let x = Fe25519.unpack point in
  ladder z x (fun o b -> Fe25519.mul o b x)

let base_point =
  let b = Bytes.make 32 '\000' in
  Bytes.set b 0 '\x09';
  b

let scalarmult_base scalar =
  if Bytes.length scalar <> scalar_len then
    invalid_arg "Curve25519: bad scalar length";
  let z = clamp scalar in
  let x = Fe25519.create () in
  x.(0) <- 9;
  ladder z x (fun o b -> Fe25519.mul_small o b 9)

(* Diffie-Hellman: the raw shared point is passed through HKDF before use
   as a symmetric key (see Box), matching best practice. *)
let shared ~secret ~public = scalarmult ~scalar:secret ~point:public
