(** The seed X25519 ladder over {!Fe25519_ref}, retained as the
    differential-testing oracle for {!Curve25519}.  Used only by
    [test/prop/] and the crypto benchmark — never on a production path. *)

val scalarmult : scalar:bytes -> point:bytes -> bytes
(** X25519(scalar, point), exactly as the seed implementation computed
    it (the scalar is clamped internally). *)

val base_point : bytes
(** The u-coordinate 9. *)

val scalarmult_base : bytes -> bytes
(** Public key from a 32-byte secret. *)
