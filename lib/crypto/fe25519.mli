(** Field arithmetic modulo [2^255 - 19] on 5×51-bit limbs in native
    63-bit ints (curve25519-donna's radix-2^51 representation, with
    mul/square working on radix-2^25.5 half-limbs because a 51×51-bit
    product overflows a native int).  Shared by {!Curve25519} and
    {!Ed25519}; differentially tested against the retained seed
    implementation {!Fe25519_ref} in [test/prop/].

    Operations write their result into the first argument; aliasing
    between output and inputs is allowed everywhere.

    Carry discipline: [add] and [sub] are lazy (no carry propagation);
    [mul], [square] and [mul_small] accept such lazy inputs and return
    carried values (limbs < 2^51 + 2^15).  [sub]'s second argument must
    be carried.  At most one lazy [add]/[sub] may be stacked before the
    value re-enters a multiplication — the op sequences in the ladder
    and the Edwards formulas all satisfy this. *)

type t = int array

val create : unit -> t

val of_limbs : int array -> t
(** From 5 radix-2^51 limbs. *)

val copy : t -> t
val blit : src:t -> dst:t -> unit
val zero : unit -> t
val one : unit -> t

val carry : t -> unit
(** One full reducing pass; iterate to fully reduce. *)

val cswap : t -> t -> int -> unit
(** Constant-time swap when the selector bit is 1. *)

val pack : t -> bytes
(** Canonical 32-byte little-endian encoding (fully reduced). *)

val unpack : bytes -> t
(** Masks the top bit, per both RFC 7748 and RFC 8032. *)

val add : t -> t -> t -> unit
val sub : t -> t -> t -> unit
val mul : t -> t -> t -> unit
val square : t -> t -> unit

val mul_small : t -> t -> int -> unit
(** [mul_small o a c] is [o <- a * c] for a small constant
    [0 <= c < 2^17] (used for 121665 and the base point's u = 9). *)

val invert : t -> t -> unit
(** [a^(p-2)] by Fermat. *)

val pow2523 : t -> t -> unit
(** [a^((p-5)/8)], the Edwards decompression square-root helper. *)

val parity : t -> int
val equal : t -> t -> bool
