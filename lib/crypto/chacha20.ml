(* ChaCha20 stream cipher (RFC 8439), rewritten for throughput: the
   16-word state lives in unboxed native-int locals, the ten double-rounds
   are fully unrolled (the [block_words] body below is machine-generated
   from the RFC quarter-round schedule), and keystream is combined with
   the buffer eight bytes at a time through the word helpers in
   {!Bytes_util}.  The seed implementation survives verbatim as
   {!Chacha20_ref} and is the differential oracle for this module
   (test/prop/prop_chacha.ml); wire bytes are bit-identical by
   construction and by pinned transcript digests. *)

let mask32 = 0xffffffff
let key_len = 32
let nonce_len = 12

(* The "expand 32-byte k" sigma constants. *)
let c0 = 0x61707865
let c1 = 0x3320646e
let c2 = 0x79622d32
let c3 = 0x6b206574

let init_state ~key ~nonce ~counter =
  if Bytes.length key <> key_len then invalid_arg "Chacha20: bad key length";
  if Bytes.length nonce <> nonce_len then
    invalid_arg "Chacha20: bad nonce length";
  let st = Array.make 16 0 in
  st.(0) <- c0;
  st.(1) <- c1;
  st.(2) <- c2;
  st.(3) <- c3;
  for i = 0 to 7 do
    st.(4 + i) <- Bytes_util.le32 key (4 * i)
  done;
  st.(12) <- counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- Bytes_util.le32 nonce (4 * i)
  done;
  st

(* One block of keystream words for state [st] at block counter [ctr],
   written into [ws].(0..15).  [st].(12) is ignored in favour of [ctr] so
   the multi-block loops never write the state array back.

   Machine-generated from the RFC 8439 quarter-round schedule, with two
   codegen-driven twists (the hot loop is fetch-bound, so instruction
   bytes matter as much as count):

   - Rotations are written [((x land lo_mask) lsl k) lor ((x lsr (32-k))
     land hi_mask)] with sub-32-bit masks.  Both masks fit an x86 imm32
     even after OCaml's tag bit (a [land 0xffffffff] needs a 10-byte
     movabs per occurrence), and they make the rotation insensitive to
     garbage above bit 31, so its output is exactly rot32(x land 2^32-1).

   - Additions are therefore left unmasked: a quarter-round's xor-rotate
     steps absorb dirty high bits, and only the add-accumulating words
     (x0..x3, x8..x11) are clamped back to 32 bits twice per block to
     stay far below the 63-bit native-int range.  The final state adds
     stay dirty too — every consumer of [ws] stores through 16-bit
     primitives that truncate in hardware ({!Bytes_util}).

   The tagged values never exceed 2^49, and the serialized keystream is
   bit-identical to {!Chacha20_ref} (gated by test/prop/prop_chacha.ml). *)
let block_words st ctr ws =
  let x0 = Array.unsafe_get st 0 in
  let x1 = Array.unsafe_get st 1 in
  let x2 = Array.unsafe_get st 2 in
  let x3 = Array.unsafe_get st 3 in
  let x4 = Array.unsafe_get st 4 in
  let x5 = Array.unsafe_get st 5 in
  let x6 = Array.unsafe_get st 6 in
  let x7 = Array.unsafe_get st 7 in
  let x8 = Array.unsafe_get st 8 in
  let x9 = Array.unsafe_get st 9 in
  let x10 = Array.unsafe_get st 10 in
  let x11 = Array.unsafe_get st 11 in
  let x12 = ctr in
  let x13 = Array.unsafe_get st 13 in
  let x14 = Array.unsafe_get st 14 in
  let x15 = Array.unsafe_get st 15 in
  (* double round 1 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* double round 2 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* double round 3 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* double round 4 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* re-mask the add-accumulating words: the a/c columns gain at most
     four dirty high bits per double round, so clamping them here keeps
     every intermediate below 2^48 << 2^62. *)
  let x0 = x0 land mask32 in
  let x1 = x1 land mask32 in
  let x2 = x2 land mask32 in
  let x3 = x3 land mask32 in
  let x8 = x8 land mask32 in
  let x9 = x9 land mask32 in
  let x10 = x10 land mask32 in
  let x11 = x11 land mask32 in
  (* double round 5 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* double round 6 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* double round 7 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* double round 8 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* re-mask the add-accumulating words: the a/c columns gain at most
     four dirty high bits per double round, so clamping them here keeps
     every intermediate below 2^48 << 2^62. *)
  let x0 = x0 land mask32 in
  let x1 = x1 land mask32 in
  let x2 = x2 land mask32 in
  let x3 = x3 land mask32 in
  let x8 = x8 land mask32 in
  let x9 = x9 land mask32 in
  let x10 = x10 land mask32 in
  let x11 = x11 land mask32 in
  (* double round 9 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  (* double round 10 *)
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x0 = x0 + x4 in
  let x12 = x12 lxor x0 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x8 = x8 + x12 in
  let x4 = x4 lxor x8 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x1 = x1 + x5 in
  let x13 = x13 lxor x1 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x9 = x9 + x13 in
  let x5 = x5 lxor x9 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x2 = x2 + x6 in
  let x14 = x14 lxor x2 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x10 = x10 + x14 in
  let x6 = x6 lxor x10 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x3 = x3 + x7 in
  let x15 = x15 lxor x3 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x11 = x11 + x15 in
  let x7 = x7 lxor x11 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffff) lsl 16) lor ((x15 lsr 16) land 0xffff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0xfffff) lsl 12) lor ((x5 lsr 20) land 0xfff) in
  let x0 = x0 + x5 in
  let x15 = x15 lxor x0 in
  let x15 = ((x15 land 0xffffff) lsl 8) lor ((x15 lsr 24) land 0xff) in
  let x10 = x10 + x15 in
  let x5 = x5 lxor x10 in
  let x5 = ((x5 land 0x1ffffff) lsl 7) lor ((x5 lsr 25) land 0x7f) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffff) lsl 16) lor ((x12 lsr 16) land 0xffff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0xfffff) lsl 12) lor ((x6 lsr 20) land 0xfff) in
  let x1 = x1 + x6 in
  let x12 = x12 lxor x1 in
  let x12 = ((x12 land 0xffffff) lsl 8) lor ((x12 lsr 24) land 0xff) in
  let x11 = x11 + x12 in
  let x6 = x6 lxor x11 in
  let x6 = ((x6 land 0x1ffffff) lsl 7) lor ((x6 lsr 25) land 0x7f) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffff) lsl 16) lor ((x13 lsr 16) land 0xffff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0xfffff) lsl 12) lor ((x7 lsr 20) land 0xfff) in
  let x2 = x2 + x7 in
  let x13 = x13 lxor x2 in
  let x13 = ((x13 land 0xffffff) lsl 8) lor ((x13 lsr 24) land 0xff) in
  let x8 = x8 + x13 in
  let x7 = x7 lxor x8 in
  let x7 = ((x7 land 0x1ffffff) lsl 7) lor ((x7 lsr 25) land 0x7f) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffff) lsl 16) lor ((x14 lsr 16) land 0xffff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0xfffff) lsl 12) lor ((x4 lsr 20) land 0xfff) in
  let x3 = x3 + x4 in
  let x14 = x14 lxor x3 in
  let x14 = ((x14 land 0xffffff) lsl 8) lor ((x14 lsr 24) land 0xff) in
  let x9 = x9 + x14 in
  let x4 = x4 lxor x9 in
  let x4 = ((x4 land 0x1ffffff) lsl 7) lor ((x4 lsr 25) land 0x7f) in
  Array.unsafe_set ws 0 (x0 + Array.unsafe_get st 0);
  Array.unsafe_set ws 1 (x1 + Array.unsafe_get st 1);
  Array.unsafe_set ws 2 (x2 + Array.unsafe_get st 2);
  Array.unsafe_set ws 3 (x3 + Array.unsafe_get st 3);
  Array.unsafe_set ws 4 (x4 + Array.unsafe_get st 4);
  Array.unsafe_set ws 5 (x5 + Array.unsafe_get st 5);
  Array.unsafe_set ws 6 (x6 + Array.unsafe_get st 6);
  Array.unsafe_set ws 7 (x7 + Array.unsafe_get st 7);
  Array.unsafe_set ws 8 (x8 + Array.unsafe_get st 8);
  Array.unsafe_set ws 9 (x9 + Array.unsafe_get st 9);
  Array.unsafe_set ws 10 (x10 + Array.unsafe_get st 10);
  Array.unsafe_set ws 11 (x11 + Array.unsafe_get st 11);
  Array.unsafe_set ws 12 (x12 + ctr);
  Array.unsafe_set ws 13 (x13 + Array.unsafe_get st 13);
  Array.unsafe_set ws 14 (x14 + Array.unsafe_get st 14);
  Array.unsafe_set ws 15 (x15 + Array.unsafe_get st 15)

(* Keystream words of the block in [ws], serialized into [buf] (>= 64
   bytes at [off], bounds already validated by the caller). *)
let store_block ws buf off =
  for i = 0 to 7 do
    Bytes_util.unsafe_store64_le buf
      (off + (8 * i))
      ~lo:(Array.unsafe_get ws (2 * i))
      ~hi:(Array.unsafe_get ws ((2 * i) + 1))
  done

let check_range what b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg ("Chacha20: " ^ what ^ " range out of bounds")

(* XOR [len] keystream bytes (starting at block [counter]) into [dst] at
   [dst_off] from [src] at [src_off]; this is encryption and decryption.
   Full blocks go eight bytes at a time; the sub-block tail serializes
   one last block and finishes byte-wise.  The state-taking variant lets
   Aead reuse one [init_state] for poly-key derivation and the cipher
   stream; [st].(12) is ignored in favour of [counter]. *)
let xor_with_state st ~counter ~src ~src_off ~dst ~dst_off ~len =
  check_range "src" src src_off len;
  check_range "dst" dst dst_off len;
  let ws = Array.make 16 0 in
  let ctr = ref (counter land mask32) in
  let pos = ref 0 in
  while len - !pos >= 64 do
    block_words st !ctr ws;
    ctr := (!ctr + 1) land mask32;
    let so = src_off + !pos and dofs = dst_off + !pos in
    for i = 0 to 7 do
      Bytes_util.unsafe_xor64_le ~src ~src_off:(so + (8 * i)) ~dst
        ~dst_off:(dofs + (8 * i))
        ~lo:(Array.unsafe_get ws (2 * i))
        ~hi:(Array.unsafe_get ws ((2 * i) + 1))
    done;
    pos := !pos + 64
  done;
  if !pos < len then begin
    block_words st !ctr ws;
    let tail = Bytes.create 64 in
    store_block ws tail 0;
    for i = !pos to len - 1 do
      Bytes_util.unsafe_set_u8 dst (dst_off + i)
        (Bytes_util.unsafe_get_u8 src (src_off + i)
        lxor Bytes_util.unsafe_get_u8 tail (i - !pos))
    done
  end

let xor_into ~key ~nonce ~counter ~src ~src_off ~dst ~dst_off ~len =
  let st = init_state ~key ~nonce ~counter in
  xor_with_state st ~counter ~src ~src_off ~dst ~dst_off ~len

(* Raw keystream straight into [buf] — no zero buffer to allocate and
   encrypt (the DRBG draws through this). *)
let keystream_into ~key ~nonce ~counter buf ~off ~len =
  check_range "dst" buf off len;
  let st = init_state ~key ~nonce ~counter in
  let ws = Array.make 16 0 in
  let ctr = ref st.(12) in
  let pos = ref 0 in
  while len - !pos >= 64 do
    block_words st !ctr ws;
    ctr := (!ctr + 1) land mask32;
    store_block ws buf (off + !pos);
    pos := !pos + 64
  done;
  if !pos < len then begin
    block_words st !ctr ws;
    let tail = Bytes.create 64 in
    store_block ws tail 0;
    Bytes.blit tail 0 buf (off + !pos) (len - !pos)
  end

let block ~key ~nonce ~counter =
  let out = Bytes.create 64 in
  keystream_into ~key ~nonce ~counter out ~off:0 ~len:64;
  out

let encrypt ?(counter = 1) ~key ~nonce src =
  let len = Bytes.length src in
  let dst = Bytes.create len in
  xor_into ~key ~nonce ~counter ~src ~src_off:0 ~dst ~dst_off:0 ~len;
  dst

let decrypt = encrypt

let keystream ~key ~nonce ~counter len =
  let dst = Bytes.create len in
  keystream_into ~key ~nonce ~counter dst ~off:0 ~len;
  dst
