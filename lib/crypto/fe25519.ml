(* Field arithmetic modulo 2^255 - 19 on 5 limbs of 51 bits in native
   OCaml ints (curve25519-donna's radix-2^51 representation), with lazy
   carries.  Shared by X25519 (Montgomery ladder) and Ed25519
   (Edwards-curve signatures); this is the hottest code in the system —
   every onion layer costs one scalar multiplication, i.e. ~2550 calls
   into [mul]/[square] below.

   Representation and carry discipline
   -----------------------------------
   A field element is l0 + 2^51 l1 + 2^102 l2 + 2^153 l3 + 2^204 l4 with
   each limb a nonnegative native int.  Reduced limbs are < 2^51 + 2^15
   ("carried"); [add] and [sub] are lazy (no carry), so limbs may grow:

     - [add] of two carried values     -> limbs < 2^52.2
     - [sub] of two carried values     -> limbs < 2^53.1 (see below)
     - [mul]/[square] accept any mix of the above and produce carried
       limbs again.

   [sub] keeps limbs nonnegative by adding 2p limb-wise (limb 0 of 2p is
   2^52 - 38, the rest are 2^52 - 2) before subtracting; its SECOND
   argument must therefore be carried.  Every call site in Curve25519 and
   Ed25519 satisfies this (subtrahends are always fresh mul/square
   outputs or constants), and test/prop/ checks the resulting values
   differentially against the seed implementation (Fe25519_ref).

   Multiplication on 63-bit ints
   -----------------------------
   The product of two 51-bit limbs needs 102 bits, which native ints do
   not have, so [mul]/[square] split each limb at bit 26 and work on ten
   half-limbs in radix 2^25.5 (ref10's fe10 schedule, weights
   w(i) = ceil(25.5 i)): the term f_i*g_j lands on half-limb (i+j) mod 10
   with coefficient 2 when i and j are both odd (w(i)+w(j) = w(i+j)+1)
   and 19 when i+j >= 10 (2^255 = 19 mod p).  Worst-case accumulators
   stay below 2^62: with both operands post-[sub] (odd half-limbs
   < 2^27.1), an output half-limb is bounded by five (odd,odd) terms of
   38·2^27.1·2^27.1 plus five (even,even) terms of 19·2^26·2^26, about
   2^61.6.  The interleaved carry chain then rebuilds the five 51-bit
   limbs.  Differentially tested against Fe25519_ref over thousands of
   seeded cases (test/prop/prop_fe.ml). *)

type t = int array (* 5 limbs, radix 2^51 *)

let mask51 = (1 lsl 51) - 1
let mask26 = (1 lsl 26) - 1

let create () = Array.make 5 0

let of_limbs l =
  if Array.length l <> 5 then invalid_arg "Fe25519.of_limbs";
  Array.copy l

let copy = Array.copy
let blit ~src ~dst = Array.blit src 0 dst 0 5

let zero () = create ()

let one () =
  let a = create () in
  a.(0) <- 1;
  a

(* One full reducing pass (arithmetic shifts, so mid-computation negative
   limbs propagate correctly): afterwards limbs 0 and 2-4 are < 2^51 and
   limb 1 is < 2^51 + 1.  Iterated by [pack] until fully reduced. *)
let carry (o : t) =
  let c = o.(0) asr 51 in
  o.(0) <- o.(0) - (c lsl 51);
  o.(1) <- o.(1) + c;
  let c = o.(1) asr 51 in
  o.(1) <- o.(1) - (c lsl 51);
  o.(2) <- o.(2) + c;
  let c = o.(2) asr 51 in
  o.(2) <- o.(2) - (c lsl 51);
  o.(3) <- o.(3) + c;
  let c = o.(3) asr 51 in
  o.(3) <- o.(3) - (c lsl 51);
  o.(4) <- o.(4) + c;
  let c = o.(4) asr 51 in
  o.(4) <- o.(4) - (c lsl 51);
  o.(0) <- o.(0) + (19 * c);
  let c = o.(0) asr 51 in
  o.(0) <- o.(0) - (c lsl 51);
  o.(1) <- o.(1) + c

(* Constant-time conditional swap when b = 1. *)
let cswap (p : t) (q : t) b =
  let c = lnot (b - 1) in
  for i = 0 to 4 do
    let t = c land (p.(i) lxor q.(i)) in
    p.(i) <- p.(i) lxor t;
    q.(i) <- q.(i) lxor t
  done

let pack (n : t) =
  let t = Array.copy n in
  carry t;
  carry t;
  carry t;
  (* Limbs are now in [0, 2^51), so the value is < 2^255 < 2p: one
     conditional subtraction of p = 2^255 - 19 canonicalises (done twice,
     TweetNaCl-style, out of an abundance of caution — the second pass is
     a no-op once the value is < p). *)
  let m = Array.make 5 0 in
  for _ = 0 to 1 do
    m.(0) <- t.(0) - 0x7ffffffffffed;
    for i = 1 to 4 do
      m.(i) <- t.(i) - mask51 - ((m.(i - 1) asr 51) land 1);
      m.(i - 1) <- m.(i - 1) land mask51
    done;
    let b = (m.(4) asr 51) land 1 in
    m.(4) <- m.(4) land mask51;
    (* Keep m (the subtracted value) unless the subtraction borrowed. *)
    cswap t m (1 - b)
  done;
  let o = Bytes.create 32 in
  for i = 0 to 31 do
    let bit = 8 * i in
    let j = bit / 51 in
    let sh = bit - (51 * j) in
    let v = t.(j) lsr sh in
    let v = if sh > 43 && j < 4 then v lor (t.(j + 1) lsl (51 - sh)) else v in
    Bytes_util.set_u8 o i (v land 0xff)
  done;
  o

let unpack (n : bytes) : t =
  let o = create () in
  for i = 0 to 31 do
    let v = Bytes_util.get_u8 n i in
    let v = if i = 31 then v land 0x7f else v in
    let bit = 8 * i in
    let j = bit / 51 in
    let sh = bit - (51 * j) in
    o.(j) <- o.(j) lor ((v lsl sh) land mask51);
    if sh > 43 && j < 4 then o.(j + 1) <- o.(j + 1) lor (v lsr (51 - sh))
  done;
  o

let add (o : t) (a : t) (b : t) =
  o.(0) <- a.(0) + b.(0);
  o.(1) <- a.(1) + b.(1);
  o.(2) <- a.(2) + b.(2);
  o.(3) <- a.(3) + b.(3);
  o.(4) <- a.(4) + b.(4)

(* 2p limb-wise; adding it before subtracting keeps limbs nonnegative for
   any carried subtrahend (see the carry discipline above). *)
let two_p0 = (1 lsl 52) - 38
let two_pi = (1 lsl 52) - 2

let sub (o : t) (a : t) (b : t) =
  o.(0) <- a.(0) + two_p0 - b.(0);
  o.(1) <- a.(1) + two_pi - b.(1);
  o.(2) <- a.(2) + two_pi - b.(2);
  o.(3) <- a.(3) + two_pi - b.(3);
  o.(4) <- a.(4) + two_pi - b.(4)

(* Carry the ten radix-2^25.5 accumulators and recombine them into five
   51-bit limbs of [o].  Shared by [mul], [square], and [mul_small]. *)
let reduce10 (o : t) h0 h1 h2 h3 h4 h5 h6 h7 h8 h9 =
  let c = h0 asr 26 in
  let h0 = h0 - (c lsl 26) and h1 = h1 + c in
  let c = h1 asr 25 in
  let h1 = h1 - (c lsl 25) and h2 = h2 + c in
  let c = h2 asr 26 in
  let h2 = h2 - (c lsl 26) and h3 = h3 + c in
  let c = h3 asr 25 in
  let h3 = h3 - (c lsl 25) and h4 = h4 + c in
  let c = h4 asr 26 in
  let h4 = h4 - (c lsl 26) and h5 = h5 + c in
  let c = h5 asr 25 in
  let h5 = h5 - (c lsl 25) and h6 = h6 + c in
  let c = h6 asr 26 in
  let h6 = h6 - (c lsl 26) and h7 = h7 + c in
  let c = h7 asr 25 in
  let h7 = h7 - (c lsl 25) and h8 = h8 + c in
  let c = h8 asr 26 in
  let h8 = h8 - (c lsl 26) and h9 = h9 + c in
  let c = h9 asr 25 in
  let h9 = h9 - (c lsl 25) and h0 = h0 + (19 * c) in
  let c = h0 asr 26 in
  let h0 = h0 - (c lsl 26) and h1 = h1 + c in
  o.(0) <- h0 lor (h1 lsl 26);
  o.(1) <- h2 lor (h3 lsl 26);
  o.(2) <- h4 lor (h5 lsl 26);
  o.(3) <- h6 lor (h7 lsl 26);
  o.(4) <- h8 lor (h9 lsl 26)

let mul (o : t) (a : t) (b : t) =
  (* Split into half-limbs (arithmetic shift: a negative limb yields a
     negative high half and a nonnegative low half, which the signed
     accumulators absorb). *)
  let a0 = a.(0) and a1 = a.(1) and a2 = a.(2) and a3 = a.(3) and a4 = a.(4) in
  let b0 = b.(0) and b1 = b.(1) and b2 = b.(2) and b3 = b.(3) and b4 = b.(4) in
  let f0 = a0 land mask26 and f1 = a0 asr 26 in
  let f2 = a1 land mask26 and f3 = a1 asr 26 in
  let f4 = a2 land mask26 and f5 = a2 asr 26 in
  let f6 = a3 land mask26 and f7 = a3 asr 26 in
  let f8 = a4 land mask26 and f9 = a4 asr 26 in
  let g0 = b0 land mask26 and g1 = b0 asr 26 in
  let g2 = b1 land mask26 and g3 = b1 asr 26 in
  let g4 = b2 land mask26 and g5 = b2 asr 26 in
  let g6 = b3 land mask26 and g7 = b3 asr 26 in
  let g8 = b4 land mask26 and g9 = b4 asr 26 in
  let f1_2 = 2 * f1 and f3_2 = 2 * f3 and f5_2 = 2 * f5 and f7_2 = 2 * f7 in
  let f9_2 = 2 * f9 in
  let g1_19 = 19 * g1 and g2_19 = 19 * g2 and g3_19 = 19 * g3 in
  let g4_19 = 19 * g4 and g5_19 = 19 * g5 and g6_19 = 19 * g6 in
  let g7_19 = 19 * g7 and g8_19 = 19 * g8 and g9_19 = 19 * g9 in
  let h0 =
    (f0 * g0) + (f1_2 * g9_19) + (f2 * g8_19) + (f3_2 * g7_19)
    + (f4 * g6_19) + (f5_2 * g5_19) + (f6 * g4_19) + (f7_2 * g3_19)
    + (f8 * g2_19) + (f9_2 * g1_19)
  in
  let h1 =
    (f0 * g1) + (f1 * g0) + (f2 * g9_19) + (f3 * g8_19) + (f4 * g7_19)
    + (f5 * g6_19) + (f6 * g5_19) + (f7 * g4_19) + (f8 * g3_19)
    + (f9 * g2_19)
  in
  let h2 =
    (f0 * g2) + (f1_2 * g1) + (f2 * g0) + (f3_2 * g9_19) + (f4 * g8_19)
    + (f5_2 * g7_19) + (f6 * g6_19) + (f7_2 * g5_19) + (f8 * g4_19)
    + (f9_2 * g3_19)
  in
  let h3 =
    (f0 * g3) + (f1 * g2) + (f2 * g1) + (f3 * g0) + (f4 * g9_19)
    + (f5 * g8_19) + (f6 * g7_19) + (f7 * g6_19) + (f8 * g5_19)
    + (f9 * g4_19)
  in
  let h4 =
    (f0 * g4) + (f1_2 * g3) + (f2 * g2) + (f3_2 * g1) + (f4 * g0)
    + (f5_2 * g9_19) + (f6 * g8_19) + (f7_2 * g7_19) + (f8 * g6_19)
    + (f9_2 * g5_19)
  in
  let h5 =
    (f0 * g5) + (f1 * g4) + (f2 * g3) + (f3 * g2) + (f4 * g1) + (f5 * g0)
    + (f6 * g9_19) + (f7 * g8_19) + (f8 * g7_19) + (f9 * g6_19)
  in
  let h6 =
    (f0 * g6) + (f1_2 * g5) + (f2 * g4) + (f3_2 * g3) + (f4 * g2)
    + (f5_2 * g1) + (f6 * g0) + (f7_2 * g9_19) + (f8 * g8_19)
    + (f9_2 * g7_19)
  in
  let h7 =
    (f0 * g7) + (f1 * g6) + (f2 * g5) + (f3 * g4) + (f4 * g3) + (f5 * g2)
    + (f6 * g1) + (f7 * g0) + (f8 * g9_19) + (f9 * g8_19)
  in
  let h8 =
    (f0 * g8) + (f1_2 * g7) + (f2 * g6) + (f3_2 * g5) + (f4 * g4)
    + (f5_2 * g3) + (f6 * g2) + (f7_2 * g1) + (f8 * g0) + (f9_2 * g9_19)
  in
  let h9 =
    (f0 * g9) + (f1 * g8) + (f2 * g7) + (f3 * g6) + (f4 * g5) + (f5 * g4)
    + (f6 * g3) + (f7 * g2) + (f8 * g1) + (f9 * g0)
  in
  reduce10 o h0 h1 h2 h3 h4 h5 h6 h7 h8 h9

(* Dedicated squaring: the symmetric terms collapse 100 half-limb
   products to 55 (ref10's fe_sq schedule).  The Montgomery ladder does
   four squarings per scalar bit and [invert] does 254 in a row, so this
   is worth the duplication. *)
let square (o : t) (a : t) =
  let a0 = a.(0) and a1 = a.(1) and a2 = a.(2) and a3 = a.(3) and a4 = a.(4) in
  let f0 = a0 land mask26 and f1 = a0 asr 26 in
  let f2 = a1 land mask26 and f3 = a1 asr 26 in
  let f4 = a2 land mask26 and f5 = a2 asr 26 in
  let f6 = a3 land mask26 and f7 = a3 asr 26 in
  let f8 = a4 land mask26 and f9 = a4 asr 26 in
  let f0_2 = 2 * f0 and f1_2 = 2 * f1 and f2_2 = 2 * f2 and f3_2 = 2 * f3 in
  let f4_2 = 2 * f4 and f5_2 = 2 * f5 and f6_2 = 2 * f6 and f7_2 = 2 * f7 in
  let f5_38 = 38 * f5 and f6_19 = 19 * f6 and f7_38 = 38 * f7 in
  let f8_19 = 19 * f8 and f9_38 = 38 * f9 in
  let h0 =
    (f0 * f0) + (f1_2 * f9_38) + (f2_2 * f8_19) + (f3_2 * f7_38)
    + (f4_2 * f6_19) + (f5 * f5_38)
  in
  let h1 =
    (f0_2 * f1) + (f2 * f9_38) + (f3_2 * f8_19) + (f4 * f7_38)
    + (f5_2 * f6_19)
  in
  let h2 =
    (f0_2 * f2) + (f1_2 * f1) + (f3_2 * f9_38) + (f4_2 * f8_19)
    + (f5_2 * f7_38) + (f6 * f6_19)
  in
  let h3 =
    (f0_2 * f3) + (f1_2 * f2) + (f4 * f9_38) + (f5_2 * f8_19) + (f6 * f7_38)
  in
  let h4 =
    (f0_2 * f4) + (f1_2 * f3_2) + (f2 * f2) + (f5_2 * f9_38)
    + (f6_2 * f8_19) + (f7 * f7_38)
  in
  let h5 =
    (f0_2 * f5) + (f1_2 * f4) + (f2_2 * f3) + (f6 * f9_38) + (f7_2 * f8_19)
  in
  let h6 =
    (f0_2 * f6) + (f1_2 * f5_2) + (f2_2 * f4) + (f3_2 * f3)
    + (f7_2 * f9_38) + (f8 * f8_19)
  in
  let h7 =
    (f0_2 * f7) + (f1_2 * f6) + (f2_2 * f5) + (f3_2 * f4) + (f8 * f9_38)
  in
  let h8 =
    (f0_2 * f8) + (f1_2 * f7_2) + (f2_2 * f6) + (f3_2 * f5_2) + (f4 * f4)
    + (f9 * f9_38)
  in
  let h9 =
    (f0_2 * f9) + (f1_2 * f8) + (f2_2 * f7) + (f3_2 * f6) + (f4_2 * f5)
  in
  reduce10 o h0 h1 h2 h3 h4 h5 h6 h7 h8 h9

(* Multiply by a small nonnegative constant (c < 2^17 covers both users:
   the curve constant 121665 = (A-2)/4 and the base-point u-coordinate
   9).  A direct limb product could reach 2^54 * 2^17 = 2^71, so this
   also goes through half-limbs. *)
let mul_small (o : t) (a : t) c =
  let a0 = a.(0) and a1 = a.(1) and a2 = a.(2) and a3 = a.(3) and a4 = a.(4) in
  reduce10 o
    ((a0 land mask26) * c)
    ((a0 asr 26) * c)
    ((a1 land mask26) * c)
    ((a1 asr 26) * c)
    ((a2 land mask26) * c)
    ((a2 asr 26) * c)
    ((a3 land mask26) * c)
    ((a3 asr 26) * c)
    ((a4 land mask26) * c)
    ((a4 asr 26) * c)

(* Inversion by Fermat: a^(p-2).  Same square-and-multiply schedule as
   the seed implementation (p-2 has zero bits only at positions 2 and
   4). *)
let invert (o : t) (i : t) =
  let c = Array.copy i in
  for a = 253 downto 0 do
    square c c;
    if a <> 2 && a <> 4 then mul c c i
  done;
  Array.blit c 0 o 0 5

(* a^((p-5)/8), the square-root helper used when decompressing Edwards
   points (RFC 8032 §5.1.3). *)
let pow2523 (o : t) (i : t) =
  let c = Array.copy i in
  for a = 250 downto 0 do
    square c c;
    if a <> 1 then mul c c i
  done;
  Array.blit c 0 o 0 5

(* Parity of the canonical representation. *)
let parity (a : t) = Bytes_util.get_u8 (pack a) 0 land 1

let equal (a : t) (b : t) = Bytes_util.ct_equal (pack a) (pack b)
