(* Public-key authenticated encryption in the NaCl "box" style:
   X25519 -> HKDF -> ChaCha20-Poly1305.  Vuvuzela uses:

   - [seal]/[open_] between a client's per-layer ephemeral key and a
     server's long-term key (onion layers), and between conversation
     partners' keys (message payloads);
   - [seal_anonymous]/[open_anonymous] for dialing invitations, where the
     recipient must not learn anything before trial decryption succeeds
     and invitations from different senders must be indistinguishable. *)

let overhead = Aead.tag_len
let anonymous_overhead = Curve25519.key_len + Aead.tag_len

(* Shared symmetric key for the (secret, public) pair.  Both directions of
   a DH pair derive the same key, so callers must domain-separate nonces
   (Vuvuzela derives direction from public-key order; see Conversation). *)
let precompute ~secret ~public =
  let raw = Curve25519.shared ~secret ~public in
  Hkdf.derive ~ikm:raw ~info:(Bytes.of_string "vuvuzela-box-v1") Aead.key_len

let seal ~key ~nonce ?aad pt = Aead.seal ~key ~nonce ?aad pt
let open_ ~key ~nonce ?aad ct = Aead.open_ ~key ~nonce ?aad ct

let seal_into ~key ~nonce ?aad ~src ~src_off ~len ~dst ~dst_off () =
  Aead.seal_into ~key ~nonce ?aad ~src ~src_off ~len ~dst ~dst_off ()

let open_into ~key ~nonce ?aad ~src ~src_off ~len ~dst ~dst_off () =
  Aead.open_into ~key ~nonce ?aad ~src ~src_off ~len ~dst ~dst_off ()

(* Sealed (anonymous) box: a fresh ephemeral keypair per message; the
   ephemeral public key rides in front of the ciphertext.  The nonce is
   derived from both public keys so it is unique per ephemeral key. *)
let anon_nonce ~epk ~pk =
  Bytes.sub (Sha256.digest_list [ epk; pk ]) 0 Aead.nonce_len

let seal_anonymous ?rng ~recipient_pk pt =
  let esk, epk = Drbg.keypair ?rng () in
  let key = precompute ~secret:esk ~public:recipient_pk in
  let nonce = anon_nonce ~epk ~pk:recipient_pk in
  let len = Bytes.length pt in
  let out = Bytes.create (Curve25519.key_len + len + Aead.tag_len) in
  Bytes.blit epk 0 out 0 Curve25519.key_len;
  Aead.seal_into ~key ~nonce ~src:pt ~src_off:0 ~len ~dst:out
    ~dst_off:Curve25519.key_len ();
  out

let open_anonymous ~recipient_sk ~recipient_pk sealed =
  let n = Bytes.length sealed in
  if n < anonymous_overhead then None
  else begin
    let epk = Bytes.sub sealed 0 Curve25519.key_len in
    let key = precompute ~secret:recipient_sk ~public:epk in
    let nonce = anon_nonce ~epk ~pk:recipient_pk in
    let pt = Bytes.create (n - anonymous_overhead) in
    if
      Aead.open_into ~key ~nonce ~src:sealed ~src_off:Curve25519.key_len
        ~len:(n - Curve25519.key_len) ~dst:pt ~dst_off:0 ()
    then Some pt
    else None
  end
