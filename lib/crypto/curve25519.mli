(** X25519 Diffie-Hellman scalar multiplication (RFC 7748), pure OCaml
    over the 51-bit-limb {!Fe25519} (the seed's 16-bit-limb ladder lives
    on in {!Curve25519_ref} as the differential-testing oracle).

    This is the dominant CPU cost of Vuvuzela's servers (§8.2 of the
    paper); the simulator's cost model is calibrated against this module's
    measured throughput and against the paper's reported 340K ops/s per
    36-core server.  [scalarmult_base] — the per-round ephemeral keygen
    path every client takes — uses a fixed-base ladder that multiplies by
    the base point's u-coordinate 9 via the small-constant path. *)

val key_len : int
(** 32. *)

val scalar_len : int
(** 32. *)

val clamp : bytes -> bytes
(** RFC 7748 scalar clamping (non-destructive copy). *)

val scalarmult : scalar:bytes -> point:bytes -> bytes
(** [scalarmult ~scalar ~point] is X25519(scalar, point).  The scalar is
    clamped internally. *)

val base_point : bytes
(** The u-coordinate 9. *)

val scalarmult_base : bytes -> bytes
(** Public key from a 32-byte secret. *)

val shared : secret:bytes -> public:bytes -> bytes
(** Raw shared point; derive symmetric keys via {!Hkdf} (see {!Box}). *)
