(* Deterministic random bit generator built on ChaCha20 (a fast-key-erasure
   style construction).  Vuvuzela needs randomness for ephemeral keypairs,
   dead-drop IDs, shuffle permutations, and Laplace noise; everything is
   drawn through this module so tests and simulations can run reproducibly
   from a seed while deployments seed from the OS. *)

type t = { key : bytes; mutable counter : int; nonce : bytes }

let create ~seed =
  {
    key = Hkdf.derive ~ikm:seed ~info:(Bytes.of_string "vuvuzela-drbg") 32;
    counter = 0;
    nonce = Bytes.make Chacha20.nonce_len '\000';
  }

let of_string s = create ~seed:(Bytes.of_string s)

(* Each call consumes a fresh ChaCha20 counter range; the 32-bit block
   counter in the state is extended by rolling the nonce, giving an
   effectively unbounded stream.  Keystream is drawn straight into the
   output — no over-allocated block buffer — and the bytes are identical
   to the seed construction (pinned by the Drbg regression vectors). *)
let generate t len =
  let out = Bytes.create len in
  Chacha20.keystream_into ~key:t.key ~nonce:t.nonce ~counter:0 out ~off:0 ~len;
  (* Roll the nonce so the next call uses a disjoint stream. *)
  t.counter <- t.counter + 1;
  Bytes_util.store_le64 t.nonce 0 t.counter;
  out

let os_entropy len =
  let ic = open_in_bin "/dev/urandom" in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let create_system () = create ~seed:(os_entropy 32)

(* Global generator used when callers do not thread their own. *)
let default = lazy (create_system ())
let bytes ?rng len =
  match rng with
  | Some t -> generate t len
  | None -> generate (Lazy.force default) len

(* Uniform int in [0, bound) by rejection sampling on 61-bit chunks. *)
let uniform ?rng bound =
  if bound <= 0 then invalid_arg "Drbg.uniform: bound must be positive";
  let limit = max_int - (max_int mod bound) in
  let rec draw () =
    let b = bytes ?rng 8 in
    let v = Bytes_util.le64 b 0 land max_int in
    if v >= limit then draw () else v mod bound
  in
  draw ()

(* Uniform float in [0, 1): 53 random mantissa bits. *)
let float_unit ?rng () =
  let b = bytes ?rng 8 in
  let v = Bytes_util.le64 b 0 land ((1 lsl 53) - 1) in
  float_of_int v /. float_of_int (1 lsl 53)

let keypair ?rng () =
  let secret = Curve25519.clamp (bytes ?rng 32) in
  (secret, Curve25519.scalarmult_base secret)
