(* The seed field arithmetic modulo 2^255 - 19, kept verbatim as a
   differential-testing oracle: TweetNaCl's representation of 16 limbs of
   16 bits in native ints (every intermediate stays far below OCaml's
   63-bit limit).

   The production field is {!Fe25519} (5×51-bit limbs); `test/prop/`
   checks every Fe25519 operation against this module over thousands of
   seeded cases, and `bench/main.exe` §Crypto measures the speedup of the
   replacement against this baseline.  Do not optimise this module — its
   only job is to be obviously faithful to the seed implementation. *)

type t = int array (* 16 limbs *)

let create () = Array.make 16 0

let of_limbs l =
  if Array.length l <> 16 then invalid_arg "Fe25519_ref.of_limbs";
  Array.copy l

let copy = Array.copy
let blit ~src ~dst = Array.blit src 0 dst 0 16

let zero () = create ()

let one () =
  let a = create () in
  a.(0) <- 1;
  a

(* Carry propagation; limbs may be negative mid-computation, so shifts
   are arithmetic. *)
let carry (o : t) =
  for i = 0 to 15 do
    o.(i) <- o.(i) + (1 lsl 16);
    let c = o.(i) asr 16 in
    if i < 15 then o.(i + 1) <- o.(i + 1) + c - 1
    else o.(0) <- o.(0) + (38 * (c - 1));
    o.(i) <- o.(i) - (c lsl 16)
  done

(* Constant-time conditional swap when b = 1. *)
let cswap (p : t) (q : t) b =
  let c = lnot (b - 1) in
  for i = 0 to 15 do
    let t = c land (p.(i) lxor q.(i)) in
    p.(i) <- p.(i) lxor t;
    q.(i) <- q.(i) lxor t
  done

let pack (n : t) =
  let m = create () in
  let t = Array.copy n in
  carry t;
  carry t;
  carry t;
  for _ = 0 to 1 do
    m.(0) <- t.(0) - 0xffed;
    for i = 1 to 14 do
      m.(i) <- t.(i) - 0xffff - ((m.(i - 1) asr 16) land 1);
      m.(i - 1) <- m.(i - 1) land 0xffff
    done;
    m.(15) <- t.(15) - 0x7fff - ((m.(14) asr 16) land 1);
    let b = (m.(15) asr 16) land 1 in
    m.(14) <- m.(14) land 0xffff;
    cswap t m (1 - b)
  done;
  let o = Bytes.create 32 in
  for i = 0 to 15 do
    Bytes_util.set_u8 o (2 * i) (t.(i) land 0xff);
    Bytes_util.set_u8 o ((2 * i) + 1) ((t.(i) lsr 8) land 0xff)
  done;
  o

let unpack (n : bytes) : t =
  let o = create () in
  for i = 0 to 15 do
    o.(i) <-
      Bytes_util.get_u8 n (2 * i) lor (Bytes_util.get_u8 n ((2 * i) + 1) lsl 8)
  done;
  o.(15) <- o.(15) land 0x7fff;
  o

let add (o : t) (a : t) (b : t) =
  for i = 0 to 15 do
    o.(i) <- a.(i) + b.(i)
  done

let sub (o : t) (a : t) (b : t) =
  for i = 0 to 15 do
    o.(i) <- a.(i) - b.(i)
  done

(* Schoolbook multiply with 2^256 = 38 (mod p) folding.  The temporary is
   preallocated per call site via TLS-free simple allocation; profiling
   showed allocation is not the bottleneck (the 256 multiplies are). *)
let mul (o : t) (a : t) (b : t) =
  let t = Array.make 31 0 in
  for i = 0 to 15 do
    let ai = a.(i) in
    for j = 0 to 15 do
      t.(i + j) <- t.(i + j) + (ai * b.(j))
    done
  done;
  for i = 0 to 14 do
    t.(i) <- t.(i) + (38 * t.(i + 16))
  done;
  Array.blit t 0 o 0 16;
  carry o;
  carry o

let square (o : t) (a : t) = mul o a a

(* Inversion by Fermat: a^(p-2). *)
let invert (o : t) (i : t) =
  let c = Array.copy i in
  for a = 253 downto 0 do
    square c c;
    if a <> 2 && a <> 4 then mul c c i
  done;
  Array.blit c 0 o 0 16

(* a^((p-5)/8), the square-root helper used when decompressing Edwards
   points (RFC 8032 §5.1.3). *)
let pow2523 (o : t) (i : t) =
  let c = Array.copy i in
  for a = 250 downto 0 do
    square c c;
    if a <> 1 then mul c c i
  done;
  Array.blit c 0 o 0 16

(* Parity of the canonical representation. *)
let parity (a : t) = Bytes_util.get_u8 (pack a) 0 land 1

let equal (a : t) (b : t) = Bytes_util.ct_equal (pack a) (pack b)
