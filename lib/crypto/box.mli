(** Public-key authenticated encryption (X25519 + HKDF +
    ChaCha20-Poly1305), in the NaCl "box" style. *)

val overhead : int
(** Bytes added by {!seal} (16). *)

val anonymous_overhead : int
(** Bytes added by {!seal_anonymous} (48): ephemeral public key + tag.
    An 80-byte Vuvuzela invitation is a 32-byte sender key under this
    overhead, exactly matching §8.1 of the paper. *)

val precompute : secret:bytes -> public:bytes -> bytes
(** Symmetric key derived from the X25519 shared point via HKDF.  Both
    sides of the DH pair obtain the same key. *)

val seal : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes
val open_ : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes option

val seal_into :
  key:bytes ->
  nonce:bytes ->
  ?aad:bytes ->
  src:bytes ->
  src_off:int ->
  len:int ->
  dst:bytes ->
  dst_off:int ->
  unit ->
  unit
(** Allocation-lean variants re-exported from {!Aead}; see
    {!Aead.seal_into}/{!Aead.open_into} for range and overlap rules. *)

val open_into :
  key:bytes ->
  nonce:bytes ->
  ?aad:bytes ->
  src:bytes ->
  src_off:int ->
  len:int ->
  dst:bytes ->
  dst_off:int ->
  unit ->
  bool

val seal_anonymous : ?rng:Drbg.t -> recipient_pk:bytes -> bytes -> bytes
(** Sealed box: fresh ephemeral key per message; the recipient can open it
    but cannot identify the sender from the ciphertext, and third parties
    learn nothing (used for dialing invitations). *)

val open_anonymous :
  recipient_sk:bytes -> recipient_pk:bytes -> bytes -> bytes option
