(* Byte-level helpers shared by all primitives: little/big-endian loads and
   stores, hex codecs, xor, and constant-time comparison. *)

let get_u8 b i = Char.code (Bytes.get b i)
let set_u8 b i v = Bytes.set b i (Char.chr (v land 0xff))

(* Little-endian 32-bit load into a native int (always non-negative). *)
let le32 b i =
  get_u8 b i
  lor (get_u8 b (i + 1) lsl 8)
  lor (get_u8 b (i + 2) lsl 16)
  lor (get_u8 b (i + 3) lsl 24)

let store_le32 b i v =
  set_u8 b i v;
  set_u8 b (i + 1) (v lsr 8);
  set_u8 b (i + 2) (v lsr 16);
  set_u8 b (i + 3) (v lsr 24)

let le64 b i = le32 b i lor (le32 b (i + 4) lsl 32)

let store_le64 b i v =
  store_le32 b i (v land 0xffffffff);
  store_le32 b (i + 4) ((v lsr 32) land 0xffffffff)

(* Big-endian 32-bit load, used by SHA-256. *)
let be32 b i =
  (get_u8 b i lsl 24)
  lor (get_u8 b (i + 1) lsl 16)
  lor (get_u8 b (i + 2) lsl 8)
  lor get_u8 b (i + 3)

let store_be32 b i v =
  set_u8 b i (v lsr 24);
  set_u8 b (i + 1) (v lsr 16);
  set_u8 b (i + 2) (v lsr 8);
  set_u8 b (i + 3) v

let store_be64 b i v =
  store_be32 b i ((v lsr 32) land 0xffffffff);
  store_be32 b (i + 4) (v land 0xffffffff)

(* Unsafe accessors for hot loops whose bounds were validated up front
   (ChaCha20 block XOR, Poly1305 absorption).  Keep every call site behind
   an explicit range check. *)
let unsafe_get_u8 b i = Char.code (Bytes.unsafe_get b i)
let unsafe_set_u8 b i v = Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff))

(* Unaligned 16-bit native-endian accessors: compiler primitives (no C
   stub), returning plain untagged-friendly ints — two of these are
   roughly half the instructions of four byte accesses. *)
external unsafe_get16_ne : bytes -> int -> int = "%caml_bytes_get16u"
external unsafe_set16_ne : bytes -> int -> int -> unit = "%caml_bytes_set16u"

(* The primitives are native-endian; fall back to byte accesses on a
   big-endian host (the branch on the constant [Sys.big_endian] is
   perfectly predicted). *)
let unsafe_le16 b i =
  if Sys.big_endian then
    unsafe_get_u8 b i lor (unsafe_get_u8 b (i + 1) lsl 8)
  else unsafe_get16_ne b i

let unsafe_store_le16 b i v =
  if Sys.big_endian then begin
    unsafe_set_u8 b i v;
    unsafe_set_u8 b (i + 1) (v lsr 8)
  end
  else unsafe_set16_ne b i v

let unsafe_le32 b i = unsafe_le16 b i lor (unsafe_le16 b (i + 2) lsl 16)

let unsafe_store_le32 b i v =
  unsafe_store_le16 b i v;
  unsafe_store_le16 b (i + 2) (v lsr 16)

(* The eight-byte little-endian helpers take the value as two 32-bit
   halves (~lo, ~hi) rather than one 64-bit int: OCaml native ints are
   63-bit, so a [le64]/[store_le64] round-trip silently zeroes bit 63 of
   every eighth byte, and without flambda a boxed [Int64] path would
   allocate on every load.  Two masked 32-bit words keep the whole
   keystream XOR alloc-free and lossless. *)
let unsafe_store64_le b i ~lo ~hi =
  unsafe_store_le32 b i lo;
  unsafe_store_le32 b (i + 4) hi

let unsafe_xor64_le ~src ~src_off ~dst ~dst_off ~lo ~hi =
  unsafe_store_le32 dst dst_off (unsafe_le32 src src_off lxor lo);
  unsafe_store_le32 dst (dst_off + 4) (unsafe_le32 src (src_off + 4) lxor hi)

let xor_into ~src ~dst len =
  for i = 0 to len - 1 do
    set_u8 dst i (get_u8 dst i lxor get_u8 src i)
  done

let xor a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    set_u8 out i (get_u8 a i lxor get_u8 b i)
  done;
  out

(* Constant-time equality: accumulates differences so timing does not depend
   on where the first mismatch occurs.  Lengths are public. *)
let ct_equal a b =
  if Bytes.length a <> Bytes.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to Bytes.length a - 1 do
      acc := !acc lor (get_u8 a i lxor get_u8 b i)
    done;
    !acc = 0
  end

(* Constant-time equality over sub-ranges; bounds are checked eagerly so
   the loop can use unsafe accessors. *)
let ct_equal_sub a ~a_off b ~b_off ~len =
  if
    a_off < 0 || len < 0
    || a_off + len > Bytes.length a
    || b_off < 0
    || b_off + len > Bytes.length b
  then invalid_arg "Bytes_util.ct_equal_sub: range out of bounds";
  let acc = ref 0 in
  for i = 0 to len - 1 do
    acc :=
      !acc lor (unsafe_get_u8 a (a_off + i) lxor unsafe_get_u8 b (b_off + i))
  done;
  !acc = 0

let of_hex s =
  let s =
    String.concat "" (String.split_on_char ' ' s)
    |> String.split_on_char '\n'
    |> String.concat ""
  in
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytes_util.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytes_util.of_hex: bad digit"
  in
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    set_u8 out i ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1])
  done;
  out

let to_hex b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (get_u8 b i))
  done;
  Buffer.contents out

let concat = Bytes.concat Bytes.empty

(* Zero-pad [b] on the right to [len] bytes; [b] must not exceed [len]. *)
let pad_to len b =
  let n = Bytes.length b in
  if n > len then invalid_arg "Bytes_util.pad_to: too long";
  let out = Bytes.make len '\000' in
  Bytes.blit b 0 out 0 n;
  out
