(** Poly1305 one-time authenticator (RFC 8439).

    The key must be used for a single message; {!Aead} derives a fresh
    Poly1305 key from each (ChaCha20 key, nonce) pair. *)

type t

val key_len : int
(** 32. *)

val tag_len : int
(** 16. *)

val init : bytes -> t

val init_from_words :
  w0:int ->
  w1:int ->
  w2:int ->
  w3:int ->
  w4:int ->
  w5:int ->
  w6:int ->
  w7:int ->
  t
(** [init] on the key whose little-endian 32-bit words are [w0..w7]
    (bits above 31 of each word are ignored).  Lets {!Aead} hand over
    ChaCha20 block-0 keystream words without serializing a 32-byte key
    just to parse it back. *)

val feed : t -> bytes -> unit

val feed_sub : t -> bytes -> off:int -> len:int -> unit
(** Absorb a sub-range without slicing; raises [Invalid_argument] on a
    bad range.  [feed t b = feed_sub t b ~off:0 ~len:(Bytes.length b)]. *)

val absorb_lens : t -> aad_len:int -> ct_len:int -> unit
(** Absorb the RFC 8439 length block [le64 aad_len ‖ le64 ct_len]
    without materializing its 16 bytes. *)

val finish : t -> bytes
(** 16-byte tag.  The state must not be fed after finishing. *)

val finish_into : t -> bytes -> off:int -> unit
(** Write the 16-byte tag at [off] instead of allocating. *)

val mac : key:bytes -> bytes -> bytes
val verify : key:bytes -> tag:bytes -> bytes -> bool
