(** ChaCha20 stream cipher (RFC 8439), optimized hot path.

    The 16-word state lives in unboxed native-int locals with fully
    unrolled double-rounds, and keystream is combined with buffers eight
    bytes at a time.  Wire bytes are bit-identical to {!Chacha20_ref}
    (the seed implementation, retained as a differential oracle),
    enforced by [test/prop/prop_chacha.ml] and the RFC 8439 vector
    tables in [test/test_crypto.ml]. *)

val key_len : int
(** 32. *)

val nonce_len : int
(** 12. *)

val block : key:bytes -> nonce:bytes -> counter:int -> bytes
(** One 64-byte keystream block (exposed for test vectors). *)

val xor_into :
  key:bytes ->
  nonce:bytes ->
  counter:int ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  len:int ->
  unit
(** XOR [len] keystream bytes (starting at block [counter]) with [src]
    at [src_off], writing to [dst] at [dst_off]; this is both encryption
    and decryption.  [src] and [dst] may be the same buffer at the same
    offset (in-place).  Raises [Invalid_argument] on out-of-bounds
    ranges. *)

val keystream_into :
  key:bytes -> nonce:bytes -> counter:int -> bytes -> off:int -> len:int -> unit
(** Write [len] raw keystream bytes directly into the buffer at [off],
    with no intermediate zero buffer. *)

val encrypt : ?counter:int -> key:bytes -> nonce:bytes -> bytes -> bytes
(** Encrypt (= decrypt) with initial block counter [counter]
    (default 1, per the RFC's AEAD usage). *)

val decrypt : ?counter:int -> key:bytes -> nonce:bytes -> bytes -> bytes

val keystream : key:bytes -> nonce:bytes -> counter:int -> int -> bytes
(** [keystream ~key ~nonce ~counter len] is [len] raw keystream bytes. *)

(** {2 State-level interface}

    Used by {!Aead} to share one key/nonce state setup between poly-key
    derivation (block 0) and the cipher stream (blocks 1..); everything
    above is expressible in terms of these. *)

val init_state : key:bytes -> nonce:bytes -> counter:int -> int array
(** The 16-word ChaCha20 state for (key, nonce, counter); validates key
    and nonce lengths. *)

val block_words : int array -> int -> int array -> unit
(** [block_words st ctr ws] writes the keystream words of the block at
    counter [ctr] into [ws].(0..15) ([st].(12) is ignored in favour of
    [ctr]).  The words carry garbage above bit 31 by design — consumers
    must truncate (byte serialization does so in hardware); mask with
    [0xffffffff] before arithmetic use. *)

val xor_with_state :
  int array ->
  counter:int ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  len:int ->
  unit
(** {!xor_into} on an already-initialized state. *)
