(** The seed field arithmetic modulo [2^255 - 19] (16×16-bit limbs,
    TweetNaCl schedule), retained as the differential-testing oracle for
    the fast 51-bit {!Fe25519} that replaced it on the hot path.  Used
    only by [test/prop/] and the crypto benchmark.

    Operations write their result into the first argument; aliasing
    between output and inputs is allowed everywhere. *)

type t = int array

val create : unit -> t
val of_limbs : int array -> t
val copy : t -> t
val blit : src:t -> dst:t -> unit
val zero : unit -> t
val one : unit -> t

val carry : t -> unit
val cswap : t -> t -> int -> unit
(** Constant-time swap when the selector bit is 1. *)

val pack : t -> bytes
(** Canonical 32-byte little-endian encoding (fully reduced). *)

val unpack : bytes -> t
(** Masks the top bit, per both RFC 7748 and RFC 8032. *)

val add : t -> t -> t -> unit
val sub : t -> t -> t -> unit
val mul : t -> t -> t -> unit
val square : t -> t -> unit

val invert : t -> t -> unit
(** [a^(p-2)] by Fermat. *)

val pow2523 : t -> t -> unit
(** [a^((p-5)/8)], the Edwards decompression square-root helper. *)

val parity : t -> int
val equal : t -> t -> bool
