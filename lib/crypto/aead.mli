(** ChaCha20-Poly1305 AEAD (RFC 8439).

    Sealing adds exactly {!tag_len} bytes, matching the paper's 16-byte
    per-layer encryption overhead.  The [_into] variants are the
    allocation-lean hot path used by the onion wrap/peel and server
    reseal loops; [seal]/[open_] are thin wrappers over them. *)

val key_len : int
(** 32. *)

val nonce_len : int
(** 12. *)

val tag_len : int
(** 16. *)

val seal : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes
(** [seal ~key ~nonce ?aad pt] is [ciphertext || tag]. *)

val open_ : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes option
(** Authenticated decryption; [None] on any tampering. *)

val seal_into :
  key:bytes ->
  nonce:bytes ->
  ?aad:bytes ->
  src:bytes ->
  src_off:int ->
  len:int ->
  dst:bytes ->
  dst_off:int ->
  unit ->
  unit
(** Seal [len] plaintext bytes of [src] at [src_off], writing
    [ciphertext || tag] ([len + tag_len] bytes) to [dst] at [dst_off].
    [src] and [dst] may be the same buffer at the same offset (in-place
    seal); distinct overlapping ranges raise [Invalid_argument], as do
    out-of-bounds ranges. *)

val open_into :
  key:bytes ->
  nonce:bytes ->
  ?aad:bytes ->
  src:bytes ->
  src_off:int ->
  len:int ->
  dst:bytes ->
  dst_off:int ->
  unit ->
  bool
(** Open [len] sealed bytes of [src] at [src_off] into [dst] at
    [dst_off] ([len - tag_len] bytes).  Returns [false] (leaving [dst]
    untouched — the tag is verified before any byte is decrypted) on
    tampering or if [len < tag_len].  Same overlap rules as
    {!seal_into}. *)

val poly_key : key:bytes -> nonce:bytes -> bytes
(** The one-time Poly1305 key for this (key, nonce) pair (RFC 8439
    §2.6); exposed for the standards vector suite. *)

val nonce_of : domain:int -> counter:int -> bytes
(** Deterministic 12-byte nonce from a 32-bit domain separator and a
    64-bit counter (Vuvuzela uses the round number). *)
