(* The seed X25519 scalar multiplication, kept verbatim over
   {!Fe25519_ref} as the ladder oracle: `test/prop/` checks full ladder
   agreement against {!Curve25519} over hundreds of seeded inputs, and
   `bench/main.exe` §Crypto reports the speedup of the 51-bit rewrite
   against this baseline.  Not used on any production path. *)

let _121665 : Fe25519_ref.t =
  let a = Fe25519_ref.create () in
  a.(0) <- 0xdb41;
  a.(1) <- 1;
  a

let scalarmult ~scalar ~point =
  if Bytes.length scalar <> 32 then
    invalid_arg "Curve25519_ref: bad scalar length";
  if Bytes.length point <> 32 then
    invalid_arg "Curve25519_ref: bad point length";
  let open Fe25519_ref in
  let z = Bytes.copy scalar in
  Bytes_util.set_u8 z 0 (Bytes_util.get_u8 z 0 land 248);
  Bytes_util.set_u8 z 31 ((Bytes_util.get_u8 z 31 land 127) lor 64);
  let x = unpack point in
  let a = create ()
  and b = copy x
  and c = create ()
  and d = create ()
  and e = create ()
  and f = create () in
  a.(0) <- 1;
  d.(0) <- 1;
  for i = 254 downto 0 do
    let r = (Bytes_util.get_u8 z (i lsr 3) lsr (i land 7)) land 1 in
    cswap a b r;
    cswap c d r;
    add e a c;
    sub a a c;
    add c b d;
    sub b b d;
    square d e;
    square f a;
    mul a c a;
    mul c b e;
    add e a c;
    sub a a c;
    square b a;
    sub c d f;
    mul a c _121665;
    add a a d;
    mul c c a;
    mul a d f;
    mul d b x;
    square b e;
    cswap a b r;
    cswap c d r
  done;
  let inv_c = create () in
  invert inv_c c;
  let out = create () in
  mul out a inv_c;
  pack out

let base_point =
  let b = Bytes.make 32 '\000' in
  Bytes.set b 0 '\x09';
  b

let scalarmult_base scalar = scalarmult ~scalar ~point:base_point
