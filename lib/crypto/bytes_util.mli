(** Byte-level helpers: endian loads/stores, hex codecs, xor, and
    constant-time comparison.  Shared by every primitive in
    {!Vuvuzela_crypto}. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit

val le32 : bytes -> int -> int
(** Little-endian 32-bit load (result in [0, 2^32)). *)

val store_le32 : bytes -> int -> int -> unit
val le64 : bytes -> int -> int
val store_le64 : bytes -> int -> int -> unit

val be32 : bytes -> int -> int
(** Big-endian 32-bit load. *)

val store_be32 : bytes -> int -> int -> unit
val store_be64 : bytes -> int -> int -> unit

val unsafe_get_u8 : bytes -> int -> int
(** Unchecked byte load for hot loops whose bounds were validated up
    front.  Callers must guard every range themselves. *)

val unsafe_set_u8 : bytes -> int -> int -> unit
val unsafe_le32 : bytes -> int -> int
val unsafe_store_le32 : bytes -> int -> int -> unit

val unsafe_store64_le : bytes -> int -> lo:int -> hi:int -> unit
(** Store eight little-endian bytes given as two 32-bit words ([~lo]
    first).  Two halves rather than one int because OCaml native ints
    are 63-bit — a [le64] round-trip would zero bit 63 — and boxed
    [Int64] would allocate without flambda. *)

val unsafe_xor64_le :
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> lo:int -> hi:int -> unit
(** XOR the 32-bit words [~lo]/[~hi] into eight bytes of [src] at
    [src_off], storing into [dst] at [dst_off].  Unchecked. *)

val xor_into : src:bytes -> dst:bytes -> int -> unit
(** [xor_into ~src ~dst len] xors the first [len] bytes of [src] into
    [dst] in place. *)

val xor : bytes -> bytes -> bytes
(** Pointwise xor of the common prefix of the two buffers. *)

val ct_equal : bytes -> bytes -> bool
(** Constant-time equality.  Lengths are treated as public. *)

val ct_equal_sub :
  bytes -> a_off:int -> bytes -> b_off:int -> len:int -> bool
(** Constant-time equality of [len]-byte sub-ranges.  Offsets/length are
    treated as public; raises [Invalid_argument] on bad ranges. *)

val of_hex : string -> bytes
(** Decode a hex string; spaces and newlines are ignored.
    @raise Invalid_argument on malformed input. *)

val to_hex : bytes -> string
val concat : bytes list -> bytes

val pad_to : int -> bytes -> bytes
(** [pad_to len b] zero-pads [b] on the right to exactly [len] bytes.
    @raise Invalid_argument if [b] is longer than [len]. *)
