(* Simulator tests: the DES engine itself, the calibrated cost model
   against the paper's reported numbers, and the figure harnesses'
   shape properties. *)

open Vuvuzela_sim

let feq ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let within msg ~pct expected actual =
  if expected = 0. then feq msg expected actual
  else begin
    let rel = Float.abs ((actual -. expected) /. expected) in
    if rel > pct /. 100. then
      Alcotest.failf "%s: %.4g is %.1f%% from paper's %.4g (allow %.0f%%)"
        msg actual (100. *. rel) expected pct
  end

(* ------------------------------------------------------------------ *)
(* Event_sim engine                                                    *)
(* ------------------------------------------------------------------ *)

let test_event_ordering () =
  let sim = Event_sim.create () in
  let log = ref [] in
  Event_sim.schedule sim ~delay:3. (fun () -> log := 3 :: !log);
  Event_sim.schedule sim ~delay:1. (fun () -> log := 1 :: !log);
  Event_sim.schedule sim ~delay:2. (fun () -> log := 2 :: !log);
  Event_sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  feq "clock at last event" 3. (Event_sim.now sim);
  Alcotest.(check int) "all processed" 3 (Event_sim.events_processed sim)

let test_event_fifo_ties () =
  (* Same-time events run in scheduling order. *)
  let sim = Event_sim.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Event_sim.schedule sim ~delay:5. (fun () -> log := i :: !log)
  done;
  Event_sim.run sim;
  Alcotest.(check (list int)) "fifo ties" (List.init 10 (fun i -> i + 1))
    (List.rev !log)

let test_event_nested_scheduling () =
  let sim = Event_sim.create () in
  let log = ref [] in
  Event_sim.schedule sim ~delay:1. (fun () ->
      log := "a" :: !log;
      Event_sim.schedule sim ~delay:1. (fun () -> log := "c" :: !log));
  Event_sim.schedule sim ~delay:1.5 (fun () -> log := "b" :: !log);
  Event_sim.run sim;
  Alcotest.(check (list string)) "nested" [ "a"; "b"; "c" ] (List.rev !log)

let test_event_until () =
  let sim = Event_sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Event_sim.schedule sim ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Event_sim.run ~until:5.5 sim;
  Alcotest.(check int) "only first five" 5 !count;
  feq "clock clamped" 5.5 (Event_sim.now sim)

let test_event_negative_delay () =
  let sim = Event_sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Event_sim.schedule: negative delay") (fun () ->
      Event_sim.schedule sim ~delay:(-1.) ignore)

let test_resource_exclusion () =
  let sim = Event_sim.create () in
  let r = Event_sim.Resource.create sim in
  let log = ref [] in
  (* Three jobs of 2s each contend: completions at 2, 4, 6. *)
  for i = 1 to 3 do
    Event_sim.schedule sim ~delay:0. (fun () ->
        Event_sim.Resource.use r ~duration:2. (fun () ->
            log := (i, Event_sim.now sim) :: !log))
  done;
  Event_sim.run sim;
  Alcotest.(check (list (pair int (float 0.001))))
    "serialized completions"
    [ (1, 2.); (2, 4.); (3, 6.) ]
    (List.rev !log);
  feq ~tol:1e-6 "fully utilized" 1.
    (Event_sim.Resource.utilization r ~horizon:6.)

let test_resource_heap_growth () =
  (* Push enough events to force several heap reallocations. *)
  let sim = Event_sim.create () in
  let count = ref 0 in
  for i = 1 to 1000 do
    Event_sim.schedule sim ~delay:(float_of_int (1000 - i)) (fun () -> incr count)
  done;
  Event_sim.run sim;
  Alcotest.(check int) "all 1000 ran" 1000 !count

(* ------------------------------------------------------------------ *)
(* Cost model vs the paper                                             *)
(* ------------------------------------------------------------------ *)

let noise300k = Figures.conv_noise_of 300_000.

let test_paper_lower_bound () =
  (* §8.2: (3.2e6 × 3)/(3.4e5) ≈ 28 s. *)
  within "lower bound at 2M users" ~pct:3. 28.2
    (Cost_model.conv_lower_bound Cost_model.paper ~users:2_000_000 ~servers:3
       ~noise:noise300k)

let test_paper_noise_total () =
  feq "1.2M noise requests"
    1_200_000.
    (2. *. Cost_model.conv_noise_per_server noise300k)

let test_paper_latencies () =
  let lat users =
    Cost_model.conv_latency Cost_model.paper ~users ~servers:3 ~noise:noise300k
  in
  (* Paper: 20 s at 10 users, 37 s at 1M, 55 s at 2M. *)
  within "10 users" ~pct:10. 20. (lat 10);
  within "1M users" ~pct:10. 37. (lat 1_000_000);
  within "2M users" ~pct:10. 55. (lat 2_000_000)

let test_paper_throughput () =
  within "68K msgs/s at 1M users" ~pct:10. 68_000.
    (Cost_model.conv_throughput Cost_model.paper ~users:1_000_000 ~servers:3
       ~noise:noise300k)

let test_paper_client_costs () =
  let h = Figures.headlines () in
  within "client bandwidth ~12 KB/s" ~pct:15. 12_000. h.Figures.client_bandwidth;
  within "dialing drop ~7 MB" ~pct:15. 7e6 h.Figures.drop_bytes;
  within "4 msgs/minute" ~pct:15. 4. h.Figures.messages_per_minute

let test_paper_dialing_noise_count () =
  (* §8.3: "about 39,000 noise invitations" per drop with µ=13K and 3
     servers. *)
  let bytes =
    Cost_model.invitation_drop_bytes ~users:0 ~servers:3 ~m:1
      ~dial_fraction:0. ~dial_noise:Figures.dial_noise_13k
  in
  within "39K noise invitations" ~pct:2. 39_000.
    (bytes /. float_of_int Vuvuzela.Types.invitation_len)

let test_latency_linear_in_users () =
  let lat users =
    Cost_model.conv_latency Cost_model.paper ~users ~servers:3 ~noise:noise300k
  in
  let base = lat 10 in
  let slope1 = (lat 1_000_000 -. base) /. 1e6 in
  let slope2 = (lat 2_000_000 -. lat 1_000_000) /. 1e6 in
  within "constant slope (linear scaling)" ~pct:2. slope1 slope2

let test_noise_independent_of_users () =
  (* §6.4: the cover traffic is the same for 10 users as for 2M. *)
  feq "noise at 10 = noise at 2M"
    (Cost_model.conv_total_requests ~users:0 ~servers:3 ~noise:noise300k)
    (Cost_model.conv_total_requests ~users:2_000_000 ~servers:3 ~noise:noise300k
    -. 2_000_000.)

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let test_figure7_supported_rounds () =
  let curves = Figures.figure7 () in
  let supported mu =
    (List.find (fun c -> c.Figures.mu = mu) curves).Figures.supported_k
  in
  (* Paper: 70K / 250K / 500K (we match within ~10%). *)
  within "µ=150K" ~pct:10. 70_000. (float_of_int (supported 150_000.));
  within "µ=300K" ~pct:10. 250_000. (float_of_int (supported 300_000.));
  within "µ=450K" ~pct:5. 500_000. (float_of_int (supported 450_000.))

let test_figure7_monotone () =
  List.iter
    (fun c ->
      let rec check = function
        | (k1, e1, d1) :: ((k2, e2, d2) :: _ as rest) ->
            if k2 > k1 && (e2 < e1 || d2 < d1) then
              Alcotest.failf "µ=%g: ε′ or δ′ not monotone in k" c.Figures.mu;
            check rest
        | _ -> ()
      in
      check c.Figures.points)
    (Figures.figure7 ())

let test_figure7_ordering () =
  (* More noise ⇒ lower ε′ at the same k. *)
  let curves = Figures.figure7 () in
  let eps_at mu =
    let c = List.find (fun c -> c.Figures.mu = mu) curves in
    let _, e, _ = List.nth c.Figures.points 6 in
    e
  in
  Alcotest.(check bool) "450K < 300K < 150K at mid-k" true
    (eps_at 450_000. < eps_at 300_000. && eps_at 300_000. < eps_at 150_000.)

let test_figure8_supported_rounds () =
  let curves = Figures.figure8 () in
  let supported mu =
    (List.find (fun c -> c.Figures.mu = mu) curves).Figures.supported_k
  in
  (* Paper: 1200 / 3500 / 8000; exact Theorem 2 arithmetic gives the
     same order of magnitude (the paper rounds generously). *)
  within "µ=8K" ~pct:15. 1_200. (float_of_int (supported 8_000.));
  within "µ=13K" ~pct:25. 3_500. (float_of_int (supported 13_000.));
  within "µ=20K" ~pct:25. 8_000. (float_of_int (supported 20_000.))

let test_figure9_shape () =
  let curves = Figures.figure9 () in
  Alcotest.(check int) "three noise levels" 3 (List.length curves);
  List.iter
    (fun c ->
      let rec mono = function
        | (u1, l1) :: ((u2, l2) :: _ as rest) ->
            if u2 > u1 && l2 <= l1 then
              Alcotest.failf "%s: latency not increasing" c.Figures.label;
            mono rest
        | _ -> ()
      in
      mono c.Figures.points)
    curves;
  (* Higher µ ⇒ higher latency at every x. *)
  match curves with
  | [ c100; c200; c300 ] ->
      List.iter2
        (fun (_, l1) (_, l2) ->
          if l1 >= l2 then Alcotest.fail "µ=100K should be below µ=200K")
        c100.Figures.points c200.Figures.points;
      List.iter2
        (fun (_, l2) (_, l3) ->
          if l2 >= l3 then Alcotest.fail "µ=200K should be below µ=300K")
        c200.Figures.points c300.Figures.points
  | _ -> Alcotest.fail "unexpected curve count"

let test_figure10_shape () =
  let c = Figures.figure10 () in
  let first = snd (List.hd c.Figures.points) in
  let last = snd (List.nth c.Figures.points (List.length c.Figures.points - 1)) in
  within "13 s at 10 users" ~pct:10. 13. first;
  within "50 s at 2M users" ~pct:10. 50. last

let test_figure11_quadratic () =
  let points = Figures.figure11 () in
  let r2 = Figures.quadratic_r2 points in
  if r2 < 0.98 then Alcotest.failf "latency vs servers² fit R²=%.3f" r2;
  within "~140 s at 6 servers" ~pct:10. 140. (snd (List.nth points 5))

let test_des_matches_closed_form () =
  (* The pipeline DES and the closed-form model must agree on latency. *)
  List.iter
    (fun users ->
      let closed =
        Cost_model.conv_latency Cost_model.paper ~users ~servers:3
          ~noise:noise300k
      in
      let r = Pipeline.run ~users ~servers:3 ~noise:noise300k ~rounds:4 () in
      within
        (Printf.sprintf "DES vs closed form at %d users" users)
        ~pct:3. closed r.Pipeline.mean_latency)
    [ 10; 500_000; 2_000_000 ]

let test_des_pipelining () =
  (* Rounds overlap: the interval between completions is well below the
     end-to-end latency once the pipe is full. *)
  let r = Pipeline.run ~users:1_000_000 ~servers:3 ~noise:noise300k ~rounds:8 () in
  Alcotest.(check int) "all rounds completed" 8 r.Pipeline.rounds_completed;
  if r.Pipeline.round_interval >= r.Pipeline.mean_latency /. 2. then
    Alcotest.failf "no pipelining: interval %.1f vs latency %.1f"
      r.Pipeline.round_interval r.Pipeline.mean_latency;
  within "throughput near closed form" ~pct:15.
    (Cost_model.conv_throughput Cost_model.paper ~users:1_000_000 ~servers:3
       ~noise:noise300k)
    r.Pipeline.throughput

let test_des_utilization () =
  let r = Pipeline.run ~users:1_000_000 ~servers:3 ~noise:noise300k ~rounds:8 () in
  (* Every server works; none exceeds full utilization. *)
  Array.iteri
    (fun i u ->
      if u <= 0.05 || u > 1.0 then
        Alcotest.failf "server %d utilization %.2f out of range" i u)
    r.Pipeline.server_utilization

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"latency increases with servers" ~count:30
      (pair (int_range 1 5) (int_range 0 1_000_000))
      (fun (s, users) ->
        Cost_model.conv_latency Cost_model.paper ~users ~servers:s
          ~noise:noise300k
        < Cost_model.conv_latency Cost_model.paper ~users ~servers:(s + 1)
            ~noise:noise300k);
    Test.make ~name:"throughput positive and bounded by dh rate" ~count:30
      (int_range 1 2_000_000)
      (fun users ->
        let tp =
          Cost_model.conv_throughput Cost_model.paper ~users ~servers:3
            ~noise:noise300k
        in
        tp > 0. && tp < Cost_model.paper.Cost_model.dh_ops_per_sec);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "sim",
    [
      tc "event ordering" `Quick test_event_ordering;
      tc "event fifo ties" `Quick test_event_fifo_ties;
      tc "nested scheduling" `Quick test_event_nested_scheduling;
      tc "run until" `Quick test_event_until;
      tc "negative delay" `Quick test_event_negative_delay;
      tc "resource exclusion" `Quick test_resource_exclusion;
      tc "heap growth" `Quick test_resource_heap_growth;
      tc "paper lower bound (§8.2)" `Quick test_paper_lower_bound;
      tc "paper noise total" `Quick test_paper_noise_total;
      tc "paper latencies (fig 9 endpoints)" `Quick test_paper_latencies;
      tc "paper throughput" `Quick test_paper_throughput;
      tc "paper client costs (§8.3)" `Quick test_paper_client_costs;
      tc "paper dialing noise count" `Quick test_paper_dialing_noise_count;
      tc "latency linear in users" `Quick test_latency_linear_in_users;
      tc "noise independent of users" `Quick test_noise_independent_of_users;
      tc "figure 7 supported rounds" `Quick test_figure7_supported_rounds;
      tc "figure 7 monotone" `Quick test_figure7_monotone;
      tc "figure 7 ordering" `Quick test_figure7_ordering;
      tc "figure 8 supported rounds" `Quick test_figure8_supported_rounds;
      tc "figure 9 shape" `Quick test_figure9_shape;
      tc "figure 10 endpoints" `Quick test_figure10_shape;
      tc "figure 11 quadratic" `Quick test_figure11_quadratic;
      tc "DES matches closed form" `Quick test_des_matches_closed_form;
      tc "DES pipelines rounds" `Quick test_des_pipelining;
      tc "DES utilization sane" `Quick test_des_utilization;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )

(* ------------------------------------------------------------------ *)
(* Baselines (§1/§10 related-work comparison)                          *)
(* ------------------------------------------------------------------ *)

let test_baseline_scaling_shapes () =
  (* Broadcast and PIR are quadratic; Vuvuzela is linear.  Doubling the
     users must roughly 4× the baselines but at most ~2× Vuvuzela. *)
  let b n =
    Baselines.broadcast_round_latency Cost_model.paper ~users:n ~msg_bytes:256
  in
  let p n = Baselines.pir_round_latency ~users:n ~msg_bytes:256 in
  let v n = Baselines.vuvuzela_round_latency Cost_model.paper ~users:n ~noise:noise300k in
  let ratio f = f 200_000 /. f 100_000 in
  if Float.abs (ratio b -. 4.) > 0.2 then
    Alcotest.failf "broadcast ratio %.2f not ~4" (ratio b);
  if Float.abs (ratio p -. 4.) > 0.2 then
    Alcotest.failf "pir ratio %.2f not ~4" (ratio p);
  if ratio v > 2.0 then Alcotest.failf "vuvuzela ratio %.2f not sub-linear-ish" (ratio v)

let test_baseline_crossover_claim () =
  (* The paper's claim: prior systems cap at ~5K users (Dissent) while
     Vuvuzela reaches 2M at sub-minute latency — about 100×.  On our
     common constants, with a 60 s round budget: *)
  let budget = 60. in
  let bc =
    Baselines.max_users ~budget (fun n ->
        Baselines.broadcast_round_latency Cost_model.paper ~users:n ~msg_bytes:256)
  in
  let pir =
    Baselines.max_users ~budget (fun n ->
        Baselines.pir_round_latency ~users:n ~msg_bytes:256)
  in
  let vuv =
    Baselines.max_users ~budget (fun n ->
        Baselines.vuvuzela_round_latency Cost_model.paper ~users:n ~noise:noise300k)
  in
  if bc > 100_000 then Alcotest.failf "broadcast supports %d users?!" bc;
  if vuv < 1_500_000 then Alcotest.failf "vuvuzela only %d users" vuv;
  let factor = float_of_int vuv /. float_of_int (max bc pir) in
  if factor < 10. then
    Alcotest.failf "scaling factor only %.0f× over baselines" factor

let test_functional_broadcast () =
  let rng = Vuvuzela_crypto.Drbg.of_string "bc-test" in
  let bc = Baselines.Broadcast.create ~n:6 ~seed:"bc" in
  let blobs =
    Baselines.Broadcast.run_round ~rng bc ~sends:[ (0, 1, "hi one"); (2, 3, "hi three") ]
  in
  (* 2 real + 6 cover blobs broadcast to 6 users. *)
  Alcotest.(check int) "blob count" 8 blobs;
  Alcotest.(check int) "n^2 trial decryptions" (8 * 6)
    (Baselines.Broadcast.trial_decryptions bc);
  (match Baselines.Broadcast.inbox bc 1 with
  | [ (_, text) ] -> Alcotest.(check string) "delivered" "hi one" text
  | l -> Alcotest.failf "inbox 1 has %d entries" (List.length l));
  (match Baselines.Broadcast.inbox bc 3 with
  | [ (_, text) ] -> Alcotest.(check string) "delivered" "hi three" text
  | l -> Alcotest.failf "inbox 3 has %d entries" (List.length l));
  Alcotest.(check int) "bystander got nothing" 0
    (List.length (Baselines.Broadcast.inbox bc 5))

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "baseline scaling shapes" `Quick test_baseline_scaling_shapes;
        Alcotest.test_case "baseline crossover (100x claim)" `Quick test_baseline_crossover_claim;
        Alcotest.test_case "functional broadcast messenger" `Quick test_functional_broadcast;
      ] )
