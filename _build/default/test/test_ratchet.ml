(* Forward-secrecy ratchet tests (§9 extension). *)

open Vuvuzela_crypto
open Vuvuzela

let base = Bytes.of_string "ratchet-test-base-secret"

let test_lockstep () =
  (* Two parties with the same base derive identical keys per round. *)
  let a = Ratchet.create ~base ~first_round:1 () in
  let b = Ratchet.create ~base ~first_round:1 () in
  for round = 1 to 20 do
    match (Ratchet.key_for a ~round, Ratchet.key_for b ~round) with
    | Some ka, Some kb ->
        Alcotest.(check string)
          (Printf.sprintf "round %d keys agree" round)
          (Bytes_util.to_hex ka) (Bytes_util.to_hex kb)
    | _ -> Alcotest.fail "key unavailable in lockstep"
  done

let test_keys_distinct () =
  let a = Ratchet.create ~base ~first_round:1 () in
  let seen = Hashtbl.create 64 in
  for round = 1 to 100 do
    match Ratchet.key_for a ~round with
    | Some k ->
        let h = Bytes.to_string k in
        if Hashtbl.mem seen h then Alcotest.failf "key repeated at %d" round;
        Hashtbl.replace seen h ()
    | None -> Alcotest.fail "missing key"
  done

let test_forward_secrecy () =
  (* After advancing, earlier rounds are unrecoverable. *)
  let a = Ratchet.create ~window:4 ~base ~first_round:1 () in
  ignore (Ratchet.key_for a ~round:1);
  ignore (Ratchet.key_for a ~round:2);
  ignore (Ratchet.key_for a ~round:50);
  Alcotest.(check bool) "round 1 erased" true (Ratchet.erased a ~round:1);
  Alcotest.(check (option string)) "round 1 key gone" None
    (Option.map Bytes.to_string (Ratchet.key_for a ~round:1));
  Alcotest.(check (option string)) "round 2 key gone (consumed)" None
    (Option.map Bytes.to_string (Ratchet.key_for a ~round:2));
  (* Rounds 30..45 are also gone: outside the window of 4. *)
  Alcotest.(check bool) "round 30 erased" true (Ratchet.erased a ~round:30)

let test_skipped_window () =
  (* Rounds skipped within the window remain claimable exactly once. *)
  let a = Ratchet.create ~window:8 ~base ~first_round:1 () in
  ignore (Ratchet.key_for a ~round:5);
  (* rounds 1-4 were skipped and retained *)
  let b = Ratchet.create ~window:8 ~base ~first_round:1 () in
  let expected =
    Option.map Bytes_util.to_hex (Ratchet.key_for b ~round:3)
  in
  let got = Option.map Bytes_util.to_hex (Ratchet.key_for a ~round:3) in
  Alcotest.(check (option string)) "skipped key matches lockstep" expected got;
  Alcotest.(check (option string)) "consumed once" None
    (Option.map Bytes_util.to_hex (Ratchet.key_for a ~round:3))

let test_interop_with_aead () =
  (* End to end: seal at round r with sender ratchet, open with receiver
     ratchet even with gaps and reordering. *)
  let send = Ratchet.create ~base ~first_round:1 () in
  let recv = Ratchet.create ~base ~first_round:1 () in
  let seal round msg =
    let key = Option.get (Ratchet.key_for send ~round) in
    Aead.seal ~key ~nonce:(Aead.nonce_of ~domain:9 ~counter:round)
      (Bytes.of_string msg)
  in
  let open_ round ct =
    match Ratchet.key_for recv ~round with
    | None -> None
    | Some key ->
        Aead.open_ ~key ~nonce:(Aead.nonce_of ~domain:9 ~counter:round) ct
  in
  let c1 = seal 1 "first" in
  let c3 = seal 3 "third" in
  let c7 = seal 7 "seventh" in
  (* Receiver sees 7 first (skipping 1-6), then goes back for 1 and 3. *)
  Alcotest.(check (option string)) "round 7" (Some "seventh")
    (Option.map Bytes.to_string (open_ 7 c7));
  Alcotest.(check (option string)) "round 1 late" (Some "first")
    (Option.map Bytes.to_string (open_ 1 c1));
  Alcotest.(check (option string)) "round 3 late" (Some "third")
    (Option.map Bytes.to_string (open_ 3 c3))

let test_window_zero () =
  (* window 0: strictly in-order; any skip is lost. *)
  let a = Ratchet.create ~window:0 ~base ~first_round:1 () in
  ignore (Ratchet.key_for a ~round:2);
  Alcotest.(check bool) "skipped round lost" true (Ratchet.erased a ~round:1)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"ratchet keys agree under any access order" ~count:30
      (list_of_size (Gen.int_range 1 10) (int_range 1 30))
      (fun rounds ->
        (* Receiver accesses rounds in the given (possibly weird) order;
           whenever a key is available it must equal the lockstep key. *)
        let recv = Ratchet.create ~window:32 ~base ~first_round:1 () in
        List.for_all
          (fun r ->
            match Ratchet.key_for recv ~round:r with
            | None -> true (* consumed or erased: acceptable *)
            | Some k ->
                let fresh = Ratchet.create ~window:32 ~base ~first_round:1 () in
                Ratchet.key_for fresh ~round:r = Some k)
          rounds);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "ratchet",
    [
      tc "lockstep derivation" `Quick test_lockstep;
      tc "keys distinct" `Quick test_keys_distinct;
      tc "forward secrecy" `Quick test_forward_secrecy;
      tc "skipped window" `Quick test_skipped_window;
      tc "interop with aead" `Quick test_interop_with_aead;
      tc "window zero" `Quick test_window_zero;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )
