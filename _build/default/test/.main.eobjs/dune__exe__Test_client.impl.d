test/test_client.ml: Alcotest Bytes_util Client Gen Laplace List Network Noise Printf QCheck QCheck_alcotest String Test Types Vuvuzela Vuvuzela_crypto Vuvuzela_dp
