test/test_attack.ml: Alcotest Array Disclosure Drbg Float Laplace List Mechanism Observation QCheck QCheck_alcotest Strawman Test Vuvuzela_attack Vuvuzela_crypto Vuvuzela_dp
