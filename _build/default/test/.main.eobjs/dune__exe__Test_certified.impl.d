test/test_certified.ml: Alcotest Array Bytes Bytes_util Certificate Chain Client Dialing Drbg Ed25519 Laplace List Network Noise Server Types Vuvuzela Vuvuzela_crypto Vuvuzela_dp Vuvuzela_mixnet
