test/test_ratchet.ml: Aead Alcotest Bytes Bytes_util Gen Hashtbl List Option Printf QCheck QCheck_alcotest Ratchet Test Vuvuzela Vuvuzela_crypto
