test/test_workload.ml: Alcotest Vuvuzela_sim Workload
