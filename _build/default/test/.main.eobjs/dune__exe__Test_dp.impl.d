test/test_dp.ml: Alcotest Bayes Composition Drbg Float Laplace List Mechanism Noise QCheck QCheck_alcotest Test Vuvuzela_crypto Vuvuzela_dp
