test/test_network.ml: Alcotest Array Bytes_util Chain Client Deaddrop Drbg Hashtbl Laplace List Network Noise Option Printf String Vuvuzela Vuvuzela_crypto Vuvuzela_dp
