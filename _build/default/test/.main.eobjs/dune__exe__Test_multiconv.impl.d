test/test_multiconv.ml: Alcotest Bytes Chain Client Deaddrop Laplace List Network Noise Printf Vuvuzela Vuvuzela_crypto Vuvuzela_dp
