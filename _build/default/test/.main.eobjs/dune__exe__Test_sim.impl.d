test/test_sim.ml: Alcotest Array Baselines Cost_model Event_sim Figures Float List Pipeline Printf QCheck QCheck_alcotest Test Vuvuzela Vuvuzela_crypto Vuvuzela_sim
