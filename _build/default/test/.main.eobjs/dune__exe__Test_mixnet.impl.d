test/test_mixnet.ml: Alcotest Array Bytes Bytes_util Char Drbg Fun Gen Hashtbl List Onion Option Printf QCheck QCheck_alcotest Shuffle String Test Vuvuzela_crypto Vuvuzela_mixnet Wire
