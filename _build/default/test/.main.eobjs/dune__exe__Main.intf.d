test/main.mli:
