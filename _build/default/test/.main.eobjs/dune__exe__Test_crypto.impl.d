test/test_crypto.ml: Aead Alcotest Box Bytes Bytes_util Chacha20 Char Curve25519 Drbg Fe25519 Gen Hkdf Hmac List Poly1305 Printf QCheck QCheck_alcotest Sha256 Test Vuvuzela_crypto
