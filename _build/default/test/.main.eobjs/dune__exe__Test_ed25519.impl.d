test/test_ed25519.ml: Alcotest Array Bytes Bytes_util Certificate Char Drbg Ed25519 Gen List QCheck QCheck_alcotest Sha512 String Test Types Vuvuzela Vuvuzela_crypto
