(* SHA-512, Ed25519 (RFC 8032), and the §9 certificate extension. *)

open Vuvuzela_crypto
open Vuvuzela

let hex = Bytes_util.of_hex
let check_hex msg expected actual =
  Alcotest.(check string) msg expected (Bytes_util.to_hex actual)

(* ------------------------------------------------------------------ *)
(* SHA-512                                                             *)
(* ------------------------------------------------------------------ *)

let test_sha512_vectors () =
  check_hex "sha512(abc)"
    "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
    (Sha512.digest_string "abc");
  check_hex "sha512(empty)"
    "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
    (Sha512.digest_string "");
  check_hex "sha512(two blocks)"
    "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
    (Sha512.digest_string
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha512_incremental () =
  let data = Bytes.init 777 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let expected = Bytes_util.to_hex (Sha512.digest data) in
  let t = Sha512.init () in
  let pos = ref 0 in
  List.iter
    (fun n ->
      Sha512.feed t (Bytes.sub data !pos n);
      pos := !pos + n)
    [ 1; 100; 27; 128; 129; 300; 92 ];
  assert (!pos = 777);
  check_hex "incremental = one-shot" expected (Sha512.get t)

(* ------------------------------------------------------------------ *)
(* Ed25519 RFC 8032 vectors                                            *)
(* ------------------------------------------------------------------ *)

let rfc8032_case name sk_h pk_h msg_h sig_h () =
  let sk = hex sk_h and msg = hex msg_h in
  check_hex (name ^ " public key") pk_h (Ed25519.public_key sk);
  let signature = Ed25519.sign ~secret:sk msg in
  check_hex (name ^ " signature") sig_h signature;
  Alcotest.(check bool) (name ^ " verifies") true
    (Ed25519.verify ~public:(hex pk_h) ~signature msg)

let test_rfc8032_1 =
  rfc8032_case "test1"
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
    "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a" ""
    "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"

let test_rfc8032_2 =
  rfc8032_case "test2"
    "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"
    "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c" "72"
    "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"

let test_rfc8032_3 =
  rfc8032_case "test3"
    "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7"
    "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
    "af82"
    "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"

let test_ed25519_rejections () =
  let rng = Drbg.of_string "ed-rej" in
  let sk, pk = Ed25519.keypair ~rng () in
  let msg = Bytes.of_string "message" in
  let signature = Ed25519.sign ~secret:sk msg in
  (* Tampered message, signature, and key must all fail. *)
  Alcotest.(check bool) "wrong message" false
    (Ed25519.verify ~public:pk ~signature (Bytes.of_string "other"));
  let bad_sig = Bytes.copy signature in
  Bytes.set bad_sig 5 (Char.chr (Char.code (Bytes.get bad_sig 5) lxor 1));
  Alcotest.(check bool) "tampered signature" false
    (Ed25519.verify ~public:pk ~signature:bad_sig msg);
  let _, pk2 = Ed25519.keypair ~rng () in
  Alcotest.(check bool) "wrong key" false
    (Ed25519.verify ~public:pk2 ~signature msg);
  Alcotest.(check bool) "bad lengths" false
    (Ed25519.verify ~public:(Bytes.make 5 'x') ~signature msg);
  Alcotest.(check bool) "bad sig length" false
    (Ed25519.verify ~public:pk ~signature:(Bytes.make 63 'x') msg)

let test_ed25519_malleability () =
  (* s' = s + L must be rejected (non-canonical S). *)
  let rng = Drbg.of_string "ed-malle" in
  let sk, pk = Ed25519.keypair ~rng () in
  let msg = Bytes.of_string "malleability" in
  let signature = Ed25519.sign ~secret:sk msg in
  let l =
    [|
      0xed; 0xd3; 0xf5; 0x5c; 0x1a; 0x63; 0x12; 0x58; 0xd6; 0x9c; 0xf7;
      0xa2; 0xde; 0xf9; 0xde; 0x14; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0;
      0; 0; 0; 0x10;
    |]
  in
  let forged = Bytes.copy signature in
  let carry = ref 0 in
  for i = 0 to 31 do
    let v = Bytes_util.get_u8 forged (32 + i) + l.(i) + !carry in
    Bytes_util.set_u8 forged (32 + i) (v land 0xff);
    carry := v lsr 8
  done;
  (* If adding L overflowed 256 bits the forgery is invalid anyway;
     otherwise it must be rejected by the canonical-s check. *)
  if !carry = 0 then
    Alcotest.(check bool) "s+L rejected" false
      (Ed25519.verify ~public:pk ~signature:forged msg)

let test_ed25519_off_curve_key () =
  (* Most 32-byte strings with high y are off the curve; verification
     must fail rather than crash. *)
  let msg = Bytes.of_string "m" in
  let signature = Bytes.make 64 '\000' in
  let bad_pk = hex "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f" in
  Alcotest.(check bool) "off-curve pk" false
    (Ed25519.verify ~public:bad_pk ~signature msg)

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

let test_certificate_roundtrip () =
  let rng = Drbg.of_string "cert" in
  let issuer_sk, issuer_pk = Ed25519.keypair ~rng () in
  let subject = Types.identity_of_seed (Bytes.of_string "cert-subject") in
  let cert =
    Certificate.issue ~issuer_sk ~subject_pk:subject.Types.public
      ~name:"alice@example" ~expires:100
  in
  (match Certificate.decode (Certificate.encode cert) with
  | Ok c ->
      Alcotest.(check bool) "encode/decode" true
        (Bytes.equal c.Certificate.signature cert.Certificate.signature
        && Bytes.equal c.Certificate.subject_pk cert.Certificate.subject_pk
        && c.Certificate.expires = cert.Certificate.expires)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "encoded size" Certificate.encoded_len
    (Bytes.length (Certificate.encode cert));
  let trusted k = Bytes.equal k issuer_pk in
  (match Certificate.verify ~now:50 ~trusted cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid cert rejected: %a" Certificate.pp_error e);
  Alcotest.(check bool) "name matches" true
    (Certificate.matches_name cert "alice@example");
  Alcotest.(check bool) "wrong name" false
    (Certificate.matches_name cert "mallory@example")

let test_certificate_rejections () =
  let rng = Drbg.of_string "cert-rej" in
  let issuer_sk, issuer_pk = Ed25519.keypair ~rng () in
  let other_sk, other_pk = Ed25519.keypair ~rng () in
  let subject = Types.identity_of_seed (Bytes.of_string "cert-subject2") in
  let cert =
    Certificate.issue ~issuer_sk ~subject_pk:subject.Types.public ~name:"bob"
      ~expires:10
  in
  let trusted k = Bytes.equal k issuer_pk in
  (* Expired. *)
  (match Certificate.verify ~now:11 ~trusted cert with
  | Error (Certificate.Expired _) -> ()
  | _ -> Alcotest.fail "expired cert accepted");
  (* Untrusted issuer. *)
  (match Certificate.verify ~now:5 ~trusted:(fun _ -> false) cert with
  | Error Certificate.Untrusted_issuer -> ()
  | _ -> Alcotest.fail "untrusted issuer accepted");
  (* Forged: mallory re-signs alice's cert body with her own key but
     claims the original issuer. *)
  let forged =
    let c = Certificate.issue ~issuer_sk:other_sk ~subject_pk:subject.Types.public ~name:"bob" ~expires:10 in
    { c with Certificate.issuer_pk }
  in
  (match Certificate.verify ~now:5 ~trusted forged with
  | Error Certificate.Bad_signature -> ()
  | _ -> Alcotest.fail "forged cert accepted");
  ignore other_pk;
  (* Tampered subject key. *)
  let tampered = { cert with Certificate.subject_pk = Bytes.make 32 'x' } in
  match Certificate.verify ~now:5 ~trusted tampered with
  | Error Certificate.Bad_signature -> ()
  | _ -> Alcotest.fail "tampered cert accepted"

let test_certified_invitation () =
  let rng = Drbg.of_string "cert-inv" in
  let signer_sk, signer_pk = Ed25519.keypair ~rng () in
  let caller = Types.identity_of_seed (Bytes.of_string "caller-id") in
  let callee = Types.identity_of_seed (Bytes.of_string "callee-id") in
  let cert =
    Certificate.self_signed ~signing_sk:signer_sk
      ~conversation_pk:caller.Types.public ~name:"reporter" ~expires:99
  in
  let sealed =
    Certificate.seal_certified ~rng ~caller_pk:caller.Types.public ~cert
      ~recipient_pk:callee.Types.public ()
  in
  Alcotest.(check int) "fixed size" Certificate.certified_invitation_len
    (Bytes.length sealed);
  (match
     Certificate.open_certified ~recipient_sk:callee.Types.secret
       ~recipient_pk:callee.Types.public sealed
   with
  | Some (caller_pk, c) ->
      Alcotest.(check bool) "caller key recovered" true
        (Bytes.equal caller_pk caller.Types.public);
      (match
         Certificate.verify ~now:1
           ~trusted:(fun k -> Bytes.equal k signer_pk)
           c
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "cert invalid: %a" Certificate.pp_error e)
  | None -> Alcotest.fail "certified invitation failed to open");
  (* Noise is the same size and opens for nobody. *)
  let noise = Certificate.noise_certified ~rng () in
  Alcotest.(check int) "noise same size" Certificate.certified_invitation_len
    (Bytes.length noise);
  Alcotest.(check bool) "noise unreadable" true
    (Certificate.open_certified ~recipient_sk:callee.Types.secret
       ~recipient_pk:callee.Types.public noise
    = None);
  (* Wrong recipient cannot open. *)
  let eve = Types.identity_of_seed (Bytes.of_string "eve-id") in
  Alcotest.(check bool) "wrong recipient" true
    (Certificate.open_certified ~recipient_sk:eve.Types.secret
       ~recipient_pk:eve.Types.public sealed
    = None)

let test_cert_subject_mismatch () =
  let rng = Drbg.of_string "cert-mismatch" in
  let signer_sk, _ = Ed25519.keypair ~rng () in
  let caller = Types.identity_of_seed (Bytes.of_string "caller-mm") in
  let cert =
    Certificate.self_signed ~signing_sk:signer_sk
      ~conversation_pk:(Bytes.make 32 'z') ~name:"x" ~expires:1
  in
  Alcotest.check_raises "subject mismatch"
    (Invalid_argument "Certificate.seal_certified: cert does not cover caller")
    (fun () ->
      ignore
        (Certificate.seal_certified ~rng ~caller_pk:caller.Types.public ~cert
           ~recipient_pk:(Bytes.make 32 'r') ()))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"ed25519 sign/verify roundtrip" ~count:8
      (string_of_size (Gen.int_bound 200))
      (fun msg ->
        let rng = Drbg.of_string ("prop-ed-" ^ string_of_int (String.length msg)) in
        let sk, pk = Ed25519.keypair ~rng () in
        let m = Bytes.of_string msg in
        Ed25519.verify ~public:pk ~signature:(Ed25519.sign ~secret:sk m) m);
    Test.make ~name:"certificate roundtrip for any name/expiry" ~count:10
      (pair (string_of_size (Gen.int_bound 40)) (int_bound 1_000_000))
      (fun (name, expires) ->
        let rng = Drbg.of_string "prop-cert" in
        let sk, pk = Ed25519.keypair ~rng () in
        let subject = Drbg.bytes ~rng 32 in
        let cert = Certificate.issue ~issuer_sk:sk ~subject_pk:subject ~name ~expires in
        Certificate.verify ~now:expires ~trusted:(Bytes.equal pk) cert = Ok ()
        && Certificate.matches_name cert name);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "ed25519",
    [
      tc "sha512 vectors" `Quick test_sha512_vectors;
      tc "sha512 incremental" `Quick test_sha512_incremental;
      tc "rfc8032 test 1" `Quick test_rfc8032_1;
      tc "rfc8032 test 2" `Quick test_rfc8032_2;
      tc "rfc8032 test 3" `Quick test_rfc8032_3;
      tc "rejections" `Quick test_ed25519_rejections;
      tc "s-malleability rejected" `Quick test_ed25519_malleability;
      tc "off-curve key rejected" `Quick test_ed25519_off_curve_key;
      tc "certificate roundtrip" `Quick test_certificate_roundtrip;
      tc "certificate rejections" `Quick test_certificate_rejections;
      tc "certified invitation" `Quick test_certified_invitation;
      tc "cert subject mismatch" `Quick test_cert_subject_mismatch;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )
