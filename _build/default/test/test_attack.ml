(* Adversary/attack tests: the Figure 6 sensitivity table, the strawman
   baseline's total insecurity, and the boundedness of the optimal
   statistical attack against Vuvuzela's noised observables. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela_attack

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

(* The paper's table, rows = cover story, columns = real action
   (Idle, Conversation with b, Conversation with x). *)
let paper_figure6 =
  [
    (Observation.Idle, [ (0, 0); (-2, 1); (0, 0) ]);
    (Observation.Talk_b, [ (2, -1); (0, 0); (2, -1) ]);
    (Observation.Talk_c, [ (2, -1); (0, 0); (2, -1) ]);
    (Observation.Send_x, [ (0, 0); (-2, 1); (0, 0) ]);
    (Observation.Send_y, [ (0, 0); (-2, 1); (0, 0) ]);
  ]

let test_figure6_table () =
  let computed = Observation.sensitivity_table () in
  List.iter2
    (fun (cover_p, row_p) (cover_c, row_c) ->
      Alcotest.(check string) "row order"
        (Observation.action_name cover_p)
        (Observation.action_name cover_c);
      List.iteri
        (fun i ((d1p, d2p), (d1c, d2c)) ->
          if d1p <> d1c || d2p <> d2c then
            Alcotest.failf "%s / col %d: paper (%+d,%+d) computed (%+d,%+d)"
              (Observation.action_name cover_p)
              i d1p d2p d1c d2c)
        (List.combine row_p row_c))
    paper_figure6 computed

let test_figure6_sensitivity_bound () =
  (* |∆m1| ≤ 2 and |∆m2| ≤ 1 — the inputs to Theorem 1. *)
  let s1, s2 = Observation.max_sensitivity () in
  Alcotest.(check int) "max |∆m1|" 2 s1;
  Alcotest.(check int) "max |∆m2|" 1 s2

(* ------------------------------------------------------------------ *)
(* Strawman baseline                                                   *)
(* ------------------------------------------------------------------ *)

let behavior_of talking u =
  match u with
  | 0 -> if talking then Strawman.Talking_to 1 else Strawman.Idle_cover
  | 1 -> if talking then Strawman.Talking_to 0 else Strawman.Idle_cover
  | 2 -> Strawman.Talking_to 3
  | 3 -> Strawman.Talking_to 2
  | _ -> Strawman.Idle_cover

let test_strawman_reveals_pairs () =
  let users = [ 0; 1; 2; 3; 4; 5 ] in
  let log = Strawman.run_round ~round:1 ~users ~behavior:(behavior_of true) in
  Alcotest.(check (list (pair int int))) "both pairs visible"
    [ (0, 1); (2, 3) ]
    (List.sort compare (Strawman.communicating_pairs log));
  Alcotest.(check bool) "alice-bob identified in one round" true
    (Strawman.are_talking log ~u:0 ~v:1)

let test_strawman_confirmation_attack () =
  let users = [ 0; 1; 2; 3; 4; 5 ] in
  (* Blocking everyone else confirms or refutes in a single round. *)
  Alcotest.(check bool) "positive confirmed" true
    (Strawman.confirmation_attack ~round:2 ~users
       ~behavior:(behavior_of true) ~suspects:(0, 1));
  Alcotest.(check bool) "negative refuted" false
    (Strawman.confirmation_attack ~round:2 ~users
       ~behavior:(behavior_of false) ~suspects:(0, 1))

let test_strawman_unreciprocated_invisible () =
  (* An unreciprocated exchange is a lone access — not reported as a
     pair (same as Vuvuzela's semantics). *)
  let behavior = function
    | 0 -> Strawman.Talking_to 1
    | 1 -> Strawman.Idle_cover
    | _ -> Strawman.Offline
  in
  let log = Strawman.run_round ~round:1 ~users:[ 0; 1 ] ~behavior in
  Alcotest.(check (list (pair int int))) "no pair" []
    (Strawman.communicating_pairs log)

(* ------------------------------------------------------------------ *)
(* Disclosure attack: model level                                      *)
(* ------------------------------------------------------------------ *)

let test_pmf_sums_to_one () =
  let p = Laplace.params ~mu:10. ~b:3. in
  let pmf = Disclosure.pmf p ~max_k:200 in
  let total = Array.fold_left ( +. ) 0. pmf in
  if Float.abs (total -. 1.) > 1e-9 then
    Alcotest.failf "pmf sums to %.12f" total

let test_pmf_matches_sampler () =
  let p = Laplace.params ~mu:8. ~b:2. in
  let pmf = Disclosure.pmf p ~max_k:100 in
  let rng = Drbg.of_string "pmf-check" in
  let n = 20_000 in
  let counts = Array.make 101 0 in
  for _ = 1 to n do
    let v = Laplace.truncated_sample ~rng p in
    if v <= 100 then counts.(v) <- counts.(v) + 1
  done;
  (* Compare a few mass points against empirical frequencies. *)
  List.iter
    (fun k ->
      let emp = float_of_int counts.(k) /. float_of_int n in
      if Float.abs (emp -. pmf.(k)) > 0.02 then
        Alcotest.failf "pmf(%d)=%.4f but empirical %.4f" k pmf.(k) emp)
    [ 0; 5; 8; 10; 15 ]

let test_attack_bounded_with_noise () =
  (* With the paper's µ/b ratio (≈21.7, so the per-round δ is ~1e-10 and
     truncation events never fire), the adversary's accumulated log
     likelihood ratio stays within the DP budget k·ε. *)
  let noise = Laplace.params ~mu:200. ~b:9.2 in
  let rounds = 40 in
  let rng = Drbg.of_string "bounded-attack" in
  let v =
    Disclosure.model_attack ~rng ~noise ~talking:true ~rounds ~prior:0.5 ()
  in
  let eps = Disclosure.per_round_eps_bound noise in
  if v.Disclosure.log_lr > float_of_int rounds *. eps +. 1e-9 then
    Alcotest.failf "logLR %.4f exceeds k·ε %.4f" v.Disclosure.log_lr
      (float_of_int rounds *. eps);
  (* The expected evidence per round is the KL divergence ≈ ε²/8, far
     below ε: confidence stays well away from certainty. *)
  if v.Disclosure.posterior > 0.9 then
    Alcotest.failf "posterior %.3f too confident" v.Disclosure.posterior

let test_delta_truncation_leak () =
  (* Why Theorem 1 needs the δ term: if noise lands exactly on the
     truncation atom (N = 0), observing m2 = 1 is far likelier under
     "talking" than under the cover story — the likelihood ratio blows
     past e^ε.  The per-round probability of that event is ~δ. *)
  let noise = Laplace.params ~mu:20. ~b:5. in
  let m2 = Mechanism.m2_noise noise in
  let pmf = Disclosure.pmf m2 ~max_k:500 in
  (* The m2 component's per-round ε is 2/b (sensitivity 1 at scale b/2);
     away from the atom every LR is within e^{±2/b}. *)
  let eps_m2 = 2. /. noise.Laplace.b in
  let atom_lr = log (pmf.(0) /. pmf.(1)) in
  if atom_lr <= eps_m2 then
    Alcotest.failf "truncation atom LR %.3f should exceed ε=%.3f" atom_lr
      eps_m2;
  (* The atom's probability is within a small factor of the analytical
     per-round δ for the m2 mechanism (½·e^{(1−µ/2)/(b/2)}). *)
  let delta_m2 =
    0.5 *. exp ((1. -. m2.Laplace.mu) /. m2.Laplace.b)
  in
  if pmf.(0) > 4. *. delta_m2 then
    Alcotest.failf "atom mass %.2e should be ~δ=%.2e" pmf.(0) delta_m2

let test_attack_succeeds_without_noise () =
  (* Ablation: with near-zero noise the same attack identifies the pair
     almost immediately — this is what the noise is buying. *)
  let noise = Laplace.params ~mu:0.01 ~b:0.01 in
  let rng = Drbg.of_string "no-noise-attack" in
  let v =
    Disclosure.model_attack ~rng ~noise ~talking:true ~rounds:5 ~prior:0.5 ()
  in
  if v.Disclosure.posterior < 0.99 then
    Alcotest.failf "attack should succeed without noise (posterior %.3f)"
      v.Disclosure.posterior

let test_attack_no_false_positive () =
  (* When the pair is NOT talking, the posterior must not rise above the
     prior in expectation; allow a small tolerance for sampling noise. *)
  let noise = Laplace.params ~mu:30. ~b:8. in
  let rng = Drbg.of_string "fp-attack" in
  let total = ref 0. in
  let trials = 20 in
  for _ = 1 to trials do
    let v =
      Disclosure.model_attack ~rng ~noise ~talking:false ~rounds:20 ~prior:0.5 ()
    in
    total := !total +. v.Disclosure.posterior
  done;
  let mean = !total /. float_of_int trials in
  if mean > 0.55 then
    Alcotest.failf "mean posterior %.3f on innocent pair" mean

let test_intersection_attack_contrast () =
  let rng = Drbg.of_string "intersect" in
  (* No noise: the on/off difference in m2 is glaring. *)
  let loud =
    Disclosure.intersection_attack ~rng
      ~noise:(Laplace.params ~mu:0.01 ~b:0.01)
      ~talking:true ~rounds_each:50 ()
  in
  if loud.Disclosure.z_score < 5. then
    Alcotest.failf "no-noise z=%.2f should be decisive" loud.Disclosure.z_score;
  (* Vuvuzela-scale noise (scaled): the same attack drowns. *)
  let quiet =
    Disclosure.intersection_attack ~rng
      ~noise:(Laplace.params ~mu:3000. ~b:700.)
      ~talking:true ~rounds_each:50 ()
  in
  if Float.abs quiet.Disclosure.z_score > 3. then
    Alcotest.failf "noised z=%.2f should be inconclusive"
      quiet.Disclosure.z_score

(* ------------------------------------------------------------------ *)
(* Disclosure attack against the live implementation                   *)
(* ------------------------------------------------------------------ *)

let test_network_attack_bounded () =
  let noise = Laplace.params ~mu:12. ~b:4. in
  let v =
    Disclosure.network_attack ~idle_users:2 ~noise ~talking:true ~rounds:10
      ~prior:0.5 ~seed:"net-attack-t" ()
  in
  Alcotest.(check int) "observed all rounds" 10 v.Disclosure.rounds;
  (* 10 rounds at ε = 4/b = 1 gives a loose bound; what matters is that
     the realized odds stay within e^{k·ε}. *)
  if v.Disclosure.log_lr > 10. *. 1.0 then
    Alcotest.failf "network logLR %.3f above DP budget" v.Disclosure.log_lr

let test_network_attack_ablation () =
  (* The identical live attack with noise disabled (µ≈0) succeeds fast —
     demonstrating the mechanism, not just the maths. *)
  let noise = Laplace.params ~mu:0.01 ~b:0.01 in
  let talking =
    Disclosure.network_attack ~idle_users:2 ~noise ~talking:true ~rounds:6
      ~prior:0.5 ~seed:"net-attack-on" ()
  in
  let idle =
    Disclosure.network_attack ~idle_users:2 ~noise ~talking:false ~rounds:6
      ~prior:0.5 ~seed:"net-attack-off" ()
  in
  if talking.Disclosure.posterior < 0.95 then
    Alcotest.failf "unnoised live attack failed (posterior %.3f)"
      talking.Disclosure.posterior;
  if idle.Disclosure.posterior > 0.2 then
    Alcotest.failf "unnoised live attack false positive (posterior %.3f)"
      idle.Disclosure.posterior


(* ------------------------------------------------------------------ *)
(* Group privacy (§9)                                                  *)
(* ------------------------------------------------------------------ *)

(* "if an adversary suspects that a group of 1,000 people communicate
   frequently with each other, he can block all other users ... If the
   adversary now observes a significant number of dead drops being
   accessed twice, it would confirm his suspicion.  However, he cannot
   distinguish whether any specific individual ... is actually
   communicating."  We reproduce both halves at model level. *)
let test_group_privacy_limits () =
  let noise = Laplace.params ~mu:300. ~b:(300. /. 21.7) in
  let m2_noise = Mechanism.m2_noise noise in
  let rng = Drbg.of_string "group-privacy" in
  let group_pairs = 400 in
  (* Half 1: the GROUP is exposed.  Observed m2 = pairs + noise; the
     z-score of the group signal against the noise std is enormous. *)
  let observed =
    float_of_int (group_pairs + Laplace.truncated_sample ~rng m2_noise)
  in
  let z =
    (observed -. m2_noise.Laplace.mu) /. (Laplace.stddev m2_noise +. 1e-9)
  in
  if z < 10. then
    Alcotest.failf "group of %d pairs should be obvious (z=%.1f)" group_pairs z;
  (* Half 2: any INDIVIDUAL in the group keeps per-round ε deniability:
     the likelihood ratio for "pair p is among them" vs "p idle, someone
     else's pair instead" shifts m2 by at most 1 — same ε bound. *)
  let pmf =
    Disclosure.pmf m2_noise
      ~max_k:(int_of_float (m2_noise.Laplace.mu +. (30. *. m2_noise.Laplace.b)))
  in
  let base = group_pairs in
  let obs = base + Laplace.truncated_sample ~rng m2_noise in
  let lr =
    log (Float.max 1e-300 pmf.(obs - base) /. Float.max 1e-300 pmf.(obs - base + 1))
  in
  let eps_m2 = 2. /. noise.Laplace.b in
  if Float.abs lr > eps_m2 +. 1e-9 then
    Alcotest.failf "individual LR %.4f exceeds per-round ε=%.4f" lr eps_m2

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"sensitivity bounded for all action pairs" ~count:100
      (pair (int_bound 4) (int_bound 4))
      (fun (i, j) ->
        let actions =
          [|
            Observation.Idle; Observation.Talk_b; Observation.Talk_c;
            Observation.Send_x; Observation.Send_y;
          |]
        in
        let d1, d2 = Observation.delta ~real:actions.(i) ~cover:actions.(j) in
        abs d1 <= 2 && abs d2 <= 1);
    Test.make ~name:"per-round logLR within ±ε(m2)" ~count:50
      (pair (float_range 5. 50.) (float_range 2. 10.))
      (fun (mu, b) ->
        let noise = Laplace.params ~mu ~b in
        let m2 = Mechanism.m2_noise noise in
        let pmf =
          Disclosure.pmf m2 ~max_k:(int_of_float (mu +. (30. *. b)) + 5)
        in
        let eps_m2 = 2. /. b (* sensitivity 1, scale b/2 *) in
        (* Check the LR bound at a few observation values with positive
           mass under both hypotheses. *)
        List.for_all
          (fun o ->
            o + 1 >= Array.length pmf
            || pmf.(o) < 1e-12
            || pmf.(o + 1) < 1e-12
            || Float.abs (log (pmf.(o) /. pmf.(o + 1))) <= eps_m2 +. 1e-6)
          [ 1; 2; 5; 10 ]);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "attack",
    [
      tc "figure 6 table reproduced" `Quick test_figure6_table;
      tc "figure 6 sensitivity bound" `Quick test_figure6_sensitivity_bound;
      tc "strawman reveals pairs" `Quick test_strawman_reveals_pairs;
      tc "strawman confirmation attack" `Quick test_strawman_confirmation_attack;
      tc "strawman unreciprocated invisible" `Quick test_strawman_unreciprocated_invisible;
      tc "noise pmf sums to one" `Quick test_pmf_sums_to_one;
      tc "noise pmf matches sampler" `Quick test_pmf_matches_sampler;
      tc "attack bounded with noise" `Quick test_attack_bounded_with_noise;
      tc "delta truncation leak" `Quick test_delta_truncation_leak;
      tc "group privacy limits (§9)" `Quick test_group_privacy_limits;
      tc "attack succeeds without noise" `Quick test_attack_succeeds_without_noise;
      tc "no false positives" `Quick test_attack_no_false_positive;
      tc "intersection attack contrast" `Quick test_intersection_attack_contrast;
      tc "live attack bounded" `Quick test_network_attack_bounded;
      tc "live attack ablation (no noise)" `Quick test_network_attack_ablation;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )
