(* Core protocol unit tests: message codec, conversation sessions,
   dialing payloads, dead-drop stores. *)

open Vuvuzela_crypto
open Vuvuzela

let alice = Types.identity_of_seed (Bytes.of_string "alice-seed")
let bob = Types.identity_of_seed (Bytes.of_string "bob-seed")
let charlie = Types.identity_of_seed (Bytes.of_string "charlie-seed")

(* ------------------------------------------------------------------ *)
(* Message codec                                                       *)
(* ------------------------------------------------------------------ *)

let test_message_sizes () =
  Alcotest.(check int) "plain length" Types.message_plain_len
    (Bytes.length (Message.encode (Message.Empty { ack = 0 })));
  Alcotest.(check int) "data same length" Types.message_plain_len
    (Bytes.length
       (Message.encode (Message.Data { seq = 1; ack = 9; text = "hi" })));
  let max_text = String.make Types.text_capacity 'x' in
  Alcotest.(check int) "max text fits" Types.message_plain_len
    (Bytes.length
       (Message.encode (Message.Data { seq = 1; ack = 0; text = max_text })));
  Alcotest.(check bool) "oversize rejected" true
    (try
       ignore
         (Message.encode
            (Message.Data
               { seq = 1; ack = 0; text = String.make (Types.text_capacity + 1) 'x' }));
       false
     with Invalid_argument _ -> true)

let test_message_roundtrip () =
  let check m =
    match Message.decode (Message.encode m) with
    | Ok m' ->
        if not (Message.equal m m') then
          Alcotest.failf "roundtrip mismatch: %a vs %a" Message.pp m
            Message.pp m'
    | Error e -> Alcotest.fail e
  in
  check (Message.Empty { ack = 0 });
  check (Message.Empty { ack = 12345 });
  check (Message.Data { seq = 1; ack = 0; text = "" });
  check (Message.Data { seq = 7; ack = 3; text = "hello world" });
  check
    (Message.Data
       { seq = 0xffff; ack = 0xfffe; text = String.make Types.text_capacity 'q' })

let test_message_decode_errors () =
  (match Message.decode (Bytes.make 10 '\000') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong size accepted");
  (* Unknown kind byte. *)
  let b = Message.encode (Message.Empty { ack = 0 }) in
  Bytes.set b 0 '\x07';
  (match Message.decode b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted");
  (* Length field beyond capacity. *)
  let b = Message.encode (Message.Empty { ack = 0 }) in
  Bytes.set b 9 '\xff';
  Bytes.set b 10 '\xff';
  match Message.decode b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad length accepted"

let test_direction_keys_mirror () =
  let raw = Curve25519.shared ~secret:alice.Types.secret ~public:bob.Types.public in
  let ka =
    Message.direction_keys ~base:raw ~my_pk:alice.Types.public
      ~their_pk:bob.Types.public
  in
  let kb =
    Message.direction_keys ~base:raw ~my_pk:bob.Types.public
      ~their_pk:alice.Types.public
  in
  Alcotest.(check string) "a.send = b.recv"
    (Bytes_util.to_hex ka.Message.send)
    (Bytes_util.to_hex kb.Message.recv);
  Alcotest.(check string) "a.recv = b.send"
    (Bytes_util.to_hex ka.Message.recv)
    (Bytes_util.to_hex kb.Message.send);
  Alcotest.(check bool) "directions differ" false
    (Bytes.equal ka.Message.send ka.Message.recv)

let test_message_seal_open () =
  let raw = Curve25519.shared ~secret:alice.Types.secret ~public:bob.Types.public in
  let ka = Message.direction_keys ~base:raw ~my_pk:alice.Types.public ~their_pk:bob.Types.public in
  let kb = Message.direction_keys ~base:raw ~my_pk:bob.Types.public ~their_pk:alice.Types.public in
  let m = Message.Data { seq = 3; ack = 2; text = "sealed hello" } in
  let sealed = Message.seal ~keys:ka ~round:42 m in
  Alcotest.(check int) "sealed size" Types.sealed_message_len (Bytes.length sealed);
  (match Message.open_ ~keys:kb ~round:42 sealed with
  | Some m' -> Alcotest.(check bool) "roundtrip" true (Message.equal m m')
  | None -> Alcotest.fail "open failed");
  (* Wrong round (nonce) fails; own key fails (no reflection). *)
  Alcotest.(check bool) "wrong round" true
    (Message.open_ ~keys:kb ~round:43 sealed = None);
  Alcotest.(check bool) "sender cannot open own message" true
    (Message.open_ ~keys:ka ~round:42 sealed = None)

(* ------------------------------------------------------------------ *)
(* Conversation sessions                                               *)
(* ------------------------------------------------------------------ *)

let test_session_symmetric_drops () =
  let sa = Conversation.derive ~identity:alice ~peer_pk:bob.Types.public in
  let sb = Conversation.derive ~identity:bob ~peer_pk:alice.Types.public in
  for round = 1 to 20 do
    Alcotest.(check string)
      (Printf.sprintf "drop id round %d" round)
      (Bytes_util.to_hex (Conversation.drop_id sa ~round))
      (Bytes_util.to_hex (Conversation.drop_id sb ~round))
  done

let test_session_drops_fresh_per_round () =
  let sa = Conversation.derive ~identity:alice ~peer_pk:bob.Types.public in
  let seen = Hashtbl.create 64 in
  for round = 1 to 100 do
    let id = Bytes.to_string (Conversation.drop_id sa ~round) in
    if Hashtbl.mem seen id then Alcotest.fail "dead drop repeated";
    Hashtbl.replace seen id ()
  done

let test_session_pairs_disjoint () =
  (* Different pairs derive different drops in the same round. *)
  let sab = Conversation.derive ~identity:alice ~peer_pk:bob.Types.public in
  let sac = Conversation.derive ~identity:alice ~peer_pk:charlie.Types.public in
  Alcotest.(check bool) "disjoint drops" false
    (Bytes.equal (Conversation.drop_id sab ~round:5) (Conversation.drop_id sac ~round:5))

let test_session_exchange_roundtrip () =
  let sa = Conversation.derive ~identity:alice ~peer_pk:bob.Types.public in
  let sb = Conversation.derive ~identity:bob ~peer_pk:alice.Types.public in
  let m = Message.Data { seq = 1; ack = 0; text = "over the drop" } in
  let payload = Conversation.exchange_payload sa ~round:9 m in
  Alcotest.(check int) "payload size" Types.exchange_payload_len
    (Bytes.length payload);
  let sealed = Bytes.sub payload Types.drop_id_len Types.sealed_message_len in
  (match Conversation.read_result sb ~round:9 sealed with
  | Some m' -> Alcotest.(check bool) "bob reads alice" true (Message.equal m m')
  | None -> Alcotest.fail "read_result failed");
  (* The empty (all-zero) result reads as None. *)
  Alcotest.(check bool) "empty result is None" true
    (Conversation.read_result sb ~round:9 Deaddrop.empty_result = None)

let test_fake_sessions_unique () =
  let rng = Drbg.of_string "fake" in
  let s1 = Conversation.fake ~rng ~identity:alice () in
  let s2 = Conversation.fake ~rng ~identity:alice () in
  Alcotest.(check bool) "fake drops differ" false
    (Bytes.equal (Conversation.drop_id s1 ~round:1) (Conversation.drop_id s2 ~round:1))

(* ------------------------------------------------------------------ *)
(* Dialing payloads                                                    *)
(* ------------------------------------------------------------------ *)

let test_dialing_sizes () =
  let rng = Drbg.of_string "dial-size" in
  let real = Dialing.invite ~rng ~identity:alice ~callee_pk:bob.Types.public ~m:4 () in
  let idle = Dialing.noop ~rng () in
  let noise = Dialing.noise ~rng ~index:2 () in
  Alcotest.(check int) "real payload" Types.dial_payload_len (Bytes.length real);
  Alcotest.(check int) "noop payload" Types.dial_payload_len (Bytes.length idle);
  Alcotest.(check int) "noise payload" Types.dial_payload_len (Bytes.length noise)

let test_dialing_addressing () =
  let m = 8 in
  let rng = Drbg.of_string "dial-addr" in
  let payload = Dialing.invite ~rng ~identity:alice ~callee_pk:bob.Types.public ~m () in
  match Dialing.decode_payload payload with
  | Ok (index, _) ->
      Alcotest.(check int) "addressed to H(pk) mod m"
        (Deaddrop.Invitation.index_of ~m bob.Types.public)
        index
  | Error e -> Alcotest.fail e

let test_dialing_scan () =
  let rng = Drbg.of_string "dial-scan" in
  let m = 1 in
  let inv_of payload =
    match Dialing.decode_payload payload with
    | Ok (_, inv) -> inv
    | Error e -> Alcotest.fail e
  in
  let for_bob = inv_of (Dialing.invite ~rng ~identity:alice ~callee_pk:bob.Types.public ~m ()) in
  let for_charlie = inv_of (Dialing.invite ~rng ~identity:alice ~callee_pk:charlie.Types.public ~m ()) in
  let noise = inv_of (Dialing.noise ~rng ~index:0 ()) in
  let drop = [ noise; for_charlie; for_bob; noise ] in
  (* Bob finds exactly his invitation and learns the caller. *)
  (match Dialing.scan ~identity:bob drop with
  | [ caller ] ->
      Alcotest.(check string) "caller is alice"
        (Bytes_util.to_hex alice.Types.public)
        (Bytes_util.to_hex caller)
  | l -> Alcotest.failf "bob found %d invitations" (List.length l));
  (* A bystander finds nothing. *)
  let dave = Types.identity_of_seed (Bytes.of_string "dave") in
  Alcotest.(check int) "dave finds none" 0
    (List.length (Dialing.scan ~identity:dave drop))

let test_dialing_noop_index () =
  let rng = Drbg.of_string "dial-noop" in
  match Dialing.decode_payload (Dialing.noop ~rng ()) with
  | Ok (index, _) -> Alcotest.(check int) "noop drop" Types.noop_drop index
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Dead drops                                                          *)
(* ------------------------------------------------------------------ *)

let drop_id_of_int i =
  let b = Bytes.make Types.drop_id_len '\000' in
  Bytes_util.store_le64 b 0 i;
  b

let test_deaddrop_exchange () =
  let t = Deaddrop.create () in
  let d = drop_id_of_int 1 in
  Deaddrop.put t ~slot:0 ~drop_id:d ~sealed:(Bytes.make 256 'A');
  Deaddrop.put t ~slot:1 ~drop_id:d ~sealed:(Bytes.make 256 'B');
  Deaddrop.put t ~slot:2 ~drop_id:(drop_id_of_int 2) ~sealed:(Bytes.make 256 'C');
  let r = Deaddrop.resolve t ~n_slots:3 in
  Alcotest.(check char) "slot 0 gets B" 'B' (Bytes.get r.(0) 0);
  Alcotest.(check char) "slot 1 gets A" 'A' (Bytes.get r.(1) 0);
  Alcotest.(check bool) "lone access gets empty" true
    (Bytes.equal r.(2) Deaddrop.empty_result)

let test_deaddrop_histogram () =
  let t = Deaddrop.create () in
  let put slot i = Deaddrop.put t ~slot ~drop_id:(drop_id_of_int i) ~sealed:(Bytes.make 256 'x') in
  put 0 1; put 1 1;          (* pair *)
  put 2 2;                   (* single *)
  put 3 3; put 4 3; put 5 3; (* triple (adversarial) *)
  let h = Deaddrop.histogram t in
  Alcotest.(check int) "m1" 1 h.Deaddrop.m1;
  Alcotest.(check int) "m2" 1 h.Deaddrop.m2;
  Alcotest.(check int) "m>2" 1 h.Deaddrop.m_more

let test_deaddrop_triple_access () =
  (* First two exchange; the third (adversarial duplicate) gets empty. *)
  let t = Deaddrop.create () in
  let d = drop_id_of_int 9 in
  Deaddrop.put t ~slot:0 ~drop_id:d ~sealed:(Bytes.make 256 'A');
  Deaddrop.put t ~slot:1 ~drop_id:d ~sealed:(Bytes.make 256 'B');
  Deaddrop.put t ~slot:2 ~drop_id:d ~sealed:(Bytes.make 256 'E');
  let r = Deaddrop.resolve t ~n_slots:3 in
  Alcotest.(check char) "first two exchange" 'B' (Bytes.get r.(0) 0);
  Alcotest.(check char) "first two exchange (2)" 'A' (Bytes.get r.(1) 0);
  Alcotest.(check bool) "third gets empty" true
    (Bytes.equal r.(2) Deaddrop.empty_result)

let test_deaddrop_clear () =
  let t = Deaddrop.create () in
  Deaddrop.put t ~slot:0 ~drop_id:(drop_id_of_int 1) ~sealed:(Bytes.make 256 'x');
  Deaddrop.clear t;
  let h = Deaddrop.histogram t in
  Alcotest.(check int) "cleared" 0 (h.Deaddrop.m1 + h.Deaddrop.m2 + h.Deaddrop.m_more)

let test_invitation_store () =
  let s = Deaddrop.Invitation.create ~m:4 in
  Deaddrop.Invitation.put s ~index:2 (Bytes.of_string "inv1");
  Deaddrop.Invitation.put s ~index:2 (Bytes.of_string "inv2");
  Deaddrop.Invitation.put s ~index:0 (Bytes.of_string "inv3");
  Deaddrop.Invitation.put s ~index:Types.noop_drop (Bytes.of_string "dropped");
  Alcotest.(check (list string)) "fetch in order" [ "inv1"; "inv2" ]
    (List.map Bytes.to_string (Deaddrop.Invitation.fetch s ~index:2));
  Alcotest.(check int) "size" 2 (Deaddrop.Invitation.size s ~index:2);
  Alcotest.(check int) "total excludes noop" 3 (Deaddrop.Invitation.total s);
  Alcotest.check_raises "bad index" (Invalid_argument "Invitation.put: bad drop index")
    (fun () -> Deaddrop.Invitation.put s ~index:7 Bytes.empty)

let test_invitation_index_stable () =
  let m = 16 in
  let i1 = Deaddrop.Invitation.index_of ~m alice.Types.public in
  let i2 = Deaddrop.Invitation.index_of ~m alice.Types.public in
  Alcotest.(check int) "deterministic" i1 i2;
  Alcotest.(check bool) "in range" true (i1 >= 0 && i1 < m)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"message codec roundtrip" ~count:200
      (triple (int_bound 0xffffff) (int_bound 0xffffff)
         (string_of_size (Gen.int_bound Types.text_capacity)))
      (fun (seq, ack, text) ->
        let m = Message.Data { seq; ack; text } in
        match Message.decode (Message.encode m) with
        | Ok m' -> Message.equal m m'
        | Error _ -> false);
    Test.make ~name:"invitation index always in range" ~count:100
      (pair (int_range 1 64) (string_of_size (Gen.return 32)))
      (fun (m, pk) ->
        let i = Deaddrop.Invitation.index_of ~m (Bytes.of_string pk) in
        i >= 0 && i < m);
    Test.make ~name:"resolve pairs every slot with 256 bytes" ~count:50
      (list_of_size (Gen.int_bound 40) (int_bound 10))
      (fun drops ->
        let t = Deaddrop.create () in
        List.iteri
          (fun slot d ->
            Deaddrop.put t ~slot ~drop_id:(drop_id_of_int d)
              ~sealed:(Bytes.make 256 (Char.chr (65 + (slot mod 26)))))
          drops;
        let r = Deaddrop.resolve t ~n_slots:(List.length drops) in
        Array.for_all (fun b -> Bytes.length b = 256) r);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "protocol",
    [
      tc "message sizes" `Quick test_message_sizes;
      tc "message roundtrip" `Quick test_message_roundtrip;
      tc "message decode errors" `Quick test_message_decode_errors;
      tc "direction keys mirror" `Quick test_direction_keys_mirror;
      tc "message seal/open" `Quick test_message_seal_open;
      tc "session drops symmetric" `Quick test_session_symmetric_drops;
      tc "session drops fresh per round" `Quick test_session_drops_fresh_per_round;
      tc "session pairs disjoint" `Quick test_session_pairs_disjoint;
      tc "session exchange roundtrip" `Quick test_session_exchange_roundtrip;
      tc "fake sessions unique" `Quick test_fake_sessions_unique;
      tc "dialing sizes" `Quick test_dialing_sizes;
      tc "dialing addressing" `Quick test_dialing_addressing;
      tc "dialing scan" `Quick test_dialing_scan;
      tc "dialing noop index" `Quick test_dialing_noop_index;
      tc "deaddrop exchange" `Quick test_deaddrop_exchange;
      tc "deaddrop histogram" `Quick test_deaddrop_histogram;
      tc "deaddrop triple access" `Quick test_deaddrop_triple_access;
      tc "deaddrop clear" `Quick test_deaddrop_clear;
      tc "invitation store" `Quick test_invitation_store;
      tc "invitation index stable" `Quick test_invitation_index_stable;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )
