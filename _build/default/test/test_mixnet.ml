(* Mixnet substrate tests: wire codec, shuffle, onion encryption. *)

open Vuvuzela_crypto
open Vuvuzela_mixnet

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let b =
    Wire.encode (fun w ->
        Wire.Writer.u8 w 0xab;
        Wire.Writer.u16 w 0xcdef;
        Wire.Writer.u32 w 0xdeadbeef;
        Wire.Writer.u64 w 0x0123456789abcdef;
        Wire.Writer.bytes_fixed w ~len:3 (Bytes.of_string "xyz");
        Wire.Writer.bytes_var w (Bytes.of_string "hello"))
  in
  match
    Wire.decode
      (fun r ->
        let a = Wire.Reader.u8 r in
        let b_ = Wire.Reader.u16 r in
        let c = Wire.Reader.u32 r in
        let d = Wire.Reader.u64 r in
        let e = Wire.Reader.bytes_fixed r 3 in
        let f = Wire.Reader.bytes_var r in
        (a, b_, c, d, Bytes.to_string e, Bytes.to_string f))
      b
  with
  | Ok (a, b_, c, d, e, f) ->
      Alcotest.(check int) "u8" 0xab a;
      Alcotest.(check int) "u16" 0xcdef b_;
      Alcotest.(check int) "u32" 0xdeadbeef c;
      Alcotest.(check int) "u64" 0x0123456789abcdef d;
      Alcotest.(check string) "fixed" "xyz" e;
      Alcotest.(check string) "var" "hello" f
  | Error msg -> Alcotest.fail msg

let test_wire_underflow () =
  match Wire.decode (fun r -> Wire.Reader.u32 r) (Bytes.of_string "ab") with
  | Ok _ -> Alcotest.fail "expected underflow error"
  | Error _ -> ()

let test_wire_trailing () =
  match Wire.decode (fun r -> Wire.Reader.u8 r) (Bytes.of_string "ab") with
  | Ok _ -> Alcotest.fail "expected trailing-bytes error"
  | Error msg ->
      Alcotest.(check bool) "mentions trailing" true
        (String.length msg > 0)

let test_wire_fixed_size_check () =
  Alcotest.check_raises "bytes_fixed validates"
    (Wire.Error "Writer.bytes_fixed: expected 4 bytes, got 2") (fun () ->
      ignore
        (Wire.encode (fun w ->
             Wire.Writer.bytes_fixed w ~len:4 (Bytes.of_string "ab"))))

(* ------------------------------------------------------------------ *)
(* Shuffle                                                             *)
(* ------------------------------------------------------------------ *)

let test_shuffle_permutation () =
  let rng = Drbg.of_string "shuffle" in
  for n = 0 to 20 do
    let p = Shuffle.random_permutation ~rng n in
    if not (Shuffle.is_permutation p) then
      Alcotest.failf "not a permutation at n=%d" n
  done

let test_shuffle_inverse () =
  let rng = Drbg.of_string "shuffle-inv" in
  let a = Array.init 100 Fun.id in
  let p = Shuffle.random_permutation ~rng 100 in
  let shuffled = Shuffle.apply p a in
  Alcotest.(check (array int)) "unapply inverts" a (Shuffle.unapply p shuffled);
  Alcotest.(check (array int)) "invert twice is id" p
    (Shuffle.invert (Shuffle.invert p))

let test_shuffle_uniformity () =
  (* Chi-squared-ish sanity check: over many draws of S_3, each of the 6
     permutations appears with roughly equal frequency. *)
  let rng = Drbg.of_string "shuffle-uniform" in
  let counts = Hashtbl.create 6 in
  let trials = 6000 in
  for _ = 1 to trials do
    let p = Shuffle.random_permutation ~rng 3 in
    let key = Printf.sprintf "%d%d%d" p.(0) p.(1) p.(2) in
    Hashtbl.replace counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all 6 permutations occur" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun key n ->
      if n < 800 || n > 1200 then
        Alcotest.failf "permutation %s frequency %d far from 1000" key n)
    counts

let test_shuffle_mismatch () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Shuffle.apply: size mismatch") (fun () ->
      ignore (Shuffle.apply [| 0; 1 |] [| 1 |]))

(* ------------------------------------------------------------------ *)
(* Onion                                                               *)
(* ------------------------------------------------------------------ *)

let make_chain ~n =
  let rng = Drbg.of_string "onion-chain" in
  List.init n (fun _ -> Drbg.keypair ~rng ())

let test_onion_roundtrip () =
  let servers = make_chain ~n:3 in
  let pks = List.map snd servers in
  let payload = Bytes.of_string "the payload" in
  let rng = Drbg.of_string "onion-rt" in
  let wrapped = Onion.wrap ~rng ~server_pks:pks ~round:7 payload in
  Alcotest.(check int) "request size"
    (Onion.request_size ~chain_len:3 ~payload_len:11)
    (Bytes.length wrapped.onion);
  (* Peel through the chain. *)
  let inner, secrets_srv =
    List.fold_left
      (fun (onion, secrets) (sk, _) ->
        match Onion.peel ~server_sk:sk ~round:7 onion with
        | Some (inner, s) -> (inner, s :: secrets)
        | None -> Alcotest.fail "peel failed")
      (wrapped.onion, []) servers
  in
  Alcotest.(check string) "payload recovered" "the payload"
    (Bytes.to_string inner);
  (* Layer secrets agree between client and servers. *)
  List.iteri
    (fun i s ->
      Alcotest.(check string)
        (Printf.sprintf "layer %d secret" i)
        (Bytes_util.to_hex wrapped.secrets.(i))
        (Bytes_util.to_hex s))
    (List.rev secrets_srv);
  (* Reply path: innermost (last) server seals first. *)
  let reply = Bytes.of_string "reply!" in
  let sealed =
    List.fold_left
      (fun acc s -> Onion.seal_reply ~secret:s ~round:7 acc)
      reply secrets_srv
  in
  Alcotest.(check int) "reply size"
    (Onion.reply_size ~chain_len:3 ~payload_len:6)
    (Bytes.length sealed);
  match Onion.unwrap_reply ~secrets:wrapped.secrets ~round:7 sealed with
  | Some r -> Alcotest.(check string) "reply recovered" "reply!" (Bytes.to_string r)
  | None -> Alcotest.fail "unwrap_reply failed"

let test_onion_wrong_round () =
  let servers = make_chain ~n:2 in
  let pks = List.map snd servers in
  let wrapped = Onion.wrap ~server_pks:pks ~round:1 (Bytes.of_string "x") in
  let sk = fst (List.hd servers) in
  Alcotest.(check bool) "wrong round fails" true
    (Onion.peel ~server_sk:sk ~round:2 wrapped.onion = None);
  Alcotest.(check bool) "right round works" true
    (Onion.peel ~server_sk:sk ~round:1 wrapped.onion <> None)

let test_onion_wrong_server () =
  let servers = make_chain ~n:2 in
  let pks = List.map snd servers in
  let wrapped = Onion.wrap ~server_pks:pks ~round:1 (Bytes.of_string "x") in
  (* The second server cannot peel the outer layer. *)
  let sk2 = fst (List.nth servers 1) in
  Alcotest.(check bool) "wrong server fails" true
    (Onion.peel ~server_sk:sk2 ~round:1 wrapped.onion = None)

let test_onion_tamper () =
  let servers = make_chain ~n:1 in
  let pks = List.map snd servers in
  let wrapped = Onion.wrap ~server_pks:pks ~round:1 (Bytes.of_string "abc") in
  let sk = fst (List.hd servers) in
  (* Flip a byte in the sealed part (past the 32-byte ephemeral key). *)
  let bad = Bytes.copy wrapped.onion in
  Bytes.set bad 40 (Char.chr (Char.code (Bytes.get bad 40) lxor 1));
  Alcotest.(check bool) "tampered onion rejected" true
    (Onion.peel ~server_sk:sk ~round:1 bad = None);
  Alcotest.(check bool) "short onion rejected" true
    (Onion.peel ~server_sk:sk ~round:1 (Bytes.make 10 'x') = None)

let test_onion_sizes_uniform () =
  (* Two different payloads of the same size produce same-size onions —
     indistinguishability precondition. *)
  let pks = List.map snd (make_chain ~n:4) in
  let w1 = Onion.wrap ~server_pks:pks ~round:3 (Bytes.make 272 'a') in
  let w2 = Onion.wrap ~server_pks:pks ~round:3 (Bytes.make 272 'z') in
  Alcotest.(check int) "same size"
    (Bytes.length w1.onion) (Bytes.length w2.onion);
  Alcotest.(check int) "48 bytes per layer" (272 + (4 * 48))
    (Bytes.length w1.onion)

let test_onion_empty_chain () =
  Alcotest.check_raises "empty chain rejected"
    (Invalid_argument "Onion.wrap: empty chain") (fun () ->
      ignore (Onion.wrap ~server_pks:[] ~round:0 Bytes.empty))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"shuffle apply/unapply roundtrip" ~count:100
      (pair (int_range 0 200) int)
      (fun (n, salt) ->
        let rng = Drbg.of_string (Printf.sprintf "prop-shuffle-%d" salt) in
        let a = Array.init n (fun i -> i * 3) in
        let p = Shuffle.random_permutation ~rng n in
        Shuffle.unapply p (Shuffle.apply p a) = a);
    Test.make ~name:"onion roundtrip for any chain length and payload"
      ~count:25
      (pair (int_range 1 6) (int_range 0 300))
      (fun (n, len) ->
        let rng = Drbg.of_string "prop-onion" in
        let servers = List.init n (fun _ -> Drbg.keypair ~rng ()) in
        let pks = List.map snd servers in
        let payload = Drbg.generate rng len in
        let w = Onion.wrap ~rng ~server_pks:pks ~round:5 payload in
        let final =
          List.fold_left
            (fun acc (sk, _) ->
              match acc with
              | None -> None
              | Some onion -> (
                  match Onion.peel ~server_sk:sk ~round:5 onion with
                  | Some (inner, _) -> Some inner
                  | None -> None))
            (Some w.onion) servers
        in
        final = Some payload);
    Test.make ~name:"wire var-bytes roundtrip" ~count:100
      (string_of_size (Gen.int_bound 500))
      (fun s ->
        let b = Wire.encode (fun w -> Wire.Writer.bytes_var w (Bytes.of_string s)) in
        Wire.decode (fun r -> Bytes.to_string (Wire.Reader.bytes_var r)) b
        = Ok s);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "mixnet",
    [
      tc "wire roundtrip" `Quick test_wire_roundtrip;
      tc "wire underflow" `Quick test_wire_underflow;
      tc "wire trailing bytes" `Quick test_wire_trailing;
      tc "wire fixed size check" `Quick test_wire_fixed_size_check;
      tc "shuffle yields permutations" `Quick test_shuffle_permutation;
      tc "shuffle inverse" `Quick test_shuffle_inverse;
      tc "shuffle uniformity" `Quick test_shuffle_uniformity;
      tc "shuffle size mismatch" `Quick test_shuffle_mismatch;
      tc "onion roundtrip (3 servers)" `Quick test_onion_roundtrip;
      tc "onion wrong round" `Quick test_onion_wrong_round;
      tc "onion wrong server" `Quick test_onion_wrong_server;
      tc "onion tamper" `Quick test_onion_tamper;
      tc "onion sizes uniform" `Quick test_onion_sizes_uniform;
      tc "onion empty chain" `Quick test_onion_empty_chain;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )
