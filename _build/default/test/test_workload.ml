(* Workload generator tests: the §8.1 mix delivers everything reliably;
   hostile mixes stay consistent. *)

open Vuvuzela_sim

let test_paper_mix_reliable () =
  (* No churn, no outages: everything sent is delivered, no duplicates,
     no retransmissions needed. *)
  let s =
    Workload.run ~seed:"wl-paper"
      ~profile:(Workload.paper_mix ~users:8)
      ~rounds:12 ()
  in
  Alcotest.(check int) "all delivered" s.Workload.sent s.Workload.delivered;
  Alcotest.(check int) "no duplicates" 0 s.Workload.duplicates;
  Alcotest.(check int) "no retransmissions" 0 s.Workload.retransmissions;
  (* Window-4 pipelining with everyone sending every round produces a
     small queueing delay, but it stays bounded. *)
  if s.Workload.mean_delivery_rounds > 6. then
    Alcotest.failf "mean delivery %.2f rounds too slow"
      s.Workload.mean_delivery_rounds

let test_stress_mix_consistent () =
  let s =
    Workload.run ~seed:"wl-stress"
      ~profile:(Workload.stress ~users:10)
      ~rounds:30 ()
  in
  (* With churn, hang-ups can discard queued tails, but we can never
     deliver more than was sent, and duplicates are rejected. *)
  Alcotest.(check bool) "delivered <= sent" true
    (s.Workload.delivered <= s.Workload.sent);
  Alcotest.(check bool) "some progress" true (s.Workload.delivered > 0);
  Alcotest.(check bool) "calls heard <= placed" true
    (s.Workload.calls_heard <= s.Workload.calls_placed)

let test_outages_force_retransmissions () =
  let profile =
    { (Workload.paper_mix ~users:6) with Workload.offline = 0.3 }
  in
  let s = Workload.run ~seed:"wl-outage" ~profile ~rounds:20 () in
  Alcotest.(check bool) "retransmissions occurred" true
    (s.Workload.retransmissions > 0);
  Alcotest.(check int) "still exactly-once" s.Workload.sent s.Workload.delivered

let test_dialing_schedule_counts () =
  let profile =
    { (Workload.paper_mix ~users:4) with Workload.dial_every = 5 }
  in
  let s = Workload.run ~seed:"wl-dial" ~profile ~rounds:20 () in
  Alcotest.(check int) "dial rounds on schedule" 4 s.Workload.dial_rounds

let test_deterministic_under_seed () =
  let run () =
    Workload.run ~seed:"wl-det" ~profile:(Workload.stress ~users:6) ~rounds:15 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "sent deterministic" a.Workload.sent b.Workload.sent;
  Alcotest.(check int) "delivered deterministic" a.Workload.delivered
    b.Workload.delivered;
  Alcotest.(check int) "retx deterministic" a.Workload.retransmissions
    b.Workload.retransmissions

let suite =
  let tc = Alcotest.test_case in
  ( "workload",
    [
      tc "paper mix is fully reliable" `Quick test_paper_mix_reliable;
      tc "stress mix stays consistent" `Quick test_stress_mix_consistent;
      tc "outages force retransmissions" `Quick test_outages_force_retransmissions;
      tc "dialing schedule counts" `Quick test_dialing_schedule_counts;
      tc "deterministic under seed" `Quick test_deterministic_under_seed;
    ] )
