(* Differential-privacy machinery tests: sampler statistics, Theorem 1 /
   Lemma 3 / Theorem 2 arithmetic, planner behaviour, and agreement with
   the constants reported in the paper (§6.4, §6.5, Figures 7-8). *)

open Vuvuzela_crypto
open Vuvuzela_dp

let feq ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Laplace sampling                                                    *)
(* ------------------------------------------------------------------ *)

let test_laplace_params () =
  Alcotest.check_raises "b must be positive"
    (Invalid_argument "Laplace.params: b must be positive") (fun () ->
      ignore (Laplace.params ~mu:1. ~b:0.))

let test_laplace_statistics () =
  let rng = Drbg.of_string "laplace-stats" in
  let p = Laplace.params ~mu:100. ~b:25. in
  let n = 20_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = Laplace.sample ~rng p in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  (* mean within 2% of µ, std within 5% of b√2 *)
  feq ~tol:2. "empirical mean" 100. mean;
  feq ~tol:(0.05 *. Laplace.stddev p *. Laplace.stddev p)
    "empirical variance"
    (2. *. 25. *. 25.)
    var

let test_truncated_sample_nonnegative () =
  let rng = Drbg.of_string "trunc" in
  (* A distribution mostly below zero still never yields negatives. *)
  let p = Laplace.params ~mu:(-5.) ~b:3. in
  for _ = 1 to 2000 do
    let v = Laplace.truncated_sample ~rng p in
    if v < 0 then Alcotest.fail "negative noise"
  done

let test_truncated_sample_mean () =
  (* For µ >> b, truncation is negligible and the mean must be ≈ µ. *)
  let rng = Drbg.of_string "trunc-mean" in
  let p = Laplace.params ~mu:300. ~b:10. in
  let n = 5000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Laplace.truncated_sample ~rng p
  done;
  let mean = float_of_int !sum /. float_of_int n in
  feq ~tol:2. "mean ≈ µ (+0.5 for ceil)" 300.5 mean

let test_laplace_cdf_pdf () =
  let p = Laplace.params ~mu:0. ~b:1. in
  feq "cdf at mean" 0.5 (Laplace.cdf p 0.);
  feq "pdf at mean" 0.5 (Laplace.pdf p 0.);
  feq ~tol:1e-6 "cdf symmetry" 1.
    (Laplace.cdf p 3. +. Laplace.cdf p (-3.));
  (* CDF is consistent with numerically integrated PDF. *)
  let integral = ref 0. in
  let dx = 0.001 in
  let x = ref (-20.) in
  while !x < 1.5 do
    integral := !integral +. (Laplace.pdf p (!x +. (dx /. 2.)) *. dx);
    x := !x +. dx
  done;
  feq ~tol:1e-3 "cdf = ∫pdf" (Laplace.cdf p 1.5) !integral

(* ------------------------------------------------------------------ *)
(* Theorem 1 / Lemma 3 / Equation 1                                    *)
(* ------------------------------------------------------------------ *)

let test_theorem1 () =
  let p = Laplace.params ~mu:300_000. ~b:13_800. in
  let g = Mechanism.conversation p in
  feq "eps = 4/b" (4. /. 13_800.) g.eps;
  feq ~tol:1e-18 "delta = exp((2-mu)/b)"
    (exp ((2. -. 300_000.) /. 13_800.))
    g.delta

let test_lemma3_composition_identity () =
  (* Theorem 1 is Lemma 3 applied to m1 (sens 2, noise (µ,b)) and m2
     (sens 1, noise (µ/2, b/2)): ε adds, δ adds. *)
  let p = Laplace.params ~mu:1000. ~b:50. in
  let g1 = Mechanism.lemma3 ~sensitivity:2. (Mechanism.m1_noise p) in
  let g2 = Mechanism.lemma3 ~sensitivity:1. (Mechanism.m2_noise p) in
  let g = Mechanism.conversation p in
  feq "eps adds" g.eps (g1.eps +. g2.eps);
  feq ~tol:1e-15 "delta adds" g.delta (g1.delta +. g2.delta)

let test_equation1_inverts () =
  let target = { Mechanism.eps = 0.001; delta = 1e-8 } in
  let p = Mechanism.conversation_noise_for target in
  let g = Mechanism.conversation p in
  feq "eps roundtrip" target.eps g.eps;
  feq ~tol:1e-12 "delta roundtrip" target.delta g.delta

let test_dialing_inverts () =
  let target = { Mechanism.eps = 0.002; delta = 1e-7 } in
  let p = Mechanism.dialing_noise_for target in
  let g = Mechanism.dialing p in
  feq "eps roundtrip" target.eps g.eps;
  feq ~tol:1e-11 "delta roundtrip" target.delta g.delta

(* ------------------------------------------------------------------ *)
(* Theorem 2 composition                                               *)
(* ------------------------------------------------------------------ *)

let test_compose_formula () =
  let g = { Mechanism.eps = 0.001; delta = 1e-9 } in
  let k = 10_000 and d = 1e-5 in
  let c = Composition.compose ~k ~d g in
  let kf = 10_000. in
  feq "eps'"
    ((sqrt (2. *. kf *. log (1. /. 1e-5)) *. 0.001)
    +. (kf *. 0.001 *. (exp 0.001 -. 1.)))
    c.eps;
  feq ~tol:1e-15 "delta'" ((kf *. 1e-9) +. 1e-5) c.delta

let test_compose_monotone_in_k () =
  let g = { Mechanism.eps = 3e-4; delta = 1e-10 } in
  let prev = ref 0. in
  List.iter
    (fun k ->
      let c = Composition.compose ~k ~d:1e-5 g in
      if c.eps <= !prev then Alcotest.fail "eps' not increasing in k";
      prev := c.eps)
    [ 1; 10; 100; 1000; 10_000; 100_000 ]

let test_compose_validation () =
  let g = { Mechanism.eps = 0.1; delta = 0. } in
  Alcotest.check_raises "negative k"
    (Invalid_argument "Composition.compose: negative k") (fun () ->
      ignore (Composition.compose ~k:(-1) ~d:1e-5 g));
  Alcotest.check_raises "d = 0"
    (Invalid_argument "Composition.compose: d must be positive") (fun () ->
      ignore (Composition.compose ~k:1 ~d:0. g))

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: paper parameter sets                               *)
(* ------------------------------------------------------------------ *)

(* The paper reports the three conversation noise levels support 70K,
   250K and 500K rounds at ε′=ln 2, δ′=1e-4 (§6.4).  Our exact Theorem 2
   arithmetic reproduces these within ~10% (the paper rounds up). *)
let test_figure7_round_counts () =
  let expect_k mu b lo hi =
    let p = Laplace.params ~mu ~b in
    let k = Composition.max_rounds (Mechanism.conversation p) in
    if k < lo || k > hi then
      Alcotest.failf "µ=%g b=%g: k=%d outside [%d, %d]" mu b k lo hi
  in
  expect_k 150_000. 7_300. 60_000 75_000;
  expect_k 300_000. 13_800. 220_000 255_000;
  expect_k 450_000. 20_000. 460_000 510_000

let test_figure8_round_counts () =
  let expect_k mu b lo hi =
    let p = Laplace.params ~mu ~b in
    let k = Composition.max_rounds (Mechanism.dialing p) in
    if k < lo || k > hi then
      Alcotest.failf "µ=%g b=%g: k=%d outside [%d, %d]" mu b k lo hi
  in
  (* Paper: 1200, 3500, 8000 rounds; exact arithmetic gives slightly
     fewer for the larger sets (paper rounds generously). *)
  expect_k 8_000. 500. 1_100 1_350;
  expect_k 13_000. 770. 2_700 3_600;
  expect_k 20_000. 1_130. 5_800 8_100

let test_figure7_endpoint_guarantees () =
  (* At the supported k, the realized guarantee is ≈ (ln 2, 1e-4). *)
  let p = Laplace.params ~mu:300_000. ~b:13_800. in
  let k = Composition.max_rounds (Mechanism.conversation p) in
  let c = Composition.compose ~k ~d:Composition.default_d (Mechanism.conversation p) in
  if exp c.eps > 2.0000001 then Alcotest.fail "e^eps' exceeds 2";
  if exp c.eps < 1.99 then Alcotest.fail "e^eps' far below 2 (k not maximal)";
  if c.delta > 1e-4 then Alcotest.fail "delta' exceeds 1e-4"

let test_max_rounds_zero_when_impossible () =
  (* A per-round guarantee worse than the target cannot support 1 round. *)
  let g = { Mechanism.eps = 1.0; delta = 1e-3 } in
  Alcotest.(check int) "k = 0" 0 (Composition.max_rounds g)

let test_best_b_recovers_paper_choice () =
  (* §6.4's sweep should land near the paper's b=13800 for µ=300K. *)
  let b, k =
    Composition.best_b ~protocol:Composition.Conversation ~mu:300_000.
      ~b_lo:2_000. ~b_hi:60_000. ~steps:200 ()
  in
  if b < 11_000. || b > 17_000. then
    Alcotest.failf "sweep chose b=%g, far from paper's 13800" b;
  if k < 220_000 then Alcotest.failf "sweep k=%d too small" k

let test_mu_scaling_laws () =
  (* §6.4: µ grows ∝ √k for fixed (ε′, δ′). *)
  let mu_for k =
    (Composition.noise_for_target ~protocol:Composition.Conversation ~k
       Composition.default_target)
      .mu
  in
  let r1 = mu_for 40_000 /. mu_for 10_000 in
  (* quadrupling k should double µ, within 10% *)
  if Float.abs (r1 -. 2.) > 0.2 then
    Alcotest.failf "µ scaling with √k broken: ratio %g" r1;
  (* µ increases linearly with 1/ε′ *)
  let mu_eps e =
    (Composition.noise_for_target ~protocol:Composition.Conversation
       ~k:10_000
       { Mechanism.eps = e; delta = 1e-4 })
      .mu
  in
  let r2 = mu_eps (log 2. /. 2.) /. mu_eps (log 2.) in
  if Float.abs (r2 -. 2.) > 0.25 then
    Alcotest.failf "µ scaling with 1/ε broken: ratio %g" r2

(* ------------------------------------------------------------------ *)
(* Noise plans (Algorithm 2 step 2)                                    *)
(* ------------------------------------------------------------------ *)

let test_noise_deterministic () =
  let p = Laplace.params ~mu:300_000. ~b:13_800. in
  let plan = Noise.conversation ~mode:Noise.Deterministic p in
  Alcotest.(check int) "singles = µ" 300_000 plan.singles;
  Alcotest.(check int) "pairs = µ/2" 150_000 plan.pairs;
  (* 2µ requests per noising server; 2 servers → the paper's 1.2M. *)
  Alcotest.(check int) "2µ per server" 600_000 (Noise.total_requests plan);
  Alcotest.(check int) "1.2M for 2 noising servers" 1_200_000
    (2 * Noise.total_requests plan)

let test_noise_sampled_statistics () =
  let rng = Drbg.of_string "noise-sampled" in
  let p = Laplace.params ~mu:1000. ~b:50. in
  let n = 2000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Noise.total_requests (Noise.conversation ~rng ~mode:Noise.Sampled p)
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* E[singles + 2·pairs] ≈ µ + 2·(µ/2) = 2µ (pair rounding adds ≤ 1). *)
  if Float.abs (mean -. 2000.) > 40. then
    Alcotest.failf "sampled noise mean %.1f, expected ≈ 2000" mean

let test_tune_drop_count () =
  let p = Laplace.params ~mu:13_000. ~b:770. in
  (* 1M users, 5% dialing → m = 50,000/13,000 ≈ 4. *)
  Alcotest.(check int) "m for 1M users" 4
    (Noise.tune_drop_count ~users:1_000_000 ~dial_fraction:0.05 p);
  (* The paper's experimental scale: optimal m is 1 (§7). *)
  Alcotest.(check int) "m small scale" 1
    (Noise.tune_drop_count ~users:10_000 ~dial_fraction:0.05 p);
  Alcotest.(check int) "m floor at 1" 1
    (Noise.tune_drop_count ~users:0 ~dial_fraction:0.05 p)

(* ------------------------------------------------------------------ *)
(* Bayes (§6.4 example)                                                *)
(* ------------------------------------------------------------------ *)

let test_bayes_paper_examples () =
  feq ~tol:0.005 "prior 50%, ε=ln2 → 67%" (2. /. 3.)
    (Bayes.posterior ~prior:0.5 ~eps:(log 2.));
  feq ~tol:0.005 "prior 50%, ε=ln3 → 75%" 0.75
    (Bayes.posterior ~prior:0.5 ~eps:(log 3.));
  feq ~tol:0.002 "prior 1%, ε=ln3 → ~3%" 0.0294
    (Bayes.posterior ~prior:0.01 ~eps:(log 3.));
  feq "odds ratio bound" 2. (Bayes.max_odds_ratio ~eps:(log 2.))

let test_bayes_update () =
  feq "likelihood 1 leaves prior" 0.3
    (Bayes.update ~prior:0.3 ~likelihood_ratio:1.);
  feq ~tol:1e-9 "posterior matches worst-case bound"
    (Bayes.posterior ~prior:0.5 ~eps:(log 2.))
    (Bayes.update ~prior:0.5 ~likelihood_ratio:2.);
  Alcotest.check_raises "prior validated"
    (Invalid_argument "Bayes.posterior: bad prior") (fun () ->
      ignore (Bayes.posterior ~prior:1.5 ~eps:0.1))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"truncated noise is a non-negative integer" ~count:200
      (pair (float_range (-100.) 1000.) (float_range 0.1 200.))
      (fun (mu, b) ->
        let rng = Drbg.of_string "prop-noise" in
        Laplace.truncated_sample ~rng (Laplace.params ~mu ~b) >= 0);
    Test.make ~name:"cdf is monotone" ~count:100
      (triple (float_range (-50.) 50.) (float_range 0.5 20.)
         (pair (float_range (-100.) 100.) (float_range (-100.) 100.)))
      (fun (mu, b, (x, y)) ->
        let p = Laplace.params ~mu ~b in
        let lo = Float.min x y and hi = Float.max x y in
        Laplace.cdf p lo <= Laplace.cdf p hi +. 1e-12);
    Test.make ~name:"composition eps' grows with k" ~count:50
      (pair (int_range 1 1000) (int_range 1 1000))
      (fun (k1, k2) ->
        let g = { Mechanism.eps = 1e-3; delta = 1e-9 } in
        let lo = min k1 k2 and hi = max k1 k2 in
        lo = hi
        || (Composition.compose ~k:lo ~d:1e-5 g).eps
           < (Composition.compose ~k:hi ~d:1e-5 g).eps);
    Test.make ~name:"equation 1 inverts theorem 1" ~count:100
      (pair (float_range 1e-4 0.5) (float_range 1e-12 1e-3))
      (fun (eps, delta) ->
        let p = Mechanism.conversation_noise_for { Mechanism.eps; delta } in
        let g = Mechanism.conversation p in
        Float.abs (g.eps -. eps) < 1e-9
        && Float.abs (g.delta -. delta) /. delta < 1e-6);
    Test.make ~name:"max_rounds is exact (k ok, k+1 not)" ~count:25
      (pair (float_range 500. 5000.) (float_range 20. 200.))
      (fun (mu, b) ->
        let g = Mechanism.conversation (Laplace.params ~mu ~b) in
        let target = { Mechanism.eps = log 2.; delta = 1e-4 } in
        let k = Composition.max_rounds ~target g in
        let ok n = Composition.satisfies ~target (Composition.compose ~k:n ~d:1e-5 g) in
        (k = 0 || ok k) && not (ok (k + 1)));
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "dp",
    [
      tc "laplace params validation" `Quick test_laplace_params;
      tc "laplace sampler statistics" `Quick test_laplace_statistics;
      tc "truncated sample non-negative" `Quick test_truncated_sample_nonnegative;
      tc "truncated sample mean" `Quick test_truncated_sample_mean;
      tc "laplace cdf/pdf" `Quick test_laplace_cdf_pdf;
      tc "theorem 1" `Quick test_theorem1;
      tc "lemma 3 decomposition" `Quick test_lemma3_composition_identity;
      tc "equation 1 inverts" `Quick test_equation1_inverts;
      tc "dialing noise inverts" `Quick test_dialing_inverts;
      tc "theorem 2 formula" `Quick test_compose_formula;
      tc "composition monotone in k" `Quick test_compose_monotone_in_k;
      tc "composition validation" `Quick test_compose_validation;
      tc "figure 7 round counts" `Quick test_figure7_round_counts;
      tc "figure 8 round counts" `Quick test_figure8_round_counts;
      tc "figure 7 endpoint guarantees" `Quick test_figure7_endpoint_guarantees;
      tc "max_rounds zero when impossible" `Quick test_max_rounds_zero_when_impossible;
      tc "b-sweep recovers paper choice" `Slow test_best_b_recovers_paper_choice;
      tc "µ scaling laws" `Quick test_mu_scaling_laws;
      tc "deterministic noise plan" `Quick test_noise_deterministic;
      tc "sampled noise statistics" `Quick test_noise_sampled_statistics;
      tc "invitation drop tuning" `Quick test_tune_drop_count;
      tc "bayes paper examples" `Quick test_bayes_paper_examples;
      tc "bayes update" `Quick test_bayes_update;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )

(* Advanced vs basic composition: for one round they coincide in spirit,
   and for large k Theorem 2's √k bound is strictly better than the
   naive k·ε sum — the reason the paper can support hundreds of
   thousands of rounds. *)
let test_advanced_beats_basic_composition () =
  let g = Mechanism.conversation (Laplace.params ~mu:300_000. ~b:13_800.) in
  let naive k = float_of_int k *. g.Mechanism.eps in
  let advanced k = (Composition.compose ~k ~d:1e-5 g).Mechanism.eps in
  (* Small k: the √k term's ln(1/d) factor makes Theorem 2 looser. *)
  Alcotest.(check bool) "naive can win at k=10" true (naive 10 < advanced 10);
  (* Large k: Theorem 2 wins by orders of magnitude. *)
  List.iter
    (fun k ->
      let a = advanced k and n = naive k in
      if a >= n then
        Alcotest.failf "advanced %.3f not better than naive %.3f at k=%d" a n k)
    [ 10_000; 100_000; 250_000 ];
  (* At the paper's operating point the advantage is ~30x. *)
  let k = 234_439 in
  if naive k /. advanced k < 10. then
    Alcotest.failf "advantage only %.1fx at the operating point"
      (naive k /. advanced k)

(* The √k growth law (§6.4 "µ increases proportionally to √k"),
   verified on max_rounds with the paper's b-sweep at each µ.  The law
   is approximate — the log(1/δ′) term shaves it below exactly
   quadratic (the paper's own triple 65K/234K/492K gives 7.5× for 3× µ,
   vs 9× for pure k ∝ µ²) — so we assert strongly super-linear and at
   most quadratic growth. *)
let test_supported_rounds_scale_quadratically_in_mu () =
  let k_of mu =
    snd
      (Composition.best_b ~protocol:Composition.Conversation ~mu
         ~b_lo:(mu /. 100.) ~b_hi:mu ~steps:120 ())
  in
  let k1 = k_of 100_000. and k4 = k_of 400_000. in
  let ratio = float_of_int k4 /. float_of_int k1 in
  if ratio < 8. || ratio > 16.5 then
    Alcotest.failf "k(4µ)/k(µ) = %.1f, expected in [8, 16]" ratio

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "advanced vs basic composition" `Quick
          test_advanced_beats_basic_composition;
        Alcotest.test_case "k scales as µ²" `Quick
          test_supported_rounds_scale_quadratically_in_mu;
      ] )
