(* Traffic analysis demo: the same adversary against the §4 strawman
   baseline and against Vuvuzela.

   The adversary wants to know whether users 0 and 1 ("Alice" and
   "Bob") are talking.  Against the strawman (single visible server, no
   mixing, no noise) one round is decisive.  Against Vuvuzela the
   optimal statistical attack is run on the live implementation and its
   confidence is compared with the differential-privacy bound.

     dune exec examples/traffic_analysis.exe *)

open Vuvuzela_dp
open Vuvuzela_attack

let () =
  Printf.printf "== Traffic analysis: strawman vs Vuvuzela ==\n\n";

  (* ---------------- Strawman ---------------- *)
  Printf.printf "--- strawman (Figure 4: one visible server) ---\n";
  let users = [ 0; 1; 2; 3; 4; 5 ] in
  let behavior u =
    match u with
    | 0 -> Strawman.Talking_to 1
    | 1 -> Strawman.Talking_to 0
    | 2 -> Strawman.Talking_to 3
    | 3 -> Strawman.Talking_to 2
    | _ -> Strawman.Idle_cover
  in
  let log = Strawman.run_round ~round:1 ~users ~behavior in
  Printf.printf "one round of observation; pairs visible to the adversary:\n";
  List.iter
    (fun (u, v) -> Printf.printf "  users %d and %d are talking\n" u v)
    (Strawman.communicating_pairs log);
  Printf.printf
    "confirmation attack (block everyone but 0,1): talking=%b -- decisive \
     in one round.\n\n"
    (Strawman.confirmation_attack ~round:2 ~users ~behavior ~suspects:(0, 1));

  (* ---------------- Vuvuzela, live ---------------- *)
  Printf.printf "--- vuvuzela (live implementation, scaled noise) ---\n";
  let noise = Laplace.params ~mu:60. ~b:(60. /. 21.7) in
  let g = Mechanism.conversation noise in
  Printf.printf "noise µ=%.0f b=%.1f -> per-round ε=%.3f δ=%.1e\n"
    noise.Laplace.mu noise.Laplace.b g.Mechanism.eps g.Mechanism.delta;
  let rounds = 12 in
  let run talking seed =
    Disclosure.network_attack ~idle_users:4 ~noise ~talking ~rounds
      ~prior:0.5 ~seed ()
  in
  let v_talk = run true "ta-live-talking" in
  let v_idle = run false "ta-live-idle" in
  Printf.printf
    "adversary (controls all users but the pair, and all servers but \
     one) watches %d rounds:\n"
    rounds;
  Printf.printf "  when actually talking: posterior %.1f%% (logLR %+.3f)\n"
    (100. *. v_talk.Disclosure.posterior)
    v_talk.Disclosure.log_lr;
  Printf.printf "  when not talking:      posterior %.1f%% (logLR %+.3f)\n"
    (100. *. v_idle.Disclosure.posterior)
    v_idle.Disclosure.log_lr;
  Printf.printf
    "  DP budget: |logLR| ≤ k·ε = %.2f; the realized evidence is a tiny \
     random walk inside it\n"
    (float_of_int rounds *. g.Mechanism.eps);
  Printf.printf
    "  (at production scale, µ=300K keeps ε'=ln 2 for %d rounds)\n"
    (Composition.max_rounds
       (Mechanism.conversation (Laplace.params ~mu:300_000. ~b:13_800.)));

  (* ---------------- Ablation: noise off ---------------- *)
  Printf.printf "\n--- ablation: the same system with noise disabled ---\n";
  let no_noise = Laplace.params ~mu:0.01 ~b:0.01 in
  let v_on =
    Disclosure.network_attack ~idle_users:4 ~noise:no_noise ~talking:true
      ~rounds:6 ~prior:0.5 ~seed:"ta-ablate-on" ()
  in
  let v_off =
    Disclosure.network_attack ~idle_users:4 ~noise:no_noise ~talking:false
      ~rounds:6 ~prior:0.5 ~seed:"ta-ablate-off" ()
  in
  Printf.printf
    "without cover traffic the mixnet alone does not help:\n";
  Printf.printf "  talking:     posterior %.1f%% after 6 rounds\n"
    (100. *. v_on.Disclosure.posterior);
  Printf.printf "  not talking: posterior %.1f%% after 6 rounds\n"
    (100. *. v_off.Disclosure.posterior);

  (* ---------------- Intersection attack ---------------- *)
  Printf.printf "\n--- intersection attack (knock Alice offline, §4.2) ---\n";
  let rng = Vuvuzela_crypto.Drbg.of_string "ta-intersect" in
  let loud =
    Disclosure.intersection_attack ~rng ~noise:no_noise ~talking:true
      ~rounds_each:50 ()
  in
  let quiet =
    Disclosure.intersection_attack ~rng
      ~noise:(Laplace.params ~mu:3000. ~b:(3000. /. 21.7))
      ~talking:true ~rounds_each:50 ()
  in
  Printf.printf
    "difference in mean m2 between Alice-online and Alice-offline rounds \
     (50 rounds each):\n";
  Printf.printf "  no noise:        Δ=%.3f  z-score %.1f  (caught)\n"
    loud.Disclosure.delta_estimate loud.Disclosure.z_score;
  Printf.printf "  vuvuzela noise:  Δ=%.3f  z-score %.1f  (buried)\n"
    quiet.Disclosure.delta_estimate quiet.Disclosure.z_score;
  Printf.printf "done.\n"
