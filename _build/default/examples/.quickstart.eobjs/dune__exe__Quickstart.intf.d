examples/quickstart.mli:
