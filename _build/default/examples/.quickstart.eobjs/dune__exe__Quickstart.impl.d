examples/quickstart.ml: Chain Client Deaddrop Laplace List Network Noise Printf String Vuvuzela Vuvuzela_crypto Vuvuzela_dp
