examples/traffic_analysis.ml: Composition Disclosure Laplace List Mechanism Printf Strawman Vuvuzela_attack Vuvuzela_crypto Vuvuzela_dp
