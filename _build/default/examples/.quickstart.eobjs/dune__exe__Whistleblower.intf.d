examples/whistleblower.mli:
