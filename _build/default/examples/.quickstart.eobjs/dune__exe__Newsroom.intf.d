examples/newsroom.mli:
