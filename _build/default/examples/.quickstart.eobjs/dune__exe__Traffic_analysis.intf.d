examples/traffic_analysis.mli:
