examples/whistleblower.ml: Bayes Client Composition Laplace List Mechanism Network Noise Printf Vuvuzela Vuvuzela_dp
