examples/privacy_planner.mli:
