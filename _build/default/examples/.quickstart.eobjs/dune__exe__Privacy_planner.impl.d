examples/privacy_planner.ml: Arg Bayes Cmd Cmdliner Composition Laplace Mechanism Printf Term Vuvuzela_dp Vuvuzela_sim
