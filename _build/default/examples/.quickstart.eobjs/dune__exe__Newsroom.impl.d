examples/newsroom.ml: Bytes Bytes_util Certificate Client Dialing Drbg Ed25519 Format Hashtbl Laplace List Network Noise Printf String Vuvuzela Vuvuzela_crypto Vuvuzela_dp
