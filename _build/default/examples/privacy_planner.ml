(* Privacy planner: the §6.4 deployment-parameter workflow as a CLI.

   Given a target (ε′, δ′) and either a desired number of protected
   rounds or a noise budget µ, compute the missing pieces and report the
   operational costs implied (per the paper's cost model).

     dune exec examples/privacy_planner.exe -- --help
     dune exec examples/privacy_planner.exe -- --mu 300000
     dune exec examples/privacy_planner.exe -- --rounds 200000 --protocol dialing
*)

open Vuvuzela_dp
open Cmdliner

let report ~protocol ~target ~d (p : Laplace.params) =
  let per_round = Composition.per_round_of protocol p in
  let k = Composition.max_rounds ~d ~target per_round in
  let spent = Composition.compose ~k:(max k 1) ~d per_round in
  Printf.printf "noise:      µ=%.0f  b=%.1f  (std %.1f)\n" p.Laplace.mu
    p.Laplace.b (Laplace.stddev p);
  Printf.printf "per round:  ε=%.3e  δ=%.3e\n" per_round.Mechanism.eps
    per_round.Mechanism.delta;
  Printf.printf "supports:   %d rounds at ε'≤%.4f, δ'≤%.1e\n" k
    target.Mechanism.eps target.Mechanism.delta;
  Printf.printf "at budget:  ε'=%.4f (e^ε'=%.3f)  δ'=%.2e\n"
    spent.Mechanism.eps (exp spent.Mechanism.eps) spent.Mechanism.delta;
  Printf.printf "posterior:  a 50%% prior can reach %.1f%%\n"
    (100. *. Bayes.posterior ~prior:0.5 ~eps:spent.Mechanism.eps);
  match protocol with
  | Composition.Conversation ->
      let model = Vuvuzela_sim.Cost_model.paper in
      let lat users =
        Vuvuzela_sim.Cost_model.conv_latency model ~users ~servers:3 ~noise:p
      in
      Printf.printf
        "cost:       %.0f noise requests/server/round; est. latency %.0f s \
         at 1M users, %.0f s at 2M (3 servers)\n"
        (Vuvuzela_sim.Cost_model.conv_noise_per_server p)
        (lat 1_000_000) (lat 2_000_000)
  | Composition.Dialing ->
      let inv_bytes =
        Vuvuzela_sim.Cost_model.invitation_drop_bytes ~users:1_000_000
          ~servers:3 ~m:1 ~dial_fraction:0.05 ~dial_noise:p
      in
      Printf.printf
        "cost:       %.0f noise invitations/drop/server/round; ~%.1f MB \
         drop download at 1M users (m=1, 5%% dialing)\n"
        p.Laplace.mu (inv_bytes /. 1e6)

let run protocol mu rounds eps' delta' d =
  let protocol =
    match protocol with
    | "conversation" -> Composition.Conversation
    | "dialing" -> Composition.Dialing
    | s -> failwith (Printf.sprintf "unknown protocol %S" s)
  in
  let target = { Mechanism.eps = eps'; delta = delta' } in
  Printf.printf "target: ε'=%.4f (e^ε'=%.2f), δ'=%.1e, d=%.0e\n\n" eps'
    (exp eps') delta' d;
  (match (mu, rounds) with
  | Some mu, None ->
      (* Given µ: sweep b for the best supported k (§6.4 methodology). *)
      let b, _k = Composition.best_b ~d ~target ~protocol ~mu () in
      report ~protocol ~target ~d (Laplace.params ~mu ~b)
  | None, Some k ->
      (* Given k: invert composition and Theorem 1 (Equation 1). *)
      let p = Composition.noise_for_target ~d ~protocol ~k target in
      report ~protocol ~target ~d p
  | Some mu, Some k ->
      (* Both: report whether µ suffices for k. *)
      let b, kmax = Composition.best_b ~d ~target ~protocol ~mu () in
      report ~protocol ~target ~d (Laplace.params ~mu ~b);
      if kmax >= k then
        Printf.printf "\nverdict: µ=%.0f covers the requested %d rounds.\n" mu k
      else
        Printf.printf
          "\nverdict: µ=%.0f covers only %d of the requested %d rounds; \
           try µ≈%.0f.\n"
          mu kmax k
          (Composition.noise_for_target ~d ~protocol ~k target).Laplace.mu
  | None, None ->
      Printf.printf
        "nothing to plan: pass --mu and/or --rounds (see --help).\n");
  0

let protocol_t =
  Arg.(
    value
    & opt string "conversation"
    & info [ "protocol"; "p" ] ~docv:"PROTO"
        ~doc:"Protocol to plan for: conversation or dialing.")

let mu_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "mu" ] ~docv:"MU" ~doc:"Mean noise per server per round.")

let rounds_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "rounds"; "k" ] ~docv:"K"
        ~doc:"Number of rounds the user must be protected for.")

let eps_t =
  Arg.(
    value
    & opt float (log 2.)
    & info [ "eps" ] ~docv:"EPS" ~doc:"Target ε' (default ln 2).")

let delta_t =
  Arg.(
    value
    & opt float 1e-4
    & info [ "delta" ] ~docv:"DELTA" ~doc:"Target δ' (default 1e-4).")

let d_t =
  Arg.(
    value
    & opt float Composition.default_d
    & info [ "d" ] ~docv:"D"
        ~doc:"Theorem 2's free parameter (default 1e-5).")

let cmd =
  let doc = "plan Vuvuzela noise parameters for a privacy target (§6.4)" in
  Cmd.v
    (Cmd.info "privacy_planner" ~doc)
    Term.(const run $ protocol_t $ mu_t $ rounds_t $ eps_t $ delta_t $ d_t)

let () = exit (Cmd.eval' cmd)
