(* A small discrete-event simulation engine: a time-ordered event heap
   and exclusive resources with FIFO queueing.

   The pipeline simulator builds Vuvuzela's server chain on top of this:
   each server machine is a [Resource] (it processes one round's batch
   at a time), rounds are processes that seize servers in chain order,
   and the engine advances virtual time.  This is how we measure round
   pipelining effects (Figure 9's throughput, §8.3's messages/minute)
   rather than assuming them. *)

type event = { time : float; seq : int; action : unit -> unit }

module Heap = struct
  (* Binary min-heap on (time, seq). *)
  type t = { mutable a : event array; mutable n : int }

  let create () = { a = Array.make 64 { time = 0.; seq = 0; action = ignore }; n = 0 }
  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h e =
    if h.n = Array.length h.a then begin
      let bigger = Array.make (2 * h.n) e in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    h.a.(h.n) <- e;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let t = h.a.(!i) in
      h.a.(!i) <- h.a.(p);
      h.a.(p) <- t;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && lt h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.n && lt h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let t = h.a.(!i) in
          h.a.(!i) <- h.a.(!smallest);
          h.a.(!smallest) <- t;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

type t = {
  heap : Heap.t;
  mutable now : float;
  mutable next_seq : int;
  mutable processed : int;
}

let create () = { heap = Heap.create (); now = 0.; next_seq = 0; processed = 0 }
let now t = t.now
let events_processed t = t.processed

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Event_sim.schedule: negative delay";
  let e = { time = t.now +. delay; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap e

(* Run until the event queue drains or [until] is reached. *)
let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some e -> (
        match until with
        | Some limit when e.time > limit ->
            t.now <- limit;
            continue := false
        | _ ->
            t.now <- e.time;
            t.processed <- t.processed + 1;
            e.action ())
  done

(* An exclusive resource with FIFO queueing: [acquire] runs [k] as soon
   as the resource is free, and the holder calls the provided release
   function when done. *)
module Resource = struct
  type nonrec t = {
    sim : t;
    mutable busy : bool;
    waiting : (unit -> unit) Queue.t;
    mutable busy_time : float;
    mutable last_acquired : float;
  }

  let create sim =
    { sim; busy = false; waiting = Queue.create (); busy_time = 0.; last_acquired = 0. }

  let utilization r ~horizon = if horizon <= 0. then 0. else r.busy_time /. horizon

  let rec acquire r k =
    if r.busy then Queue.push (fun () -> acquire r k) r.waiting
    else begin
      r.busy <- true;
      r.last_acquired <- r.sim.now;
      k (fun () ->
          r.busy <- false;
          r.busy_time <- r.busy_time +. (r.sim.now -. r.last_acquired);
          match Queue.take_opt r.waiting with
          | Some next -> next ()
          | None -> ())
    end

  (* Hold the resource for [duration] of simulated time, then run [k]. *)
  let use r ~duration k =
    acquire r (fun release ->
        schedule r.sim ~delay:duration (fun () ->
            release ();
            k ()))
end
