(** Synthetic workload generation over the functional implementation:
    §8.1's behavioural mix (conversing users, 5% dialing, idle cover)
    plus churn and outages, with end-to-end delivery statistics. *)

type profile = {
  users : int;
  paired_fraction : float;
  message_rate : float;
  dial_fraction : float;
  churn : float;
  offline : float;
  dial_every : int;
}

val paper_mix : users:int -> profile
(** §8.1: everyone paired and messaging every round, 5% dialing, no
    churn or outages. *)

val stress : users:int -> profile
(** A hostile mix: 60% paired, 40% message rate, 10% dialing, 5% churn,
    15% per-round outages. *)

type summary = {
  rounds : int;
  dial_rounds : int;
  sent : int;
  delivered : int;
  retransmissions : int;
  duplicates : int;
  calls_placed : int;
  calls_heard : int;
  mean_delivery_rounds : float;
  max_delivery_rounds : int;
  final_m : int;
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?seed:string ->
  ?noise:Vuvuzela_dp.Laplace.params ->
  ?dial_noise:Vuvuzela_dp.Laplace.params ->
  profile:profile ->
  rounds:int ->
  unit ->
  summary
(** Run the profile over a fresh 3-server deployment (real crypto),
    including a retransmission drain at the end. *)
