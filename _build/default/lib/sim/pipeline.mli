(** Discrete-event simulation of the Vuvuzela round pipeline: servers as
    exclusive resources, rounds flowing down the chain, successive
    rounds overlapping (§8.2-§8.3). *)

type result = {
  rounds_completed : int;
  mean_latency : float;
  round_interval : float;
  throughput : float;
  server_utilization : float array;
}

val run :
  ?model:Cost_model.t ->
  users:int ->
  servers:int ->
  noise:Vuvuzela_dp.Laplace.params ->
  rounds:int ->
  unit ->
  result
(** Simulate [rounds] pipelined conversation rounds.  Latency agrees
    with {!Cost_model.conv_latency} within a few percent; the round
    interval and utilization are emergent. *)
