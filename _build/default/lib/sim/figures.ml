(* Regeneration harnesses for every figure and headline number in the
   paper's evaluation (§6.4, §8).  Each function returns the data series;
   bench/main.ml prints them next to the paper's values. *)

open Vuvuzela_dp

type point = { x : float; y : float }

let series f xs = List.map (fun x -> { x; y = f x }) xs

(* ------------------------------------------------------------------ *)
(* Figure 7: ε′ and δ′ vs k, conversation noise                        *)
(* ------------------------------------------------------------------ *)

let fig7_params =
  [ (150_000., 7_300.); (300_000., 13_800.); (450_000., 20_000.) ]

let fig8_params = [ (8_000., 500.); (13_000., 770.); (20_000., 1_130.) ]

let ks lo hi n =
  (* log-spaced round counts *)
  let ratio = (hi /. lo) ** (1. /. float_of_int (n - 1)) in
  List.init n (fun i -> int_of_float (lo *. (ratio ** float_of_int i)))

type privacy_curve = {
  mu : float;
  b : float;
  points : (int * float * float) list;  (** k, e^ε′, δ′ *)
  supported_k : int;  (** max rounds at ε′=ln2, δ′=1e-4 *)
}

let privacy_figure ~protocol ~params ~k_lo ~k_hi =
  List.map
    (fun (mu, b) ->
      let p = Laplace.params ~mu ~b in
      let per_round = Composition.per_round_of protocol p in
      let points =
        List.map
          (fun k ->
            let e, d =
              Composition.figure_point ~protocol ~mu ~b ~k
                ~d:Composition.default_d
            in
            (k, e, d))
          (ks k_lo k_hi 13)
      in
      { mu; b; points; supported_k = Composition.max_rounds per_round })
    params

let figure7 () =
  privacy_figure ~protocol:Composition.Conversation ~params:fig7_params
    ~k_lo:10_000. ~k_hi:1_000_000.

let figure8 () =
  privacy_figure ~protocol:Composition.Dialing ~params:fig8_params
    ~k_lo:1_000. ~k_hi:16_000.

(* ------------------------------------------------------------------ *)
(* Figure 9: conversation latency vs users                             *)
(* ------------------------------------------------------------------ *)

let fig9_users = [ 10; 250_000; 500_000; 750_000; 1_000_000; 1_500_000; 2_000_000 ]
let fig9_mus = [ 100_000.; 200_000.; 300_000. ]

type latency_curve = { label : string; points : (int * float) list }

(* The paper's experiments pin noise at exactly µ (§8.1), which the
   closed-form model reflects by using the mean. *)
let conv_noise_of mu = Laplace.params ~mu ~b:(mu /. 21.7) (* b as in §6.4 ratio *)

let figure9 ?(model = Cost_model.paper) () =
  List.map
    (fun mu ->
      {
        label = Printf.sprintf "mu=%.0f" mu;
        points =
          List.map
            (fun users ->
              ( users,
                Cost_model.conv_latency model ~users ~servers:3
                  ~noise:(conv_noise_of mu) ))
            fig9_users;
      })
    fig9_mus

(* The same curve measured by the discrete-event pipeline rather than
   the closed form (they must agree; the DES additionally yields round
   intervals and utilization). *)
let figure9_des ?(model = Cost_model.paper) ?(mu = 300_000.) () =
  List.map
    (fun users ->
      let r =
        Pipeline.run ~model ~users ~servers:3 ~noise:(conv_noise_of mu)
          ~rounds:6 ()
      in
      (users, r.Pipeline.mean_latency, r.Pipeline.round_interval))
    fig9_users

(* ------------------------------------------------------------------ *)
(* Figure 10: dialing latency vs users                                 *)
(* ------------------------------------------------------------------ *)

let dial_noise_13k = Laplace.params ~mu:13_000. ~b:770.

let figure10 ?(model = Cost_model.paper) () =
  {
    label = "mu=13000";
    points =
      List.map
        (fun users ->
          ( users,
            Cost_model.dial_latency model ~users ~servers:3 ~m:1
              ~dial_noise:dial_noise_13k ))
        fig9_users;
  }

(* ------------------------------------------------------------------ *)
(* Figure 11: latency vs number of servers (1M users, µ=300K)          *)
(* ------------------------------------------------------------------ *)

let figure11 ?(model = Cost_model.paper) () =
  List.map
    (fun servers ->
      ( servers,
        Cost_model.conv_latency model ~users:1_000_000 ~servers
          ~noise:(conv_noise_of 300_000.) ))
    [ 1; 2; 3; 4; 5; 6 ]

(* Quadratic-shape check: fit latency(s) against s² by least squares and
   report R². *)
let quadratic_r2 points =
  let xs = List.map (fun (s, _) -> float_of_int (s * s)) points in
  let ys = List.map snd points in
  let n = float_of_int (List.length points) in
  let mean l = List.fold_left ( +. ) 0. l /. n in
  let mx = mean xs and my = mean ys in
  let cov =
    List.fold_left2 (fun a x y -> a +. ((x -. mx) *. (y -. my))) 0. xs ys
  in
  let vx = List.fold_left (fun a x -> a +. ((x -. mx) ** 2.)) 0. xs in
  let slope = cov /. vx in
  let intercept = my -. (slope *. mx) in
  let ss_res =
    List.fold_left2
      (fun a x y -> a +. ((y -. (slope *. x) -. intercept) ** 2.))
      0. xs ys
  in
  let ss_tot = List.fold_left (fun a y -> a +. ((y -. my) ** 2.)) 0. ys in
  1. -. (ss_res /. ss_tot)

(* ------------------------------------------------------------------ *)
(* Headline numbers (§1, §8.2, §8.3)                                   *)
(* ------------------------------------------------------------------ *)

type headline = {
  latency_1m : float;  (** paper: 37 s *)
  latency_2m : float;  (** paper: 55 s *)
  latency_10 : float;  (** paper: 20 s *)
  throughput_1m : float;  (** paper: 68,000 msgs/s *)
  lower_bound_2m : float;  (** paper: ≈28 s *)
  noise_requests : float;  (** paper: 1.2M for 3 servers, µ=300K *)
  server_bandwidth_1m : float;  (** paper: 166 MB/s *)
  client_bandwidth : float;  (** paper: ≈12 KB/s *)
  drop_bytes : float;  (** paper: ≈7 MB per dialing round *)
  messages_per_minute : float;  (** paper: 4 per client at 1M users *)
}

let headlines ?(model = Cost_model.paper) () =
  let noise = conv_noise_of 300_000. in
  let latency users =
    Cost_model.conv_latency model ~users ~servers:3 ~noise
  in
  let interval =
    Cost_model.conv_round_interval model ~users:1_000_000 ~servers:3 ~noise
  in
  {
    latency_1m = latency 1_000_000;
    latency_2m = latency 2_000_000;
    latency_10 = latency 10;
    throughput_1m =
      Cost_model.conv_throughput model ~users:1_000_000 ~servers:3 ~noise;
    lower_bound_2m =
      Cost_model.conv_lower_bound model ~users:2_000_000 ~servers:3 ~noise;
    noise_requests =
      2. *. Cost_model.conv_noise_per_server noise (* 2 mixing servers *);
    server_bandwidth_1m =
      Cost_model.server_bandwidth model ~users:1_000_000 ~servers:3 ~noise;
    client_bandwidth =
      Cost_model.client_bandwidth model ~users:1_000_000 ~servers:3 ~noise
        ~m:1 ~dial_fraction:0.05 ~dial_noise:dial_noise_13k
        ~dial_interval:600.;
    drop_bytes =
      Cost_model.invitation_drop_bytes ~users:1_000_000 ~servers:3 ~m:1
        ~dial_fraction:0.05 ~dial_noise:dial_noise_13k;
    messages_per_minute = 60. /. interval;
  }
