(* Baseline comparators from the paper's related work (§1, §10).

   "Systems with provably strong security guarantees have relied on
   mechanisms that scale quadratically in the number of users" — either
   broadcasting every message to every user (Dissent [36], Herbivore
   [21], Riposte [12]) or O(n²) computation via private information
   retrieval (the Pynchon Gate [34]).  Vuvuzela's headline claim is
   scaling metadata-private messaging "about 100× higher than prior
   systems".

   This module provides (a) cost models for the two baseline families on
   the same hardware constants as the Vuvuzela model, and (b) a small
   *functional* broadcast messenger — trivially metadata-private, since
   everyone receives everything — to validate the model's shape at
   laptop scale.  The bench prints the crossover table. *)

(* ------------------------------------------------------------------ *)
(* Cost models                                                         *)
(* ------------------------------------------------------------------ *)

(* Broadcast (Dissent-style): each round, each of n users contributes a
   fixed-size message and every user must download all n of them.  The
   server's egress is n² · msg bytes per round; DC-net/verifiable
   shuffling computation is charged per delivered copy. *)
let broadcast_round_latency (model : Cost_model.t) ~users ~msg_bytes =
  let copies = float_of_int users *. float_of_int users in
  let egress = copies *. float_of_int msg_bytes /. model.Cost_model.link_bandwidth in
  (* Per-copy processing (XOR/verify), generously fast: 100M copies/s. *)
  let compute = copies /. 1e8 in
  egress +. compute

(* PIR (Pynchon-style): each of n users' retrievals costs a linear scan
   over the n-message database; total server work O(n²) cheap word ops.
   We charge one 256-byte XOR pass per (user, message) pair at memory
   bandwidth (~10 GB/s). *)
let pir_round_latency ~users ~msg_bytes =
  let pairs = float_of_int users *. float_of_int users in
  pairs *. float_of_int msg_bytes /. 10e9

(* Vuvuzela on the same constants, for the comparison table. *)
let vuvuzela_round_latency model ~users ~noise =
  Cost_model.conv_latency model ~users ~servers:3 ~noise

(* Largest user count each system supports within a latency budget
   (binary search; all three latencies are monotone in users). *)
let max_users ~budget latency_of =
  if latency_of 2 > budget then 0
  else begin
    let lo = ref 2 and hi = ref 4 in
    while latency_of !hi <= budget && !hi < 1 lsl 40 do
      lo := !hi;
      hi := !hi * 2
    done;
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if latency_of mid <= budget then lo := mid else hi := mid
    done;
    !lo
  end

type comparison_row = {
  users : int;
  vuvuzela_s : float;
  broadcast_s : float;
  pir_s : float;
}

let comparison_table ?(model = Cost_model.paper) ~noise users_list =
  List.map
    (fun users ->
      {
        users;
        vuvuzela_s = vuvuzela_round_latency model ~users ~noise;
        broadcast_s =
          broadcast_round_latency model ~users
            ~msg_bytes:Vuvuzela.Types.sealed_message_len;
        pir_s =
          pir_round_latency ~users ~msg_bytes:Vuvuzela.Types.sealed_message_len;
      })
    users_list

(* ------------------------------------------------------------------ *)
(* Functional broadcast messenger (toy Dissent)                        *)
(* ------------------------------------------------------------------ *)

(* Everyone's sealed message is delivered to everyone; recipients
   trial-decrypt.  Metadata-private against any observer by
   construction, but per-round work is n² message transfers and n²
   trial decryptions across the population — the measured shape the
   cost model predicts. *)
module Broadcast = struct
  open Vuvuzela_crypto

  type user = {
    identity : Vuvuzela.Types.identity;
    mutable inbox : (bytes * string) list;  (** (sender pk, text) *)
    mutable trial_decryptions : int;
  }

  type t = { users : user array; mutable deliveries : int }

  let create ~n ~seed =
    {
      users =
        Array.init n (fun i ->
            {
              identity =
                Vuvuzela.Types.identity_of_seed
                  (Bytes.of_string (Printf.sprintf "%s-bc-%d" seed i));
              inbox = [];
              trial_decryptions = 0;
            });
      deliveries = 0;
    }

    (* Each sender seals (sender_pk || text) to the recipient; every user
       receives every ciphertext and trial-decrypts. *)
  let run_round ?rng t ~sends =
    let blobs =
      List.map
        (fun (sender, recipient, text) ->
          let s = t.users.(sender) and r = t.users.(recipient) in
          Box.seal_anonymous ?rng
            ~recipient_pk:r.identity.Vuvuzela.Types.public
            (Bytes.cat s.identity.Vuvuzela.Types.public (Bytes.of_string text)))
        sends
    in
    (* Idle users still contribute cover blobs so send-rate is uniform. *)
    let cover =
      Array.to_list
        (Array.map
           (fun u ->
             ignore u;
             Box.seal_anonymous ?rng
               ~recipient_pk:(Drbg.bytes ?rng 32)
               (Drbg.bytes ?rng 40))
           t.users)
    in
    let all = blobs @ cover in
    (* Broadcast: every user scans every blob. *)
    Array.iter
      (fun u ->
        List.iter
          (fun blob ->
            u.trial_decryptions <- u.trial_decryptions + 1;
            match
              Box.open_anonymous
                ~recipient_sk:u.identity.Vuvuzela.Types.secret
                ~recipient_pk:u.identity.Vuvuzela.Types.public blob
            with
            | Some plain when Bytes.length plain >= 32 ->
                let sender = Bytes.sub plain 0 32 in
                let text =
                  Bytes.to_string (Bytes.sub plain 32 (Bytes.length plain - 32))
                in
                u.inbox <- (sender, text) :: u.inbox;
                t.deliveries <- t.deliveries + 1
            | _ -> ())
          all)
      t.users;
    List.length all

  let inbox t i = List.rev t.users.(i).inbox
  let trial_decryptions t =
    Array.fold_left (fun a u -> a + u.trial_decryptions) 0 t.users
end
