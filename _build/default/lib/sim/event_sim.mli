(** A small discrete-event simulation engine: a time-ordered event heap
    (FIFO on ties) and exclusive resources with queueing. *)

type t

val create : unit -> t
val now : t -> float
val events_processed : t -> int

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on negative delay. *)

val run : ?until:float -> t -> unit
(** Drain the event queue, or stop the clock at [until]. *)

module Resource : sig
  type sim := t
  type t

  val create : sim -> t

  val acquire : t -> ((unit -> unit) -> unit) -> unit
  (** [acquire r k] runs [k release] once the resource is free; the
      holder must call [release] exactly once. *)

  val use : t -> duration:float -> (unit -> unit) -> unit
  (** Hold the resource for [duration] simulated seconds, then
      continue. *)

  val utilization : t -> horizon:float -> float
end
