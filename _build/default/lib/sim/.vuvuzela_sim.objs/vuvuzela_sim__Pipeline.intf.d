lib/sim/pipeline.mli: Cost_model Vuvuzela_dp
