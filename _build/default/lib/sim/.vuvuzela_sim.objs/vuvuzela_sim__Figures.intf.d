lib/sim/figures.mli: Cost_model Vuvuzela_dp
