lib/sim/event_sim.mli:
