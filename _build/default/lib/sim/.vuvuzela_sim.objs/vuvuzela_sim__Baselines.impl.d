lib/sim/baselines.ml: Array Box Bytes Cost_model Drbg List Printf Vuvuzela Vuvuzela_crypto
