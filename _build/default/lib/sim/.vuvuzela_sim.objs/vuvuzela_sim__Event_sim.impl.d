lib/sim/event_sim.ml: Array Queue
