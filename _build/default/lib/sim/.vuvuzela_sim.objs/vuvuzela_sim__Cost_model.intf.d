lib/sim/cost_model.mli: Vuvuzela_dp
