lib/sim/figures.ml: Composition Cost_model Laplace List Pipeline Printf Vuvuzela_dp
