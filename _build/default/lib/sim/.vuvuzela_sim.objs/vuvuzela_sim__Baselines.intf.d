lib/sim/baselines.mli: Cost_model Vuvuzela_crypto Vuvuzela_dp
