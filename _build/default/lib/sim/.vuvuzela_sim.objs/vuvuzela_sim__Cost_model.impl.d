lib/sim/cost_model.ml: Float Vuvuzela Vuvuzela_dp Vuvuzela_mixnet
