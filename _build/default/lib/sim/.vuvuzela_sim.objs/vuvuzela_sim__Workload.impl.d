lib/sim/workload.ml: Array Client Drbg Format Fun List Network Printf Scanf Vuvuzela Vuvuzela_crypto Vuvuzela_dp
