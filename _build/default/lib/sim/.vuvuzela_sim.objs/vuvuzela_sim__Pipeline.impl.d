lib/sim/pipeline.ml: Array Cost_model Event_sim Float List
