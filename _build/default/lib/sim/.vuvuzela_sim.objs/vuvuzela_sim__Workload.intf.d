lib/sim/workload.mli: Format Vuvuzela_dp
