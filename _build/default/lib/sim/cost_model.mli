(** The calibrated cost model of the paper's testbed (§8.1-§8.2):
    closed-form latency, throughput and bandwidth for the conversation
    and dialing protocols. *)

type t = {
  dh_ops_per_sec : float;
  protocol_overhead : float;
  link_bandwidth : float;
  rpc_overhead_bytes : int;
  pipeline_efficiency : float;
  dial_coschedule_latency : float;
}

val paper : t
(** 340K Curve25519 ops/s per 36-core server, 10 Gbps links, the
    measured ~1.9× full-protocol overhead, and an 0.85 pipeline
    efficiency calibrated to the paper's 68K msgs/s. *)

val conv_noise_per_server : Vuvuzela_dp.Laplace.params -> float
(** ≈ 2µ cover requests per mixing server per round. *)

val conv_total_requests :
  users:int -> servers:int -> noise:Vuvuzela_dp.Laplace.params -> float

val conv_lower_bound :
  t -> users:int -> servers:int -> noise:Vuvuzela_dp.Laplace.params -> float
(** §8.2's bare-crypto bound: one DH per request per server, strictly
    sequential servers. *)

val request_bytes : servers:int -> at:int -> int
val reply_bytes : servers:int -> at:int -> int

val conv_latency :
  t -> users:int -> servers:int -> noise:Vuvuzela_dp.Laplace.params -> float
(** End-to-end conversation round latency (Figures 9 and 11). *)

val conv_round_interval :
  t -> users:int -> servers:int -> noise:Vuvuzela_dp.Laplace.params -> float
(** Time between pipelined round completions. *)

val conv_throughput :
  t -> users:int -> servers:int -> noise:Vuvuzela_dp.Laplace.params -> float

val dial_total_requests :
  users:int ->
  servers:int ->
  m:int ->
  dial_noise:Vuvuzela_dp.Laplace.params ->
  float

val dial_latency :
  t ->
  users:int ->
  servers:int ->
  m:int ->
  dial_noise:Vuvuzela_dp.Laplace.params ->
  float
(** Figure 10. *)

val server_bandwidth :
  t -> users:int -> servers:int -> noise:Vuvuzela_dp.Laplace.params -> float
(** Bytes/sec through one server (each message counted once). *)

val invitation_drop_bytes :
  users:int ->
  servers:int ->
  m:int ->
  dial_fraction:float ->
  dial_noise:Vuvuzela_dp.Laplace.params ->
  float
(** §8.3's ~7 MB dialing download. *)

val client_bandwidth :
  t ->
  users:int ->
  servers:int ->
  noise:Vuvuzela_dp.Laplace.params ->
  m:int ->
  dial_fraction:float ->
  dial_noise:Vuvuzela_dp.Laplace.params ->
  dial_interval:float ->
  float
(** Average client bytes/sec (§8.3's ~12 KB/s). *)
