(** Related-work baseline comparators (§1, §10): the O(n²) broadcast and
    PIR families that Vuvuzela's linear design displaces, on the same
    hardware constants. *)

val broadcast_round_latency :
  Cost_model.t -> users:int -> msg_bytes:int -> float
(** Dissent/Herbivore-style: n² message copies per round. *)

val pir_round_latency : users:int -> msg_bytes:int -> float
(** Pynchon-Gate-style: n² database-scan work per round. *)

val vuvuzela_round_latency :
  Cost_model.t -> users:int -> noise:Vuvuzela_dp.Laplace.params -> float

val max_users : budget:float -> (int -> float) -> int
(** Largest user count keeping the (monotone) latency within [budget]. *)

type comparison_row = {
  users : int;
  vuvuzela_s : float;
  broadcast_s : float;
  pir_s : float;
}

val comparison_table :
  ?model:Cost_model.t ->
  noise:Vuvuzela_dp.Laplace.params ->
  int list ->
  comparison_row list

(** A functional toy broadcast messenger (everyone receives everything;
    trivially metadata-private, quadratically expensive) used to
    validate the model's shape at laptop scale. *)
module Broadcast : sig
  type t

  val create : n:int -> seed:string -> t

  val run_round :
    ?rng:Vuvuzela_crypto.Drbg.t -> t -> sends:(int * int * string) list -> int
  (** Run one round with [(sender, recipient, text)] sends; every user
      also emits cover.  Returns the number of broadcast blobs. *)

  val inbox : t -> int -> (bytes * string) list
  (** Delivered (sender public key, text) pairs, oldest first. *)

  val trial_decryptions : t -> int
  (** Total trial decryptions across the population — grows as n². *)
end
