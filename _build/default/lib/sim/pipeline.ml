(* Discrete-event simulation of the Vuvuzela round pipeline.

   Each server machine is an exclusive resource: it processes one
   round's batch at a time ("to avoid leaking information about a
   server's permutation of messages, one server cannot start processing
   a round until the previous server finishes", §8.2).  Successive
   rounds pipeline: while round r is at server 2, round r+1 can occupy
   server 1.  The entry server opens a new round as soon as the first
   chain server is free.

   This simulation produces the end-to-end latency of Figures 9-11 and
   the emergent round interval behind §8.3's "4 messages per minute per
   client". *)

type result = {
  rounds_completed : int;
  mean_latency : float;  (** end-to-end, request submission to reply *)
  round_interval : float;  (** time between consecutive round completions *)
  throughput : float;  (** user messages exchanged per second *)
  server_utilization : float array;
}

(* Per-server batch work.  CPU: one DH per incoming request (peel) plus
   one DH per onion layer of generated cover traffic — server i wraps 2µ
   noise requests for the (s−1−i) downstream servers, which is why every
   server's DH count equals the final batch size (the paper's §8.2
   accounting: "each server must perform one Diffie-Hellman operation
   for each of the 3.2 million messages").  Transfer: the actual batch
   present on the outgoing link. *)
let stage_time (model : Cost_model.t) ~servers ~at ~batch ~cpu_requests =
  let cpu =
    cpu_requests *. model.Cost_model.protocol_overhead
    /. model.Cost_model.dh_ops_per_sec
  in
  let bytes =
    float_of_int
      (Cost_model.request_bytes ~servers ~at
      + Cost_model.reply_bytes ~servers ~at
      + (2 * model.Cost_model.rpc_overhead_bytes))
  in
  let transfer = batch *. bytes /. model.Cost_model.link_bandwidth in
  cpu +. transfer

let run ?(model = Cost_model.paper) ~users ~servers ~noise ~rounds () =
  if servers < 1 then invalid_arg "Pipeline.run: need at least one server";
  if rounds < 1 then invalid_arg "Pipeline.run: need at least one round";
  let sim = Event_sim.create () in
  let machines =
    Array.init servers (fun _ -> Event_sim.Resource.create sim)
  in
  let noise_per_server = Cost_model.conv_noise_per_server noise in
  (* Peel work + noise-wrapping work at server i:
     (users + i·2µ) + 2µ·(s−1−i) = users + (s−1)·2µ for every i. *)
  let cpu_requests =
    Cost_model.conv_total_requests ~users ~servers ~noise
  in
  let completed = ref [] in
  let completions = ref [] in
  (* Seize servers 1..s-1 in order after leaving server 0.  Each stage
     time folds both directions of the batch into one busy period:
     replies are cheap relative to the forward DH work, and the 1.9×
     protocol overhead is calibrated against the paper's end-to-end
     numbers, which include the return path. *)
  let rec stage ~start i =
    if i = servers then begin
      completed := (Event_sim.now sim -. start) :: !completed;
      completions := Event_sim.now sim :: !completions
    end
    else begin
      let batch =
        float_of_int users +. (float_of_int i *. noise_per_server)
      in
      Event_sim.Resource.use machines.(i)
        ~duration:(stage_time model ~servers ~at:i ~batch ~cpu_requests)
        (fun () -> stage ~start (i + 1))
    end
  in
  (* The entry server opens round r+1 once server 0 has finished round r
     plus a coordination gap (the client collection window); latency is
     measured from the moment a round's batch enters server 0 — the
     paper's end-to-end round latency. *)
  let coordination d = d *. ((1. /. model.Cost_model.pipeline_efficiency) -. 1.) in
  let rec launch round =
    if round < rounds then
      Event_sim.Resource.acquire machines.(0) (fun release ->
          let start = Event_sim.now sim in
          let batch = float_of_int users in
          let d = stage_time model ~servers ~at:0 ~batch ~cpu_requests in
          Event_sim.schedule sim ~delay:d (fun () ->
              release ();
              Event_sim.schedule sim ~delay:(coordination d) (fun () ->
                  launch (round + 1));
              stage ~start 1))
  in
  Event_sim.schedule sim ~delay:0. (fun () -> launch 0);
  Event_sim.run sim;
  let latencies = List.rev !completed in
  let n = List.length latencies in
  let mean_latency =
    List.fold_left ( +. ) 0. latencies /. float_of_int (max 1 n)
  in
  let times = List.sort compare !completions in
  let round_interval =
    match times with
    | first :: _ :: _ ->
        let last = List.nth times (List.length times - 1) in
        (last -. first) /. float_of_int (List.length times - 1)
    | _ -> mean_latency
  in
  let horizon = Event_sim.now sim in
  {
    rounds_completed = n;
    mean_latency;
    round_interval;
    throughput = float_of_int users /. Float.max round_interval 1e-9;
    server_utilization =
      Array.map
        (fun r -> Event_sim.Resource.utilization r ~horizon)
        machines;
  }
