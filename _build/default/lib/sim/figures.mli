(** Regeneration harnesses for every figure and headline number in the
    paper's evaluation (§6.4 Figures 7-8, §8 Figures 9-11). *)

type point = { x : float; y : float }

val series : (float -> float) -> float list -> point list

val fig7_params : (float * float) list
(** (µ, b) triples of Figure 7: (150K, 7300), (300K, 13800),
    (450K, 20000). *)

val fig8_params : (float * float) list

type privacy_curve = {
  mu : float;
  b : float;
  points : (int * float * float) list;  (** (k, e^ε′, δ′) *)
  supported_k : int;
}

val figure7 : unit -> privacy_curve list
val figure8 : unit -> privacy_curve list

type latency_curve = { label : string; points : (int * float) list }

val conv_noise_of : float -> Vuvuzela_dp.Laplace.params
(** Noise with the paper's µ/b ratio for a given mean. *)

val fig9_users : int list

val figure9 : ?model:Cost_model.t -> unit -> latency_curve list
(** Closed-form latency vs users for µ = 100K/200K/300K. *)

val figure9_des :
  ?model:Cost_model.t -> ?mu:float -> unit -> (int * float * float) list
(** The same sweep on the discrete-event pipeline:
    (users, latency, round interval). *)

val dial_noise_13k : Vuvuzela_dp.Laplace.params
val figure10 : ?model:Cost_model.t -> unit -> latency_curve

val figure11 : ?model:Cost_model.t -> unit -> (int * float) list
(** Latency vs chain length at 1M users, µ = 300K. *)

val quadratic_r2 : (int * float) list -> float
(** Least-squares fit of latency against servers²; R². *)

type headline = {
  latency_1m : float;
  latency_2m : float;
  latency_10 : float;
  throughput_1m : float;
  lower_bound_2m : float;
  noise_requests : float;
  server_bandwidth_1m : float;
  client_bandwidth : float;
  drop_bytes : float;
  messages_per_minute : float;
}

val headlines : ?model:Cost_model.t -> unit -> headline
(** The §1/§8.2/§8.3 headline numbers. *)
