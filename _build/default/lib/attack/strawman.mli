(** The §4 strawman baseline (Figure 4): one fully-visible server, no
    mixing, no noise.  Broken by construction — the contrast case for
    the disclosure attacks. *)

type user = int
type behavior = Offline | Idle_cover | Talking_to of user

type round_log = { accesses : (user * string) list }
(** The compromised server's complete view: who accessed which drop. *)

val pair_drop : user -> user -> round:int -> string
val idle_drop : user -> round:int -> string

val run_round :
  round:int -> users:user list -> behavior:(user -> behavior) -> round_log

val communicating_pairs : round_log -> (user * user) list
(** The trivial attack: drops accessed by exactly two users. *)

val are_talking : round_log -> u:user -> v:user -> bool

val confirmation_attack :
  round:int ->
  users:user list ->
  behavior:(user -> behavior) ->
  suspects:user * user ->
  bool
(** The §2.1 active attack: block everyone but the suspects and observe
    whether an exchange still happens.  Decisive in one round. *)
