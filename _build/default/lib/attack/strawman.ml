(* The §4 strawman baseline (Figure 4): a single fully-visible server,
   no mixing, no noise.  Users deposit messages in dead drops and the
   adversary — who has compromised the server — sees exactly which user
   accessed which drop.

   This is the baseline the disclosure attacks are demonstrated against:
   on the strawman they identify communicating pairs immediately; on
   Vuvuzela they are bounded by the differential-privacy budget. *)

type user = int

type behavior =
  | Offline
  | Idle_cover  (** accesses a fresh random drop *)
  | Talking_to of user

(* The adversary's per-round view: every (user, drop) access. *)
type round_log = { accesses : (user * string) list }

(* Deterministic drop naming mirrors H(s, r): unique per pair and round;
   idle users get a unique singleton drop. *)
let pair_drop u v ~round =
  let lo = min u v and hi = max u v in
  Printf.sprintf "pair-%d-%d-r%d" lo hi round

let idle_drop u ~round = Printf.sprintf "idle-%d-r%d" u round

(* Run one strawman round for a population.  [behavior u] gives each
   user's action.  A Talking_to relation need not be symmetric; an
   unreciprocated exchange shows up as a lone access, just as in the
   real protocol. *)
let run_round ~round ~users ~behavior =
  let accesses =
    List.filter_map
      (fun u ->
        match behavior u with
        | Offline -> None
        | Idle_cover -> Some (u, idle_drop u ~round)
        | Talking_to v -> Some (u, pair_drop u v ~round))
      users
  in
  { accesses }

(* The trivial attack: read the log, return the communicating pairs —
   drops accessed by exactly two distinct users. *)
let communicating_pairs log =
  let by_drop = Hashtbl.create 16 in
  List.iter
    (fun (u, d) ->
      Hashtbl.replace by_drop d
        (u :: Option.value ~default:[] (Hashtbl.find_opt by_drop d)))
    log.accesses;
  Hashtbl.fold
    (fun _ users acc ->
      match users with
      | [ u; v ] when u <> v -> (min u v, max u v) :: acc
      | _ -> acc)
    by_drop []
  |> List.sort_uniq compare

(* Can the adversary tell whether [u] and [v] are talking from a single
   round?  On the strawman: always, with certainty. *)
let are_talking log ~u ~v = List.mem (min u v, max u v) (communicating_pairs log)

(* The §2.1 active confirmation attack: block everyone except the two
   suspects and watch whether an exchange still happens.  On the
   strawman this is decisive in one round. *)
let confirmation_attack ~round ~users ~behavior ~suspects:(u, v) =
  let blocked_behavior w = if w = u || w = v then behavior w else Offline in
  let log = run_round ~round ~users ~behavior:blocked_behavior in
  are_talking log ~u ~v
