(** The adversary's view of a conversation round and Figure 6's
    sensitivity analysis, computed from first principles. *)

type action =
  | Idle
  | Talk_b  (** reciprocated exchange with partner b *)
  | Talk_c
  | Send_x  (** unreciprocated exchange toward x *)
  | Send_y

val action_name : action -> string

val histogram : action -> int * int
(** [(m1, m2)] contributed by the modeled drops under this action of
    Alice's (partners b and c always have standing requests). *)

val delta : real:action -> cover:action -> int * int
(** One Figure 6 cell: [histogram real − histogram cover]. *)

val reals : action list
(** Figure 6's columns. *)

val covers : action list
(** Figure 6's rows. *)

val sensitivity_table : unit -> (action * (int * int) list) list
val max_sensitivity : unit -> int * int
(** [(2, 1)] — the Theorem 1 sensitivities. *)

val pp_table : Format.formatter -> unit -> unit

type round_view = { m1 : int; m2 : int }
(** What the adversary records from a live round. *)

val of_histogram : Vuvuzela.Deaddrop.histogram -> round_view
val observe_chain : Vuvuzela.Chain.t -> round_view option
