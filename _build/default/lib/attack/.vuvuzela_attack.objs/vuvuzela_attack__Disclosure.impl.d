lib/attack/disclosure.ml: Array Bayes Client Float Format Laplace List Mechanism Network Observation Printf Vuvuzela Vuvuzela_dp
