lib/attack/disclosure.mli: Format Vuvuzela_crypto Vuvuzela_dp
