lib/attack/strawman.ml: Hashtbl List Option Printf
