lib/attack/strawman.mli:
