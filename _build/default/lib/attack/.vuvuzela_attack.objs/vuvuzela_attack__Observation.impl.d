lib/attack/observation.ml: Format List Option Vuvuzela
