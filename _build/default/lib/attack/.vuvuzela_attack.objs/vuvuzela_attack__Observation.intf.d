lib/attack/observation.mli: Format Vuvuzela
