(* The adversary's view of one conversation round, and the sensitivity
   analysis behind Figure 6.

   §6.1 shows the only useful observables are (m1, m2): the number of
   dead drops accessed once and twice.  Figure 6 tabulates how much one
   user's action can move them — the sensitivity that Theorem 1's noise
   is sized against. *)

(* Alice's possible per-round actions, in the vocabulary of Figure 6.
   [b]/[c] denote partners who reciprocate (they always send an exchange
   to their shared drop with Alice); [x]/[y] denote users who do not. *)
type action =
  | Idle
  | Talk_b  (** exchange with b, reciprocated *)
  | Talk_c  (** exchange with c, reciprocated *)
  | Send_x  (** unreciprocated exchange toward x *)
  | Send_y

let action_name = function
  | Idle -> "Idle"
  | Talk_b -> "Conversation with b"
  | Talk_c -> "Conversation with c"
  | Send_x -> "Conversation with x"
  | Send_y -> "Conversation with y"

(* Dead drops in the model world.  [Rand] is the fresh random drop an
   idle Alice touches; [Ab]/[Ac] are the drops Alice shares with b/c
   (where b/c always have a standing request); [Ax]/[Ay] are the drops
   Alice would use toward x/y (nobody else accesses them). *)
type drop = Rand | Ab | Ac | Ax | Ay

let alice_accesses = function
  | Idle -> [ Rand ]
  | Talk_b -> [ Ab ]
  | Talk_c -> [ Ac ]
  | Send_x -> [ Ax ]
  | Send_y -> [ Ay ]

(* Fixed background: b and c are in a conversation with Alice, so their
   requests sit in Ab and Ac regardless of what Alice does. *)
let background = [ Ab; Ac ]

(* (m1, m2) contributed by the modeled drops for a given Alice action. *)
let histogram action =
  let accesses = alice_accesses action @ background in
  let count d = List.length (List.filter (( = ) d) accesses) in
  let drops = [ Rand; Ab; Ac; Ax; Ay ] in
  let m1 = List.length (List.filter (fun d -> count d = 1) drops) in
  let m2 = List.length (List.filter (fun d -> count d = 2) drops) in
  (m1, m2)

(* One Figure 6 cell: (∆m1, ∆m2) = histogram(real) − histogram(cover). *)
let delta ~real ~cover =
  let m1r, m2r = histogram real in
  let m1c, m2c = histogram cover in
  (m1r - m1c, m2r - m2c)

let reals = [ Idle; Talk_b; Send_x ]
let covers = [ Idle; Talk_b; Talk_c; Send_x; Send_y ]

(* The full table, rows = cover stories, columns = real actions —
   exactly Figure 6's layout. *)
let sensitivity_table () =
  List.map
    (fun cover -> (cover, List.map (fun real -> delta ~real ~cover) reals))
    covers

(* The worst case over all cells: the sensitivity Theorem 1 needs. *)
let max_sensitivity () =
  List.fold_left
    (fun (s1, s2) (_, row) ->
      List.fold_left
        (fun (s1, s2) (d1, d2) -> (max s1 (abs d1), max s2 (abs d2)))
        (s1, s2) row)
    (0, 0)
    (sensitivity_table ())

let pp_table fmt () =
  Format.fprintf fmt "%-24s" "cover \\ real";
  List.iter (fun r -> Format.fprintf fmt " | %-20s" (action_name r)) reals;
  Format.pp_print_newline fmt ();
  List.iter
    (fun (cover, row) ->
      Format.fprintf fmt "%-24s" (action_name cover);
      List.iter (fun (d1, d2) -> Format.fprintf fmt " | %+d, %+d%14s" d1 d2 "") row;
      Format.pp_print_newline fmt ())
    (sensitivity_table ())

(* ------------------------------------------------------------------ *)
(* Observations of the real implementation                             *)
(* ------------------------------------------------------------------ *)

(* What the adversary records from a live round: the last server's
   noised histogram.  (Anything else is ciphertext; §6.1.) *)
type round_view = { m1 : int; m2 : int }

let of_histogram (h : Vuvuzela.Deaddrop.histogram) =
  { m1 = h.Vuvuzela.Deaddrop.m1; m2 = h.Vuvuzela.Deaddrop.m2 }

let observe_chain chain =
  Option.map of_histogram (Vuvuzela.Chain.observed_histogram chain)
