(** Optimal (likelihood-ratio) statistical disclosure attacks against
    the noised observables, run against a closed-form model and against
    the live implementation; plus the passive intersection attack. *)

val pmf : Vuvuzela_dp.Laplace.params -> max_k:int -> float array
(** Probability mass function of [⌈max(0, Laplace(µ, b))⌉] on
    [0..max_k]. *)

val convolve : float array -> float array -> float array
val self_convolve : float array -> int -> float array

type verdict = {
  rounds : int;
  log_lr : float;  (** accumulated log likelihood ratio *)
  posterior : float;
  truth : bool;
}

val pp_verdict : Format.formatter -> verdict -> unit

val likelihood_verdict :
  noise_pmf:float array ->
  base:int ->
  prior:float ->
  truth:bool ->
  int list ->
  verdict
(** Run the optimal test over a series of observed m2 values. *)

val model_attack :
  ?rng:Vuvuzela_crypto.Drbg.t ->
  noise:Vuvuzela_dp.Laplace.params ->
  talking:bool ->
  rounds:int ->
  prior:float ->
  unit ->
  verdict
(** Closed-form simulation: one honest server's noise hides the pair. *)

val per_round_eps_bound : Vuvuzela_dp.Laplace.params -> float
(** Theorem 1's per-round ε — the budget the realized log-LR must
    respect outside δ events. *)

val network_attack :
  ?idle_users:int ->
  ?n_servers:int ->
  noise:Vuvuzela_dp.Laplace.params ->
  talking:bool ->
  rounds:int ->
  prior:float ->
  seed:string ->
  unit ->
  verdict
(** The same adversary run against the real implementation: reads the
    last server's histograms over [rounds] live rounds. *)

type intersection = { delta_estimate : float; z_score : float }

val intersection_attack :
  ?rng:Vuvuzela_crypto.Drbg.t ->
  noise:Vuvuzela_dp.Laplace.params ->
  talking:bool ->
  rounds_each:int ->
  unit ->
  intersection
(** §4.2's passive attack: compare mean m2 between Alice-online and
    Alice-offline rounds. *)
