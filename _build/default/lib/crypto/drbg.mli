(** ChaCha20-based deterministic random bit generator.

    All randomness in the system — ephemeral keys, dead-drop IDs, shuffle
    permutations, Laplace noise — flows through this module so that tests
    and simulations are reproducible from a seed while deployments seed
    from [/dev/urandom]. *)

type t

val create : seed:bytes -> t
(** Deterministic generator from an arbitrary-length seed. *)

val of_string : string -> t
(** Convenience: [create ~seed:(Bytes.of_string s)]. *)

val create_system : unit -> t
(** Seeded from the operating system. *)

val generate : t -> int -> bytes

val bytes : ?rng:t -> int -> bytes
(** Draw from [rng], or from a lazily-created process-global system
    generator when omitted. *)

val uniform : ?rng:t -> int -> int
(** Unbiased uniform integer in [\[0, bound)]. *)

val float_unit : ?rng:t -> unit -> float
(** Uniform float in [\[0, 1)] with 53 bits of precision. *)

val keypair : ?rng:t -> unit -> bytes * bytes
(** Fresh X25519 [(secret, public)] pair. *)

val os_entropy : int -> bytes
(** Raw bytes from [/dev/urandom]. *)
