(* Public-key authenticated encryption in the NaCl "box" style:
   X25519 -> HKDF -> ChaCha20-Poly1305.  Vuvuzela uses:

   - [seal]/[open_] between a client's per-layer ephemeral key and a
     server's long-term key (onion layers), and between conversation
     partners' keys (message payloads);
   - [seal_anonymous]/[open_anonymous] for dialing invitations, where the
     recipient must not learn anything before trial decryption succeeds
     and invitations from different senders must be indistinguishable. *)

let overhead = Aead.tag_len
let anonymous_overhead = Curve25519.key_len + Aead.tag_len

(* Shared symmetric key for the (secret, public) pair.  Both directions of
   a DH pair derive the same key, so callers must domain-separate nonces
   (Vuvuzela derives direction from public-key order; see Conversation). *)
let precompute ~secret ~public =
  let raw = Curve25519.shared ~secret ~public in
  Hkdf.derive ~ikm:raw ~info:(Bytes.of_string "vuvuzela-box-v1") Aead.key_len

let seal ~key ~nonce ?aad pt = Aead.seal ~key ~nonce ?aad pt
let open_ ~key ~nonce ?aad ct = Aead.open_ ~key ~nonce ?aad ct

(* Sealed (anonymous) box: a fresh ephemeral keypair per message; the
   ephemeral public key rides in front of the ciphertext.  The nonce is
   derived from both public keys so it is unique per ephemeral key. *)
let anon_nonce ~epk ~pk =
  Bytes.sub (Sha256.digest_list [ epk; pk ]) 0 Aead.nonce_len

let seal_anonymous ?rng ~recipient_pk pt =
  let esk, epk = Drbg.keypair ?rng () in
  let key = precompute ~secret:esk ~public:recipient_pk in
  let nonce = anon_nonce ~epk ~pk:recipient_pk in
  Bytes_util.concat [ epk; Aead.seal ~key ~nonce pt ]

let open_anonymous ~recipient_sk ~recipient_pk sealed =
  if Bytes.length sealed < anonymous_overhead then None
  else begin
    let epk = Bytes.sub sealed 0 Curve25519.key_len in
    let ct =
      Bytes.sub sealed Curve25519.key_len
        (Bytes.length sealed - Curve25519.key_len)
    in
    let key = precompute ~secret:recipient_sk ~public:epk in
    let nonce = anon_nonce ~epk ~pk:recipient_pk in
    Aead.open_ ~key ~nonce ct
  end
