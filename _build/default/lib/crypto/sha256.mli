(** SHA-256 (FIPS 180-4), pure OCaml.

    Used for dead-drop derivation ([H(s, r)]), invitation-drop addressing
    ([H(pk) mod m]), and as the compression function under {!Hmac} and
    {!Hkdf}. *)

type t
(** Incremental hashing state. *)

val init : unit -> t
val feed : t -> bytes -> unit

val get : t -> bytes
(** Finalize a {e copy} of the state and return the 32-byte digest; the
    state may continue to be fed afterwards. *)

val digest : bytes -> bytes
(** One-shot digest. *)

val digest_list : bytes list -> bytes
(** Digest of the concatenation of the given buffers. *)

val digest_string : string -> bytes
