(** ChaCha20-Poly1305 AEAD (RFC 8439).

    Sealing adds exactly {!tag_len} bytes, matching the paper's 16-byte
    per-layer encryption overhead. *)

val key_len : int
(** 32. *)

val nonce_len : int
(** 12. *)

val tag_len : int
(** 16. *)

val seal : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes
(** [seal ~key ~nonce ?aad pt] is [ciphertext || tag]. *)

val open_ : key:bytes -> nonce:bytes -> ?aad:bytes -> bytes -> bytes option
(** Authenticated decryption; [None] on any tampering. *)

val nonce_of : domain:int -> counter:int -> bytes
(** Deterministic 12-byte nonce from a 32-bit domain separator and a
    64-bit counter (Vuvuzela uses the round number). *)
