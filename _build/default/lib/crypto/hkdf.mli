(** HKDF-SHA256 (RFC 5869) key derivation. *)

val extract : ?salt:bytes -> bytes -> bytes
(** [extract ?salt ikm] is the 32-byte pseudorandom key.  [salt] defaults
    to 32 zero bytes per the RFC. *)

val expand : prk:bytes -> ?info:bytes -> int -> bytes
(** [expand ~prk ?info len] expands [prk] to [len] bytes ([len] at most
    [255 * 32]). *)

val derive : ?salt:bytes -> ikm:bytes -> ?info:bytes -> int -> bytes
(** Extract-then-expand in one call. *)
