(* HKDF with SHA-256 (RFC 5869).  Vuvuzela uses this to derive symmetric
   keys from X25519 shared secrets (one key per onion layer, and
   direction-separated conversation keys). *)

let extract ?salt ikm =
  let salt = match salt with None -> Bytes.make 32 '\000' | Some s -> s in
  Hmac.sha256 ~key:salt ikm

let expand ~prk ?(info = Bytes.empty) len =
  if len > 255 * 32 then invalid_arg "Hkdf.expand: length too large";
  let out = Buffer.create len in
  let t = ref Bytes.empty in
  let i = ref 1 in
  while Buffer.length out < len do
    let block =
      Hmac.sha256 ~key:prk
        (Bytes_util.concat [ !t; info; Bytes.make 1 (Char.chr !i) ])
    in
    t := block;
    Buffer.add_bytes out block;
    incr i
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let derive ?salt ~ikm ?info len = expand ~prk:(extract ?salt ikm) ?info len
