lib/crypto/bytes_util.ml: Buffer Bytes Char Printf String
