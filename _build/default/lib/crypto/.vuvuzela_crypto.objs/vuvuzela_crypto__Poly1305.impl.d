lib/crypto/poly1305.ml: Array Bytes Bytes_util
