lib/crypto/sha256.ml: Array Bytes Bytes_util List
