lib/crypto/hkdf.ml: Buffer Bytes Bytes_util Char Hmac
