lib/crypto/ed25519.ml: Array Bytes Bytes_util Drbg Fe25519 Sha512
