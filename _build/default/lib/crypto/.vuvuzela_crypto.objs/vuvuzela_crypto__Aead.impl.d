lib/crypto/aead.ml: Bytes Bytes_util Chacha20 Poly1305
