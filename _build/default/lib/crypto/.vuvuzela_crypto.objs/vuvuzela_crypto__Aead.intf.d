lib/crypto/aead.mli:
