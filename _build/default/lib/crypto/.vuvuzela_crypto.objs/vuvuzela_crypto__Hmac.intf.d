lib/crypto/hmac.mli:
