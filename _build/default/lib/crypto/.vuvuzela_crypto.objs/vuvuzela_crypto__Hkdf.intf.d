lib/crypto/hkdf.mli:
