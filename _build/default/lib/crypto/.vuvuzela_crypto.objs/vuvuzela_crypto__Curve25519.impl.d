lib/crypto/curve25519.ml: Array Bytes Bytes_util Fe25519
