lib/crypto/hmac.ml: Bytes Bytes_util Sha256
