lib/crypto/curve25519.mli:
