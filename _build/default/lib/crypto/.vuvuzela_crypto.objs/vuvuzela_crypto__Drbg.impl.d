lib/crypto/drbg.ml: Bytes Bytes_util Chacha20 Curve25519 Fun Hkdf Lazy
