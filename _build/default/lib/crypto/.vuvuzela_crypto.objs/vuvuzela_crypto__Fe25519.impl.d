lib/crypto/fe25519.ml: Array Bytes Bytes_util
