lib/crypto/box.mli: Drbg
