lib/crypto/ed25519.mli: Drbg
