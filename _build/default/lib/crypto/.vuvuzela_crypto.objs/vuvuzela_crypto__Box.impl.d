lib/crypto/box.ml: Aead Bytes Bytes_util Curve25519 Drbg Hkdf Sha256
