lib/crypto/drbg.mli:
