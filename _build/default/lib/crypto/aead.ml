(* ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).  This is Vuvuzela's
   indistinguishable symmetric encryption: every onion layer and message
   payload is sealed with it, so all ciphertexts of equal plaintext length
   are equal length and uniformly distributed. *)

let key_len = 32
let nonce_len = 12
let tag_len = 16

let pad16 n = match n mod 16 with 0 -> Bytes.empty | r -> Bytes.make (16 - r) '\000'

let mac_data ~aad ~ct =
  let lens = Bytes.create 16 in
  Bytes_util.store_le64 lens 0 (Bytes.length aad);
  Bytes_util.store_le64 lens 8 (Bytes.length ct);
  Bytes_util.concat
    [ aad; pad16 (Bytes.length aad); ct; pad16 (Bytes.length ct); lens ]

let poly_key ~key ~nonce = Bytes.sub (Chacha20.block ~key ~nonce ~counter:0) 0 32

let seal ~key ~nonce ?(aad = Bytes.empty) plaintext =
  let ct = Chacha20.encrypt ~counter:1 ~key ~nonce plaintext in
  let tag = Poly1305.mac ~key:(poly_key ~key ~nonce) (mac_data ~aad ~ct) in
  Bytes_util.concat [ ct; tag ]

let open_ ~key ~nonce ?(aad = Bytes.empty) sealed =
  let n = Bytes.length sealed in
  if n < tag_len then None
  else begin
    let ct = Bytes.sub sealed 0 (n - tag_len) in
    let tag = Bytes.sub sealed (n - tag_len) tag_len in
    if Poly1305.verify ~key:(poly_key ~key ~nonce) ~tag (mac_data ~aad ~ct)
    then Some (Chacha20.decrypt ~counter:1 ~key ~nonce ct)
    else None
  end

(* Vuvuzela nonces: each round and onion layer needs a distinct nonce under
   the same derived key.  We build a 12-byte nonce from a 32-bit domain tag
   and a 64-bit counter (the round number). *)
let nonce_of ~domain ~counter =
  let n = Bytes.create nonce_len in
  Bytes_util.store_le32 n 0 domain;
  Bytes_util.store_le64 n 4 counter;
  n
