(** Poly1305 one-time authenticator (RFC 8439).

    The key must be used for a single message; {!Aead} derives a fresh
    Poly1305 key from each (ChaCha20 key, nonce) pair. *)

type t

val key_len : int
(** 32. *)

val tag_len : int
(** 16. *)

val init : bytes -> t
val feed : t -> bytes -> unit

val finish : t -> bytes
(** 16-byte tag.  The state must not be fed after finishing. *)

val mac : key:bytes -> bytes -> bytes
val verify : key:bytes -> tag:bytes -> bytes -> bool
