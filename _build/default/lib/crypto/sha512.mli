(** SHA-512 (FIPS 180-4), pure OCaml; the hash inside {!Ed25519}. *)

type t

val init : unit -> t
val feed : t -> bytes -> unit

val get : t -> bytes
(** Finalize a copy of the state; 64-byte digest. *)

val digest : bytes -> bytes
val digest_list : bytes list -> bytes
val digest_string : string -> bytes
