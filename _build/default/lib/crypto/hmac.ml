(* HMAC-SHA256 (RFC 2104 / FIPS 198-1). *)

let block_size = 64

let sha256 ~key data =
  let key =
    if Bytes.length key > block_size then Sha256.digest key else key
  in
  let ipad = Bytes.make block_size '\x36' in
  let opad = Bytes.make block_size '\x5c' in
  Bytes_util.xor_into ~src:key ~dst:ipad (Bytes.length key);
  Bytes_util.xor_into ~src:key ~dst:opad (Bytes.length key);
  let inner = Sha256.digest_list [ ipad; data ] in
  Sha256.digest_list [ opad; inner ]

let verify ~key ~tag data = Bytes_util.ct_equal tag (sha256 ~key data)
