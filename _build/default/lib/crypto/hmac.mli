(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:bytes -> bytes -> bytes
(** [sha256 ~key data] is the 32-byte HMAC-SHA256 tag of [data]. *)

val verify : key:bytes -> tag:bytes -> bytes -> bool
(** Constant-time tag verification. *)
