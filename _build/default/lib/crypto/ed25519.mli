(** Ed25519 signatures (RFC 8032), pure OCaml.

    Used by {!Vuvuzela.Certificate} for the §9 PKI extension (binding a
    caller's conversation key to a long-term signing identity). *)

val public_key_len : int
(** 32. *)

val secret_key_len : int
(** 32 (the RFC 8032 seed). *)

val signature_len : int
(** 64. *)

val keypair : ?rng:Drbg.t -> unit -> bytes * bytes
(** Fresh [(seed, public_key)]. *)

val public_key : bytes -> bytes
(** Derive the public key from a 32-byte seed. *)

val sign : secret:bytes -> bytes -> bytes
(** Deterministic 64-byte signature (R || S). *)

val verify : public:bytes -> signature:bytes -> bytes -> bool
(** Strict verification: rejects bad lengths, off-curve keys, and
    non-canonical S. *)
