(** Byte-level helpers: endian loads/stores, hex codecs, xor, and
    constant-time comparison.  Shared by every primitive in
    {!Vuvuzela_crypto}. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit

val le32 : bytes -> int -> int
(** Little-endian 32-bit load (result in [0, 2^32)). *)

val store_le32 : bytes -> int -> int -> unit
val le64 : bytes -> int -> int
val store_le64 : bytes -> int -> int -> unit

val be32 : bytes -> int -> int
(** Big-endian 32-bit load. *)

val store_be32 : bytes -> int -> int -> unit
val store_be64 : bytes -> int -> int -> unit

val xor_into : src:bytes -> dst:bytes -> int -> unit
(** [xor_into ~src ~dst len] xors the first [len] bytes of [src] into
    [dst] in place. *)

val xor : bytes -> bytes -> bytes
(** Pointwise xor of the common prefix of the two buffers. *)

val ct_equal : bytes -> bytes -> bool
(** Constant-time equality.  Lengths are treated as public. *)

val of_hex : string -> bytes
(** Decode a hex string; spaces and newlines are ignored.
    @raise Invalid_argument on malformed input. *)

val to_hex : bytes -> string
val concat : bytes list -> bytes

val pad_to : int -> bytes -> bytes
(** [pad_to len b] zero-pads [b] on the right to exactly [len] bytes.
    @raise Invalid_argument if [b] is longer than [len]. *)
