(** Dead-drop stores kept by the last server (§4 conversation drops,
    §5 invitation drops) and the observable access-count histogram. *)

type t

val create : unit -> t
val clear : t -> unit

val put : t -> slot:int -> drop_id:Types.drop_id -> sealed:bytes -> unit
(** Record one exchange request occupying batch position [slot]. *)

val empty_result : bytes
(** The all-zero {!Types.exchange_result_len}-byte result returned for
    lone accesses. *)

val resolve : t -> n_slots:int -> bytes array
(** Match up all accesses: the first two requests to a drop swap sealed
    messages; every other slot gets {!empty_result}. *)

type histogram = { m1 : int; m2 : int; m_more : int }
(** The protocol's only observable variables (§4.2): counts of drops
    accessed once, twice, and (adversarially) more than twice. *)

val histogram : t -> histogram
val pp_histogram : Format.formatter -> histogram -> unit

module Invitation : sig
  type store

  val create : m:int -> store
  val drop_count : store -> int
  val clear : store -> unit

  val index_of : m:int -> bytes -> int
  (** [H(pk) mod m] (§5.1). *)

  val put : store -> index:int -> bytes -> unit
  (** Append an invitation; writes to {!Types.noop_drop} are discarded. *)

  val fetch : store -> index:int -> bytes list
  (** All invitations in arrival order (clients trial-decrypt each). *)

  val size : store -> index:int -> int
  val total : store -> int
end
