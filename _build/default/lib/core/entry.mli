(** The untrusted entry server (§7): multiplexes client requests into
    rounds and demultiplexes results. *)

type 'id t

val create : unit -> 'id t
(** A fresh round collector. *)

val submit : 'id t -> 'id -> bytes -> unit
(** @raise Invalid_argument after {!close_round}. *)

val size : 'id t -> int

val close_round : 'id t -> bytes array * 'id array
(** Slot-ordered request batch and the matching client ids. *)

val demux : ids:'id array -> bytes array -> ('id * bytes) list
(** Pair each slot's result with its client.
    @raise Invalid_argument on size mismatch. *)
