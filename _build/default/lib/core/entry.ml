(* The entry server (§7): an untrusted multiplexer that batches client
   requests into a round for the chain and routes results back.

   It learns only which clients are connected — which the threat model
   already concedes — and cannot read or alter onions undetected (any
   tampering makes the first server's AEAD open fail). *)

type 'id t = {
  mutable pending : ('id * bytes) list;  (** newest first *)
  mutable closed : bool;
}

let create () = { pending = []; closed = false }

let submit t id request =
  if t.closed then invalid_arg "Entry.submit: round already closed";
  t.pending <- (id, request) :: t.pending

let size t = List.length t.pending

(* Freeze the round: slot-ordered requests plus the slot → client map. *)
let close_round t =
  t.closed <- true;
  let in_order = List.rev t.pending in
  let requests = Array.of_list (List.map snd in_order) in
  let ids = Array.of_list (List.map fst in_order) in
  (requests, ids)

(* Route results back: pairs each slot's result with its client. *)
let demux ~ids results =
  if Array.length ids <> Array.length results then
    invalid_arg "Entry.demux: result batch size mismatch";
  Array.to_list (Array.map2 (fun id r -> (id, r)) ids results)
