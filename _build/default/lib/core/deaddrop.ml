(* Dead-drop stores kept by the last server in the chain.

   Conversation drops (§4): ephemeral per round; each holds at most the
   requests of one honest pair.  The store matches up accesses: the first
   two requests to a drop exchange their sealed messages; a lone request
   gets the empty (all-zero) result; extra adversarial requests to an
   already-paired drop also get the empty result (footnote 6 of the
   paper: honest collisions are negligible, so >2 accesses only arise
   from adversarial duplication, and those learn nothing new).

   Invitation drops (§5): a small fixed number m of large drops, each
   accumulating all invitations (real + noise) for the public keys that
   hash to it. *)

type access = { slot : int; sealed : bytes }

type t = {
  drops : (string, access list) Hashtbl.t;
      (* key: drop id; value: accesses in arrival order (newest first) *)
  mutable total_accesses : int;
}

let create () = { drops = Hashtbl.create 1024; total_accesses = 0 }

let clear t =
  Hashtbl.reset t.drops;
  t.total_accesses <- 0

(* Record one exchange request. *)
let put t ~slot ~drop_id ~sealed =
  let key = Bytes.to_string drop_id in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.drops key) in
  Hashtbl.replace t.drops key ({ slot; sealed } :: prev);
  t.total_accesses <- t.total_accesses + 1

let empty_result = Bytes.make Types.exchange_result_len '\000'

(* Resolve all drops: returns the per-slot results.  [n_slots] is the
   batch size; every slot receives exactly [Types.exchange_result_len]
   bytes. *)
let resolve t ~n_slots =
  let results = Array.make n_slots empty_result in
  Hashtbl.iter
    (fun _ accesses ->
      match List.rev accesses with
      | [ _ ] -> () (* lone access: empty result *)
      | a :: b :: _rest ->
          (* First two accesses exchange contents; any later (necessarily
             adversarial) duplicates keep the empty result. *)
          results.(a.slot) <- b.sealed;
          results.(b.slot) <- a.sealed
      | [] -> ())
    t.drops;
  results

(* Observable variables (§4.2): the histogram of access counts.  [m1] is
   the number of drops accessed once, [m2] accessed twice.  These two
   numbers are all an adversary controlling the last server learns
   beyond what its own requests tell it. *)
type histogram = { m1 : int; m2 : int; m_more : int }

let histogram t =
  Hashtbl.fold
    (fun _ accesses acc ->
      match List.length accesses with
      | 1 -> { acc with m1 = acc.m1 + 1 }
      | 2 -> { acc with m2 = acc.m2 + 1 }
      | n when n > 2 -> { acc with m_more = acc.m_more + 1 }
      | _ -> acc)
    t.drops
    { m1 = 0; m2 = 0; m_more = 0 }

let pp_histogram fmt { m1; m2; m_more } =
  Format.fprintf fmt "{m1=%d; m2=%d; m>2=%d}" m1 m2 m_more

(* ------------------------------------------------------------------ *)
(* Invitation drops (dialing)                                          *)
(* ------------------------------------------------------------------ *)

module Invitation = struct
  type store = { mutable drops : bytes list array (* newest first *) }

  let create ~m = { drops = Array.make (max 1 m) [] }
  let drop_count s = Array.length s.drops

  let clear s = Array.fill s.drops 0 (Array.length s.drops) []

  (* §5.1: invitations for public key pk live in drop H(pk) mod m. *)
  let index_of ~m pk =
    let h = Vuvuzela_crypto.Sha256.digest pk in
    (* Big-endian read of the first 8 digest bytes, reduced mod m. *)
    let v = ref 0 in
    for i = 0 to 7 do
      v := ((!v lsl 8) lor Char.code (Bytes.get h i)) land max_int
    done;
    !v mod m

  let put s ~index invitation =
    if index <> Types.noop_drop then begin
      if index < 0 || index >= Array.length s.drops then
        invalid_arg "Invitation.put: bad drop index";
      s.drops.(index) <- invitation :: s.drops.(index)
    end

  (* Clients download their whole drop and trial-decrypt (§5.1). *)
  let fetch s ~index =
    if index < 0 || index >= Array.length s.drops then
      invalid_arg "Invitation.fetch: bad drop index";
    List.rev s.drops.(index)

  let size s ~index = List.length s.drops.(index)
  let total s = Array.fold_left (fun acc l -> acc + List.length l) 0 s.drops
end
