(** Fixed-size conversation message codec and direction-separated
    sealing.

    Every plaintext encodes to exactly {!Types.message_plain_len} bytes;
    sealed messages are {!Types.sealed_message_len} (256) bytes, so empty
    cover messages and real text are indistinguishable on the wire. *)

type t =
  | Empty of { ack : int }
      (** cover/keepalive; still carries the transport ack *)
  | Data of { seq : int; ack : int; text : string }

val ack : t -> int
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val encode : t -> bytes
(** Always {!Types.message_plain_len} bytes.
    @raise Invalid_argument if the text exceeds {!Types.text_capacity}. *)

val decode : bytes -> (t, string) result

type keys = { send : bytes; recv : bytes }

val direction_keys : base:bytes -> my_pk:bytes -> their_pk:bytes -> keys
(** Derive send/receive keys from the conversation secret; the partner
    computes the mirror-image assignment, avoiding nonce reuse between
    the two directions. *)

val seal : keys:keys -> round:int -> t -> bytes
val open_ : keys:keys -> round:int -> bytes -> t option
