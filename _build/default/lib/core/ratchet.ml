(* Symmetric key ratchet: forward secrecy for message contents (§9).

   The paper notes that Vuvuzela's transport provides forward secrecy
   for *metadata* (fresh server/onion keys each round) but that message
   contents are sealed under keys derived from the long-term DH secret;
   "existing techniques can achieve forward secrecy for message
   contents".  This module is that technique: a hash ratchet in the
   style of the symmetric-key stage of Axolotl/Signal [31].

   Each conversation direction carries a chain key CK_r.  For round r:

       MK_r    = HMAC(CK_r, "msg")     — seals that round's message
       CK_{r+1} = HMAC(CK_r, "chain")  — then CK_r is erased

   Compromising a client at round r yields CK_r but no earlier chain or
   message keys (HMAC is one-way), so previously recorded ciphertexts
   stay sealed.  Both partners advance in lock-step with the round
   number; skipped rounds (offline periods) are fast-forwarded, with
   message keys for the skipped rounds retained briefly in a bounded
   out-of-order window so late retransmissions still open. *)

open Vuvuzela_crypto

type t = {
  mutable chain : bytes;  (** CK for [next_round] *)
  mutable next_round : int;
  window : int;  (** how many skipped-round keys to retain *)
  skipped : (int, bytes) Hashtbl.t;  (** round -> MK, bounded *)
}

let msg_label = Bytes.of_string "vuvuzela-ratchet-msg"
let chain_label = Bytes.of_string "vuvuzela-ratchet-chain"

let create ?(window = 16) ~base ~first_round () =
  if window < 0 then invalid_arg "Ratchet.create: negative window";
  {
    chain = Hkdf.derive ~ikm:base ~info:(Bytes.of_string "vuvuzela-ratchet-v1") 32;
    next_round = first_round;
    window;
    skipped = Hashtbl.create 8;
  }

let message_key_of chain = Hmac.sha256 ~key:chain msg_label
let next_chain_of chain = Hmac.sha256 ~key:chain chain_label

let next_round t = t.next_round

(* Advance the chain to [round], retaining skipped message keys (at most
   [window] of them) and erasing everything older. *)
let advance_to t round =
  while t.next_round < round do
    if round - t.next_round <= t.window then
      Hashtbl.replace t.skipped t.next_round (message_key_of t.chain);
    t.chain <- next_chain_of t.chain;
    t.next_round <- t.next_round + 1
  done;
  (* Bound the retained window. *)
  Hashtbl.iter
    (fun r _ -> if r < round - t.window then Hashtbl.remove t.skipped r)
    (Hashtbl.copy t.skipped)

(* The message key for [round].  Monotone use: asking for a round at or
   ahead of the chain advances it (erasing older chain keys); asking for
   a recently skipped round consumes its retained key; asking for an
   erased round returns None — those messages are gone, by design. *)
let key_for t ~round =
  if round >= t.next_round then begin
    advance_to t round;
    let mk = message_key_of t.chain in
    t.chain <- next_chain_of t.chain;
    t.next_round <- round + 1;
    Some mk
  end
  else begin
    match Hashtbl.find_opt t.skipped round with
    | Some mk ->
        Hashtbl.remove t.skipped round;
        Some mk
    | None -> None
  end

(* Non-consuming variant for senders that may retransmit the same round
   key... deliberately absent: every round uses a fresh key exactly once
   per direction, and retransmissions happen in later rounds under later
   keys (the transport header, not the key, carries the sequence
   number). *)

let erased t ~round = round < t.next_round && not (Hashtbl.mem t.skipped round)
