(* A complete in-process Vuvuzela deployment: chain of servers, entry
   server, client population, and the round clock.

   This is the functional (real-crypto) counterpart of the performance
   simulator in [vuvuzela_sim]: every byte that would cross the network
   in a deployment is actually constructed, encrypted, shuffled and
   decrypted here.  Tests, the examples, and the attack harness all run
   against this module.

   Fault injection: [run_round ~blocked] lets the caller model the
   active network adversary of §2.1 ("block network traffic from Alice")
   by suppressing chosen clients' requests for a round. *)

open Vuvuzela_dp

type t = {
  chain : Chain.t;
  server_pks : bytes list;
  clients : (bytes, Client.t) Hashtbl.t;  (** keyed by public key *)
  mutable order : Client.t list;  (** connection order, for determinism *)
  mutable round : int;
  mutable dial_round : int;
  mutable m : int;  (** invitation drops for the next dialing round *)
  mutable auto_tune_m : bool;
  dial_kind : Dialing.kind;
  cdn : Cdn.t option;  (** §5.5 distribution of invitation drops *)
}

let create ?seed ?(n_servers = 3)
    ?(noise = Laplace.params ~mu:10. ~b:2.)
    ?(dial_noise = Laplace.params ~mu:3. ~b:1.)
    ?(noise_mode = Noise.Sampled) ?dial_kind ?(cdn_edges = 0) () =
  let chain =
    Chain.create ?seed ?dial_kind ~n_servers ~noise ~dial_noise ~noise_mode ()
  in
  let cdn =
    if cdn_edges > 0 then
      Some
        (Cdn.create ~edges:cdn_edges
           ~fetch:(fun ~dial_round:_ ~index -> Chain.fetch_invitations chain ~index)
           ())
    else None
  in
  {
    chain;
    server_pks = Chain.public_keys chain;
    clients = Hashtbl.create 64;
    order = [];
    round = 1;
    dial_round = 1;
    m = 1;
    auto_tune_m = false;
    dial_kind = Option.value ~default:Dialing.Plain dial_kind;
    cdn;
  }

let chain t = t.chain
let round t = t.round
let dial_round t = t.dial_round
let n_clients t = Hashtbl.length t.clients
let set_invitation_drops t m = t.m <- max 1 m
let set_auto_tune_drops t flag = t.auto_tune_m <- flag
let cdn_stats t = Option.map Cdn.stats t.cdn
let invitation_drops t = t.m

let connect ?seed ?window ?rtt ?max_conversations ?certified t =
  let identity =
    match seed with
    | Some s -> Types.identity_of_seed (Bytes.of_string ("id-" ^ s))
    | None -> Types.fresh_identity ()
  in
  let client =
    Client.create ?seed ?window ?rtt ?max_conversations
      ~dial_kind:t.dial_kind ?certified ~identity ~server_pks:t.server_pks ()
  in
  Hashtbl.replace t.clients identity.Types.public client;
  t.order <- client :: t.order;
  client

let clients t = List.rev t.order
let find_client t pk = Hashtbl.find_opt t.clients pk

(* One conversation round for the whole deployment.  Returns each
   participating client's events.  Clients in [blocked] stay silent this
   round (adversarial blocking or a flaky link).  Each client submits
   [max_conversations] requests (one slot each, §9). *)
let run_round ?(blocked = fun _ -> false) t =
  let round = t.round in
  t.round <- round + 1;
  let entry = Entry.create () in
  List.iter
    (fun c ->
      if not (blocked c) then
        List.iteri
          (fun slot onion ->
            Entry.submit entry (Client.public_key c, slot) onion)
          (Client.conversation_requests c ~round))
    (clients t);
  let requests, ids = Entry.close_round entry in
  let results = Chain.conversation_round t.chain ~round requests in
  (* Group each client's slot replies back together, in slot order. *)
  let by_client = Hashtbl.create 64 in
  List.iter
    (fun ((pk, slot), reply) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_client pk) in
      Hashtbl.replace by_client pk ((slot, reply) :: prev))
    (Entry.demux ~ids results);
  List.filter_map
    (fun c ->
      let pk = Client.public_key c in
      match Hashtbl.find_opt by_client pk with
      | None -> None
      | Some slot_replies ->
          let replies =
            List.sort compare slot_replies |> List.map snd
          in
          Some (c, Client.handle_conversation_replies c ~round replies))
    (clients t)

(* One dialing round: every connected client sends an invitation or
   no-op, then downloads and scans its own invitation drop. *)
let run_dialing_round ?(blocked = fun _ -> false) t =
  let dial_round = t.dial_round in
  t.dial_round <- dial_round + 1;
  let m = t.m in
  let entry = Entry.create () in
  List.iter
    (fun c ->
      if not (blocked c) then
        Entry.submit entry (Client.public_key c)
          (Client.dialing_request c ~dial_round ~m))
    (clients t);
  let requests, ids = Entry.close_round entry in
  let _acks = Chain.dialing_round t.chain ~round:dial_round ~m requests in
  ignore ids;
  (* §5.4: adopt the last server's m recommendation for the next round. *)
  if t.auto_tune_m then t.m <- max 1 (Chain.proposed_m t.chain);
  (* Download phase (unmixed; §5.5) — through the CDN when one is
     deployed, straight from the last server otherwise. *)
  List.filter_map
    (fun c ->
      if blocked c then None
      else begin
        let index = Client.my_invitation_drop c ~m in
        let drop =
          match t.cdn with
          | Some cdn ->
              Cdn.fetch cdn ~client_pk:(Client.public_key c) ~dial_round ~index
          | None -> Chain.fetch_invitations t.chain ~index
        in
        match Client.handle_invitations c drop with
        | [] -> None
        | events -> Some (c, events)
      end)
    (clients t)

(* Convenience: run n conversation rounds, accumulating events per
   client. *)
let run_rounds ?blocked t n =
  let acc = ref [] in
  for _ = 1 to n do
    acc := run_round ?blocked t :: !acc
  done;
  List.concat (List.rev !acc)

(* The deployment schedule of §8.1: conversation rounds run continuously
   and a dialing round fires every [dial_every] conversation rounds (the
   paper's prototype uses 10-minute dialing rounds against tens of
   seconds per conversation round). *)
let run_schedule ?blocked ?(dial_every = 10) t ~rounds =
  let acc = ref [] in
  for i = 1 to rounds do
    if i mod dial_every = 0 then acc := run_dialing_round ?blocked t :: !acc;
    acc := run_round ?blocked t :: !acc
  done;
  List.concat (List.rev !acc)
