(** The chain of Vuvuzela servers and in-process round orchestration. *)

type t

val create :
  ?seed:string ->
  ?dial_kind:Dialing.kind ->
  n_servers:int ->
  noise:Vuvuzela_dp.Laplace.params ->
  dial_noise:Vuvuzela_dp.Laplace.params ->
  noise_mode:Vuvuzela_dp.Noise.mode ->
  unit ->
  t
(** Build a chain; with [seed] the whole deployment (keys, noise,
    shuffles) is deterministic, for tests. *)

val length : t -> int
val server : t -> int -> Server.t
val last : t -> Server.t

val public_keys : t -> bytes list
(** In chain order; clients wrap onions against these. *)

val conversation_round : t -> round:int -> bytes array -> bytes array
(** Run a complete conversation round; the result array is slot-aligned
    with [requests]. *)

val dialing_round : t -> round:int -> m:int -> bytes array -> bytes array

val fetch_invitations : t -> index:int -> bytes list

val proposed_m : t -> int
(** The last server's recommended invitation-drop count (§5.4). *)

val observed_histogram : t -> Deaddrop.histogram option
(** The last server's (i.e. the adversary's) view of the latest
    conversation round. *)
