(** Client side of the dialing protocol (§5): building, addressing and
    scanning invitations — plain 80-byte or certified (§9) — all of one
    deployment-wide size. *)

type kind = Plain | Certified

val invitation_len : kind -> int
(** 80 (plain) or 248 (certified). *)

val payload_len : kind -> int
(** Invitation plus the u16 drop index. *)

val encode_payload : index:int -> bytes -> bytes
val decode_payload : bytes -> (int * bytes, string) result

val invite :
  ?rng:Vuvuzela_crypto.Drbg.t ->
  identity:Types.identity ->
  callee_pk:bytes ->
  m:int ->
  unit ->
  bytes
(** A real plain invitation addressed to drop [H(callee_pk) mod m]. *)

val invite_certified :
  ?rng:Vuvuzela_crypto.Drbg.t ->
  identity:Types.identity ->
  cert:Certificate.t ->
  callee_pk:bytes ->
  m:int ->
  unit ->
  bytes

val noop : ?rng:Vuvuzela_crypto.Drbg.t -> ?kind:kind -> unit -> bytes
(** An idle client's request to the no-op drop. *)

val noise :
  ?rng:Vuvuzela_crypto.Drbg.t -> ?kind:kind -> index:int -> unit -> bytes
(** A server noise invitation for a specific drop (§5.3). *)

val my_drop : identity:Types.identity -> m:int -> int

val scan : identity:Types.identity -> bytes list -> bytes list
(** Trial-decrypt a plain drop; returns callers' public keys. *)

val scan_certified :
  identity:Types.identity -> bytes list -> (bytes * Certificate.t) list
(** Trial-decrypt a certified drop; certificates still need
    {!Certificate.verify} under the recipient's trust policy. *)
