(* Invitation-drop distribution (§5.5).

   "Each dead drop is downloaded by a large number of clients ... this
   traffic can overwhelm Vuvuzela's servers, but ... requests for
   downloading invitations do not need to be routed through Vuvuzela's
   servers, since they do not need to be mixed or noised.  Thus, we
   envision that Vuvuzela could use a CDN or BitTorrent-like design."

   This module is that design, in-process: a set of untrusted cache
   nodes in front of the last server (the origin).  Each dialing round's
   drops are immutable once published, so caching is trivial — a cache
   fills once per (round, drop) and serves every subsequent request
   locally.  Byte counters on the origin and each edge show the §5.5
   effect: origin egress is O(m · drop_size) per round instead of
   O(users · drop_size).

   Privacy note, as in the paper: fetches are not mixed, so the CDN (and
   anyone watching it) learns which drop index a client downloads — which
   the adversary already knows from H(pk) mod m.  Contents are still
   trial-decryption-protected. *)

type origin = {
  fetch : dial_round:int -> index:int -> bytes list;
  mutable origin_requests : int;
  mutable origin_bytes : int;
}

type edge = {
  name : string;
  cache : (int * int, bytes list) Hashtbl.t;  (** (dial_round, index) *)
  mutable hits : int;
  mutable misses : int;
  mutable served_bytes : int;
}

type t = {
  origin : origin;
  edges : edge array;
  mutable round_floor : int;  (** rounds below this are evicted *)
  history : int;  (** dialing rounds retained in caches *)
}

let invitations_bytes invs =
  List.fold_left (fun acc b -> acc + Bytes.length b) 0 invs

let create ?(edges = 3) ?(history = 2) ~fetch () =
  if edges < 1 then invalid_arg "Cdn.create: need at least one edge";
  {
    origin = { fetch; origin_requests = 0; origin_bytes = 0 };
    edges =
      Array.init edges (fun i ->
          {
            name = Printf.sprintf "edge-%d" i;
            cache = Hashtbl.create 16;
            hits = 0;
            misses = 0;
            served_bytes = 0;
          });
    round_floor = 0;
    history;
  }

(* Clients are spread across edges by their public key, like a DNS-based
   CDN would. *)
let edge_for t ~client_pk =
  let h = Vuvuzela_crypto.Sha256.digest client_pk in
  t.edges.(Char.code (Bytes.get h 0) mod Array.length t.edges)

(* Evict drops older than [history] dialing rounds; they are ephemeral
   and no honest client re-fetches them. *)
let advance_round t ~dial_round =
  let floor = dial_round - t.history in
  if floor > t.round_floor then begin
    t.round_floor <- floor;
    Array.iter
      (fun e ->
        Hashtbl.iter
          (fun ((r, _) as key) _ ->
            if r < floor then Hashtbl.remove e.cache key)
          (Hashtbl.copy e.cache))
      t.edges
  end

let fetch t ~client_pk ~dial_round ~index =
  advance_round t ~dial_round;
  if dial_round < t.round_floor then []
  else begin
    let edge = edge_for t ~client_pk in
    let key = (dial_round, index) in
    let invs =
      match Hashtbl.find_opt edge.cache key with
      | Some invs ->
          edge.hits <- edge.hits + 1;
          invs
      | None ->
          edge.misses <- edge.misses + 1;
          let invs = t.origin.fetch ~dial_round ~index in
          t.origin.origin_requests <- t.origin.origin_requests + 1;
          t.origin.origin_bytes <-
            t.origin.origin_bytes + invitations_bytes invs;
          Hashtbl.replace edge.cache key invs;
          invs
    in
    edge.served_bytes <- edge.served_bytes + invitations_bytes invs;
    invs
  end

type stats = {
  origin_requests : int;
  origin_bytes : int;
  edge_hits : int;
  edge_misses : int;
  edge_bytes : int;
  hit_ratio : float;
}

let stats t =
  let hits = Array.fold_left (fun a e -> a + e.hits) 0 t.edges in
  let misses = Array.fold_left (fun a e -> a + e.misses) 0 t.edges in
  {
    origin_requests = t.origin.origin_requests;
    origin_bytes = t.origin.origin_bytes;
    edge_hits = hits;
    edge_misses = misses;
    edge_bytes = Array.fold_left (fun a e -> a + e.served_bytes) 0 t.edges;
    hit_ratio =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses));
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "{origin: %d reqs, %d B; edges: %d hits / %d misses (%.0f%%), %d B \
     served}"
    s.origin_requests s.origin_bytes s.edge_hits s.edge_misses
    (100. *. s.hit_ratio) s.edge_bytes
