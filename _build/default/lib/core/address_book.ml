(* The client's local contact store (§9 "PKI for dialing").

   "Looking up this key on-demand over the Internet via some key server
   would disclose who the user is dialing, so Vuvuzela clients should
   store public keys for contacts ahead of time."

   An address book binds human names to conversation keys and (for
   certified deployments) trusted signing keys.  It serializes to a
   single binary blob so a client can persist it across restarts —
   lookups never touch the network. *)

open Vuvuzela_crypto
open Vuvuzela_mixnet

type contact = {
  name : string;
  conversation_pk : bytes;  (** X25519, for dialing and conversing *)
  signing_pk : bytes option;  (** Ed25519, trusted to certify this name *)
}

type t = {
  by_name : (string, contact) Hashtbl.t;
  by_key : (string, contact) Hashtbl.t;  (** keyed by conversation pk *)
}

let create () = { by_name = Hashtbl.create 16; by_key = Hashtbl.create 16 }
let size t = Hashtbl.length t.by_name

let add t contact =
  if Bytes.length contact.conversation_pk <> Curve25519.key_len then
    invalid_arg "Address_book.add: bad conversation key";
  (match contact.signing_pk with
  | Some pk when Bytes.length pk <> Ed25519.public_key_len ->
      invalid_arg "Address_book.add: bad signing key"
  | _ -> ());
  (* Replacing a renamed contact: drop any stale reverse entry. *)
  (match Hashtbl.find_opt t.by_name contact.name with
  | Some old -> Hashtbl.remove t.by_key (Bytes.to_string old.conversation_pk)
  | None -> ());
  Hashtbl.replace t.by_name contact.name contact;
  Hashtbl.replace t.by_key (Bytes.to_string contact.conversation_pk) contact

let remove t ~name =
  match Hashtbl.find_opt t.by_name name with
  | None -> ()
  | Some c ->
      Hashtbl.remove t.by_name name;
      Hashtbl.remove t.by_key (Bytes.to_string c.conversation_pk)

let find t ~name = Hashtbl.find_opt t.by_name name
let find_by_key t ~conversation_pk =
  Hashtbl.find_opt t.by_key (Bytes.to_string conversation_pk)

let contacts t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.by_name []
  |> List.sort (fun a b -> String.compare a.name b.name)

(* Is [signing_pk] trusted to certify anyone in this book?  The trust
   callback handed to {!Certificate.verify}. *)
let trusts t signing_pk =
  Hashtbl.fold
    (fun _ c acc ->
      acc
      || match c.signing_pk with
         | Some pk -> Bytes.equal pk signing_pk
         | None -> false)
    t.by_name false

(* Full §9 verification of an incoming certified call: the certificate
   must verify under a signing key we trust, cover the caller's
   conversation key, and name the contact we associate with that signing
   key. *)
type vetting =
  | Known of contact  (** certificate checks out; this is the contact *)
  | Unknown  (** no matching trusted signer *)
  | Invalid of Certificate.error

let vet t ~now ~caller_pk (cert : Certificate.t) =
  match Certificate.verify ~now ~trusted:(trusts t) cert with
  | Error Certificate.Untrusted_issuer -> Unknown
  | Error e -> Invalid e
  | Ok () ->
      if not (Bytes.equal cert.Certificate.subject_pk caller_pk) then
        Invalid Certificate.Bad_signature
      else begin
        let owner =
          List.find_opt
            (fun c ->
              match c.signing_pk with
              | Some pk -> Bytes.equal pk cert.Certificate.issuer_pk
              | None -> false)
            (contacts t)
        in
        match owner with
        | Some c when Certificate.matches_name cert c.name -> Known c
        | Some _ -> Invalid Certificate.Bad_signature (* name mismatch *)
        | None -> Unknown
      end

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let serialize t =
  Wire.encode (fun w ->
      Wire.Writer.u32 w 0x41424f4f (* "ABOO" *);
      Wire.Writer.u8 w 1;
      let cs = contacts t in
      Wire.Writer.u32 w (List.length cs);
      List.iter
        (fun c ->
          Wire.Writer.bytes_var w (Bytes.of_string c.name);
          Wire.Writer.bytes_fixed w ~len:32 c.conversation_pk;
          match c.signing_pk with
          | None -> Wire.Writer.u8 w 0
          | Some pk ->
              Wire.Writer.u8 w 1;
              Wire.Writer.bytes_fixed w ~len:32 pk)
        cs)

let deserialize b =
  Wire.decode
    (fun r ->
      if Wire.Reader.u32 r <> 0x41424f4f then
        raise (Wire.Error "Address_book: bad magic");
      if Wire.Reader.u8 r <> 1 then
        raise (Wire.Error "Address_book: unknown version");
      let n = Wire.Reader.u32 r in
      if n > 1 lsl 20 then raise (Wire.Error "Address_book: absurd size");
      let t = create () in
      for _ = 1 to n do
        let name = Bytes.to_string (Wire.Reader.bytes_var r) in
        let conversation_pk = Wire.Reader.bytes_fixed r 32 in
        let signing_pk =
          match Wire.Reader.u8 r with
          | 0 -> None
          | 1 -> Some (Wire.Reader.bytes_fixed r 32)
          | _ -> raise (Wire.Error "Address_book: bad tag")
        in
        add t { name; conversation_pk; signing_pk }
      done;
      t)
    b
