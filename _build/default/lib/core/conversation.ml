(* Client side of the conversation protocol (Algorithm 1).

   A [session] binds two users who have agreed (via dialing) to talk.
   For each round r it derives:

     - the dead-drop ID   b = H(s, r)      (128 bits, fresh every round)
     - the message keys   (direction-separated; see Message)

   and builds the fixed-size exchange payload  b || Seal(m).  Idle
   clients build the same payload from a session with a freshly random
   public key (step 1b of Algorithm 1), so real and fake requests are
   indistinguishable. *)

open Vuvuzela_crypto

type session = {
  base : bytes;  (** HKDF'd conversation secret *)
  keys : Message.keys;
  peer_pk : bytes;
}

let derive ~identity:(id : Types.identity) ~peer_pk =
  let raw = Curve25519.shared ~secret:id.secret ~public:peer_pk in
  let base =
    Hkdf.derive ~ikm:raw ~info:(Bytes.of_string "vuvuzela-session-v1") 32
  in
  { base; keys = Message.direction_keys ~base ~my_pk:id.public ~their_pk:peer_pk; peer_pk }

(* Step 1b: a fake session with a random public key; the resulting dead
   drop is uniformly random and the sealed message opens for nobody. *)
let fake ?rng ~identity () =
  derive ~identity ~peer_pk:(Drbg.bytes ?rng 32)

(* b = H(s, r): per-round pseudo-random dead drop (§4.1, "Randomizing
   dead drop IDs"). *)
let drop_id session ~round =
  let r = Bytes.create 8 in
  Bytes_util.store_le64 r 0 round;
  Bytes.sub
    (Hmac.sha256 ~key:session.base (Bytes_util.concat [ Bytes.of_string "drop"; r ]))
    0 Types.drop_id_len

(* The exchange payload placed into the onion: drop ID followed by the
   sealed message.  Always [Types.exchange_payload_len] bytes. *)
let exchange_payload session ~round msg =
  let sealed = Message.seal ~keys:session.keys ~round msg in
  Bytes_util.concat [ drop_id session ~round; sealed ]

(* Interpret the exchange result (the partner's sealed message, or the
   all-zero empty result if nobody else accessed the drop, or garbage if
   this was a fake session). *)
let read_result session ~round result =
  if Bytes.length result <> Types.exchange_result_len then None
  else Message.open_ ~keys:session.keys ~round result
