(** A complete in-process deployment: chain + entry server + clients +
    round clock, with fault injection for the active adversary. *)

type t

val create :
  ?seed:string ->
  ?n_servers:int ->
  ?noise:Vuvuzela_dp.Laplace.params ->
  ?dial_noise:Vuvuzela_dp.Laplace.params ->
  ?noise_mode:Vuvuzela_dp.Noise.mode ->
  ?dial_kind:Dialing.kind ->
  ?cdn_edges:int ->
  unit ->
  t
(** Defaults are sized for tests (tiny noise); production parameters come
    from {!Vuvuzela_dp.Composition.noise_for_target}. *)

val chain : t -> Chain.t
val round : t -> int
val dial_round : t -> int
val n_clients : t -> int

val set_invitation_drops : t -> int -> unit
(** Set [m] for subsequent dialing rounds (§5.4 tuning). *)

val invitation_drops : t -> int

val set_auto_tune_drops : t -> bool -> unit
(** Adopt the last server's §5.4 m-recommendation after each dialing
    round. *)

val cdn_stats : t -> Cdn.stats option
(** Present when the deployment was created with [cdn_edges > 0]. *)

val connect :
  ?seed:string ->
  ?window:int ->
  ?rtt:int ->
  ?max_conversations:int ->
  ?certified:Client.certified_config ->
  t ->
  Client.t
(** Add a client; with [seed], its identity and randomness are
    deterministic. *)

val clients : t -> Client.t list
val find_client : t -> bytes -> Client.t option

val run_round :
  ?blocked:(Client.t -> bool) -> t -> (Client.t * Client.event list) list
(** Run one conversation round; [blocked] clients send nothing (the
    §2.1 active attack, or an outage). *)

val run_dialing_round :
  ?blocked:(Client.t -> bool) -> t -> (Client.t * Client.event list) list
(** Run one dialing round including the download/scan phase; returns
    only clients with events (incoming calls). *)

val run_rounds :
  ?blocked:(Client.t -> bool) ->
  t ->
  int ->
  (Client.t * Client.event list) list

val run_schedule :
  ?blocked:(Client.t -> bool) ->
  ?dial_every:int ->
  t ->
  rounds:int ->
  (Client.t * Client.event list) list
(** Interleave conversation rounds with a dialing round every
    [dial_every] rounds (default 10), as a deployment would (§8.1). *)
