(* Client side of the dialing protocol (§5).

   An invitation is the caller's long-term public key — optionally
   accompanied by a certificate (§9) — sealed anonymously to the callee.
   It is addressed to invitation drop H(callee_pk) mod m.  Idle clients
   send a syntactically identical request to the no-op drop so that
   participation is not observable (§5.2).

   A deployment fixes one invitation format for everybody (plain 80-byte
   or certified 248-byte); sizes must be uniform or the format itself
   would become an observable variable. *)

open Vuvuzela_crypto
open Vuvuzela_mixnet

type kind = Plain | Certified

let invitation_len = function
  | Plain -> Types.invitation_len
  | Certified -> Certificate.certified_invitation_len

let payload_len kind = 2 + invitation_len kind

(* The dialing request payload carried through the mixnet:
   u16 drop index || invitation. *)
let encode_payload ~index invitation =
  Wire.encode (fun w ->
      Wire.Writer.u16 w index;
      Wire.Writer.raw w invitation)

let decode_payload b =
  Wire.decode
    (fun r ->
      let index = Wire.Reader.u16 r in
      let invitation = Wire.Reader.rest r in
      (index, invitation))
    b

(* A real plain invitation: my public key sealed to the callee. *)
let invite ?rng ~identity:(id : Types.identity) ~callee_pk ~m () =
  let invitation = Box.seal_anonymous ?rng ~recipient_pk:callee_pk id.public in
  let index = Deaddrop.Invitation.index_of ~m callee_pk in
  encode_payload ~index invitation

(* A certified invitation: public key + certificate sealed together. *)
let invite_certified ?rng ~identity:(id : Types.identity) ~cert ~callee_pk ~m
    () =
  let invitation =
    Certificate.seal_certified ?rng ~caller_pk:id.Types.public ~cert
      ~recipient_pk:callee_pk ()
  in
  let index = Deaddrop.Invitation.index_of ~m callee_pk in
  encode_payload ~index invitation

(* An indistinguishable invitation-shaped blob sealed to a random key;
   used for idle no-ops and server noise.  [kind] fixes the size. *)
let blob ?rng ~kind () =
  let plain_len = invitation_len kind - Box.anonymous_overhead in
  Box.seal_anonymous ?rng
    ~recipient_pk:(Drbg.bytes ?rng 32)
    (Drbg.bytes ?rng plain_len)

(* Idle clients write to the no-op drop (§5.2); byte-for-byte
   indistinguishable from a real invitation before the last server. *)
let noop ?rng ?(kind = Plain) () =
  encode_payload ~index:Types.noop_drop (blob ?rng ~kind ())

(* A noise invitation addressed to a specific drop (server cover
   traffic, §5.3): no client's trial decryption ever succeeds on it. *)
let noise ?rng ?(kind = Plain) ~index () =
  encode_payload ~index (blob ?rng ~kind ())

(* Which drop do I download? *)
let my_drop ~identity:(id : Types.identity) ~m =
  Deaddrop.Invitation.index_of ~m id.public

(* Trial-decrypt every plain invitation in my drop; return the callers'
   public keys (§5.1). *)
let scan ~identity:(id : Types.identity) invitations =
  List.filter_map
    (fun inv ->
      if Bytes.length inv <> Types.invitation_len then None
      else
        match
          Box.open_anonymous ~recipient_sk:id.secret ~recipient_pk:id.public
            inv
        with
        | Some caller_pk when Bytes.length caller_pk = Curve25519.key_len ->
            Some caller_pk
        | _ -> None)
    invitations

(* Trial-decrypt certified invitations: (caller key, certificate) pairs.
   Certificate verification is the caller's business (trust policy). *)
let scan_certified ~identity:(id : Types.identity) invitations =
  List.filter_map
    (fun inv ->
      if Bytes.length inv <> Certificate.certified_invitation_len then None
      else
        Certificate.open_certified ~recipient_sk:id.secret
          ~recipient_pk:id.public inv)
    invitations
