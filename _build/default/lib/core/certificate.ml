(* Caller certificates: the §9 PKI extension.

   "When receiving a call via the dialing protocol, the recipient needs
   to identify who is calling, based on the caller's public key.  Here,
   the caller can supply a certificate along with the invitation, if the
   recipient does not already know the caller."

   A certificate binds a caller's long-term X25519 conversation key to an
   Ed25519 signing identity (the caller's own, or an introducer's whose
   key the recipient already trusts) together with a display-name hash
   and a validity window.  Certificates ride inside *certified
   invitations* — a deployment-wide alternative invitation format (all
   clients use the same format so sizes stay uniform). *)

open Vuvuzela_crypto
open Vuvuzela_mixnet

type t = {
  subject_pk : bytes;  (** X25519 key being vouched for (32 bytes) *)
  name_hash : bytes;  (** SHA-256 of the display name (32 bytes) *)
  expires : int;  (** dialing round after which the cert is invalid *)
  issuer_pk : bytes;  (** Ed25519 key of the signer (32 bytes) *)
  signature : bytes;  (** Ed25519 signature (64 bytes) *)
}

(* 32 + 32 + 8 + 32 + 64 *)
let encoded_len = 168

let to_be_signed ~subject_pk ~name_hash ~expires ~issuer_pk =
  Wire.encode (fun w ->
      Wire.Writer.raw w (Bytes.of_string "vuvuzela-cert-v1");
      Wire.Writer.bytes_fixed w ~len:32 subject_pk;
      Wire.Writer.bytes_fixed w ~len:32 name_hash;
      Wire.Writer.u64 w expires;
      Wire.Writer.bytes_fixed w ~len:32 issuer_pk)

let issue ~issuer_sk ~subject_pk ~name ~expires =
  let issuer_pk = Ed25519.public_key issuer_sk in
  let name_hash = Sha256.digest_string name in
  let signature =
    Ed25519.sign ~secret:issuer_sk
      (to_be_signed ~subject_pk ~name_hash ~expires ~issuer_pk)
  in
  { subject_pk; name_hash; expires; issuer_pk; signature }

(* Self-certification: the caller vouches for its own conversation key
   under its own signing identity (the recipient matches [issuer_pk]
   against an address-book entry). *)
let self_signed ~signing_sk ~conversation_pk ~name ~expires =
  issue ~issuer_sk:signing_sk ~subject_pk:conversation_pk ~name ~expires

type error =
  | Bad_signature
  | Expired of { expires : int; now : int }
  | Untrusted_issuer

let pp_error fmt = function
  | Bad_signature -> Format.pp_print_string fmt "bad signature"
  | Expired { expires; now } ->
      Format.fprintf fmt "expired (at %d, now %d)" expires now
  | Untrusted_issuer -> Format.pp_print_string fmt "untrusted issuer"

(* Verify a certificate at dialing round [now]; [trusted] decides whether
   the issuer key is acceptable (e.g. an address-book lookup). *)
let verify ~now ~trusted cert =
  if not (trusted cert.issuer_pk) then Error Untrusted_issuer
  else if cert.expires < now then
    Error (Expired { expires = cert.expires; now })
  else begin
    let msg =
      to_be_signed ~subject_pk:cert.subject_pk ~name_hash:cert.name_hash
        ~expires:cert.expires ~issuer_pk:cert.issuer_pk
    in
    if Ed25519.verify ~public:cert.issuer_pk ~signature:cert.signature msg
    then Ok ()
    else Error Bad_signature
  end

let matches_name cert name =
  Bytes_util.ct_equal cert.name_hash (Sha256.digest_string name)

let encode cert =
  Wire.encode (fun w ->
      Wire.Writer.bytes_fixed w ~len:32 cert.subject_pk;
      Wire.Writer.bytes_fixed w ~len:32 cert.name_hash;
      Wire.Writer.u64 w cert.expires;
      Wire.Writer.bytes_fixed w ~len:32 cert.issuer_pk;
      Wire.Writer.bytes_fixed w ~len:64 cert.signature)

let decode b =
  Wire.decode
    (fun r ->
      let subject_pk = Wire.Reader.bytes_fixed r 32 in
      let name_hash = Wire.Reader.bytes_fixed r 32 in
      let expires = Wire.Reader.u64 r in
      let issuer_pk = Wire.Reader.bytes_fixed r 32 in
      let signature = Wire.Reader.bytes_fixed r 64 in
      { subject_pk; name_hash; expires; issuer_pk; signature })
    b

(* ------------------------------------------------------------------ *)
(* Certified invitations                                               *)
(* ------------------------------------------------------------------ *)

(* Sealed plaintext: caller's conversation key followed by the
   certificate.  All certified invitations are the same size; noise
   invitations are random recipients' sealed boxes of the same length. *)
let certified_plain_len = 32 + encoded_len
let certified_invitation_len = certified_plain_len + Box.anonymous_overhead

let seal_certified ?rng ~caller_pk ~cert ~recipient_pk () =
  if not (Bytes.equal cert.subject_pk caller_pk) then
    invalid_arg "Certificate.seal_certified: cert does not cover caller";
  Box.seal_anonymous ?rng ~recipient_pk
    (Bytes.cat caller_pk (encode cert))

let open_certified ~recipient_sk ~recipient_pk sealed =
  match Box.open_anonymous ~recipient_sk ~recipient_pk sealed with
  | None -> None
  | Some plain when Bytes.length plain = certified_plain_len ->
      let caller_pk = Bytes.sub plain 0 32 in
      (match decode (Bytes.sub plain 32 encoded_len) with
      | Ok cert -> Some (caller_pk, cert)
      | Error _ -> None)
  | Some _ -> None

(* A noise certified-invitation: same size, decryptable by nobody. *)
let noise_certified ?rng () =
  Box.seal_anonymous ?rng
    ~recipient_pk:(Drbg.bytes ?rng 32)
    (Drbg.bytes ?rng certified_plain_len)
