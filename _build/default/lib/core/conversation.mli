(** Client side of the conversation protocol (Algorithm 1): per-round
    dead-drop derivation and exchange payload construction. *)

type session

val derive : identity:Types.identity -> peer_pk:bytes -> session
(** Real session with a conversation partner; both sides derive the same
    dead drops and mirror-image message keys. *)

val fake : ?rng:Vuvuzela_crypto.Drbg.t -> identity:Types.identity -> unit -> session
(** Algorithm 1 step 1b: an idle client's indistinguishable fake
    session (random peer key, random dead drops). *)

val drop_id : session -> round:int -> Types.drop_id
(** [b = H(s, r)]: fresh pseudo-random 128-bit dead drop per round. *)

val exchange_payload : session -> round:int -> Message.t -> bytes
(** The innermost onion plaintext: [drop_id || sealed message], always
    {!Types.exchange_payload_len} bytes. *)

val read_result : session -> round:int -> bytes -> Message.t option
(** Decrypt the partner's message from the exchange result; [None] for
    the empty result, tampering, or a fake session. *)
