(** Symmetric hash ratchet: forward secrecy for message contents (§9),
    in the style of Axolotl's symmetric stage.

    One ratchet per conversation direction.  Keys move strictly forward
    with the round number; old chain keys are erased, so a later
    compromise cannot decrypt recorded ciphertexts. *)

type t

val create : ?window:int -> base:bytes -> first_round:int -> unit -> t
(** [window] (default 16) bounds how many skipped rounds' message keys
    are retained for out-of-order arrivals. *)

val next_round : t -> int

val key_for : t -> round:int -> bytes option
(** The 32-byte message key for [round].  Advancing past rounds erases
    their chain keys; a recently skipped round's key can be claimed once;
    erased rounds return [None]. *)

val advance_to : t -> int -> unit
(** Explicitly fast-forward (e.g. after an offline period). *)

val erased : t -> round:int -> bool
