(** Caller certificates (§9 "PKI for dialing"): Ed25519-signed bindings
    of a conversation key to a signing identity, carried inside
    fixed-size certified invitations. *)

type t = {
  subject_pk : bytes;
  name_hash : bytes;
  expires : int;  (** last dialing round at which the cert is valid *)
  issuer_pk : bytes;
  signature : bytes;
}

val encoded_len : int
(** 168 bytes. *)

val issue :
  issuer_sk:bytes -> subject_pk:bytes -> name:string -> expires:int -> t

val self_signed :
  signing_sk:bytes -> conversation_pk:bytes -> name:string -> expires:int -> t

type error = Bad_signature | Expired of { expires : int; now : int } | Untrusted_issuer

val pp_error : Format.formatter -> error -> unit

val verify :
  now:int -> trusted:(bytes -> bool) -> t -> (unit, error) result
(** Checks issuer trust, expiry against the current dialing round, and
    the signature, in that order. *)

val matches_name : t -> string -> bool
val encode : t -> bytes
val decode : bytes -> (t, string) result

(** {2 Certified invitations} *)

val certified_invitation_len : int
(** The fixed on-the-wire size (248 bytes: 32 + 168 + sealed-box
    overhead).  A deployment uses either plain 80-byte or certified
    invitations, never a mix, so sizes stay uniform. *)

val seal_certified :
  ?rng:Vuvuzela_crypto.Drbg.t ->
  caller_pk:bytes ->
  cert:t ->
  recipient_pk:bytes ->
  unit ->
  bytes
(** @raise Invalid_argument if the certificate's subject is not
    [caller_pk]. *)

val open_certified :
  recipient_sk:bytes -> recipient_pk:bytes -> bytes -> (bytes * t) option
(** Trial-decrypt: [(caller_conversation_pk, certificate)].  The
    certificate still needs {!verify}. *)

val noise_certified : ?rng:Vuvuzela_crypto.Drbg.t -> unit -> bytes
(** Server cover traffic of the certified size. *)
