(* Protocol constants and shared types.

   Sizes follow §8.1 of the paper: conversation messages are 256 bytes on
   the wire (240-byte plaintext + 16-byte AEAD overhead); invitations are
   80 bytes (32-byte sender key + 48 bytes of sealed-box overhead). *)

(* Dead-drop IDs are 128-bit, so honest clients never collide (§3.1). *)
let drop_id_len = 16

(* Conversation plaintext: an 11-byte transport header (kind, seq, ack,
   length) followed by up to [text_capacity] bytes of user text, padded to
   a fixed size. *)
let message_plain_len = 240
let message_header_len = 11
let text_capacity = message_plain_len - message_header_len (* 229 *)

(* Sealed conversation message as stored in a dead drop. *)
let sealed_message_len = message_plain_len + Vuvuzela_crypto.Aead.tag_len
(* = 256 *)

(* Conversation exchange payload (innermost onion plaintext):
   dead-drop ID followed by the sealed message. *)
let exchange_payload_len = drop_id_len + sealed_message_len (* 272 *)

(* Conversation exchange result: just the (sealed) counterpart message. *)
let exchange_result_len = sealed_message_len (* 256 *)

(* Dialing: an invitation is the caller's 32-byte public key in a sealed
   box (anonymous: fresh ephemeral key + tag = 48 bytes of overhead). *)
let invitation_plain_len = Vuvuzela_crypto.Curve25519.key_len
let invitation_len =
  invitation_plain_len + Vuvuzela_crypto.Box.anonymous_overhead (* 80 *)

(* Dialing request payload: 16-bit invitation-drop index + invitation. *)
let dial_payload_len = 2 + invitation_len (* 82 *)

(* The no-op invitation drop used by idle clients (§5.2); its contents are
   never downloaded by anyone (§8.3). *)
let noop_drop = 0xffff

(* Dialing requests are acknowledged with a fixed-size dummy result so
   that reply sizes are uniform. *)
let dial_result_len = 1

type drop_id = bytes (* exactly [drop_id_len] bytes *)

let pp_drop_id fmt id =
  Format.pp_print_string fmt (Vuvuzela_crypto.Bytes_util.to_hex id)

(* A user identity: long-term X25519 keypair.  Public keys double as user
   identifiers, as in the paper (§3.1: "each user (identified by the
   user's public key)"). *)
type identity = { secret : bytes; public : bytes }

let identity_of_seed seed =
  let rng = Vuvuzela_crypto.Drbg.create ~seed in
  let secret, public = Vuvuzela_crypto.Drbg.keypair ~rng () in
  { secret; public }

let fresh_identity ?rng () =
  let secret, public = Vuvuzela_crypto.Drbg.keypair ?rng () in
  { secret; public }

(* Public-key comparison used for direction separation of conversation
   keys (lexicographic on the 32-byte encoding). *)
let compare_pk = Bytes.compare
