(** Invitation-drop distribution (§5.5): untrusted edge caches in front
    of the last server, exploiting that a dialing round's drops are
    immutable.  Origin egress becomes O(m · drop size) per round instead
    of O(clients · drop size). *)

type t

val create :
  ?edges:int ->
  ?history:int ->
  fetch:(dial_round:int -> index:int -> bytes list) ->
  unit ->
  t
(** [fetch] is the origin (the last server); [history] (default 2) is
    how many dialing rounds edges retain before eviction. *)

val fetch : t -> client_pk:bytes -> dial_round:int -> index:int -> bytes list
(** Serve a client's drop download through its edge (clients hash to
    edges by public key).  Returns [] for evicted (too-old) rounds. *)

type stats = {
  origin_requests : int;
  origin_bytes : int;
  edge_hits : int;
  edge_misses : int;
  edge_bytes : int;
  hit_ratio : float;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
