(** The client's local contact store (§9): names, conversation keys and
    trusted signing keys, kept offline so dialing never leaks a key
    lookup. *)

type contact = {
  name : string;
  conversation_pk : bytes;
  signing_pk : bytes option;
}

type t

val create : unit -> t
val size : t -> int

val add : t -> contact -> unit
(** Insert or replace by name.
    @raise Invalid_argument on malformed keys. *)

val remove : t -> name:string -> unit
val find : t -> name:string -> contact option
val find_by_key : t -> conversation_pk:bytes -> contact option

val contacts : t -> contact list
(** Sorted by name. *)

val trusts : t -> bytes -> bool
(** Whether a signing key belongs to any contact — the trust callback
    for {!Certificate.verify}. *)

type vetting = Known of contact | Unknown | Invalid of Certificate.error

val vet : t -> now:int -> caller_pk:bytes -> Certificate.t -> vetting
(** Full vetting of an incoming certified call: signature, expiry,
    subject binding, and name-to-signer consistency. *)

val serialize : t -> bytes
val deserialize : bytes -> (t, string) result
