lib/core/address_book.ml: Bytes Certificate Curve25519 Ed25519 Hashtbl List String Vuvuzela_crypto Vuvuzela_mixnet Wire
