lib/core/network.ml: Bytes Cdn Chain Client Dialing Entry Hashtbl Laplace List Noise Option Types Vuvuzela_dp
