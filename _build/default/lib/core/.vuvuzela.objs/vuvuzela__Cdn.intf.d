lib/core/cdn.mli: Format
