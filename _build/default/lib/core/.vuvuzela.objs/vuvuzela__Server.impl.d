lib/core/server.ml: Array Bytes Bytes_util Deaddrop Dialing Drbg Float Hashtbl Laplace List Logs Noise Onion Shuffle Types Vuvuzela_crypto Vuvuzela_dp Vuvuzela_mixnet
