lib/core/ratchet.ml: Bytes Hashtbl Hkdf Hmac Vuvuzela_crypto
