lib/core/server.mli: Deaddrop Dialing Vuvuzela_dp
