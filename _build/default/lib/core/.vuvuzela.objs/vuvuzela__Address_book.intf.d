lib/core/address_book.mli: Certificate
