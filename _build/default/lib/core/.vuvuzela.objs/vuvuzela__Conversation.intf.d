lib/core/conversation.mli: Message Types Vuvuzela_crypto
