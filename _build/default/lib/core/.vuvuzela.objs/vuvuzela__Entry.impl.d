lib/core/entry.ml: Array List
