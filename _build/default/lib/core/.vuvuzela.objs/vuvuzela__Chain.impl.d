lib/core/chain.ml: Array Bytes Dialing Option Printf Rpc Server Types Vuvuzela_crypto Vuvuzela_mixnet
