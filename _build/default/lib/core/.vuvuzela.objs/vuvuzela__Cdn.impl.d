lib/core/cdn.ml: Array Bytes Char Format Hashtbl List Printf Vuvuzela_crypto
