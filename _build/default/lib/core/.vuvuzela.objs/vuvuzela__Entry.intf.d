lib/core/entry.mli:
