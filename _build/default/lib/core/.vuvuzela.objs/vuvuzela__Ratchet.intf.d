lib/core/ratchet.mli:
