lib/core/chain.mli: Deaddrop Dialing Server Vuvuzela_dp
