lib/core/certificate.ml: Box Bytes Bytes_util Drbg Ed25519 Format Sha256 Vuvuzela_crypto Vuvuzela_mixnet Wire
