lib/core/certificate.mli: Format Vuvuzela_crypto
