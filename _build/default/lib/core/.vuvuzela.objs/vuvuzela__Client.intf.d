lib/core/client.mli: Certificate Dialing Format Types
