lib/core/conversation.ml: Bytes Bytes_util Curve25519 Drbg Hkdf Hmac Message Types Vuvuzela_crypto
