lib/core/network.mli: Cdn Chain Client Dialing Vuvuzela_dp
