lib/core/dialing.ml: Box Bytes Certificate Curve25519 Deaddrop Drbg List Types Vuvuzela_crypto Vuvuzela_mixnet Wire
