lib/core/rpc.ml: Array Bytes List Printf Vuvuzela_mixnet Wire
