lib/core/types.ml: Bytes Format Vuvuzela_crypto
