lib/core/dialing.mli: Certificate Types Vuvuzela_crypto
