lib/core/message.ml: Aead Bytes Bytes_util Format Hkdf Printf String Types Vuvuzela_crypto Vuvuzela_mixnet Wire
