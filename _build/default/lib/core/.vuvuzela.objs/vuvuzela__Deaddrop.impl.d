lib/core/deaddrop.ml: Array Bytes Char Format Hashtbl List Option Types Vuvuzela_crypto
