lib/core/client.ml: Bytes Certificate Conversation Dialing Drbg Format Hashtbl List Message Printf Queue String Types Vuvuzela_crypto Vuvuzela_mixnet
