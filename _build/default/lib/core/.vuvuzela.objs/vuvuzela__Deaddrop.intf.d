lib/core/deaddrop.mli: Format Types
