lib/core/rpc.mli:
