(** Server-side cover-traffic planning (Algorithm 2, step 2 and §5.3). *)

type mode =
  | Sampled
  | Deterministic
      (** always add exactly µ — the paper's §8.1 evaluation mode *)

type plan = { singles : int; pairs : int }
(** Noise requests one server adds in a conversation round: [singles]
    lone accesses and [pairs] double accesses to random dead drops. *)

val pp_plan : Format.formatter -> plan -> unit

val total_requests : plan -> int
(** [singles + 2·pairs] — on average 2µ per server, giving the paper's
    1.2M noise requests for a 3-server chain at µ = 300K. *)

val conversation :
  ?rng:Vuvuzela_crypto.Drbg.t -> mode:mode -> Laplace.params -> plan

val dialing_per_drop :
  ?rng:Vuvuzela_crypto.Drbg.t -> mode:mode -> Laplace.params -> int
(** Noise invitations one server adds to one invitation dead drop. *)

val tune_drop_count :
  users:int -> dial_fraction:float -> Laplace.params -> int
(** §5.4: [m = n·f/µ], at least 1. *)
