(* Laplace distribution sampling and the paper's truncated noise shape
   ⌈max(0, Laplace(µ, b))⌉ (Algorithm 2, step 2; Theorem 1). *)

open Vuvuzela_crypto

type params = { mu : float; b : float }

let params ~mu ~b =
  if b <= 0. then invalid_arg "Laplace.params: b must be positive";
  { mu; b }

let pp_params fmt { mu; b } = Format.fprintf fmt "Laplace(µ=%g, b=%g)" mu b

(* Inverse-CDF sampling: u uniform in (-1/2, 1/2],
   x = µ - b·sgn(u)·ln(1 - 2|u|). *)
let sample ?rng { mu; b } =
  let u = Drbg.float_unit ?rng () -. 0.5 in
  let u = if u = -0.5 then 0.4999999999 else u in
  let s = if u < 0. then -1. else 1. in
  mu -. (b *. s *. log (1. -. (2. *. Float.abs u)))

let mean { mu; _ } = mu

let stddev { b; _ } = b *. sqrt 2.

(* The noise count a Vuvuzela server adds: Laplace capped below at zero,
   rounded up to an integer.  Rounding up is safe post-processing
   (Lemma 3 / Theorem 1). *)
let truncated_sample ?rng p =
  let x = sample ?rng p in
  int_of_float (Float.ceil (Float.max 0. x))

(* Probability density, used by the attack module's likelihood ratios. *)
let pdf { mu; b } x = exp (-.Float.abs (x -. mu) /. b) /. (2. *. b)

(* CDF of the (untruncated) Laplace distribution. *)
let cdf { mu; b } x =
  if x < mu then 0.5 *. exp ((x -. mu) /. b)
  else 1. -. (0.5 *. exp (-.(x -. mu) /. b))
