(* The §6.4 worked example: what an adversary's posterior belief can
   become after observing an (ε, δ)-DP system.

   If Eve's prior that Alice and Bob are talking is p, then after any
   observation O,
     Pr[talking | O] ≤ p·e^ε / (p·e^ε + (1 − p))
   (ignoring the δ tail).  With p = 50% and ε = ln 2 this is 67%; with
   ε = ln 3 it is 75%; with p = 1% and ε = ln 3 it is ~3%. *)

let posterior ~prior ~eps =
  if prior < 0. || prior > 1. then invalid_arg "Bayes.posterior: bad prior";
  let lift = prior *. exp eps in
  lift /. (lift +. (1. -. prior))

(* The multiplicative bound on the posterior/prior odds ratio. *)
let max_odds_ratio ~eps = exp eps

(* Bayesian update from an explicit likelihood ratio
   L = Pr[obs | talking] / Pr[obs | cover story]; DP guarantees
   e^{-ε} ≤ L ≤ e^ε (up to δ). *)
let update ~prior ~likelihood_ratio =
  if likelihood_ratio = Float.infinity then (if prior > 0. then 1. else 0.)
  else begin
    let lift = prior *. likelihood_ratio in
    lift /. (lift +. (1. -. prior))
  end
