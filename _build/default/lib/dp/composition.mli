(** Multi-round privacy accounting: Theorem 2 (advanced adaptive
    composition) and the parameter-planning helpers behind Figures 7–8. *)

val compose : k:int -> d:float -> Mechanism.guarantee -> Mechanism.guarantee
(** Theorem 2: [(ε′, δ′)] after [k] adaptive rounds, with free parameter
    [d > 0] trading ε′ against δ′. *)

val default_d : float
(** 1e-5, the paper's choice (§6.4). *)

val default_target : Mechanism.guarantee
(** ε′ = ln 2, δ′ = 1e-4 — the paper's recommended deployment target. *)

val satisfies : target:Mechanism.guarantee -> Mechanism.guarantee -> bool

val max_rounds :
  ?d:float -> ?target:Mechanism.guarantee -> Mechanism.guarantee -> int
(** Largest [k] whose composition still satisfies [target] (binary
    search; ε′ and δ′ are monotone in [k]). *)

type protocol = Conversation | Dialing

val per_round_of : protocol -> Laplace.params -> Mechanism.guarantee

val best_b :
  ?d:float ->
  ?target:Mechanism.guarantee ->
  protocol:protocol ->
  mu:float ->
  ?b_lo:float ->
  ?b_hi:float ->
  ?steps:int ->
  unit ->
  float * int
(** §6.4's parameter sweep: for a fixed mean noise [mu], the scale [b]
    maximizing the number of supported rounds, with that maximum. *)

val figure_point :
  protocol:protocol ->
  mu:float ->
  b:float ->
  k:int ->
  d:float ->
  float * float
(** One Figure 7/8 point: [(e^{ε′}, δ′)] after [k] rounds. *)

val noise_for_target :
  ?d:float -> protocol:protocol -> k:int -> Mechanism.guarantee ->
  Laplace.params
(** Approximate inverse planning: the [(µ, b)] needed to support [k]
    rounds at a target [(ε′, δ′)]. *)
