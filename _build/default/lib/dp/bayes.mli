(** The §6.4 plausible-deniability arithmetic: bounds on an adversary's
    posterior belief after observing an (ε, δ)-DP system. *)

val posterior : prior:float -> eps:float -> float
(** Worst-case posterior [p·e^ε / (p·e^ε + 1 − p)] (δ tail ignored). *)

val max_odds_ratio : eps:float -> float
(** [e^ε]: the most any observation can multiply the adversary's odds. *)

val update : prior:float -> likelihood_ratio:float -> float
(** Exact Bayesian update for a concrete likelihood ratio (used by the
    attack simulations to measure realized adversary confidence). *)
