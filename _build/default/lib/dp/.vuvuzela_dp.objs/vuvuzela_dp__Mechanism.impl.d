lib/dp/mechanism.ml: Format Laplace
