lib/dp/laplace.mli: Format Vuvuzela_crypto
