lib/dp/noise.ml: Float Format Laplace
