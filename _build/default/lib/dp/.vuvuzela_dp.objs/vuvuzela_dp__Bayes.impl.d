lib/dp/bayes.ml: Float
