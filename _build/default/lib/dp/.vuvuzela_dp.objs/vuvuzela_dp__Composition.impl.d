lib/dp/composition.ml: Laplace Mechanism
