lib/dp/laplace.ml: Drbg Float Format Vuvuzela_crypto
