lib/dp/composition.mli: Laplace Mechanism
