lib/dp/mechanism.mli: Format Laplace
