lib/dp/noise.mli: Format Laplace Vuvuzela_crypto
