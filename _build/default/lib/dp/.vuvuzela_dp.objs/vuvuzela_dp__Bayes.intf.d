lib/dp/bayes.mli:
