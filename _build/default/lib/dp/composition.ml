(* Multi-round privacy: Theorem 2 (advanced adaptive composition,
   Dwork-Roth Theorem 3.20) and the planning helpers behind Figures 7
   and 8. *)

(* Theorem 2: after k rounds of an (ε, δ)-DP mechanism,
     ε′ = √(2k·ln(1/d))·ε + k·ε·(e^ε − 1)
     δ′ = k·δ + d
   for any free parameter d > 0. *)
let compose ~k ~d (g : Mechanism.guarantee) =
  if k < 0 then invalid_arg "Composition.compose: negative k";
  if d <= 0. then invalid_arg "Composition.compose: d must be positive";
  let kf = float_of_int k in
  {
    Mechanism.eps =
      (sqrt (2. *. kf *. log (1. /. d)) *. g.eps)
      +. (kf *. g.eps *. (exp g.eps -. 1.));
    delta = (kf *. g.delta) +. d;
  }

(* The paper's default targets: ε′ = ln 2, δ′ = 1e-4, with d = 1e-5
   (§6.4: "we set d in Theorem 2 to 1e-5"). *)
let default_d = 1e-5
let default_target = { Mechanism.eps = log 2.; delta = 1e-4 }

let satisfies ~target (g : Mechanism.guarantee) =
  g.Mechanism.eps <= target.Mechanism.eps +. 1e-12
  && g.delta <= target.Mechanism.delta +. 1e-15

(* Largest k such that k rounds still satisfy [target].  ε′ and δ′ are
   both monotone in k, so binary search applies. *)
let max_rounds ?(d = default_d) ?(target = default_target) per_round =
  if not (satisfies ~target (compose ~k:1 ~d per_round)) then 0
  else begin
    let lo = ref 1 and hi = ref 2 in
    while satisfies ~target (compose ~k:!hi ~d per_round) do
      lo := !hi;
      hi := !hi * 2;
      if !hi > 1 lsl 40 then invalid_arg "Composition.max_rounds: unbounded"
    done;
    (* Invariant: lo satisfies, hi does not. *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if satisfies ~target (compose ~k:mid ~d per_round) then lo := mid
      else hi := mid
    done;
    !lo
  end

type protocol = Conversation | Dialing

let per_round_of protocol p =
  match protocol with
  | Conversation -> Mechanism.conversation p
  | Dialing -> Mechanism.dialing p

(* §6.4's methodology: "for each mean µ, we set b ... to achieve ε′ = ln 2
   and δ′ = 1e-4 for as large a value of k as possible, using a parameter
   sweep".  δ′ grows with b while ε′ falls with it (footnote 10), so we
   sweep b and keep the maximizer. *)
let best_b ?(d = default_d) ?(target = default_target) ~protocol ~mu
    ?(b_lo = 1.) ?(b_hi = 1e6) ?(steps = 400) () =
  let best = ref (b_lo, 0) in
  let ratio = (b_hi /. b_lo) ** (1. /. float_of_int steps) in
  let b = ref b_lo in
  for _ = 0 to steps do
    let p = Laplace.params ~mu ~b:!b in
    let k = max_rounds ~d ~target (per_round_of protocol p) in
    if k > snd !best then best := (!b, k);
    b := !b *. ratio
  done;
  !best

(* One point of Figure 7/8: (e^{ε′}, δ′) after k rounds. *)
let figure_point ~protocol ~mu ~b ~k ~d =
  let g = compose ~k ~d (per_round_of protocol (Laplace.params ~mu ~b)) in
  (exp g.Mechanism.eps, g.delta)

(* How the needed mean noise µ scales (§6.4 bullet list): for a target
   (ε′, δ′) over k rounds, recover the per-round budget and then the
   noise via Equation 1.  Uses the ε-dominant inversion of Theorem 2. *)
let noise_for_target ?(d = default_d) ~protocol ~k target =
  let kf = float_of_int k in
  (* Solve ε′ = √(2k ln(1/d))·ε + k·ε² (approximating e^ε−1 ≈ ε) for ε. *)
  let a = kf in
  let b_ = sqrt (2. *. kf *. log (1. /. d)) in
  let c = -.target.Mechanism.eps in
  let eps = (-.b_ +. sqrt ((b_ *. b_) -. (4. *. a *. c))) /. (2. *. a) in
  let delta = (target.Mechanism.delta -. d) /. kf in
  if delta <= 0. then invalid_arg "Composition.noise_for_target: δ′ <= d";
  let g = { Mechanism.eps; delta } in
  match protocol with
  | Conversation -> Mechanism.conversation_noise_for g
  | Dialing -> Mechanism.dialing_noise_for g
