(** Per-round differential-privacy accounting (§6.2 Theorem 1, Lemma 3,
    and the §6.5 dialing variant). *)

type guarantee = { eps : float; delta : float }

val pp_guarantee : Format.formatter -> guarantee -> unit

val lemma3 : sensitivity:float -> Laplace.params -> guarantee
(** Lemma 3: one counter with sensitivity [t] noised by
    [⌈max(0, Laplace(µ,b))⌉] is [(t/b, ½·e^{(t−µ)/b})]-DP. *)

val conversation : Laplace.params -> guarantee
(** Theorem 1: [(4/b, e^{(2−µ)/b})]-DP per conversation round. *)

val dialing : Laplace.params -> guarantee
(** §6.5: [(2/b, ½·e^{(1−µ)/b})]-DP per dialing round. *)

val conversation_noise_for : guarantee -> Laplace.params
(** Equation 1: [(µ, b)] achieving a target per-round [(ε, δ)]. *)

val dialing_noise_for : guarantee -> Laplace.params

val m1_noise : Laplace.params -> Laplace.params
(** Noise distribution on the dead-drops-accessed-once counter. *)

val m2_noise : Laplace.params -> Laplace.params
(** Noise on the accessed-twice counter: [Laplace(µ/2, b/2)]. *)
