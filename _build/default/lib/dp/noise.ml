(* Server-side cover-traffic planning (Algorithm 2, step 2).

   Each server draws n1, n2 ~ Laplace(µ, b) capped below at 0 and adds
   ⌈n1⌉ single accesses to random dead drops plus ⌈n2/2⌉ paired accesses
   (two requests to one random drop).  The singles noise the
   dead-drops-accessed-once counter m1 with Laplace(µ, b); the pairs noise
   m2 with Laplace(µ/2, b/2) — exactly the mechanism of Theorem 1. *)

type mode =
  | Sampled  (** draw from the Laplace distribution (deployment) *)
  | Deterministic
      (** always add exactly the mean µ — the paper's §8.1 evaluation mode
          ("to not let noise affect the clarity of the graphs") *)

type plan = { singles : int; pairs : int }

let pp_plan fmt { singles; pairs } =
  Format.fprintf fmt "{singles=%d; pairs=%d}" singles pairs

let total_requests { singles; pairs } = singles + (2 * pairs)

let conversation ?rng ~mode (p : Laplace.params) =
  match mode with
  | Deterministic ->
      {
        singles = int_of_float (Float.ceil p.mu);
        pairs = int_of_float (Float.ceil (p.mu /. 2.));
      }
  | Sampled ->
      let n1 = Laplace.truncated_sample ?rng p in
      let n2 = Laplace.truncated_sample ?rng p in
      { singles = n1; pairs = (n2 + 1) / 2 }

(* Dialing (§5.3): every server adds ⌈max(0, Laplace(µ, b))⌉ noise
   invitations to *each* of the m invitation dead drops. *)
let dialing_per_drop ?rng ~mode (p : Laplace.params) =
  match mode with
  | Deterministic -> int_of_float (Float.ceil p.mu)
  | Sampled -> Laplace.truncated_sample ?rng p

(* §5.4: the invitation-drop count m = n·f/µ balancing real invitations
   against noise so each drop carries roughly µ of each. *)
let tune_drop_count ~users:n ~dial_fraction:f (p : Laplace.params) =
  if n <= 0 then 1
  else max 1 (int_of_float (Float.round (float_of_int n *. f /. p.mu)))
