(** Laplace distribution and the paper's truncated-ceiled noise
    [⌈max(0, Laplace(µ, b))⌉] (Algorithm 2, step 2). *)

type params = { mu : float; b : float }

val params : mu:float -> b:float -> params
(** @raise Invalid_argument if [b <= 0]. *)

val pp_params : Format.formatter -> params -> unit

val sample : ?rng:Vuvuzela_crypto.Drbg.t -> params -> float
(** A raw Laplace(µ, b) variate via inverse-CDF sampling. *)

val truncated_sample : ?rng:Vuvuzela_crypto.Drbg.t -> params -> int
(** [⌈max(0, Laplace(µ, b))⌉] — the number of noise requests a server
    adds.  Always non-negative. *)

val mean : params -> float
val stddev : params -> float
(** [b·√2], the standard deviation of the untruncated distribution. *)

val pdf : params -> float -> float
val cdf : params -> float -> float
