(* Per-round privacy accounting (§6.2, Theorem 1 and Lemma 3, and the
   dialing variant of §6.5).

   A mechanism describes which observable variables a protocol exposes and
   how much one user's action can change them (the sensitivity, Figure 6);
   Theorem 1 turns the noise parameters (µ, b) into a per-round (ε, δ). *)

type guarantee = { eps : float; delta : float }

let pp_guarantee fmt { eps; delta } =
  Format.fprintf fmt "(ε=%g, δ=%.3g)" eps delta

(* Lemma 3: noise ⌈max(0, Laplace(µ, b))⌉ on a single counter with
   sensitivity t gives ε = t/b and δ = ½·exp((t − µ)/b). *)
let lemma3 ~sensitivity:(t : float) (p : Laplace.params) =
  { eps = t /. p.b; delta = 0.5 *. exp ((t -. p.mu) /. p.b) }

(* Theorem 1 (conversation protocol): noise Laplace(µ, b) on m1 (|∆m1| ≤ 2)
   and Laplace(µ/2, b/2) on m2 (|∆m2| ≤ 1) compose to
     ε = 4/b,   δ = exp((2 − µ)/b). *)
let conversation (p : Laplace.params) =
  { eps = 4. /. p.b; delta = exp ((2. -. p.mu) /. p.b) }

(* §6.5 (dialing protocol): a user's dialing action changes up to two
   invitation-drop counts by 1 each, each noised with Laplace(µ, b):
     ε = 2/b,   δ = ½·exp((1 − µ)/b). *)
let dialing (p : Laplace.params) =
  { eps = 2. /. p.b; delta = 0.5 *. exp ((1. -. p.mu) /. p.b) }

(* Equation 1: invert Theorem 1 — the (µ, b) needed for a target
   per-round (ε, δ) in the conversation protocol:
     b = 4/ε,   µ = 2 − 4·ln(δ)/ε. *)
let conversation_noise_for { eps; delta } =
  Laplace.params ~b:(4. /. eps) ~mu:(2. -. (4. *. log delta /. eps))

(* The dialing analogue: b = 2/ε, µ = 1 − b·ln(2δ). *)
let dialing_noise_for { eps; delta } =
  let b = 2. /. eps in
  Laplace.params ~b ~mu:(1. -. (b *. log (2. *. delta)))

(* The conversation protocol's two observable counters and their noise
   (Theorem 1): m1 gets Laplace(µ, b), m2 gets Laplace(µ/2, b/2).
   Algorithm 2 realizes exactly this by drawing n1, n2 ~ Laplace(µ, b)
   capped at 0 and adding ⌈n1⌉ singles and ⌈n2/2⌉ pairs. *)
let m1_noise (p : Laplace.params) = p
let m2_noise (p : Laplace.params) =
  Laplace.params ~mu:(p.mu /. 2.) ~b:(p.b /. 2.)
