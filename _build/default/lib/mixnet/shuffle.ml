(* Cryptographic shuffling (Algorithm 2, step 3a).

   Each mixing server draws a uniform permutation π for the round from its
   DRBG, applies it to the batch of requests before forwarding, and applies
   π⁻¹ to the batch of replies on the way back.  The honest server's π is
   what unlinks users from their dead-drop requests. *)

open Vuvuzela_crypto

type permutation = int array

(* Fisher-Yates with unbiased draws from the DRBG. *)
let random_permutation ?rng n =
  if n < 0 then invalid_arg "Shuffle.random_permutation: negative size";
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Drbg.uniform ?rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun x ->
      if x < 0 || x >= n || seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    p

(* [apply p a] is the array b with b.(i) = a.(p.(i)). *)
let apply p a =
  let n = Array.length a in
  if Array.length p <> n then invalid_arg "Shuffle.apply: size mismatch";
  Array.init n (fun i -> a.(p.(i)))

let invert p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for i = 0 to n - 1 do
    q.(p.(i)) <- i
  done;
  q

(* [unapply p b] recovers a from [apply p a]. *)
let unapply p b = apply (invert p) b
