lib/mixnet/wire.ml: Buffer Bytes Char Printf Result
