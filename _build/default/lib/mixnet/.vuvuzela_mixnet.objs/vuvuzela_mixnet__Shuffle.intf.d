lib/mixnet/shuffle.mli: Vuvuzela_crypto
