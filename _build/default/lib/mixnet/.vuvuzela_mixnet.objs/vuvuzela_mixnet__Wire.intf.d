lib/mixnet/wire.mli:
