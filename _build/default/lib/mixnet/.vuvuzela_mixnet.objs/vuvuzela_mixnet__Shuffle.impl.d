lib/mixnet/shuffle.ml: Array Drbg Fun Vuvuzela_crypto
