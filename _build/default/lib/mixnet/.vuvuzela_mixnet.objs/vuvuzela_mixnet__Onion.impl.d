lib/mixnet/onion.ml: Aead Array Box Bytes Bytes_util Curve25519 Drbg List Vuvuzela_crypto
