lib/mixnet/onion.mli: Vuvuzela_crypto
