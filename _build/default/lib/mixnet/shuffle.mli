(** Cryptographic batch shuffling (Algorithm 2, step 3a). *)

type permutation = int array

val random_permutation :
  ?rng:Vuvuzela_crypto.Drbg.t -> int -> permutation
(** Uniform permutation via Fisher-Yates over the DRBG. *)

val is_permutation : permutation -> bool

val apply : permutation -> 'a array -> 'a array
(** [apply p a] is [b] with [b.(i) = a.(p.(i))]. *)

val invert : permutation -> permutation

val unapply : permutation -> 'a array -> 'a array
(** [unapply p (apply p a) = a]. *)
